//! # mwsj — multiway spatial joins with approximate processing
//!
//! Facade crate for the reproduction of *Papadias & Arkoumanis, "Approximate
//! Processing of Multiway Spatial Joins in Very Large Databases" (EDBT 2002)*.
//!
//! It re-exports the public API of every workspace crate so downstream users
//! need a single dependency:
//!
//! * [`geom`] — rectangles, points, spatial predicates,
//! * [`rtree`] — the R*-tree index,
//! * [`query`] — query graphs (constraint networks) and solutions,
//! * [`datagen`] — synthetic datasets and the analytic hard-region models,
//! * [`core`] — the join algorithms: ILS, GILS, SEA, IBB, WR, ST, PJM.
//!
//! ## Quickstart
//!
//! ```
//! use mwsj::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Three synthetic datasets in the hard region of a 3-variable chain query.
//! let mut rng = StdRng::seed_from_u64(7);
//! let n_vars = 3;
//! let cardinality = 2_000;
//! let density = hard_region_density(QueryShape::Chain, n_vars, cardinality, 1.0);
//! let datasets: Vec<_> = (0..n_vars)
//!     .map(|_| Dataset::uniform(cardinality, density, &mut rng))
//!     .collect();
//!
//! // "city crossed by river which crosses an industrial area"
//! let graph = QueryGraph::chain(n_vars);
//! let instance = Instance::new(graph, datasets).unwrap();
//!
//! // Retrieve the best solution found within 2000 local-search iterations.
//! let outcome = Ils::new(IlsConfig::default())
//!     .run(&instance, &SearchBudget::iterations(2_000), &mut rng);
//! assert!(outcome.best_similarity > 0.0);
//! ```

pub use mwsj_core as core;
pub use mwsj_datagen as datagen;
pub use mwsj_geom as geom;
pub use mwsj_query as query;
pub use mwsj_rtree as rtree;

/// Convenient glob-import surface: `use mwsj::prelude::*;`.
pub mod prelude {
    pub use mwsj_core::{
        derive_seed, find_best_value, AnytimeSearch, BestValue, CutoffPolicy, ExactJoinOutcome,
        Gils, GilsConfig, Ibb, IbbConfig, Ils, IlsConfig, Instance, InstanceError, LeafLayout,
        NaiveGa, NaiveGaConfig, NaiveLocalSearch, PairwiseJoin, ParallelPortfolio, Pjm, PjmOrder,
        PortfolioConfig, PortfolioOutcome, RestartOutcome, RunOutcome, RunStats, SaConfig, Sea,
        SeaConfig, SearchBudget, SearchContext, SharedSearchState, SimulatedAnnealing,
        SynchronousTraversal, TelemetryConfig, TopSolutions, TracePoint, TwoStep, TwoStepConfig,
        TwoStepOutcome, WindowReduction,
    };
    pub use mwsj_datagen::{
        hard_region_density, Dataset, DatasetSpec, Distribution, QueryShape, Workload, WorkloadSpec,
    };
    pub use mwsj_geom::{Interval, Point, Predicate, Rect};
    pub use mwsj_query::{QueryGraph, Solution, VarId};
    pub use mwsj_rtree::{RTree, RTreeParams};
}
