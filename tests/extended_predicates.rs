//! Integration tests for the extended predicates (inside, north-east,
//! within-distance) through the whole pipeline — the Discussion's claim
//! that the methods extend beyond the overlap join.

use mwsj::prelude::*;
use mwsj::query::QueryGraphBuilder;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn mixed_instance(seed: u64, cardinality: usize) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let big = Dataset::uniform(cardinality, 0.8, &mut rng); // large rects
    let small = Dataset::uniform(cardinality, 0.005, &mut rng);
    let mid_a = Dataset::uniform(cardinality, 0.02, &mut rng);
    let mid_b = Dataset::uniform(cardinality, 0.02, &mut rng);
    let graph = QueryGraphBuilder::new(4)
        .edge_with(0, 1, Predicate::Contains)
        .edge_with(2, 0, Predicate::WithinDistance(0.1))
        .edge_with(3, 2, Predicate::NorthEast)
        .build()
        .unwrap();
    Instance::new(graph, vec![big, small, mid_a, mid_b]).unwrap()
}

/// Brute-force optimum for small mixed-predicate instances.
fn brute_optimum(inst: &Instance) -> usize {
    let n = inst.n_vars();
    assert_eq!(n, 4);
    let mut best = usize::MAX;
    for a in 0..inst.cardinality(0) {
        for b in 0..inst.cardinality(1) {
            for c in 0..inst.cardinality(2) {
                for d in 0..inst.cardinality(3) {
                    let v = inst.violations(&Solution::new(vec![a, b, c, d]));
                    best = best.min(v);
                    if best == 0 {
                        return 0;
                    }
                }
            }
        }
    }
    best
}

#[test]
fn ibb_is_optimal_with_mixed_predicates() {
    let inst = mixed_instance(301, 12);
    let mut config = IbbConfig::new();
    config.stop_at_exact = false;
    let outcome = Ibb::new(config).run(&inst, &SearchBudget::seconds(60.0));
    assert!(outcome.proven_optimal);
    assert_eq!(outcome.best_violations, brute_optimum(&inst));
}

#[test]
fn heuristics_run_with_mixed_predicates() {
    let inst = mixed_instance(302, 500);
    let mut rng = StdRng::seed_from_u64(303);
    let budget = SearchBudget::iterations(800);
    for outcome in [
        Ils::new(IlsConfig::default()).run(&inst, &budget, &mut rng),
        Gils::new(GilsConfig::default()).run(&inst, &budget, &mut rng),
        Sea::new(SeaConfig::default_for(&inst)).run(&inst, &SearchBudget::iterations(15), &mut rng),
    ] {
        // Reported similarity must be faithful...
        assert_eq!(inst.violations(&outcome.best), outcome.best_violations);
        // ...and clearly better than chance: containment of a random small
        // rect in a random big one is rare, so random similarity ≈ 1/3.
        assert!(
            outcome.best_similarity >= 2.0 / 3.0 - 1e-9,
            "{}",
            outcome.best_similarity
        );
    }
}

#[test]
fn wr_enumerates_mixed_predicate_solutions_exactly() {
    let inst = mixed_instance(304, 40);
    let outcome = WindowReduction::new().run(&inst, &SearchBudget::seconds(60.0), usize::MAX);
    assert!(outcome.complete);
    // Cross-check every solution and the count against brute force.
    let mut brute = 0usize;
    for a in 0..40 {
        for b in 0..40 {
            for c in 0..40 {
                for d in 0..40 {
                    if inst.violations(&Solution::new(vec![a, b, c, d])) == 0 {
                        brute += 1;
                    }
                }
            }
        }
    }
    assert_eq!(outcome.solutions.len(), brute);
    for s in &outcome.solutions {
        assert_eq!(inst.violations(s), 0);
    }
}

#[test]
fn asymmetric_predicates_survive_the_full_pipeline() {
    // Contains/Inside orientation: v0 contains v1 must not be confused
    // with v1 contains v0 anywhere in the stack.
    let big = vec![Rect::new(0.0, 0.0, 1.0, 1.0)];
    let small = vec![Rect::new(0.4, 0.4, 0.5, 0.5)];
    let forward = QueryGraphBuilder::new(2)
        .edge_with(0, 1, Predicate::Contains)
        .build()
        .unwrap();
    let inst = Instance::new(forward, vec![big.clone(), small.clone()]).unwrap();
    assert_eq!(inst.violations(&Solution::new(vec![0, 0])), 0);

    let backward = QueryGraphBuilder::new(2)
        .edge_with(1, 0, Predicate::Contains)
        .build()
        .unwrap();
    let inst = Instance::new(backward, vec![big, small]).unwrap();
    assert_eq!(inst.violations(&Solution::new(vec![0, 0])), 1);
}
