//! Scaled-down checks of the paper's headline experimental claims.
//!
//! These are statistical statements, so every test uses multiple seeds and
//! generous margins; they assert *directions* (who beats whom), not
//! absolute numbers.

use mwsj::datagen::plant_solution;
use mwsj::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn hard_instance(seed: u64, shape: QueryShape, n: usize, cardinality: usize) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let d = hard_region_density(shape, n, cardinality, 1.0);
    let datasets: Vec<Dataset> = (0..n)
        .map(|_| Dataset::uniform(cardinality, d, &mut rng))
        .collect();
    Instance::new(shape.graph(n), datasets).unwrap()
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// §6, claim (i): index-based re-instantiation (ILS) beats random
/// re-instantiation (naive LS) at equal step budgets.
#[test]
fn ils_beats_naive_local_search() {
    let inst = hard_instance(401, QueryShape::Clique, 6, 1_500);
    let steps = 800;
    let mut ils = Vec::new();
    let mut naive = Vec::new();
    for seed in 0..8 {
        let mut rng = StdRng::seed_from_u64(500 + seed);
        ils.push(
            Ils::new(IlsConfig::default())
                .run(&inst, &SearchBudget::iterations(steps), &mut rng)
                .best_similarity,
        );
        let mut rng = StdRng::seed_from_u64(500 + seed);
        naive.push(
            NaiveLocalSearch::default()
                .run(&inst, &SearchBudget::iterations(steps), &mut rng)
                .best_similarity,
        );
    }
    assert!(
        mean(&ils) > mean(&naive),
        "ILS {} vs naive {}",
        mean(&ils),
        mean(&naive)
    );
}

/// §6, claim (ii): the greedy quality-aware crossover (SEA) beats the
/// random-crossover GA at equal generation budgets.
#[test]
fn sea_beats_naive_ga() {
    let inst = hard_instance(402, QueryShape::Clique, 6, 1_500);
    let generations = 30;
    let mut sea = Vec::new();
    let mut naive = Vec::new();
    for seed in 0..6 {
        let mut rng = StdRng::seed_from_u64(600 + seed);
        sea.push(
            Sea::new(SeaConfig::default_for(&inst))
                .run(&inst, &SearchBudget::iterations(generations), &mut rng)
                .best_similarity,
        );
        let mut rng = StdRng::seed_from_u64(600 + seed);
        naive.push(
            NaiveGa::default()
                .run(&inst, &SearchBudget::iterations(generations), &mut rng)
                .best_similarity,
        );
    }
    assert!(
        mean(&sea) > mean(&naive),
        "SEA {} vs naive GA {}",
        mean(&sea),
        mean(&naive)
    );
}

/// Fig. 11's mechanism: seeding IBB with a heuristic solution cannot
/// *increase* the work to retrieve the planted exact solution, and in the
/// hard region it strictly prunes.
#[test]
fn seeded_ibb_prunes_search() {
    let mut rng = StdRng::seed_from_u64(403);
    let shape = QueryShape::Clique;
    let n = 4;
    let cardinality = 400;
    let d = hard_region_density(shape, n, cardinality, 1.0);
    let mut datasets: Vec<Dataset> = (0..n)
        .map(|_| Dataset::uniform(cardinality, d, &mut rng))
        .collect();
    let graph = shape.graph(n);
    plant_solution(&mut datasets, &graph, &mut rng);
    let inst = Instance::new(graph, datasets).unwrap();

    let plain = Ibb::new(IbbConfig::new()).run(&inst, &SearchBudget::seconds(120.0));
    assert!(plain.is_exact());

    // Seed with a good heuristic solution.
    let heuristic =
        Ils::new(IlsConfig::default()).run(&inst, &SearchBudget::iterations(400), &mut rng);
    let seeded = Ibb::new(IbbConfig::with_initial(heuristic.best.clone()))
        .run(&inst, &SearchBudget::seconds(120.0));
    assert!(seeded.is_exact());
    assert!(
        seeded.stats.steps <= plain.stats.steps,
        "seeded {} vs plain {} instantiations",
        seeded.stats.steps,
        plain.stats.steps
    );
}

/// Hard-region calibration: raising the target expected solutions makes
/// instances easier for the same algorithm and budget (Fig. 10c's x-axis
/// actually works).
#[test]
fn higher_expected_solutions_mean_easier_instances() {
    let n = 5;
    let cardinality = 1_000;
    let budget = SearchBudget::iterations(600);
    let mut hard_sims = Vec::new();
    let mut easy_sims = Vec::new();
    for seed in 0..6 {
        let mut rng = StdRng::seed_from_u64(700 + seed);
        let d_hard = hard_region_density(QueryShape::Clique, n, cardinality, 1.0);
        let ds: Vec<Dataset> = (0..n)
            .map(|_| Dataset::uniform(cardinality, d_hard, &mut rng))
            .collect();
        let inst = Instance::new(QueryShape::Clique.graph(n), ds).unwrap();
        hard_sims.push(
            Ils::new(IlsConfig::default())
                .run(&inst, &budget, &mut rng)
                .best_similarity,
        );

        let d_easy = hard_region_density(QueryShape::Clique, n, cardinality, 1e4);
        let ds: Vec<Dataset> = (0..n)
            .map(|_| Dataset::uniform(cardinality, d_easy, &mut rng))
            .collect();
        let inst = Instance::new(QueryShape::Clique.graph(n), ds).unwrap();
        easy_sims.push(
            Ils::new(IlsConfig::default())
                .run(&inst, &budget, &mut rng)
                .best_similarity,
        );
    }
    assert!(
        mean(&easy_sims) >= mean(&hard_sims),
        "easy {} vs hard {}",
        mean(&easy_sims),
        mean(&hard_sims)
    );
}

/// Fig. 10b's convergence claim: "since chain queries are
/// under-constrained, it is easier for the algorithms to quickly find good
/// solutions; the large number of constraints in cliques necessitates more
/// processing time." Measured as the fraction of the long-run similarity
/// already reached by a short run: chains converge at least as fast.
#[test]
fn chains_converge_faster_than_cliques() {
    let short = SearchBudget::iterations(60);
    let long = SearchBudget::iterations(2_000);
    let mut chain_ratio = Vec::new();
    let mut clique_ratio = Vec::new();
    for seed in 0..6 {
        for (shape, out) in [
            (QueryShape::Chain, &mut chain_ratio),
            (QueryShape::Clique, &mut clique_ratio),
        ] {
            let inst = hard_instance(800 + seed, shape, 12, 800);
            let mut rng = StdRng::seed_from_u64(900 + seed);
            let quick = Ils::new(IlsConfig::default())
                .run(&inst, &short, &mut rng)
                .best_similarity;
            let mut rng = StdRng::seed_from_u64(900 + seed);
            let full = Ils::new(IlsConfig::default())
                .run(&inst, &long, &mut rng)
                .best_similarity;
            out.push(if full > 0.0 { quick / full } else { 1.0 });
        }
    }
    assert!(
        mean(&chain_ratio) >= mean(&clique_ratio) - 0.05,
        "chain convergence ratio {} vs clique {}",
        mean(&chain_ratio),
        mean(&clique_ratio)
    );
}
