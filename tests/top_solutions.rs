//! Integration tests for top-k solution retrieval across algorithms.

use mwsj::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn hard_instance(seed: u64, shape: QueryShape, n: usize, cardinality: usize) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let d = hard_region_density(shape, n, cardinality, 1.0);
    let datasets: Vec<Dataset> = (0..n)
        .map(|_| Dataset::uniform(cardinality, d, &mut rng))
        .collect();
    Instance::new(shape.graph(n), datasets).unwrap()
}

/// Every algorithm's top list is sorted, distinct, consistent with its
/// headline best, and faithful under re-evaluation.
#[test]
fn top_lists_are_sound_for_all_algorithms() {
    let inst = hard_instance(501, QueryShape::Clique, 5, 500);
    let mut rng = StdRng::seed_from_u64(502);
    let outcomes = vec![
        Ils::new(IlsConfig::default()).run(&inst, &SearchBudget::iterations(800), &mut rng),
        Gils::new(GilsConfig::default()).run(&inst, &SearchBudget::iterations(800), &mut rng),
        Sea::new(SeaConfig::default_for(&inst)).run(&inst, &SearchBudget::iterations(20), &mut rng),
        NaiveGa::default().run(&inst, &SearchBudget::iterations(20), &mut rng),
        SimulatedAnnealing::default().run(&inst, &SearchBudget::iterations(2_000), &mut rng),
    ];
    for o in outcomes {
        assert!(!o.top_solutions.is_empty());
        // Head of the list is the best solution.
        assert_eq!(o.top_solutions[0].1, o.best_violations);
        // Sorted ascending, distinct, faithful.
        for w in o.top_solutions.windows(2) {
            assert!(w[0].1 <= w[1].1, "top list out of order");
            assert_ne!(w[0].0, w[1].0, "duplicate solution in top list");
        }
        for (sol, violations) in &o.top_solutions {
            assert_eq!(inst.violations(sol), *violations);
        }
        assert!(o.top_solutions.len() <= mwsj::core::DEFAULT_TOP_K);
    }
}

/// IBB's top list holds its incumbent history, ending at the optimum.
#[test]
fn ibb_top_list_ends_at_optimum() {
    let inst = hard_instance(503, QueryShape::Clique, 3, 60);
    let outcome = Ibb::new(IbbConfig {
        initial: None,
        stop_at_exact: false,
    })
    .run(&inst, &SearchBudget::seconds(60.0));
    assert!(outcome.proven_optimal);
    assert_eq!(outcome.top_solutions[0].1, outcome.best_violations);
    for (sol, violations) in &outcome.top_solutions {
        assert_eq!(inst.violations(sol), *violations);
    }
}

/// A dense instance has many exact solutions; the top list should collect
/// several distinct perfect matches.
#[test]
fn dense_instances_yield_multiple_exact_solutions() {
    let mut rng = StdRng::seed_from_u64(504);
    let datasets: Vec<Dataset> = (0..3)
        .map(|_| Dataset::uniform(300, 2.0, &mut rng))
        .collect();
    let inst = Instance::new(QueryGraph::chain(3), datasets).unwrap();
    // SA wanders enough to hit several distinct good solutions.
    let outcome =
        SimulatedAnnealing::default().run(&inst, &SearchBudget::iterations(20_000), &mut rng);
    assert!(outcome.top_solutions.len() >= 3);
    assert_eq!(outcome.top_solutions[0].1, 0);
}
