//! Planted-solution oracle tests: datasets are doctored so an exact
//! (similarity-1) solution is known to exist, then each algorithm must
//! find it — the heuristics within a generous step budget, IBB exactly.
//!
//! This is the repo's strongest end-to-end correctness check: unlike the
//! statistical paper-claim tests it has a ground truth, so a regression in
//! any layer (R*-tree queries, conflict bookkeeping, search moves) turns
//! into a hard failure instead of a quality drift.

use mwsj::datagen::{count_exact_solutions, plant_solution};
use mwsj::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A hard-region chain instance with one solution planted. Returns the
/// instance and the planted assignment.
fn planted_instance(seed: u64, n: usize, cardinality: usize) -> (Instance, Solution) {
    let mut rng = StdRng::seed_from_u64(seed);
    let d = hard_region_density(QueryShape::Chain, n, cardinality, 1.0);
    let mut datasets: Vec<Dataset> = (0..n)
        .map(|_| Dataset::uniform(cardinality, d, &mut rng))
        .collect();
    let graph = QueryGraph::chain(n);
    let planted = plant_solution(&mut datasets, &graph, &mut rng);
    assert!(
        count_exact_solutions(&datasets, &graph, 1) >= 1,
        "planting failed"
    );
    let inst = Instance::new(graph, datasets).unwrap();
    assert_eq!(inst.violations(&planted), 0, "planted solution not exact");
    (inst, planted)
}

#[test]
fn ils_reaches_the_planted_optimum() {
    let (inst, _) = planted_instance(800, 3, 200);
    let mut rng = StdRng::seed_from_u64(801);
    let outcome =
        Ils::new(IlsConfig::default()).run(&inst, &SearchBudget::iterations(60_000), &mut rng);
    assert_eq!(
        outcome.best_violations, 0,
        "similarity {}",
        outcome.best_similarity
    );
    assert_eq!(inst.violations(&outcome.best), 0);
}

#[test]
fn gils_reaches_the_planted_optimum() {
    let (inst, _) = planted_instance(810, 3, 200);
    let mut rng = StdRng::seed_from_u64(811);
    let outcome =
        Gils::new(GilsConfig::default()).run(&inst, &SearchBudget::iterations(60_000), &mut rng);
    assert_eq!(
        outcome.best_violations, 0,
        "similarity {}",
        outcome.best_similarity
    );
    assert_eq!(inst.violations(&outcome.best), 0);
}

#[test]
fn sea_reaches_the_planted_optimum() {
    let (inst, _) = planted_instance(820, 3, 200);
    let mut rng = StdRng::seed_from_u64(821);
    let outcome = Sea::new(SeaConfig::default_for(&inst)).run(
        &inst,
        &SearchBudget::iterations(3_000),
        &mut rng,
    );
    assert_eq!(
        outcome.best_violations, 0,
        "similarity {}",
        outcome.best_similarity
    );
    assert_eq!(inst.violations(&outcome.best), 0);
}

#[test]
fn ibb_returns_the_planted_optimum_exactly() {
    let (inst, _) = planted_instance(830, 3, 150);
    let outcome = Ibb::new(IbbConfig::new()).run(&inst, &SearchBudget::seconds(120.0));
    assert_eq!(outcome.best_violations, 0);
    assert_eq!(inst.violations(&outcome.best), 0);
    assert!(outcome.proven_optimal);
}

#[test]
fn portfolio_of_ils_restarts_reaches_the_planted_optimum() {
    let (inst, _) = planted_instance(840, 3, 200);
    let outcome = ParallelPortfolio::new(
        Ils::new(IlsConfig::default()),
        PortfolioConfig::new(4, 0),
    )
    .run(&inst, &SearchBudget::iterations(120_000), 841);
    assert_eq!(outcome.merged.best_violations, 0);
    assert_eq!(inst.violations(&outcome.merged.best), 0);
    assert_eq!(outcome.bound_violations, Some(0));
}
