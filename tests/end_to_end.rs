//! End-to-end integration tests: datagen → query → rtree → core algorithms.

use mwsj::datagen::{count_exact_solutions, plant_solution};
use mwsj::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a hard-region instance plus the raw datasets (for brute-force
/// verification).
fn hard_instance(
    seed: u64,
    shape: QueryShape,
    n: usize,
    cardinality: usize,
    target: f64,
) -> (Instance, Vec<Dataset>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let d = mwsj::datagen::hard_region_density(shape, n, cardinality, target);
    let datasets: Vec<Dataset> = (0..n)
        .map(|_| Dataset::uniform(cardinality, d, &mut rng))
        .collect();
    (
        Instance::new(shape.graph(n), datasets.clone()).unwrap(),
        datasets,
    )
}

/// All three exact algorithms and the brute-force counter agree on the
/// complete solution set, across query shapes.
#[test]
fn exact_methods_agree_across_shapes() {
    for (seed, shape) in [
        (201, QueryShape::Chain),
        (202, QueryShape::Clique),
        (203, QueryShape::Cycle),
        (204, QueryShape::Star),
    ] {
        let (inst, datasets) = hard_instance(seed, shape, 4, 60, 50.0);
        let budget = SearchBudget::seconds(60.0);
        let mut wr = WindowReduction::new()
            .run(&inst, &budget, usize::MAX)
            .solutions;
        let mut pjm = Pjm::default().run(&inst, &budget, usize::MAX).solutions;
        wr.sort_by(|a, b| a.as_slice().cmp(b.as_slice()));
        pjm.sort_by(|a, b| a.as_slice().cmp(b.as_slice()));
        assert_eq!(wr, pjm, "WR vs PJM on {}", shape.name());
        let brute = count_exact_solutions(&datasets, inst.graph(), u64::MAX);
        assert_eq!(wr.len() as u64, brute, "WR vs brute on {}", shape.name());
        if shape != QueryShape::Star {
            // ST is overlap-only like the others but exercise it on a few.
            let mut st = SynchronousTraversal::new()
                .run(&inst, &budget, usize::MAX)
                .solutions;
            st.sort_by(|a, b| a.as_slice().cmp(b.as_slice()));
            assert_eq!(wr, st, "WR vs ST on {}", shape.name());
        }
    }
}

/// Every heuristic's reported similarity matches an independent
/// re-evaluation of its best solution.
#[test]
fn heuristic_outcomes_are_self_consistent() {
    let (inst, _) = hard_instance(205, QueryShape::Clique, 5, 400, 1.0);
    let budget = SearchBudget::iterations(500);
    let mut rng = StdRng::seed_from_u64(206);
    let outcomes = vec![
        Ils::new(IlsConfig::default()).run(&inst, &budget, &mut rng),
        Gils::new(GilsConfig::default()).run(&inst, &budget, &mut rng),
        Sea::new(SeaConfig::default_for(&inst)).run(&inst, &SearchBudget::iterations(10), &mut rng),
        NaiveLocalSearch::default().run(&inst, &budget, &mut rng),
        SimulatedAnnealing::default().run(&inst, &budget, &mut rng),
    ];
    for o in outcomes {
        let recomputed = inst.violations(&o.best);
        assert_eq!(o.best_violations, recomputed);
        let sim = inst.graph().similarity_of_violations(recomputed);
        assert!((o.best_similarity - sim).abs() < 1e-12);
        assert_eq!(o.best.len(), inst.n_vars());
    }
}

/// IBB (exhaustive mode) returns the same optimum the heuristics can at
/// best match, and the two-step pipeline retrieves a planted optimum.
#[test]
fn systematic_search_dominates_heuristics() {
    let (inst, _) = hard_instance(207, QueryShape::Clique, 3, 40, 1.0);
    let mut config = IbbConfig::new();
    config.stop_at_exact = false;
    let optimal = Ibb::new(config).run(&inst, &SearchBudget::seconds(60.0));
    assert!(optimal.proven_optimal);
    let mut rng = StdRng::seed_from_u64(208);
    for _ in 0..5 {
        let h = Ils::new(IlsConfig::default()).run(&inst, &SearchBudget::iterations(300), &mut rng);
        assert!(h.best_violations >= optimal.best_violations);
    }
}

#[test]
fn two_step_retrieves_planted_optimum() {
    let mut rng = StdRng::seed_from_u64(209);
    let n = 4;
    let shape = QueryShape::Clique;
    let d = mwsj::datagen::hard_region_density(shape, n, 200, 1.0);
    let mut datasets: Vec<Dataset> = (0..n).map(|_| Dataset::uniform(200, d, &mut rng)).collect();
    let graph = shape.graph(n);
    let planted = plant_solution(&mut datasets, &graph, &mut rng);
    let inst = Instance::new(graph, datasets).unwrap();

    let pipeline = TwoStep::new(TwoStepConfig::Ils(
        IlsConfig::default(),
        SearchBudget::iterations(200),
    ));
    let outcome = pipeline.run(&inst, &SearchBudget::seconds(60.0), &mut rng);
    assert!(outcome.best.is_exact());
    // The planted solution is *an* exact solution; the one found must
    // evaluate exact too (it may be the same or another coincidental one).
    assert_eq!(inst.violations(&planted), 0);
}

/// Workload reproducibility end to end: same spec → same outcome.
#[test]
fn workloads_are_reproducible_end_to_end() {
    let spec = WorkloadSpec::hard_region(QueryShape::Chain, 4, 300, 77);
    let run = |spec: &WorkloadSpec| {
        let w = spec.generate();
        let inst = Instance::new(w.graph, w.datasets).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        Ils::new(IlsConfig::default())
            .run(&inst, &SearchBudget::iterations(400), &mut rng)
            .best
    };
    assert_eq!(run(&spec), run(&spec));
}

/// The planted-solution machinery interacts correctly with indexing: the
/// planted tuple is retrievable through the R*-tree-driven exact join.
#[test]
fn planted_solution_is_found_by_exact_join() {
    let mut rng = StdRng::seed_from_u64(210);
    let shape = QueryShape::Clique;
    let d = mwsj::datagen::hard_region_density(shape, 4, 150, 1.0) / 10.0;
    let mut datasets: Vec<Dataset> = (0..4).map(|_| Dataset::uniform(150, d, &mut rng)).collect();
    let graph = shape.graph(4);
    let planted = plant_solution(&mut datasets, &graph, &mut rng);
    let inst = Instance::new(graph, datasets).unwrap();
    let found = WindowReduction::new()
        .run(&inst, &SearchBudget::seconds(60.0), usize::MAX)
        .solutions;
    assert!(
        found.contains(&planted),
        "planted {planted} missing from WR result"
    );
}
