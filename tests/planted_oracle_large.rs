//! Planted-solution oracle at paper scale (large tier): an n = 8,
//! N = 10 000 hard-region workload with one exact solution planted. The
//! heuristics must reach similarity 1.0 within a pinned step budget, and
//! the three exact algorithms must agree with each other — and find the
//! planted solution — on a downsampled slice small enough to enumerate.

use mwsj::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const N_VARS: usize = 8;
const CARDINALITY: usize = 10_000;
const SEED: u64 = 204;

/// Pinned budgets: changing them is a benchmark-relevant event, not a
/// test tweak (they mirror the large-tier convergence contract).
const ILS_STEPS: u64 = 50_000;
const GILS_STEPS: u64 = 50_000;
const SEA_GENERATIONS: u64 = 400;

/// The large-tier planted workload (mirrors the bench suite's
/// `cycle-n8-hard` case).
fn planted_workload() -> (Workload, Solution) {
    let mut spec = WorkloadSpec::hard_region(QueryShape::Cycle, N_VARS, CARDINALITY, SEED);
    spec.plant = true;
    let w = spec.generate();
    let planted = w.planted.clone().expect("spec.plant = true");
    (w, planted)
}

fn planted_instance() -> (Instance, Solution) {
    let (w, planted) = planted_workload();
    let inst = Instance::new(w.graph, w.datasets).unwrap();
    assert_eq!(inst.violations(&planted), 0, "planted solution not exact");
    (inst, planted)
}

#[test]
fn ils_reaches_similarity_one_at_scale() {
    let (inst, _) = planted_instance();
    let mut rng = StdRng::seed_from_u64(SEED + 1);
    let outcome =
        Ils::new(IlsConfig::default()).run(&inst, &SearchBudget::iterations(ILS_STEPS), &mut rng);
    assert_eq!(
        outcome.best_violations, 0,
        "ILS stalled at similarity {}",
        outcome.best_similarity
    );
    assert_eq!(inst.violations(&outcome.best), 0);
}

#[test]
fn gils_reaches_similarity_one_at_scale() {
    let (inst, _) = planted_instance();
    let mut rng = StdRng::seed_from_u64(SEED + 2);
    let outcome = Gils::new(GilsConfig::default()).run(
        &inst,
        &SearchBudget::iterations(GILS_STEPS),
        &mut rng,
    );
    assert_eq!(
        outcome.best_violations, 0,
        "GILS stalled at similarity {}",
        outcome.best_similarity
    );
    assert_eq!(inst.violations(&outcome.best), 0);
}

#[test]
fn sea_reaches_similarity_one_at_scale() {
    let (inst, _) = planted_instance();
    let mut rng = StdRng::seed_from_u64(SEED + 3);
    let outcome = Sea::new(SeaConfig::default_for(&inst)).run(
        &inst,
        &SearchBudget::iterations(SEA_GENERATIONS),
        &mut rng,
    );
    assert_eq!(
        outcome.best_violations, 0,
        "SEA stalled at similarity {}",
        outcome.best_similarity
    );
    assert_eq!(inst.violations(&outcome.best), 0);
}

/// Downsamples each dataset of the large workload to `keep` objects —
/// always retaining the planted object — and returns the sliced instance
/// plus the planted solution remapped to slice indices.
fn downsampled_slice(keep: usize) -> (Instance, Solution) {
    let (w, planted) = planted_workload();
    let mut rng = StdRng::seed_from_u64(SEED + 10);
    let mut sliced: Vec<Vec<Rect>> = Vec::with_capacity(N_VARS);
    let mut remapped: Vec<usize> = Vec::with_capacity(N_VARS);
    for (v, dataset) in w.datasets.iter().enumerate() {
        let p = planted.get(v);
        // `keep − 1` distinct random survivors plus the planted object.
        let mut picked: Vec<usize> = vec![p];
        while picked.len() < keep {
            let i = rng.random_range(0..dataset.len());
            if !picked.contains(&i) {
                picked.push(i);
            }
        }
        picked.sort_unstable();
        remapped.push(picked.iter().position(|&i| i == p).unwrap());
        sliced.push(picked.iter().map(|&i| dataset.rect(i)).collect());
    }
    let inst = Instance::new(w.graph, sliced).unwrap();
    let planted_slice = Solution::new(remapped);
    assert_eq!(inst.violations(&planted_slice), 0, "slice broke the plant");
    (inst, planted_slice)
}

/// Canonical form of an exact-join result: sorted assignment vectors.
fn canonical(outcome: &ExactJoinOutcome) -> Vec<Vec<usize>> {
    let mut sols: Vec<Vec<usize>> = outcome
        .solutions
        .iter()
        .map(|s| (0..N_VARS).map(|v| s.get(v)).collect())
        .collect();
    sols.sort();
    sols
}

#[test]
fn exact_algorithms_agree_on_the_downsampled_slice() {
    let (inst, planted) = downsampled_slice(150);
    let budget = SearchBudget::seconds(120.0);
    let limit = 10_000;

    let wr = WindowReduction::new().run(&inst, &budget, limit);
    let st = SynchronousTraversal::new().run(&inst, &budget, limit);
    let pjm = Pjm::default().run(&inst, &budget, limit);
    assert!(wr.complete, "WR did not finish the slice");
    assert!(st.complete, "ST did not finish the slice");
    assert!(pjm.complete, "PJM did not finish the slice");

    let wr_sols = canonical(&wr);
    let st_sols = canonical(&st);
    let pjm_sols = canonical(&pjm);
    assert_eq!(wr_sols, st_sols, "WR and ST disagree");
    assert_eq!(wr_sols, pjm_sols, "WR and PJM disagree");

    let planted_vec: Vec<usize> = (0..N_VARS).map(|v| planted.get(v)).collect();
    assert!(
        wr_sols.contains(&planted_vec),
        "planted solution missing from the exact result"
    );
}
