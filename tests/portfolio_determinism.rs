//! The portfolio's determinism contract: for a step-limited budget, a
//! fixed master seed and a fixed restart count, results are bit-identical
//! run-to-run and **independent of the thread count** — 4 worker threads
//! return exactly what 1 thread returns on the same 4 derived seeds.

use mwsj::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn hard_instance(seed: u64, shape: QueryShape, n: usize, cardinality: usize) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let d = hard_region_density(shape, n, cardinality, 1.0);
    let datasets: Vec<Dataset> = (0..n)
        .map(|_| Dataset::uniform(cardinality, d, &mut rng))
        .collect();
    Instance::new(shape.graph(n), datasets).unwrap()
}

fn run(inst: &Instance, threads: usize, master_seed: u64) -> PortfolioOutcome {
    ParallelPortfolio::new(
        Ils::new(IlsConfig::default()),
        PortfolioConfig::new(4, threads),
    )
    .run(inst, &SearchBudget::iterations(3_000), master_seed)
}

#[test]
fn four_threads_match_one_thread_bit_for_bit() {
    let inst = hard_instance(700, QueryShape::Chain, 4, 400);
    let sequential = run(&inst, 1, 4242);
    let parallel = run(&inst, 4, 4242);
    assert_eq!(sequential.threads_used, 1);
    assert_eq!(parallel.threads_used, 4);

    // Best solution and its quality.
    assert_eq!(sequential.merged.best, parallel.merged.best);
    assert_eq!(
        sequential.merged.best_violations,
        parallel.merged.best_violations
    );
    assert_eq!(
        sequential.merged.best_similarity,
        parallel.merged.best_similarity
    );

    // TopSolutions: same solutions in the same order.
    assert_eq!(
        sequential.merged.top_solutions,
        parallel.merged.top_solutions
    );

    // Deterministic counters and the (step, similarity) trace.
    assert_eq!(sequential.merged.stats.steps, parallel.merged.stats.steps);
    assert_eq!(
        sequential.merged.stats.restarts,
        parallel.merged.stats.restarts
    );
    let key = |o: &PortfolioOutcome| -> Vec<(u64, f64)> {
        o.merged
            .trace
            .iter()
            .map(|p| (p.step, p.similarity))
            .collect()
    };
    assert_eq!(key(&sequential), key(&parallel));

    // Per-restart: same seeds, same per-restart results either way.
    for (s, p) in sequential.restarts.iter().zip(&parallel.restarts) {
        assert_eq!(s.index, p.index);
        assert_eq!(s.seed, p.seed);
        assert_eq!(s.seed, derive_seed(4242, s.index));
        assert_eq!(s.outcome.best, p.outcome.best);
        assert_eq!(s.outcome.best_violations, p.outcome.best_violations);
        assert_eq!(s.outcome.stats.steps, p.outcome.stats.steps);
    }
}

/// Deterministic fields of every restart-tagged `progress` heartbeat are
/// bit-identical at 1 vs 4 threads under a step budget. Wall-clock fields
/// (`steps_per_sec`, `elapsed_secs`) are measured and exempt; everything
/// else — including the f64 `best_similarity`, compared bit-for-bit — is
/// part of the determinism contract.
#[test]
fn progress_events_are_bit_identical_across_thread_counts() {
    use mwsj::core::{ObsHandle, RunEvent, VecSink};
    use std::sync::Arc;

    /// One heartbeat's deterministic fields: (restart, step, best
    /// violations, best-similarity bits, node accesses, cache hits, cache
    /// misses, resident bytes).
    type ProgressRow = (u64, u64, Option<u64>, Option<u64>, u64, u64, u64, u64);

    let inst = hard_instance(702, QueryShape::Chain, 4, 400);
    let telemetered_run = |threads: usize| {
        let sink = Arc::new(VecSink::new());
        let obs = ObsHandle::enabled().with_sink(sink.clone());
        let mut config = PortfolioConfig::new(4, threads);
        config.telemetry = TelemetryConfig {
            progress_every: Some(100),
            ..TelemetryConfig::default()
        };
        ParallelPortfolio::new(Ils::new(IlsConfig::default()), config).run_with_obs(
            &inst,
            &SearchBudget::iterations(3_000),
            4242,
            &obs,
        );
        // Canonical order: threads interleave arbitrarily in the sink, so
        // sort by (restart, step); within a restart steps are unique.
        let mut rows: Vec<ProgressRow> = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                RunEvent::Progress {
                    restart,
                    step,
                    best_violations,
                    best_similarity,
                    node_accesses,
                    cache_hits,
                    cache_misses,
                    resident_bytes,
                    ..
                } => Some((
                    restart.expect("portfolio progress is restart-tagged"),
                    *step,
                    *best_violations,
                    best_similarity.map(f64::to_bits),
                    *node_accesses,
                    *cache_hits,
                    *cache_misses,
                    *resident_bytes,
                )),
                _ => None,
            })
            .collect();
        rows.sort_unstable();
        rows
    };

    let sequential = telemetered_run(1);
    let parallel = telemetered_run(4);
    assert!(
        !sequential.is_empty(),
        "a 3000-step portfolio at cadence 100 must emit heartbeats"
    );
    assert_eq!(sequential, parallel);
}

#[test]
fn repeat_runs_are_bit_identical() {
    let inst = hard_instance(701, QueryShape::Clique, 4, 300);
    let a = run(&inst, 4, 9);
    let b = run(&inst, 4, 9);
    assert_eq!(a.merged.best, b.merged.best);
    assert_eq!(a.merged.top_solutions, b.merged.top_solutions);
    assert_eq!(a.merged.stats.steps, b.merged.stats.steps);
}

#[test]
fn different_master_seeds_derive_different_restart_seeds() {
    let a: Vec<u64> = (0..4).map(|i| derive_seed(1, i)).collect();
    let b: Vec<u64> = (0..4).map(|i| derive_seed(2, i)).collect();
    assert!(a.iter().all(|s| !b.contains(s)));
}
