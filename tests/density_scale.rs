//! Density-solver validation at paper scale (N = 10 000): the closed-form
//! hard-region densities of §6 must predict the Monte-Carlo solution count
//! within a tolerance band. Counting is exact per trial — an R-tree-backed
//! backtracker, not sampling — so the only noise is the dataset draw.
//!
//! Also pins byte-stability of the fixed-seed workload generator: the
//! exact bit patterns of a seeded workload are part of the bench-tier
//! contract (BENCH_large.json counters are only comparable across runs if
//! the data never drifts).

use mwsj::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 10_000;
const TARGET: f64 = 60.0;

/// Exact solution count by backtracking, with candidate generation through
/// a window query on each variable's R-tree (the naive all-pairs scan is
/// O(N²) and unusable at this scale).
fn count_solutions(datasets: &[Vec<Rect>], graph: &QueryGraph) -> u64 {
    let n = graph.n_vars();
    let trees: Vec<RTree<u32>> = datasets
        .iter()
        .map(|d| {
            let items: Vec<(Rect, u32)> = d.iter().copied().zip(0u32..).collect();
            RTree::bulk_load_with_params(RTreeParams::new(32), items)
        })
        .collect();
    let mut assignment = vec![usize::MAX; n];
    let mut count = 0u64;
    count_rec(datasets, &trees, graph, 0, &mut assignment, &mut count);
    count
}

fn count_rec(
    datasets: &[Vec<Rect>],
    trees: &[RTree<u32>],
    graph: &QueryGraph,
    var: usize,
    assignment: &mut Vec<usize>,
    count: &mut u64,
) {
    let n = graph.n_vars();
    if var == n {
        *count += 1;
        return;
    }
    let earlier: Vec<(usize, Predicate)> = graph
        .neighbors(var)
        .iter()
        .copied()
        .filter(|&(u, _)| u < var)
        .collect();
    let ok = |obj: usize| {
        let r = datasets[var][obj];
        earlier
            .iter()
            .all(|&(u, pred)| pred.eval(&r, &datasets[u][assignment[u]]))
    };
    match earlier.first() {
        // Root variable: every object is a candidate.
        None => {
            for obj in 0..datasets[var].len() {
                assignment[var] = obj;
                count_rec(datasets, trees, graph, var + 1, assignment, count);
            }
        }
        // Probe the tree with the first assigned neighbour's rectangle,
        // then filter against the rest.
        Some(&(u0, _)) => {
            let window = datasets[u0][assignment[u0]];
            let candidates: Vec<usize> = trees[var]
                .window(&window)
                .map(|(_, &v)| v as usize)
                .filter(|&obj| ok(obj))
                .collect();
            for obj in candidates {
                assignment[var] = obj;
                count_rec(datasets, trees, graph, var + 1, assignment, count);
            }
        }
    }
}

/// Mean exact count over `trials` independently drawn workloads at the
/// hard-region density solved for [`TARGET`].
fn monte_carlo_mean(shape: QueryShape, n_vars: usize, trials: u64, seed: u64) -> f64 {
    let density = hard_region_density(shape, n_vars, N, TARGET);
    let graph = shape.graph(n_vars);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total = 0u64;
    for _ in 0..trials {
        let datasets: Vec<Vec<Rect>> = (0..n_vars)
            .map(|_| Dataset::uniform(N, density, &mut rng).rects().to_vec())
            .collect();
        total += count_solutions(&datasets, &graph);
    }
    total as f64 / trials as f64
}

fn assert_in_band(shape: QueryShape, mean: f64, lo: f64, hi: f64) {
    let ratio = mean / TARGET;
    assert!(
        (lo..hi).contains(&ratio),
        "{}: Monte-Carlo mean {mean:.1} vs closed-form target {TARGET} (ratio {ratio:.3}, band {lo}..{hi})",
        shape.name()
    );
}

#[test]
fn chain_closed_form_matches_monte_carlo_at_scale() {
    // Tree queries with constant extents: the formula is exact up to
    // boundary clipping, so the band only absorbs sampling noise.
    let mean = monte_carlo_mean(QueryShape::Chain, 6, 8, 0xc4a1);
    assert_in_band(QueryShape::Chain, mean, 0.7, 1.3);
}

#[test]
fn star_closed_form_matches_monte_carlo_at_scale() {
    let mean = monte_carlo_mean(QueryShape::Star, 6, 8, 0x57a1);
    assert_in_band(QueryShape::Star, mean, 0.7, 1.3);
}

#[test]
fn clique_closed_form_matches_monte_carlo_at_scale() {
    // The clique formula (Sol = N·n²·d^{n−1}, [PMT99]) is itself an
    // approximation; the band is wider than the acyclic ones.
    let mean = monte_carlo_mean(QueryShape::Clique, 4, 8, 0xc11e);
    assert_in_band(QueryShape::Clique, mean, 0.5, 2.0);
}

/// FNV-1a over every rectangle's coordinate bit patterns: the seeded
/// workload generator must stay byte-stable release to release.
fn workload_fingerprint(w: &Workload) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for d in &w.datasets {
        for r in d.rects() {
            eat(r.min.x.to_bits());
            eat(r.min.y.to_bits());
            eat(r.max.x.to_bits());
            eat(r.max.y.to_bits());
        }
    }
    h
}

#[test]
fn fixed_seed_workload_is_byte_stable() {
    // Mirrors the large tier's chain-n8-hard case (seed 201). If this hash
    // moves, every committed BENCH_large.json counter is invalidated —
    // regenerate the snapshot and say so in the changelog.
    let mut spec = WorkloadSpec::hard_region(QueryShape::Chain, 8, 10_000, 201);
    spec.plant = true;
    let w = spec.generate();
    assert_eq!(
        workload_fingerprint(&w),
        0x9AE0833D65159066,
        "seeded workload drifted byte-wise"
    );
}
