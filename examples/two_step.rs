//! Two-step processing: heuristic seeding accelerates systematic search.
//!
//! Reproduces the paper's Fig. 11 mechanics on a small instance: four
//! clique-joined datasets with exactly one planted exact solution. Plain
//! IBB must prove its way down to the solution from an empty incumbent;
//! the two-step methods first run a cheap heuristic whose best similarity
//! bounds the branch-and-bound, pruning most of the space (the paper
//! reports 1–2 orders of magnitude).
//!
//! Run with: `cargo run --release --example two_step`

use mwsj::datagen::plant_solution;
use mwsj::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(23);
    let n_vars = 4;
    let cardinality = 2_000;
    let density = hard_region_density(QueryShape::Clique, n_vars, cardinality, 1.0);
    let mut datasets: Vec<Dataset> = (0..n_vars)
        .map(|_| Dataset::uniform(cardinality, density, &mut rng))
        .collect();
    let graph = QueryGraph::clique(n_vars);
    let planted = plant_solution(&mut datasets, &graph, &mut rng);
    println!("planted exact solution: {planted}");
    let instance = Instance::new(graph, datasets).expect("valid instance");

    // --- Plain IBB. ---
    let start = Instant::now();
    let plain = Ibb::new(IbbConfig::new()).run(&instance, &SearchBudget::seconds(120.0));
    let plain_time = start.elapsed();
    println!(
        "IBB alone:  exact={} in {:.2?} ({} candidate instantiations)",
        plain.is_exact(),
        plain_time,
        plain.stats.steps
    );

    // --- ILS + IBB. ---
    let start = Instant::now();
    let two_step = TwoStep::new(TwoStepConfig::Ils(
        IlsConfig::default(),
        SearchBudget::seconds(0.25),
    ));
    let seeded = two_step.run(&instance, &SearchBudget::seconds(120.0), &mut rng);
    let seeded_time = start.elapsed();
    println!(
        "ILS + IBB:  exact={} in {:.2?} (heuristic similarity {:.3}, systematic ran: {})",
        seeded.best.is_exact(),
        seeded_time,
        seeded.heuristic.best_similarity,
        seeded.ran_systematic()
    );

    // --- SEA + IBB. ---
    let start = Instant::now();
    let two_step = TwoStep::new(TwoStepConfig::Sea(
        SeaConfig::default_for(&instance),
        SearchBudget::seconds(1.0),
    ));
    let sea_seeded = two_step.run(&instance, &SearchBudget::seconds(120.0), &mut rng);
    let sea_time = start.elapsed();
    println!(
        "SEA + IBB:  exact={} in {:.2?} (heuristic similarity {:.3}, systematic ran: {})",
        sea_seeded.best.is_exact(),
        sea_time,
        sea_seeded.heuristic.best_similarity,
        sea_seeded.ran_systematic()
    );

    if plain_time > seeded_time {
        println!(
            "\nseeding IBB with ILS was {:.1}x faster than plain IBB",
            plain_time.as_secs_f64() / seeded_time.as_secs_f64()
        );
    }
}
