//! Top-k retrieval: the best distinct configurations, not just the winner.
//!
//! The paper's algorithms keep "the best solutions" seen during search
//! (§3); every heuristic here retains the top-10 distinct solutions.
//! This example asks for near-collinear arrangements of three facility
//! layers and prints the whole leaderboard — useful when the single best
//! match is not the one the analyst wants.
//!
//! Run with: `cargo run --release --example top_k`

use mwsj::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    let n_vars = 4;
    let cardinality = 20_000;
    let density = hard_region_density(QueryShape::Cycle, n_vars, cardinality, 10.0);
    let datasets: Vec<Dataset> = (0..n_vars)
        .map(|_| Dataset::uniform(cardinality, density, &mut rng))
        .collect();
    let instance = Instance::new(QueryGraph::cycle(n_vars), datasets).expect("valid instance");

    let outcome =
        Gils::new(GilsConfig::default()).run(&instance, &SearchBudget::seconds(1.0), &mut rng);

    println!(
        "top {} distinct solutions after {:?} ({} index node accesses):",
        outcome.top_solutions.len(),
        outcome.stats.elapsed,
        outcome.stats.node_accesses
    );
    println!("rank  violations  similarity  solution");
    for (rank, (sol, violations)) in outcome.top_solutions.iter().enumerate() {
        println!(
            "{:>4}  {:>10}  {:>10.3}  {}",
            rank + 1,
            violations,
            instance.graph().similarity_of_violations(*violations),
            sol
        );
    }

    // The leaderboard is consistent with the headline result.
    assert_eq!(outcome.top_solutions[0].1, outcome.best_violations);
}
