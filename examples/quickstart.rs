//! Quickstart: approximate processing of a 3-way spatial join.
//!
//! Builds three synthetic datasets in the *hard region* (expected number of
//! exact solutions ≈ 1), poses the paper's running example — "find all
//! cities crossed by a river which crosses an industrial area" — as a chain
//! query, and retrieves the best solution indexed local search can find in
//! half a second.
//!
//! Run with: `cargo run --release --example quickstart`

use mwsj::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // Three datasets of 10,000 objects each: cities, rivers, industrial
    // areas. The density is solved so the expected number of exact
    // solutions is 1 — the hardest setting for any search algorithm.
    let n_vars = 3;
    let cardinality = 10_000;
    let density = hard_region_density(QueryShape::Chain, n_vars, cardinality, 1.0);
    println!("hard-region density for N = {cardinality}, n = {n_vars}: {density:.4}");

    let datasets: Vec<Dataset> = (0..n_vars)
        .map(|_| Dataset::uniform(cardinality, density, &mut rng))
        .collect();

    // city — river — industrial area (overlap joins along a chain).
    let graph = QueryGraph::chain(n_vars);
    let instance = Instance::new(graph, datasets).expect("valid instance");

    // Anytime retrieval: the best (possibly approximate) solution in 500 ms.
    let outcome =
        Ils::new(IlsConfig::default()).run(&instance, &SearchBudget::seconds(0.5), &mut rng);

    println!(
        "best solution {} — similarity {:.3} ({} of {} join conditions violated)",
        outcome.best,
        outcome.best_similarity,
        outcome.best_violations,
        instance.graph().edge_count(),
    );
    println!(
        "visited {} local maxima, {} R*-tree node accesses, {} restarts in {:?}",
        outcome.stats.local_maxima,
        outcome.stats.node_accesses,
        outcome.stats.restarts,
        outcome.stats.elapsed,
    );
    for v in 0..n_vars {
        println!(
            "  v{} <- object {} at {}",
            v + 1,
            outcome.best.get(v),
            instance.rect(v, outcome.best.get(v))
        );
    }
}
