//! Extended spatial predicates: beyond the *overlap* join.
//!
//! The paper's Discussion: "The methods are easily extensible to other
//! spatial predicates, such as northeast, inside, near etc." This example
//! poses a mixed-predicate query — a warehouse *containing* a loading bay,
//! *north-east* of a depot, *within distance* of a rail terminal — and
//! solves it approximately with ILS; the same `find best value` traversal
//! prunes with each predicate's node-level possibility test.
//!
//! Run with: `cargo run --release --example extended_predicates`

use mwsj::datagen::DatasetSpec;
use mwsj::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(31);
    let cardinality = 5_000;

    // v0 warehouses (large), v1 loading bays (small), v2 depots, v3 rail
    // terminals. Densities chosen so matches are rare but present.
    let warehouses = DatasetSpec::uniform(cardinality, 0.5).generate(&mut rng);
    let bays = DatasetSpec::uniform(cardinality, 0.005).generate(&mut rng);
    let depots = DatasetSpec::uniform(cardinality, 0.01).generate(&mut rng);
    let terminals = DatasetSpec::uniform(cardinality, 0.01).generate(&mut rng);

    let graph = mwsj::query::QueryGraphBuilder::new(4)
        .edge_with(0, 1, Predicate::Contains) // warehouse contains bay
        .edge_with(0, 2, Predicate::NorthEast) // warehouse NE of depot
        .edge_with(0, 3, Predicate::WithinDistance(0.05)) // near a terminal
        .build()
        .expect("valid query");

    let instance =
        Instance::new(graph, vec![warehouses, bays, depots, terminals]).expect("valid instance");

    let outcome =
        Ils::new(IlsConfig::default()).run(&instance, &SearchBudget::seconds(1.0), &mut rng);

    println!(
        "best match: similarity {:.3} ({} of 3 conditions violated)",
        outcome.best_similarity, outcome.best_violations
    );
    let labels = ["warehouse", "loading bay", "depot", "rail terminal"];
    for (v, label) in labels.iter().enumerate() {
        println!(
            "  {label:>13}: object {:>5} at {}",
            outcome.best.get(v),
            instance.rect(v, outcome.best.get(v))
        );
    }

    // Cross-check the result predicate by predicate.
    let w = instance.rect(0, outcome.best.get(0));
    println!("\nchecks:");
    println!(
        "  contains bay:      {}",
        Predicate::Contains.eval(&w, &instance.rect(1, outcome.best.get(1)))
    );
    println!(
        "  NE of depot:       {}",
        Predicate::NorthEast.eval(&w, &instance.rect(2, outcome.best.get(2)))
    );
    println!(
        "  near rail terminal: {}",
        Predicate::WithinDistance(0.05).eval(&w, &instance.rect(3, outcome.best.get(3)))
    );
}
