//! Self-join on a VLSI-style layout: configurations within one image.
//!
//! The paper's Discussion notes the methods "can be applied for cases
//! where the image contains several types of objects and the query asks
//! for configurations of objects within the same image (i.e.,
//! self-joins)". This example indexes a single layout of 50,000 cells once
//! and aliases it under four query variables ([`Instance::self_join`]), so
//! rectangles and R*-tree are shared rather than copied.
//!
//! The query is a *staircase*: four cells, each strictly north-east of the
//! previous, with the last within distance 0.02 of the first — a pattern a
//! routing tool might look for. Directional predicates are irreflexive, so
//! unlike an overlap self-join the trivial "same cell n times" assignment
//! satisfies nothing.
//!
//! Run with: `cargo run --release --example vlsi_selfjoin`

use mwsj::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let cells = 50_000;
    let layout = Dataset::uniform(cells, 0.02, &mut rng);
    println!("layout: {cells} cells, density {:.3}", layout.density());

    // v1 ← v2 ← v3 ← v4 staircase (NE chain), closed by a proximity
    // constraint: the staircase must fit in a 0.02-radius neighbourhood.
    let graph = mwsj::query::QueryGraphBuilder::new(4)
        .edge_with(1, 0, Predicate::NorthEast)
        .edge_with(2, 1, Predicate::NorthEast)
        .edge_with(3, 2, Predicate::NorthEast)
        .edge_with(0, 3, Predicate::WithinDistance(0.02))
        .build()
        .expect("valid query");

    let instance = Instance::self_join(graph, layout).expect("valid instance");

    // GILS: single-seed guided search with penalty memory.
    let outcome =
        Gils::new(GilsConfig::default()).run(&instance, &SearchBudget::seconds(1.5), &mut rng);

    println!(
        "best staircase similarity {:.3} ({} violations) after {} maxima",
        outcome.best_similarity, outcome.best_violations, outcome.stats.local_maxima
    );
    let mut ids: Vec<usize> = outcome.best.as_slice().to_vec();
    ids.sort_unstable();
    ids.dedup();
    println!("distinct cells in the configuration: {} of 4", ids.len());
    for v in 0..4 {
        println!(
            "  step {} <- cell {:>6} at {}",
            v + 1,
            outcome.best.get(v),
            instance.rect(v, outcome.best.get(v))
        );
    }
}
