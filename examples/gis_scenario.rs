//! A GIS content-based-retrieval scenario with all three heuristics.
//!
//! Five thematic layers of a (synthetic) region — settlements, rivers,
//! roads, industrial zones, protected areas — are joined by a mixed query
//! graph: the paper's motivating scenario of layered spatial databases
//! ("an R-tree for the roads of California, another for residential
//! areas"). Settlements cluster around town centres (Gaussian blobs),
//! everything else is uniform. ILS, GILS and SEA race under the same
//! one-second budget; the example prints the per-algorithm similarity and
//! the winning configuration.
//!
//! Run with: `cargo run --release --example gis_scenario`

use mwsj::datagen::{DatasetSpec, Distribution};
use mwsj::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let cardinality = 20_000;
    let names = [
        "settlements",
        "rivers",
        "roads",
        "industrial zones",
        "protected areas",
    ];

    // Query: settlements ∩ rivers, rivers ∩ industrial, settlements ∩ roads,
    // roads ∩ industrial, industrial ∩ protected — a cycle with a chord.
    let graph = mwsj::query::QueryGraphBuilder::new(5)
        .edge(0, 1)
        .edge(1, 3)
        .edge(0, 2)
        .edge(2, 3)
        .edge(3, 4)
        .build()
        .expect("valid query");

    // Density in the hard region for this (cyclic) graph.
    let density = mwsj::datagen::hard_region_density_graph(&graph, cardinality, 1.0);
    println!(
        "query: 5 layers, {} join conditions, density {density:.4}",
        graph.edge_count()
    );

    let datasets: Vec<Dataset> = (0..5)
        .map(|layer| {
            let distribution = if layer == 0 {
                Distribution::Clustered {
                    clusters: 9,
                    sigma: 0.05,
                }
            } else {
                Distribution::Uniform
            };
            DatasetSpec {
                cardinality,
                density,
                distribution,
                constant_extent: false,
            }
            .generate(&mut rng)
        })
        .collect();

    let instance = Instance::new(graph, datasets).expect("valid instance");
    let budget = SearchBudget::seconds(1.0);

    let ils = Ils::new(IlsConfig::default()).run(&instance, &budget, &mut rng);
    let gils = Gils::new(GilsConfig::default()).run(&instance, &budget, &mut rng);
    let sea = Sea::new(SeaConfig::default_for(&instance)).run(&instance, &budget, &mut rng);

    println!("\n  algorithm  similarity  local maxima  node accesses");
    for (name, o) in [("ILS", &ils), ("GILS", &gils), ("SEA", &sea)] {
        println!(
            "  {name:>9}  {:>10.3}  {:>12}  {:>13}",
            o.best_similarity, o.stats.local_maxima, o.stats.node_accesses
        );
    }

    let best = [&ils, &gils, &sea]
        .into_iter()
        .max_by(|a, b| a.best_similarity.total_cmp(&b.best_similarity))
        .unwrap();
    println!(
        "\nbest configuration (similarity {:.3}):",
        best.best_similarity
    );
    for (v, name) in names.iter().enumerate() {
        println!(
            "  {name:>17}: object {:>6} at {}",
            best.best.get(v),
            instance.rect(v, best.best.get(v))
        );
    }
}
