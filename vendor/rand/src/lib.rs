//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the (small) subset of the `rand` API the workspace
//! uses: the [`Rng`] core trait, the [`RngExt`] sampling extension
//! ([`RngExt::random_range`], [`RngExt::random_bool`]), [`SeedableRng`],
//! and a deterministic [`rngs::StdRng`].
//!
//! [`rngs::StdRng`] is **not** the upstream ChaCha12 generator: it is
//! xoshiro256** seeded through SplitMix64. The workspace only relies on
//! seeded determinism (same seed → same stream, stable across platforms
//! and releases of this vendored crate), never on a specific stream, so
//! the substitution is observationally safe. Statistical quality is far
//! beyond what the spatial-join experiments need.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of randomness: the core trait every generator implements.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Sampling conveniences, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Samples a value uniformly from `range`.
    ///
    /// Supports half-open (`a..b`) and inclusive (`a..=b`) ranges over the
    /// primitive integer and float types.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed. The mapping from seed to
    /// stream is deterministic and platform-independent.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Maps 64 random bits to a `f64` uniform in `[0, 1)` (53-bit mantissa).
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range using `rng`.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + bounded_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + bounded_u64(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_signed_range!(isize as usize, i64 as u64, i32 as u32);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                let v = self.start + u * (self.end - self.start);
                // `u` < 1 but the product can still round up to `end` on
                // wide ranges; resample that measure-zero edge onto `start`.
                if v < self.end { v } else { self.start }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f64, f32);

/// Uniform integer in `[0, span)` by 128-bit widening multiply
/// (Lemire's multiply-shift; the tiny residual bias is irrelevant here).
#[inline]
fn bounded_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded via SplitMix64 (see the crate docs for why this differs from
    /// upstream `rand`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors:
            // guarantees a non-zero, well-mixed state for every seed.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    /// A small fast generator; alias of [`StdRng`] in this vendored crate.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn golden_stream_is_stable() {
        // Pins the exact stream: the workspace's reproducibility story
        // (seeds recorded in results CSVs) relies on this never changing.
        let mut rng = StdRng::seed_from_u64(0);
        let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                11091344671253066420,
                13793997310169335082,
                1900383378846508768,
                7684712102626143532
            ]
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.random_range(0..=5);
            assert!(w <= 5);
            let f: f64 = rng.random_range(-0.25..0.75);
            assert!((-0.25..0.75).contains(&f));
            let i: i64 = rng.random_range(-10..10);
            assert!((-10..10).contains(&i));
        }
    }

    #[test]
    fn ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.random_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all bucket values reachable");
    }

    #[test]
    fn random_bool_extremes_and_rate() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let _: usize = rng.random_range(5..5);
    }

    #[test]
    fn works_through_mut_references() {
        fn sample<R: Rng>(mut rng: R) -> u64 {
            rng.next_u64()
        }
        let mut rng = StdRng::seed_from_u64(9);
        let direct = sample(StdRng::seed_from_u64(9));
        assert_eq!(direct, sample(&mut rng));
    }
}
