//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the criterion API the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, [`Criterion::benchmark_group`],
//! [`Bencher::iter`]/[`Bencher::iter_batched`], [`BenchmarkId`],
//! [`BatchSize`]) as a plain wall-clock harness: each benchmark runs a
//! warm-up pass plus `sample_size` timed samples and prints
//! `bench: <id> ... mean <t> (min <t>, max <t>) x<samples>` to stdout.
//! There is no statistical analysis, plotting, or baseline comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver handed to each `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.sample_size, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `<group>/<id>`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `<group>/<id>`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (upstream API parity; nothing to flush here).
    pub fn finish(&mut self) {}
}

/// A benchmark identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// `function/parameter` identifier.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// How much setup output `iter_batched` pre-builds per timed batch.
/// This harness times one routine call per batch regardless, so the
/// variants only exist for API parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output; upstream would batch many per allocation.
    SmallInput,
    /// Large setup output; upstream would batch few per allocation.
    LargeInput,
    /// Setup output per iteration.
    PerIteration,
}

/// Times the closure handed to it; one `Bencher` per sample.
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }

    /// Times `routine` on fresh values built by `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, samples: usize, f: &mut F) {
    // Warm-up pass (untimed in the report).
    let mut warm = Bencher {
        elapsed: Duration::ZERO,
        iterations: 0,
    };
    f(&mut warm);

    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut b);
        if b.iterations > 0 {
            times.push(b.elapsed / b.iterations as u32);
        }
    }
    if times.is_empty() {
        println!("bench: {id} ... no iterations recorded");
        return;
    }
    let total: Duration = times.iter().sum();
    let mean = total / times.len() as u32;
    let min = *times.iter().min().expect("non-empty");
    let max = *times.iter().max().expect("non-empty");
    println!(
        "bench: {id} ... mean {mean:?} (min {min:?}, max {max:?}) x{}",
        times.len()
    );
}

/// Declares a benchmark group runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_time() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        // warm-up + 3 samples
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("ils", 500).to_string(), "ils/500");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }

    #[test]
    fn iter_batched_consumes_setup_output() {
        let mut c = Criterion::default();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::LargeInput)
        });
    }
}
