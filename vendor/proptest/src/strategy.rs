//! Value-generation strategies (no shrinking; see the crate docs).

use crate::test_runner::TestRng;
use rand::RngExt;
use std::ops::{Range, RangeInclusive};

/// Generates values of an associated type from the test RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `f` by resampling (bounded; the
    /// case fails if the predicate is too restrictive).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1000 consecutive samples",
            self.whence
        );
    }
}

/// Uniform choice among boxed strategies ([`crate::prop_oneof!`]).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds the union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.random_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, f64, f32);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_map_union() {
        let mut rng = TestRng::for_test("strategy::unit");
        let s = (0usize..10, 0.0f64..1.0).prop_map(|(a, b)| a as f64 + b);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((0.0..10.0).contains(&v));
        }
        let u = crate::prop_oneof![Just(1u32), Just(2u32), 5u32..7];
        for _ in 0..100 {
            assert!(matches!(u.sample(&mut rng), 1 | 2 | 5 | 6));
        }
    }

    #[test]
    fn filter_resamples() {
        let mut rng = TestRng::for_test("strategy::filter");
        let s = (0usize..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..50 {
            assert_eq!(s.sample(&mut rng) % 2, 0);
        }
    }
}
