//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngExt;
use std::ops::{Range, RangeInclusive};

/// An inclusive bound on generated collection sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

/// Generates `Vec`s whose length lies in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_bounds() {
        let mut rng = TestRng::for_test("collection::vec");
        let s = vec(0usize..5, 2..6);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..=5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
