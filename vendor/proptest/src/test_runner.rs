//! Test configuration, RNG, and case-level error type.

use std::fmt;

/// Per-test configuration. Only the fields the workspace uses exist.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The configured case count, overridable via `PROPTEST_CASES`.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

/// The deterministic RNG driving strategies: seeded from the fully
/// qualified test name so every run samples the same cases.
#[derive(Debug, Clone)]
pub struct TestRng(rand::rngs::StdRng);

impl TestRng {
    /// Builds the RNG for the named test.
    pub fn for_test(test_path: &str) -> Self {
        use rand::SeedableRng;
        // FNV-1a over the test path: stable, well-spread seeds.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(rand::rngs::StdRng::seed_from_u64(hash))
    }
}

impl rand::Rng for TestRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property did not hold.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("x::z");
        let _ = c.next_u64(); // different name → (almost surely) different stream
    }
}
