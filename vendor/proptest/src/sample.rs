//! Sampling helpers (`prop::sample::Index`).

/// An index into a collection whose length is unknown at generation time:
/// carries raw entropy that [`Index::index`] scales onto `0..len`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Wraps raw entropy bits.
    pub(crate) fn from_raw(raw: u64) -> Self {
        Index(raw)
    }

    /// Maps the stored entropy onto `0..len`.
    ///
    /// # Panics
    /// Panics if `len == 0`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        ((self.0 as u128 * len as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_in_bounds_and_spread() {
        let idx = Index::from_raw(u64::MAX);
        assert_eq!(idx.index(10), 9);
        assert_eq!(Index::from_raw(0).index(10), 0);
        assert_eq!(Index::from_raw(u64::MAX / 2 + 1).index(2), 1);
    }

    #[test]
    #[should_panic(expected = "empty collection")]
    fn empty_len_panics() {
        Index::from_raw(7).index(0);
    }
}
