//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::{Rng, RngExt};
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Samples one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (`any::<u64>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.random_bool(0.5)
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        crate::sample::Index::from_raw(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u64_covers_high_bits() {
        let mut rng = TestRng::for_test("arbitrary::bits");
        let s = any::<u64>();
        assert!((0..100).any(|_| s.sample(&mut rng) > u64::MAX / 2));
    }
}
