//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of the proptest API the workspace's property tests
//! use: the [`proptest!`] macro, [`Strategy`](strategy::Strategy) with
//! `prop_map`, range/tuple/`Just`/`prop_oneof!` strategies,
//! `prop::collection::vec`, `prop::sample::Index`, `any::<T>()`, and the
//! `prop_assert!`/`prop_assert_eq!` assertion forms.
//!
//! Differences from upstream, chosen for an offline, deterministic build:
//!
//! * **No shrinking.** A failing case reports its case number and the
//!   test's RNG seed instead of a minimised input.
//! * **Deterministic by construction.** Each test function derives its RNG
//!   seed from its fully qualified name (FNV-1a), so failures reproduce
//!   exactly across runs and machines. Set `PROPTEST_CASES` to override
//!   the number of cases globally.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror of upstream's `prop::` path (`prop::collection::vec`,
/// `prop::sample::Index`).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]`-able function running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let cases = config.effective_cases();
                let test_path = concat!(module_path!(), "::", stringify!($name));
                let mut rng = $crate::test_runner::TestRng::for_test(test_path);
                for case in 0..cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {test_path} failed at case {}/{cases}: {e}\n\
                             (deterministic; rerun this test to reproduce)",
                            case + 1,
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
