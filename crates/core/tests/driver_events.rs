//! Event-stream contract of the [`mwsj_core`] search driver: every
//! top-level run emits exactly one `run_end`, every driver-run emits at
//! most one stop-reason event, and portfolio restarts — including
//! zero-step ones when `K` exceeds the step budget — always emit their
//! `restart_start`/`restart_end` pair.

use mwsj_core::{
    Gils, Ibb, IbbConfig, Ils, IlsConfig, Instance, NaiveGa, NaiveGaConfig, NaiveLocalSearch,
    ObsHandle, ParallelPortfolio, PortfolioConfig, RunEvent, SaConfig, Sea, SeaConfig,
    SearchBudget, SearchContext, SimulatedAnnealing, TwoStep, TwoStepConfig, VecSink,
};
use mwsj_datagen::{hard_region_density, Dataset, QueryShape};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Hard-region instance with no planted solution, so heuristics run to
/// budget exhaustion instead of stopping on an exact solution.
fn hard_instance(seed: u64, n: usize, cardinality: usize) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let shape = QueryShape::Chain;
    let d = hard_region_density(shape, n, cardinality, 1.0);
    let datasets: Vec<Dataset> = (0..n)
        .map(|_| Dataset::uniform(cardinality, d, &mut rng))
        .collect();
    Instance::new(shape.graph(n), datasets).unwrap()
}

fn sinked_obs() -> (Arc<VecSink>, ObsHandle) {
    let sink = Arc::new(VecSink::new());
    let obs = ObsHandle::enabled().with_sink(sink.clone());
    (sink, obs)
}

fn count_run_ends(events: &[RunEvent]) -> usize {
    events
        .iter()
        .filter(|e| matches!(e, RunEvent::RunEnd { .. }))
        .count()
}

fn count_stop_reasons(events: &[RunEvent]) -> usize {
    events
        .iter()
        .filter(|e| {
            matches!(
                e,
                RunEvent::BudgetExhausted { .. } | RunEvent::CutoffFired { .. }
            )
        })
        .count()
}

#[test]
fn every_standalone_algorithm_emits_one_run_end_and_at_most_one_stop_reason() {
    let inst = hard_instance(301, 4, 150);
    let budget = SearchBudget::iterations(120);
    type AlgoRun<'a> = Box<dyn Fn(&SearchContext, &mut StdRng) + 'a>;
    let algos: Vec<(&str, AlgoRun)> = vec![
        (
            "ILS",
            Box::new(|ctx: &SearchContext, rng: &mut StdRng| {
                let _ = Ils::new(IlsConfig::default()).search(&inst, ctx, rng);
            }),
        ),
        (
            "GILS",
            Box::new(|ctx, rng| {
                let _ = Gils::default().search(&inst, ctx, rng);
            }),
        ),
        (
            "SEA",
            Box::new(|ctx, rng| {
                let _ = Sea::new(SeaConfig::default_for(&inst)).search(&inst, ctx, rng);
            }),
        ),
        (
            "naive-LS",
            Box::new(|ctx, rng| {
                let _ = NaiveLocalSearch::default().search(&inst, ctx, rng);
            }),
        ),
        (
            "naive-GA",
            Box::new(|ctx, rng| {
                let _ = NaiveGa::new(NaiveGaConfig::default()).search(&inst, ctx, rng);
            }),
        ),
        (
            "SA",
            Box::new(|ctx, rng| {
                let _ = SimulatedAnnealing::new(SaConfig::default()).search(&inst, ctx, rng);
            }),
        ),
    ];
    for (name, run) in &algos {
        let (sink, obs) = sinked_obs();
        let ctx = SearchContext::local(budget).with_obs(obs);
        let mut rng = StdRng::seed_from_u64(302);
        run(&ctx, &mut rng);
        let events = sink.events();
        assert_eq!(count_run_ends(&events), 1, "{name}: exactly one run_end");
        assert!(
            count_stop_reasons(&events) <= 1,
            "{name}: at most one stop-reason event"
        );
    }
}

#[test]
fn nested_runs_leave_run_end_to_the_composite() {
    let inst = hard_instance(303, 4, 150);
    let (sink, obs) = sinked_obs();
    let ctx = SearchContext::local(SearchBudget::iterations(80))
        .with_obs(obs)
        .nested();
    let mut rng = StdRng::seed_from_u64(304);
    let _ = Ils::default().search(&inst, &ctx, &mut rng);
    assert_eq!(
        count_run_ends(&sink.events()),
        0,
        "nested run must not emit run_end"
    );
}

#[test]
fn ibb_emits_one_run_end() {
    let inst = hard_instance(305, 3, 60);
    let (sink, obs) = sinked_obs();
    let _ = Ibb::new(IbbConfig::new()).run_with_obs(&inst, &SearchBudget::iterations(50), &obs);
    let events = sink.events();
    assert_eq!(count_run_ends(&events), 1, "IBB: exactly one run_end");
    assert!(count_stop_reasons(&events) <= 1);
}

#[test]
fn two_step_emits_one_combined_run_end() {
    let inst = hard_instance(306, 4, 150);
    let (sink, obs) = sinked_obs();
    let mut rng = StdRng::seed_from_u64(307);
    let two = TwoStep::new(TwoStepConfig::Ils(
        IlsConfig::default(),
        SearchBudget::iterations(100),
    ));
    let outcome = two.run_with_obs(&inst, &SearchBudget::iterations(200), &mut rng, &obs);
    let events = sink.events();
    assert_eq!(
        count_run_ends(&events),
        1,
        "two-step pipeline: one combined run_end"
    );
    // Each stage is one driver-run, so at most one stop reason per stage.
    let stages = 1 + usize::from(outcome.ran_systematic());
    assert!(count_stop_reasons(&events) <= stages);
    // The combined event carries the counters summed across both stages.
    let total = outcome.total_stats();
    let end = events
        .iter()
        .find(|e| matches!(e, RunEvent::RunEnd { .. }))
        .unwrap();
    if let RunEvent::RunEnd {
        steps,
        node_accesses,
        ..
    } = end
    {
        assert_eq!(*steps, total.steps);
        assert_eq!(*node_accesses, total.node_accesses);
    }
}

#[test]
fn portfolio_with_more_restarts_than_steps_emits_all_restart_pairs() {
    // K = 5 restarts sharing a 3-step budget: `SearchBudget::split` hands
    // the last two restarts zero steps. They must still run, emit their
    // `restart_start`/`restart_end` pair, and merge cleanly.
    let inst = hard_instance(308, 4, 120);
    let (sink, obs) = sinked_obs();
    let portfolio = ParallelPortfolio::new(Ils::default(), PortfolioConfig::new(5, 1));
    let outcome = portfolio.run_with_obs(&inst, &SearchBudget::iterations(3), 309, &obs);

    let events = sink.events();
    let starts: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            RunEvent::RestartStart { restart, .. } => Some(*restart),
            _ => None,
        })
        .collect();
    let ends: Vec<(u64, u64)> = events
        .iter()
        .filter_map(|e| match e {
            RunEvent::RestartEnd { restart, steps, .. } => Some((*restart, *steps)),
            _ => None,
        })
        .collect();
    assert_eq!(starts.len(), 5, "every restart emits restart_start");
    assert_eq!(ends.len(), 5, "every restart emits restart_end");
    for i in 0..5u64 {
        assert!(starts.contains(&i), "restart_start for restart {i}");
    }
    let zero_step = ends.iter().filter(|(_, steps)| *steps == 0).count();
    assert_eq!(zero_step, 2, "split(3, 5) leaves two zero-step restarts");
    assert_eq!(
        ends.iter().map(|(_, steps)| steps).sum::<u64>(),
        3,
        "restart steps sum to the total budget"
    );

    // One merged run_end for the whole portfolio, none per restart.
    assert_eq!(count_run_ends(&events), 1);
    assert_eq!(outcome.merged.stats.steps, 3);
    assert_eq!(outcome.restarts.len(), 5);
    // Zero-step restarts still produce a (random fallback) outcome.
    assert!(outcome
        .restarts
        .iter()
        .all(|r| r.outcome.best.len() == inst.n_vars()));
}
