//! Cross-backend equivalence and determinism tests.
//!
//! The uniform-grid backend must be observationally indistinguishable from
//! the R*-tree backend everywhere results (rather than access counters)
//! are concerned: `find_best_value` scores bit-equal with and without
//! penalties, exact joins return identical solution sets, and the anytime
//! heuristics reach the same quality on pinned planted workloads. On top
//! of that the grid's intra-query parallelism must be invisible: 1 thread
//! and 4 threads produce bit-identical results *and* counters.
//!
//! The generated datasets deliberately include duplicate-coordinate
//! rectangles, a large boundary-straddling rectangle (replicated into
//! every grid cell), and a degenerate point rectangle pinned to the grid
//! centre (landing exactly on cell boundaries), so the replication +
//! reference-point-dedup machinery is exercised, not just the happy path.

use mwsj_core::{
    find_best_value, BackendKind, Gils, GilsConfig, Ils, IlsConfig, Instance, Pjm, SearchBudget,
    SynchronousTraversal, WindowReduction,
};
use mwsj_datagen::{Distribution, QueryShape, WorkloadSpec};
use mwsj_geom::Rect;
use mwsj_query::{PenaltyTable, QueryGraph, Solution};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Clones an instance onto the grid backend with the given thread count.
/// The clone shares the datasets (and their R*-trees) with the original,
/// mirroring how the CLI and the bench A/B records switch backends.
fn grid_clone(inst: &Instance, threads: usize) -> Instance {
    inst.clone()
        .with_backend(BackendKind::Grid)
        .with_grid_threads(threads)
}

/// An arbitrary instance big enough that the uniform grid has several
/// cells (cardinality ≥ 24 ⇒ at least a 2×2 grid at the default target
/// occupancy of 16), with adversarial rects mixed in:
///
/// * objects 0 and 1 share identical coordinates (duplicate rects),
/// * object 2 spans nearly the whole space (straddles every cell
///   boundary, so it is replicated into every cell),
/// * object 3 is a degenerate point at (0.5, 0.5) — in a 2×2 grid over
///   this data that lands exactly on the shared cell corner.
fn arb_backend_instance() -> impl Strategy<Value = (Instance, u64)> {
    (3usize..=4, 24usize..=40, 0.0f64..=1.0, any::<u64>()).prop_map(
        |(n, cardinality, extra_edges, seed)| {
            let mut rng = StdRng::seed_from_u64(seed);
            let graph = QueryGraph::random_connected(n, extra_edges, &mut rng);
            let datasets: Vec<Vec<Rect>> = (0..n)
                .map(|_| {
                    let mut rects: Vec<Rect> = (0..cardinality)
                        .map(|_| {
                            use rand::RngExt;
                            let x: f64 = rng.random_range(0.0..1.0);
                            let y: f64 = rng.random_range(0.0..1.0);
                            let w: f64 = rng.random_range(0.0..0.12);
                            let h: f64 = rng.random_range(0.0..0.12);
                            Rect::new(x, y, (x + w).min(1.0), (y + h).min(1.0))
                        })
                        .collect();
                    rects[1] = rects[0];
                    rects[2] = Rect::new(0.02, 0.02, 0.98, 0.98);
                    rects[3] = Rect::new(0.5, 0.5, 0.5, 0.5);
                    rects
                })
                .collect();
            (Instance::new(graph, datasets).unwrap(), seed)
        },
    )
}

/// Sorts an exact join's solution list for order-insensitive comparison
/// (the two backends enumerate in different — but each deterministic —
/// orders).
fn sorted(solutions: &[Solution]) -> Vec<Vec<usize>> {
    let mut v: Vec<Vec<usize>> = solutions.iter().map(|s| s.as_slice().to_vec()).collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `find_best_value` is backend-invariant: for every variable, with
    /// and without penalties, the grid backend (at 1 and at 4 threads)
    /// returns the same feasibility verdict and a bit-equal best score as
    /// the R*-tree backend. The winning *object* may differ only when the
    /// score ties (R*-tree keeps the first visited, the grid keeps the
    /// canonical (cell, slot) minimum), so objects are not compared here.
    #[test]
    fn find_best_value_is_backend_invariant((inst, seed) in arb_backend_instance()) {
        use rand::RngExt;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xB0E);
        let mut table = PenaltyTable::new();
        for _ in 0..30 {
            let var = rng.random_range(0..inst.n_vars());
            table.penalize(var, rng.random_range(0..inst.cardinality(var)));
        }
        let sol = inst.random_solution(&mut rng);
        for threads in [1usize, 4] {
            let grid = grid_clone(&inst, threads);
            for var in 0..inst.n_vars() {
                // λ = 0.25 is a binary fraction: scores stay exact in f64.
                for penalties in [None, Some((&table, 0.25))] {
                    let mut acc_r = 0u64;
                    let mut acc_g = 0u64;
                    let r = find_best_value(&inst, &sol, var, penalties, &mut acc_r);
                    let g = find_best_value(&grid, &sol, var, penalties, &mut acc_g);
                    match (r, g) {
                        (None, None) => {}
                        (Some(r), Some(g)) => {
                            prop_assert_eq!(
                                r.effective, g.effective,
                                "var {} threads {}: score mismatch", var, threads
                            );
                            if penalties.is_none() {
                                // Unpenalised, the score *is* the count.
                                prop_assert_eq!(r.satisfied, g.satisfied);
                            }
                        }
                        (r, g) => prop_assert!(false, "rtree {:?} vs grid {:?}", r, g),
                    }
                }
            }
        }
    }

    /// WR, ST and PJM return identical solution *sets* on both backends,
    /// and on the grid backend 1 thread vs 4 threads is bit-identical:
    /// same solutions in the same order, same node-access counters.
    #[test]
    fn exact_joins_are_backend_invariant((inst, _) in arb_backend_instance()) {
        let budget = SearchBudget::seconds(120.0);
        let grid1 = grid_clone(&inst, 1);
        let grid4 = grid_clone(&inst, 4);

        type JoinFn = fn(&Instance, &SearchBudget) -> mwsj_core::ExactJoinOutcome;
        let runs: [(&str, JoinFn); 3] = [
            ("wr", |i, b| WindowReduction::new().run(i, b, usize::MAX)),
            ("st", |i, b| SynchronousTraversal::new().run(i, b, usize::MAX)),
            ("pjm", |i, b| Pjm::default().run(i, b, usize::MAX)),
        ];
        for (name, run) in runs {
            let r = run(&inst, &budget);
            let g1 = run(&grid1, &budget);
            let g4 = run(&grid4, &budget);
            prop_assert!(r.complete && g1.complete && g4.complete, "{name} truncated");
            prop_assert_eq!(
                sorted(&r.solutions), sorted(&g1.solutions),
                "{} solution sets differ between backends", name
            );
            // Thread-count invariance is *bit*-identical: order and
            // counters included, per the determinism contract.
            prop_assert_eq!(
                &g1.solutions, &g4.solutions,
                "{} grid solutions differ across thread counts", name
            );
            prop_assert_eq!(
                g1.stats.node_accesses, g4.stats.node_accesses,
                "{} grid node accesses differ across thread counts", name
            );
            prop_assert_eq!(g1.stats.steps, g4.stats.steps);
        }
    }
}

/// On pinned planted workloads both backends drive ILS and GILS to the
/// same quality: equal violation counts and bit-equal similarity. (The
/// search trajectories may differ on score ties, so solutions themselves
/// are not compared — quality is the contract, and on these planted
/// instances both backends reach the exact optimum.)
#[test]
fn heuristics_reach_equal_quality_on_both_backends() {
    let cases = [
        (QueryShape::Chain, 4, 600, 7u64),
        (QueryShape::Clique, 4, 400, 11u64),
    ];
    for (shape, n_vars, cardinality, seed) in cases {
        let w = WorkloadSpec {
            shape,
            n_vars,
            cardinality,
            target_solutions: 1.0,
            plant: true,
            distribution: Distribution::Uniform,
            seed,
        }
        .generate();
        let inst = Instance::new(w.graph, w.datasets).unwrap();
        let grid = grid_clone(&inst, 2);
        let budget = SearchBudget::iterations(3_000);

        let ils_r =
            Ils::new(IlsConfig::default()).run(&inst, &budget, &mut StdRng::seed_from_u64(seed));
        let ils_g =
            Ils::new(IlsConfig::default()).run(&grid, &budget, &mut StdRng::seed_from_u64(seed));
        assert_eq!(
            ils_r.best_violations, ils_g.best_violations,
            "ILS {shape:?}"
        );
        assert_eq!(
            ils_r.best_similarity, ils_g.best_similarity,
            "ILS {shape:?}"
        );

        let gils_r = Gils::new(GilsConfig::default()).run(
            &inst,
            &budget,
            &mut StdRng::seed_from_u64(seed ^ 1),
        );
        let gils_g = Gils::new(GilsConfig::default()).run(
            &grid,
            &budget,
            &mut StdRng::seed_from_u64(seed ^ 1),
        );
        assert_eq!(
            gils_r.best_violations, gils_g.best_violations,
            "GILS {shape:?}"
        );
        assert_eq!(
            gils_r.best_similarity, gils_g.best_similarity,
            "GILS {shape:?}"
        );
    }
}

/// A grid-backend heuristic run is bit-identical across thread counts:
/// same best solution, same counters. The parallel fan-out inside the
/// grid kernels merges deterministically, so the thread count must be
/// unobservable end to end.
#[test]
fn grid_solve_is_thread_count_invariant() {
    let w = WorkloadSpec {
        shape: QueryShape::Chain,
        n_vars: 5,
        cardinality: 500,
        target_solutions: 1.0,
        plant: true,
        distribution: Distribution::ZipfClustered {
            clusters: 8,
            sigma: 0.02,
            exponent: 1.1,
        },
        seed: 42,
    }
    .generate();
    let inst = Instance::new(w.graph, w.datasets).unwrap();
    let budget = SearchBudget::iterations(2_000);
    let g1 = Ils::new(IlsConfig::default()).run(
        &grid_clone(&inst, 1),
        &budget,
        &mut StdRng::seed_from_u64(9),
    );
    let g4 = Ils::new(IlsConfig::default()).run(
        &grid_clone(&inst, 4),
        &budget,
        &mut StdRng::seed_from_u64(9),
    );
    assert_eq!(g1.best.as_slice(), g4.best.as_slice());
    assert_eq!(g1.best_violations, g4.best_violations);
    assert_eq!(g1.best_similarity, g4.best_similarity);
    assert_eq!(g1.stats.steps, g4.stats.steps);
    assert_eq!(g1.stats.node_accesses, g4.stats.node_accesses);
    assert_eq!(g1.stats.restarts, g4.stats.restarts);
    assert_eq!(g1.stats.improvements, g4.stats.improvements);
}
