//! Live-telemetry contract of the search driver: `progress` heartbeats
//! follow a step-indexed cadence (deterministic counter fields, monotone
//! steps), the stall watchdog detects no-improvement windows and — with
//! `stall_abort` — stops the run through the cutoff machinery with the
//! distinct `stall_aborted` stop reason, GILS surfaces its stagnation
//! reseed as an event, and none of it perturbs search counters.

use mwsj_core::{
    Gils, GilsConfig, Ils, IlsConfig, Instance, ObsHandle, RunEvent, RunOutcome, SearchBudget,
    SearchContext, TelemetryConfig, VecSink,
};
use mwsj_datagen::{hard_region_density, Dataset, QueryShape};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Hard-region instance with no planted solution, so heuristics run to
/// budget exhaustion instead of stopping on an exact solution.
fn hard_instance(seed: u64, n: usize, cardinality: usize) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let shape = QueryShape::Chain;
    let d = hard_region_density(shape, n, cardinality, 1.0);
    let datasets: Vec<Dataset> = (0..n)
        .map(|_| Dataset::uniform(cardinality, d, &mut rng))
        .collect();
    Instance::new(shape.graph(n), datasets).unwrap()
}

fn sinked_obs() -> (Arc<VecSink>, ObsHandle) {
    let sink = Arc::new(VecSink::new());
    let obs = ObsHandle::enabled().with_sink(sink.clone());
    (sink, obs)
}

/// A GILS that is structurally glued to its first local maximum: λ = 0
/// makes punishment weightless (no downhill moves ever) and
/// `stagnation_reseed: 0` disables the reseed safeguard — a deterministic
/// no-improvement run for exercising the stall watchdog.
fn glued_gils() -> Gils {
    Gils::new(GilsConfig {
        lambda: Some(0.0),
        stagnation_reseed: 0,
    })
}

fn run_ils(inst: &Instance, budget: u64, seed: u64, ctx: SearchContext) -> RunOutcome {
    let _ = budget;
    let mut rng = StdRng::seed_from_u64(seed);
    Ils::new(IlsConfig::default()).search(inst, &ctx, &mut rng)
}

#[test]
fn progress_events_follow_step_indexed_cadence() {
    let inst = hard_instance(901, 4, 150);
    let (sink, obs) = sinked_obs();
    let telemetry = TelemetryConfig {
        progress_every: Some(50),
        ..TelemetryConfig::default()
    };
    let ctx = SearchContext::local(SearchBudget::iterations(500))
        .with_obs(obs)
        .with_telemetry(telemetry);
    let outcome = run_ils(&inst, 500, 902, ctx);
    assert_eq!(outcome.stats.steps, 500);

    let mut last_step = 0;
    let mut last_accesses = 0;
    let mut count = 0;
    for event in sink.events() {
        if let RunEvent::Progress {
            restart,
            step,
            node_accesses,
            resident_bytes,
            best_similarity,
            ..
        } = event
        {
            count += 1;
            assert_eq!(restart, None, "standalone run is untagged");
            assert_eq!(step % 50, 0, "cadence is step-indexed");
            assert!(step > last_step, "heartbeat steps strictly increase");
            assert!(
                node_accesses >= last_accesses,
                "cumulative counters never decrease"
            );
            assert!(
                resident_bytes > 0,
                "instance index structures have nonzero footprint"
            );
            if let Some(sim) = best_similarity {
                assert!((0.0..=1.0).contains(&sim));
            }
            last_step = step;
            last_accesses = node_accesses;
        }
    }
    assert_eq!(count, 500 / 50, "one heartbeat per cadence slot");
}

#[test]
fn progress_requires_a_sink() {
    // Without a sink the watch state must not arm progress (it could not
    // emit anywhere); the run works normally.
    let inst = hard_instance(903, 4, 120);
    let telemetry = TelemetryConfig {
        progress_every: Some(10),
        ..TelemetryConfig::default()
    };
    let ctx = SearchContext::local(SearchBudget::iterations(100)).with_telemetry(telemetry);
    let outcome = run_ils(&inst, 100, 904, ctx);
    assert!(outcome.stats.steps > 0 && outcome.stats.steps <= 100);
}

#[test]
fn progress_emission_never_perturbs_search_counters() {
    let inst = hard_instance(905, 4, 200);
    let budget = SearchBudget::iterations(400);

    let plain = {
        let ctx = SearchContext::local(budget);
        run_ils(&inst, 400, 906, ctx)
    };
    let telemetered = {
        let (_sink, obs) = sinked_obs();
        let telemetry = TelemetryConfig {
            progress_every: Some(7),
            stall_window_steps: Some(50),
            ..TelemetryConfig::default()
        };
        let ctx = SearchContext::local(budget)
            .with_obs(obs)
            .with_telemetry(telemetry);
        run_ils(&inst, 400, 906, ctx)
    };

    assert_eq!(plain.best, telemetered.best);
    assert_eq!(plain.best_violations, telemetered.best_violations);
    assert_eq!(plain.stats.steps, telemetered.stats.steps);
    assert_eq!(plain.stats.restarts, telemetered.stats.restarts);
    assert_eq!(plain.stats.local_maxima, telemetered.stats.local_maxima);
    assert_eq!(plain.stats.node_accesses, telemetered.stats.node_accesses);
    assert_eq!(plain.stats.improvements, telemetered.stats.improvements);
    assert_eq!(plain.stats.cache, telemetered.stats.cache);
    let key = |o: &RunOutcome| -> Vec<(u64, u64)> {
        o.trace
            .iter()
            .map(|p| (p.step, p.similarity.to_bits()))
            .collect()
    };
    assert_eq!(key(&plain), key(&telemetered));
}

#[test]
fn stalled_run_emits_one_stall_detected_per_episode() {
    let inst = hard_instance(907, 4, 150);
    let (sink, obs) = sinked_obs();
    let telemetry = TelemetryConfig {
        stall_window_steps: Some(100),
        ..TelemetryConfig::default()
    };
    let ctx = SearchContext::local(SearchBudget::iterations(600))
        .with_obs(obs)
        .with_telemetry(telemetry);
    let mut rng = StdRng::seed_from_u64(908);
    let outcome = glued_gils().search(&inst, &ctx, &mut rng);
    assert_eq!(outcome.stats.steps, 600, "detection alone must not stop it");

    let events = sink.events();
    let stalls: Vec<(u64, u64)> = events
        .iter()
        .filter_map(|e| match e {
            RunEvent::StallDetected {
                step,
                steps_since_improvement,
                ..
            } => Some((*step, *steps_since_improvement)),
            _ => None,
        })
        .collect();
    assert_eq!(
        stalls.len(),
        1,
        "glued GILS never improves again: exactly one stall episode"
    );
    assert!(stalls[0].1 >= 100, "the window was actually exceeded");
    assert!(
        events
            .iter()
            .any(|e| matches!(e, RunEvent::BudgetExhausted { .. })),
        "without stall_abort the budget is the stop reason"
    );
    assert!(
        !events
            .iter()
            .any(|e| matches!(e, RunEvent::StallAborted { .. })),
        "no abort was requested"
    );
}

#[test]
fn stall_abort_stops_the_run_with_a_distinct_stop_reason() {
    let inst = hard_instance(907, 4, 150);
    let (sink, obs) = sinked_obs();
    let telemetry = TelemetryConfig {
        stall_window_steps: Some(100),
        stall_abort: true,
        ..TelemetryConfig::default()
    };
    let ctx = SearchContext::local(SearchBudget::iterations(100_000))
        .with_obs(obs)
        .with_telemetry(telemetry);
    let mut rng = StdRng::seed_from_u64(908);
    let outcome = glued_gils().search(&inst, &ctx, &mut rng);
    assert!(
        outcome.stats.steps < 100_000,
        "the watchdog must stop a hopeless run long before the budget"
    );
    assert_eq!(inst.violations(&outcome.best), outcome.best_violations);

    let events = sink.events();
    let aborts = events
        .iter()
        .filter(|e| matches!(e, RunEvent::StallAborted { .. }))
        .count();
    assert_eq!(aborts, 1, "exactly one stall_aborted stop reason");
    assert!(
        !events
            .iter()
            .any(|e| matches!(e, RunEvent::BudgetExhausted { .. })),
        "stall_aborted replaces budget_exhausted"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, RunEvent::StallDetected { .. })),
        "the abort is preceded by its detection event"
    );
    assert_eq!(
        events
            .iter()
            .filter(|e| matches!(e, RunEvent::RunEnd { .. }))
            .count(),
        1,
        "an aborted run still finishes cleanly with one run_end"
    );
}

#[test]
fn stall_abort_works_without_a_sink() {
    let inst = hard_instance(909, 4, 150);
    let telemetry = TelemetryConfig {
        stall_window_steps: Some(100),
        stall_abort: true,
        ..TelemetryConfig::default()
    };
    let ctx = SearchContext::local(SearchBudget::iterations(100_000)).with_telemetry(telemetry);
    let mut rng = StdRng::seed_from_u64(910);
    let outcome = glued_gils().search(&inst, &ctx, &mut rng);
    assert!(
        outcome.stats.steps < 100_000,
        "robustness does not depend on anyone listening"
    );
}

#[test]
fn gils_stagnation_reseed_is_surfaced_as_an_event() {
    let inst = hard_instance(911, 4, 150);
    let (sink, obs) = sinked_obs();
    let ctx = SearchContext::local(SearchBudget::iterations(2_000)).with_obs(obs);
    let mut rng = StdRng::seed_from_u64(912);
    // λ = 0 stagnates immediately; a tiny reseed threshold fires often.
    let gils = Gils::new(GilsConfig {
        lambda: Some(0.0),
        stagnation_reseed: 3,
    });
    let outcome = gils.search(&inst, &ctx, &mut rng);

    let reseeds: Vec<u64> = sink
        .events()
        .iter()
        .filter_map(|e| match e {
            RunEvent::StagnationReseed { rounds, .. } => Some(*rounds),
            _ => None,
        })
        .collect();
    assert!(
        !reseeds.is_empty(),
        "a stagnating GILS must surface its reseeds"
    );
    assert!(
        reseeds.iter().all(|&r| r >= 3),
        "each firing reports at least the configured round threshold"
    );
    assert!(
        outcome.stats.restarts as usize > reseeds.len(),
        "the initial seed plus degenerate reseeds outnumber stagnation firings"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Progress heartbeats are monotone in steps, hit exactly the
    /// step-indexed cadence slots, and their cumulative counter fields
    /// never decrease — for arbitrary budgets and cadences.
    #[test]
    fn progress_is_monotone_and_cadence_exact(
        budget in 20u64..300,
        every in 1u64..40,
        seed in 0u64..1_000,
    ) {
        let inst = hard_instance(913, 3, 80);
        let (sink, obs) = sinked_obs();
        let telemetry = TelemetryConfig {
            progress_every: Some(every),
            ..TelemetryConfig::default()
        };
        let ctx = SearchContext::local(SearchBudget::iterations(budget))
            .with_obs(obs)
            .with_telemetry(telemetry);
        let outcome = run_ils(&inst, budget, seed, ctx);
        prop_assert_eq!(outcome.stats.steps, budget);

        let steps: Vec<u64> = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                RunEvent::Progress { step, .. } => Some(*step),
                _ => None,
            })
            .collect();
        prop_assert_eq!(steps.len() as u64, budget / every);
        for window in steps.windows(2) {
            prop_assert!(window[0] < window[1], "strictly increasing steps");
        }
        for (i, step) in steps.iter().enumerate() {
            prop_assert_eq!(*step, (i as u64 + 1) * every, "exact cadence slots");
        }
    }
}
