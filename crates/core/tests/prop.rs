//! Property-based tests for the core algorithms: every data structure and
//! search primitive is validated against brute force on arbitrary random
//! instances.

use mwsj_core::{
    find_best_value, Gils, GilsConfig, Ibb, IbbConfig, Ils, IlsConfig, Instance, LeafLayout,
    ParallelPortfolio, Pjm, PortfolioConfig, RunOutcome, Sea, SeaConfig, SearchBudget,
    SynchronousTraversal, WindowCache, WindowReduction,
};
use mwsj_geom::Rect;
use mwsj_query::{PenaltyTable, QueryGraph, Solution};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An arbitrary small instance: 3–4 variables, 5–12 objects each, random
/// connected overlap query (kept tiny so the brute-force cross product
/// stays cheap even in debug builds).
fn arb_instance() -> impl Strategy<Value = (Instance, u64)> {
    (3usize..=4, 5usize..=12, 0.0f64..=1.0, any::<u64>()).prop_map(
        |(n, cardinality, extra_edges, seed)| {
            let mut rng = StdRng::seed_from_u64(seed);
            let graph = QueryGraph::random_connected(n, extra_edges, &mut rng);
            let datasets: Vec<Vec<Rect>> = (0..n)
                .map(|_| {
                    (0..cardinality)
                        .map(|_| {
                            use rand::RngExt;
                            let x: f64 = rng.random_range(0.0..1.0);
                            let y: f64 = rng.random_range(0.0..1.0);
                            let w: f64 = rng.random_range(0.0..0.3);
                            let h: f64 = rng.random_range(0.0..0.3);
                            Rect::new(x, y, (x + w).min(1.0), (y + h).min(1.0))
                        })
                        .collect()
                })
                .collect();
            (Instance::new(graph, datasets).unwrap(), seed)
        },
    )
}

/// Brute-force minimum violations over the full cross product.
fn brute_optimum(inst: &Instance) -> usize {
    let n = inst.n_vars();
    let mut assignment = vec![0usize; n];
    let mut best = usize::MAX;
    loop {
        best = best.min(inst.violations(&Solution::new(assignment.clone())));
        // Odometer increment.
        let mut k = 0;
        loop {
            if k == n {
                return best;
            }
            assignment[k] += 1;
            if assignment[k] < inst.cardinality(k) {
                break;
            }
            assignment[k] = 0;
            k += 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `find_best_value` returns a value tying the brute-force maximum
    /// satisfied-count for every variable of every random instance.
    #[test]
    fn find_best_value_matches_brute_force((inst, seed) in arb_instance()) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
        let sol = inst.random_solution(&mut rng);
        for var in 0..inst.n_vars() {
            let mut acc = 0u64;
            let fast = find_best_value(&inst, &sol, var, None, &mut acc);
            // Brute force.
            let graph = inst.graph();
            let windows: Vec<_> = graph
                .neighbors(var)
                .iter()
                .map(|&(u, pred)| (pred, inst.rect(u, sol.get(u))))
                .collect();
            let slow_best = (0..inst.cardinality(var))
                .map(|obj| {
                    let r = inst.rect(var, obj);
                    windows.iter().filter(|(p, w)| p.eval(&r, w)).count() as u32
                })
                .max()
                .unwrap_or(0);
            match fast {
                Some(bv) => prop_assert_eq!(bv.satisfied, slow_best),
                None => prop_assert_eq!(slow_best, 0),
            }
        }
    }

    /// The multi-window traversal kernel returns the same `BestValue` as a
    /// straightforward exhaustive scan over the dataset, in raw and in
    /// λ-penalised mode. Scores must always agree; the winning object is
    /// pinned only when the argmax is unique (ties may break either way).
    #[test]
    fn kernel_matches_exhaustive_scan((inst, seed) in arb_instance()) {
        use rand::RngExt;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD00F);
        let mut table = PenaltyTable::new();
        for _ in 0..40 {
            let var = rng.random_range(0..inst.n_vars());
            table.penalize(var, rng.random_range(0..inst.cardinality(var)));
        }
        // A binary fraction keeps every score exact in f64, so equality
        // comparisons below need no epsilon.
        let lambda = 0.25;
        let sol = inst.random_solution(&mut rng);
        for var in 0..inst.n_vars() {
            let windows: Vec<_> = inst
                .graph()
                .neighbors(var)
                .iter()
                .map(|&(u, pred)| (pred, inst.rect(u, sol.get(u))))
                .collect();
            for penalties in [None, Some((&table, lambda))] {
                let mut acc = 0u64;
                let fast = find_best_value(&inst, &sol, var, penalties, &mut acc);
                // Exhaustive scan: first strict maximum, counting ties.
                let mut best: Option<(usize, u32, f64)> = None;
                let mut ties = 0usize;
                for obj in 0..inst.cardinality(var) {
                    let r = inst.rect(var, obj);
                    let count = windows.iter().filter(|(p, w)| p.eval(&r, w)).count() as u32;
                    if count == 0 {
                        continue;
                    }
                    let eff = match penalties {
                        Some((t, l)) => count as f64 - l * t.get(var, obj) as f64,
                        None => count as f64,
                    };
                    match best {
                        None => { best = Some((obj, count, eff)); ties = 1; }
                        Some((_, _, b)) if eff > b => { best = Some((obj, count, eff)); ties = 1; }
                        Some((_, _, b)) if eff == b => ties += 1,
                        _ => {}
                    }
                }
                match (fast, best) {
                    (None, None) => {}
                    (Some(f), Some((obj, count, eff))) => {
                        prop_assert_eq!(f.effective, eff, "var {}: score mismatch", var);
                        if ties == 1 {
                            prop_assert_eq!(f.object, obj);
                            prop_assert_eq!(f.satisfied, count);
                        }
                    }
                    (f, s) => prop_assert!(false, "kernel {:?} vs scan {:?}", f, s),
                }
            }
        }
    }

    /// `WindowCache` is transparent: across an arbitrary mutation sequence
    /// it returns exactly what a fresh `find_best_value` returns, while
    /// never visiting more nodes.
    #[test]
    fn window_cache_is_transparent((inst, seed) in arb_instance()) {
        use rand::RngExt;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xACE5);
        let mut sol = inst.random_solution(&mut rng);
        let mut cache = WindowCache::new(&inst);
        let mut cached_acc = 0u64;
        let mut fresh_acc = 0u64;
        for _ in 0..30 {
            let var = rng.random_range(0..inst.n_vars());
            let cached = cache.find_best_value(&inst, &sol, var, None, &mut cached_acc);
            let fresh = find_best_value(&inst, &sol, var, None, &mut fresh_acc);
            prop_assert_eq!(cached, fresh);
            let v = rng.random_range(0..inst.n_vars());
            sol.set(v, rng.random_range(0..inst.cardinality(v)));
        }
        prop_assert!(cached_acc <= fresh_acc, "cache may only save node accesses");
    }

    /// Exhaustive IBB equals the brute-force optimum on every instance.
    #[test]
    fn ibb_is_globally_optimal((inst, _) in arb_instance()) {
        let config = IbbConfig { initial: None, stop_at_exact: false };
        let outcome = Ibb::new(config).run(&inst, &SearchBudget::seconds(120.0));
        prop_assert!(outcome.proven_optimal);
        prop_assert_eq!(outcome.best_violations, brute_optimum(&inst));
        // And the returned solution really evaluates to that.
        prop_assert_eq!(inst.violations(&outcome.best), outcome.best_violations);
    }

    /// WR enumerates exactly the zero-violation assignments.
    #[test]
    fn wr_is_exact_and_complete((inst, _) in arb_instance()) {
        let outcome = WindowReduction::new().run(&inst, &SearchBudget::seconds(120.0), usize::MAX);
        prop_assert!(outcome.complete);
        let mut found: Vec<_> = outcome.solutions.clone();
        found.sort_by(|a, b| a.as_slice().cmp(b.as_slice()));
        // Brute-force enumeration.
        let n = inst.n_vars();
        let mut assignment = vec![0usize; n];
        let mut expected = Vec::new();
        'outer: loop {
            let sol = Solution::new(assignment.clone());
            if inst.violations(&sol) == 0 {
                expected.push(sol);
            }
            let mut k = 0;
            loop {
                if k == n {
                    break 'outer;
                }
                assignment[k] += 1;
                if assignment[k] < inst.cardinality(k) {
                    break;
                }
                assignment[k] = 0;
                k += 1;
            }
        }
        expected.sort_by(|a, b| a.as_slice().cmp(b.as_slice()));
        prop_assert_eq!(found, expected);
    }

    /// ILS never reports a better result than the global optimum, and its
    /// reported violations always match re-evaluation.
    #[test]
    fn ils_respects_the_optimum((inst, seed) in arb_instance()) {
        let optimum = brute_optimum(&inst);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        let outcome = Ils::new(IlsConfig::default())
            .run(&inst, &SearchBudget::iterations(300), &mut rng);
        prop_assert!(outcome.best_violations >= optimum);
        prop_assert_eq!(inst.violations(&outcome.best), outcome.best_violations);
    }

    /// The three exact baselines (window reduction, synchronous traversal,
    /// pairwise join method) enumerate identical solution sets on every
    /// random instance.
    #[test]
    fn exact_baselines_agree((inst, _) in arb_instance()) {
        let budget = SearchBudget::seconds(120.0);
        let sets: Vec<Vec<Solution>> = [
            WindowReduction::new().run(&inst, &budget, usize::MAX),
            SynchronousTraversal::new().run(&inst, &budget, usize::MAX),
            Pjm::default().run(&inst, &budget, usize::MAX),
        ]
        .into_iter()
        .map(|outcome| {
            prop_assert!(outcome.complete);
            let mut sols = outcome.solutions;
            sols.sort_by(|a, b| a.as_slice().cmp(b.as_slice()));
            Ok(sols)
        })
        .collect::<Result<_, _>>()?;
        prop_assert_eq!(&sets[0], &sets[1]);
        prop_assert_eq!(&sets[0], &sets[2]);
    }

    /// Heuristic convergence traces are monotone: similarity never
    /// decreases, and steps/elapsed never go backwards. Resampling via
    /// `best_similarity_at` agrees with the raw trace at its endpoints.
    #[test]
    fn heuristic_traces_are_monotone((inst, seed) in arb_instance()) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xCAFE);
        for outcome in [
            Ils::new(IlsConfig::default()).run(&inst, &SearchBudget::iterations(250), &mut rng),
            mwsj_core::Gils::default().run(&inst, &SearchBudget::iterations(250), &mut rng),
        ] {
            prop_assert!(!outcome.trace.is_empty());
            for w in outcome.trace.windows(2) {
                prop_assert!(w[1].similarity >= w[0].similarity);
                prop_assert!(w[1].step >= w[0].step);
                prop_assert!(w[1].elapsed >= w[0].elapsed);
            }
            let last = outcome.trace.last().unwrap();
            prop_assert_eq!(
                outcome.best_similarity_at(last.elapsed),
                outcome.best_similarity
            );
        }
    }

    /// The parallel portfolio respects the optimum and is thread-count
    /// independent on arbitrary instances, not just handcrafted ones.
    #[test]
    fn portfolio_is_thread_count_independent((inst, seed) in arb_instance()) {
        let optimum = brute_optimum(&inst);
        let budget = SearchBudget::iterations(200);
        let run = |threads: usize| {
            ParallelPortfolio::new(Ils::new(IlsConfig::default()), PortfolioConfig::new(3, threads))
                .run(&inst, &budget, seed)
        };
        let a = run(1);
        let b = run(3);
        prop_assert!(a.merged.best_violations >= optimum);
        prop_assert_eq!(&a.merged.best, &b.merged.best);
        prop_assert_eq!(a.merged.best_violations, b.merged.best_violations);
        prop_assert_eq!(&a.merged.top_solutions, &b.merged.top_solutions);
        prop_assert_eq!(a.merged.stats.steps, b.merged.stats.steps);
        prop_assert_eq!(inst.violations(&a.merged.best), a.merged.best_violations);
    }

    /// Satellite invariant (DESIGN.md §5i): the per-variable × per-level
    /// node-access attribution of every window-query algorithm sums
    /// **bit-exactly** to the shared access counter — with penalties
    /// (GILS) and without (ILS/SEA/IBB), on both leaf layouts — and the
    /// two layouts attribute identically.
    #[test]
    fn access_attribution_sums_to_counter_on_both_layouts((inst, seed) in arb_instance()) {
        let check = |outcome: &RunOutcome, algo: &str| {
            let profile = &outcome.stats.access_profile;
            prop_assert_eq!(
                profile.total(),
                outcome.stats.node_accesses,
                "{}: attributed {:?} vs counter {}",
                algo,
                &profile.per_var,
                outcome.stats.node_accesses
            );
            Ok(())
        };
        let mut per_layout: Vec<Vec<Vec<Vec<u64>>>> = Vec::new();
        for layout in [LeafLayout::Flat, LeafLayout::Entry] {
            let inst = inst.clone().with_leaf_layout(layout);
            let budget = SearchBudget::iterations(150);
            let mut profiles = Vec::new();
            let ils = Ils::new(IlsConfig::default())
                .run(&inst, &budget, &mut StdRng::seed_from_u64(seed ^ 0xA11));
            check(&ils, "ILS")?;
            profiles.push(ils.stats.access_profile.per_var.clone());
            let gils = Gils::new(GilsConfig::default())
                .run(&inst, &budget, &mut StdRng::seed_from_u64(seed ^ 0xA12));
            check(&gils, "GILS")?;
            profiles.push(gils.stats.access_profile.per_var.clone());
            let sea = Sea::new(SeaConfig::default())
                .run(&inst, &budget, &mut StdRng::seed_from_u64(seed ^ 0xA13));
            check(&sea, "SEA")?;
            profiles.push(sea.stats.access_profile.per_var.clone());
            let ibb = Ibb::new(IbbConfig { initial: None, stop_at_exact: false })
                .run(&inst, &SearchBudget::seconds(120.0));
            check(&ibb, "IBB")?;
            profiles.push(ibb.stats.access_profile.per_var.clone());
            // Row shape: one row per variable, one slot per tree level.
            for profile in &profiles {
                prop_assert_eq!(profile.len(), inst.n_vars());
                for (var, levels) in profile.iter().enumerate() {
                    prop_assert_eq!(levels.len(), inst.tree(var).height() as usize);
                }
            }
            per_layout.push(profiles);
        }
        // Layout parity: flat and entry kernels attribute identically.
        prop_assert_eq!(&per_layout[0], &per_layout[1]);
    }
}
