//! Cross-algorithm observability audit: every index-driven algorithm must
//! account its R*-tree node accesses in [`mwsj_core::RunStats`] and flush
//! its counters into an enabled metrics registry.

use mwsj_core::{
    metric, Gils, Ibb, IbbConfig, Ils, ObsHandle, Pjm, RunEvent, Sea, SeaConfig, SearchBudget,
    SearchContext, SynchronousTraversal, TwoStep, TwoStepConfig, VecSink, WindowReduction,
};
use mwsj_core::{IlsConfig, Instance};
use mwsj_datagen::{hard_region_density, plant_solution, Dataset, QueryShape};
use mwsj_geom::Predicate;
use mwsj_query::QueryGraphBuilder;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn planted_instance(seed: u64, shape: QueryShape, n: usize, cardinality: usize) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let d = hard_region_density(shape, n, cardinality, 1.0);
    let mut datasets: Vec<Dataset> = (0..n)
        .map(|_| Dataset::uniform(cardinality, d, &mut rng))
        .collect();
    let graph = shape.graph(n);
    plant_solution(&mut datasets, &graph, &mut rng);
    Instance::new(graph, datasets).unwrap()
}

/// Hard-region instance with *no* planted solution: heuristics reliably
/// run to budget exhaustion instead of terminating on an exact solution.
fn hard_instance(seed: u64, shape: QueryShape, n: usize, cardinality: usize) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let d = hard_region_density(shape, n, cardinality, 1.0);
    let datasets: Vec<Dataset> = (0..n)
        .map(|_| Dataset::uniform(cardinality, d, &mut rng))
        .collect();
    Instance::new(shape.graph(n), datasets).unwrap()
}

#[test]
fn every_index_driven_algorithm_accounts_node_accesses() {
    let inst = planted_instance(201, QueryShape::Clique, 4, 150);
    let budget = SearchBudget::iterations(500);
    let mut rng = StdRng::seed_from_u64(202);

    let ils = Ils::default().run(&inst, &budget, &mut rng);
    assert!(ils.stats.node_accesses > 0, "ILS");

    let gils = Gils::default().run(&inst, &budget, &mut rng);
    assert!(gils.stats.node_accesses > 0, "GILS");

    let sea = Sea::new(SeaConfig::default_for(&inst)).run(&inst, &budget, &mut rng);
    assert!(sea.stats.node_accesses > 0, "SEA");

    let sea_seeded =
        Sea::new(SeaConfig::default_for(&inst).with_ils_seeding()).run(&inst, &budget, &mut rng);
    assert!(sea_seeded.stats.node_accesses > 0, "SEA (ILS seeding)");

    let ibb = Ibb::new(IbbConfig::new()).run(&inst, &SearchBudget::seconds(30.0));
    assert!(ibb.stats.node_accesses > 0, "IBB");

    let wr = WindowReduction::new().run(&inst, &SearchBudget::seconds(30.0), 5);
    assert!(wr.stats.node_accesses > 0, "WR");

    let st = SynchronousTraversal::new().run(&inst, &SearchBudget::seconds(30.0), 5);
    assert!(st.stats.node_accesses > 0, "ST");

    let pjm = Pjm::default().run(&inst, &SearchBudget::seconds(30.0), 5);
    assert!(pjm.stats.node_accesses > 0, "PJM");

    let two_step = TwoStep::new(TwoStepConfig::Ils(
        IlsConfig::default(),
        SearchBudget::iterations(200),
    ))
    .run(&inst, &SearchBudget::seconds(30.0), &mut rng);
    assert!(
        two_step.total_stats().node_accesses > 0,
        "two-step pipeline"
    );
    assert!(
        two_step.total_stats().node_accesses >= two_step.heuristic.stats.node_accesses,
        "total includes both steps"
    );
}

#[test]
fn pjm_counts_accesses_on_the_generic_predicate_path() {
    // A 2-variable non-overlap query takes PJM's index-nested-loop branch
    // (generic predicate), which must count its traversals too.
    let mut rng = StdRng::seed_from_u64(203);
    let datasets: Vec<Dataset> = (0..2)
        .map(|_| Dataset::uniform(200, 0.5, &mut rng))
        .collect();
    let graph = QueryGraphBuilder::new(2)
        .edge_with(0, 1, Predicate::NorthEast)
        .build()
        .unwrap();
    let inst = Instance::new(graph, datasets).unwrap();
    let outcome = Pjm::default().run(&inst, &SearchBudget::seconds(30.0), usize::MAX);
    assert!(
        outcome.stats.node_accesses > 0,
        "generic-predicate branch must count node accesses"
    );
}

#[test]
fn enabled_registry_receives_flushed_counters_and_events() {
    let inst = hard_instance(204, QueryShape::Chain, 4, 200);
    let sink = Arc::new(VecSink::new());
    let obs = ObsHandle::enabled().with_sink(sink.clone());
    let ctx = SearchContext::local(SearchBudget::iterations(400)).with_obs(obs.clone());
    let mut rng = StdRng::seed_from_u64(205);
    let outcome = Ils::default().search(&inst, &ctx, &mut rng);

    let snap = obs.metrics.snapshot();
    assert_eq!(snap.counter(metric::STEPS), Some(outcome.stats.steps));
    assert_eq!(
        snap.counter(metric::NODE_ACCESSES),
        Some(outcome.stats.node_accesses)
    );
    assert_eq!(
        snap.counter(metric::IMPROVEMENTS),
        Some(outcome.stats.improvements)
    );

    let events = sink.events();
    let improvements = events
        .iter()
        .filter(|e| matches!(e, RunEvent::Improvement { .. }))
        .count() as u64;
    // One event per incumbent improvement plus one for the initial
    // incumbent of each restart.
    assert!(improvements > outcome.stats.improvements);
    assert!(
        events
            .iter()
            .any(|e| matches!(e, RunEvent::BudgetExhausted { .. })),
        "step-budgeted run must report budget exhaustion"
    );

    // Phase attribution: all steps land under the "ils" span.
    let phases = obs.timer.snapshot();
    let ils_phase = phases.iter().find(|p| p.path == "ils").expect("ils phase");
    assert_eq!(ils_phase.steps, outcome.stats.steps);
}

#[test]
fn disabled_handle_collects_nothing() {
    let inst = planted_instance(206, QueryShape::Chain, 3, 100);
    let obs = ObsHandle::disabled();
    let ctx = SearchContext::local(SearchBudget::iterations(100)).with_obs(obs.clone());
    let mut rng = StdRng::seed_from_u64(207);
    let _ = Ils::default().search(&inst, &ctx, &mut rng);
    assert!(obs.metrics.snapshot().is_empty());
    assert!(obs.timer.snapshot().is_empty());
}
