//! Variable ordering for systematic search.

use mwsj_query::{QueryGraph, VarId};

/// Connectivity-first static variable order: start at the variable with the
/// highest degree, then repeatedly append the variable with the most edges
/// to already-ordered variables (ties by total degree, then index). On a
/// connected graph every variable after the first has at least one
/// instantiated neighbour, so window-based candidate generation always has
/// windows to work with.
pub(crate) fn connectivity_order(graph: &QueryGraph) -> Vec<VarId> {
    let n = graph.n_vars();
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];

    let first = (0..n)
        .max_by_key(|&v| (graph.degree(v), std::cmp::Reverse(v)))
        .expect("graph has variables");
    order.push(first);
    placed[first] = true;

    while order.len() < n {
        let next = (0..n)
            .filter(|&v| !placed[v])
            .max_by_key(|&v| {
                let to_placed = graph
                    .neighbors(v)
                    .iter()
                    .filter(|&&(u, _)| placed[u])
                    .count();
                (to_placed, graph.degree(v), std::cmp::Reverse(v))
            })
            .expect("unplaced variable exists");
        order.push(next);
        placed[next] = true;
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwsj_query::QueryGraphBuilder;

    #[test]
    fn order_is_a_permutation() {
        let g = QueryGraph::clique(6);
        let mut o = connectivity_order(&g);
        o.sort_unstable();
        assert_eq!(o, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn star_orders_hub_first() {
        let g = QueryGraph::star(5);
        let o = connectivity_order(&g);
        assert_eq!(o[0], 0);
    }

    #[test]
    fn every_variable_after_first_touches_the_prefix() {
        let g = QueryGraphBuilder::new(5)
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 3)
            .edge(3, 4)
            .edge(1, 3)
            .build()
            .unwrap();
        let o = connectivity_order(&g);
        for k in 1..o.len() {
            let connected = g.neighbors(o[k]).iter().any(|&(u, _)| o[..k].contains(&u));
            assert!(connected, "variable {} at position {k} is isolated", o[k]);
        }
    }
}
