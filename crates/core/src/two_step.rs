//! Two-step processing (paper §6, Fig. 11): a non-systematic heuristic
//! provides a high-similarity incumbent, which then bounds a systematic
//! IBB search for the optimal solution.
//!
//! "IBB, and similar systematic search algorithms, can quickly discover
//! the best solutions, if they have some 'target' similarity to prune the
//! search space" — the paper shows SEA+IBB beating plain IBB by 1–2 orders
//! of magnitude, and that for small queries the heuristic alone often
//! already finds the exact solution, skipping systematic search entirely.

use crate::budget::{SearchBudget, SearchContext, TelemetryConfig};
use crate::ibb::{Ibb, IbbConfig};
use crate::ils::Ils;
use crate::instance::Instance;
use crate::result::{RunOutcome, RunStats};
use crate::sea::{Sea, SeaConfig};
use crate::{GilsConfig, IlsConfig};
use mwsj_obs::ObsHandle;
use rand::rngs::StdRng;

/// Which heuristic runs in step one.
#[derive(Debug, Clone)]
pub enum TwoStepConfig {
    /// ILS for the given budget (the paper uses 1 second).
    Ils(IlsConfig, SearchBudget),
    /// GILS for the given budget.
    Gils(GilsConfig, SearchBudget),
    /// SEA for the given budget (the paper uses `10·n` seconds).
    Sea(SeaConfig, SearchBudget),
}

/// Combined result of a two-step run.
#[derive(Debug, Clone)]
pub struct TwoStepOutcome {
    /// Step-one result.
    pub heuristic: RunOutcome,
    /// Step-two result; `None` when the heuristic already found an exact
    /// solution and systematic search was skipped.
    pub systematic: Option<RunOutcome>,
    /// The overall best solution (of either step).
    pub best: RunOutcome,
}

impl TwoStepOutcome {
    /// Returns `true` if step two ran.
    pub fn ran_systematic(&self) -> bool {
        self.systematic.is_some()
    }

    /// Aggregate counters across both steps: elapsed times add up, and all
    /// count-style fields (steps, node accesses, …) are summed. Useful for
    /// accounting the total index work of the pipeline.
    pub fn total_stats(&self) -> RunStats {
        let mut total = self.heuristic.stats.clone();
        if let Some(sys) = &self.systematic {
            total.elapsed += sys.stats.elapsed;
            total.steps += sys.stats.steps;
            total.restarts += sys.stats.restarts;
            total.local_maxima += sys.stats.local_maxima;
            total.node_accesses += sys.stats.node_accesses;
            total.improvements += sys.stats.improvements;
            total.cache.absorb(&sys.stats.cache);
            total.access_profile.absorb(&sys.stats.access_profile);
        }
        total
    }
}

/// The two-step method.
#[derive(Debug, Clone)]
pub struct TwoStep {
    config: TwoStepConfig,
    telemetry: TelemetryConfig,
}

impl TwoStep {
    /// Creates a two-step pipeline with the given step-one heuristic.
    pub fn new(config: TwoStepConfig) -> Self {
        TwoStep {
            config,
            telemetry: TelemetryConfig::default(),
        }
    }

    /// Attaches a live-telemetry configuration applied to both stages
    /// (progress heartbeats and the stall watchdog run per stage).
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The paper's Fig. 11 settings: SEA for `10·n` seconds, then IBB.
    pub fn paper_sea(instance: &Instance) -> Self {
        TwoStep::new(TwoStepConfig::Sea(
            SeaConfig::default_for(instance),
            SearchBudget::seconds(10.0 * instance.n_vars() as f64),
        ))
    }

    /// The paper's Fig. 11 settings: ILS for 1 second, then IBB.
    pub fn paper_ils() -> Self {
        TwoStep::new(TwoStepConfig::Ils(
            IlsConfig::default(),
            SearchBudget::seconds(1.0),
        ))
    }

    /// Runs the heuristic, then (unless an exact solution was found) IBB
    /// seeded with the heuristic's best solution under `ibb_budget`.
    pub fn run(
        &self,
        instance: &Instance,
        ibb_budget: &SearchBudget,
        rng: &mut StdRng,
    ) -> TwoStepOutcome {
        self.run_with_obs(instance, ibb_budget, rng, &ObsHandle::disabled())
    }

    /// Like [`TwoStep::run`], additionally reporting both steps through
    /// `obs`: the heuristic under a "heuristic" phase span, IBB under
    /// "systematic", with counters, improvement events and stop reasons for
    /// each step. Both stages run *nested* (they do not emit their own
    /// `run_end`); the pipeline emits **one** `run_end` describing the
    /// overall best with the counters summed across both stages.
    pub fn run_with_obs(
        &self,
        instance: &Instance,
        ibb_budget: &SearchBudget,
        rng: &mut StdRng,
        obs: &ObsHandle,
    ) -> TwoStepOutcome {
        let heuristic = {
            let _phase = obs.timer.span("heuristic");
            let stage_ctx = |budget: &SearchBudget| {
                SearchContext::local(*budget)
                    .with_obs(obs.clone())
                    .with_telemetry(self.telemetry)
                    .nested()
            };
            match &self.config {
                TwoStepConfig::Ils(cfg, budget) => {
                    Ils::new(cfg.clone()).search(instance, &stage_ctx(budget), rng)
                }
                TwoStepConfig::Gils(cfg, budget) => {
                    crate::Gils::new(cfg.clone()).search(instance, &stage_ctx(budget), rng)
                }
                TwoStepConfig::Sea(cfg, budget) => {
                    Sea::new(cfg.clone()).search(instance, &stage_ctx(budget), rng)
                }
            }
        };

        if heuristic.is_exact() {
            // "often, especially for small queries, the exact solution is
            // found by the non-systematic heuristics, in which case
            // systematic search is not performed at all."
            let mut best = heuristic.clone();
            best.proven_optimal = true; // similarity 1 cannot be beaten
            let outcome = TwoStepOutcome {
                heuristic,
                systematic: None,
                best,
            };
            emit_combined_run_end(obs, instance, &outcome);
            return outcome;
        }

        let ibb = Ibb::new(IbbConfig::with_initial(heuristic.best.clone()));
        let systematic = {
            let _phase = obs.timer.span("systematic");
            let ctx = SearchContext::local(*ibb_budget)
                .with_obs(obs.clone())
                .with_telemetry(self.telemetry)
                .nested();
            ibb.search(instance, &ctx)
        };

        let best = if systematic.best_violations <= heuristic.best_violations {
            systematic.clone()
        } else {
            heuristic.clone()
        };
        let outcome = TwoStepOutcome {
            heuristic,
            systematic: Some(systematic),
            best,
        };
        emit_combined_run_end(obs, instance, &outcome);
        outcome
    }
}

/// Emits the pipeline's single `resource_report` + `run_end`: the overall
/// best outcome with counters aggregated across both stages (no-op without
/// a sink).
fn emit_combined_run_end(obs: &ObsHandle, instance: &Instance, outcome: &TwoStepOutcome) {
    if !obs.has_sink() {
        return;
    }
    let mut combined = outcome.best.clone();
    combined.stats = outcome.total_stats();
    crate::observe::emit_explain_report(obs, instance, &combined);
    crate::observe::emit_resource_report(obs, instance, &combined);
    crate::observe::emit_run_end(obs, &combined);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwsj_datagen::{hard_region_density, plant_solution, Dataset, QueryShape};
    use rand::SeedableRng;

    fn planted_instance(seed: u64, n: usize, cardinality: usize) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let shape = QueryShape::Clique;
        let d = hard_region_density(shape, n, cardinality, 1.0);
        let mut datasets: Vec<Dataset> = (0..n)
            .map(|_| Dataset::uniform(cardinality, d, &mut rng))
            .collect();
        let graph = shape.graph(n);
        plant_solution(&mut datasets, &graph, &mut rng);
        Instance::new(graph, datasets).unwrap()
    }

    #[test]
    fn two_step_finds_the_exact_solution() {
        let inst = planted_instance(151, 4, 150);
        let mut rng = StdRng::seed_from_u64(152);
        let two_step = TwoStep::new(TwoStepConfig::Ils(
            IlsConfig::default(),
            SearchBudget::iterations(500),
        ));
        let outcome = two_step.run(&inst, &SearchBudget::seconds(30.0), &mut rng);
        assert!(outcome.best.is_exact());
        assert!(outcome.best.proven_optimal);
    }

    #[test]
    fn exact_heuristic_skips_systematic_search() {
        // Very dense data: ILS finds an exact solution trivially.
        let mut rng = StdRng::seed_from_u64(153);
        let datasets: Vec<Dataset> = (0..3)
            .map(|_| Dataset::uniform(100, 2.0, &mut rng))
            .collect();
        let inst = Instance::new(QueryShape::Chain.graph(3), datasets).unwrap();
        let two_step = TwoStep::new(TwoStepConfig::Ils(
            IlsConfig::default(),
            SearchBudget::iterations(5_000),
        ));
        let outcome = two_step.run(&inst, &SearchBudget::seconds(30.0), &mut rng);
        assert!(outcome.best.is_exact());
        assert!(!outcome.ran_systematic());
    }

    #[test]
    fn gils_variant_runs_and_is_sound() {
        let inst = planted_instance(156, 4, 100);
        let mut rng = StdRng::seed_from_u64(157);
        let two_step = TwoStep::new(TwoStepConfig::Gils(
            crate::GilsConfig::default(),
            SearchBudget::iterations(300),
        ));
        let outcome = two_step.run(&inst, &SearchBudget::seconds(30.0), &mut rng);
        assert!(outcome.best.best_violations <= outcome.heuristic.best_violations);
        assert_eq!(
            inst.violations(&outcome.best.best),
            outcome.best.best_violations
        );
    }

    #[test]
    fn paper_constructors_build() {
        let inst = planted_instance(158, 3, 50);
        let _ = TwoStep::paper_sea(&inst);
        let _ = TwoStep::paper_ils();
    }

    #[test]
    fn seeded_ibb_does_not_lose_to_heuristic() {
        let inst = planted_instance(154, 4, 120);
        let mut rng = StdRng::seed_from_u64(155);
        let two_step = TwoStep::new(TwoStepConfig::Sea(
            SeaConfig::default_for(&inst),
            SearchBudget::iterations(15),
        ));
        let outcome = two_step.run(&inst, &SearchBudget::seconds(30.0), &mut rng);
        assert!(outcome.best.best_violations <= outcome.heuristic.best_violations);
    }
}
