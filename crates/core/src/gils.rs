//! Guided Indexed Local Search (paper §4, Fig. 7).
//!
//! GILS runs from a **single** random seed and never restarts. Whenever a
//! local maximum is reached, the assignments of the maximum with the
//! minimum penalty so far are punished; the *effective* inconsistency
//! degree of a solution adds `λ·Σ penalty(vᵢ ← rᵢ)` to its violation
//! count. The punishment gradually raises the effective degree of visited
//! maxima and their neighbourhoods, pushing the search into new regions of
//! the graph (and, with sufficient accumulated penalties, permitting
//! downhill moves in raw violations).

use crate::budget::{SearchBudget, SearchContext};
use crate::driver::{run_driven, DriveSearch, SearchDriver};
use crate::instance::Instance;
use crate::result::RunOutcome;
use crate::window_cache::WindowCache;
use mwsj_query::PenaltyTable;
use rand::rngs::StdRng;

/// Configuration of [`Gils`].
///
/// λ controls how much accumulated punishment outweighs real violations,
/// and the right value depends on how *sparse* the candidate space is:
///
/// * the paper's `λ = 10⁻¹⁰·s` (the `None` default here) makes penalties
///   pure plateau tie-breakers — a candidate satisfying one condition is
///   never blocked, no matter how often it was punished. This matters at
///   sparse hard-region densities (e.g. 5-cliques at N = 10⁵, d ≈ 0.025),
///   where the set of objects that intersect *anything* is tiny and large
///   λ values poison it within seconds;
/// * larger λ (0.1–10) enables genuine downhill moves and wins on dense
///   instances where most objects are connectable — see the λ-sweep in the
///   ablation bench.
#[derive(Debug, Clone)]
pub struct GilsConfig {
    /// Penalty weight λ. `None` applies the paper's `λ = 10⁻¹⁰·s`
    /// (`s` = problem size in bits), resolved per instance at run time.
    pub lambda: Option<f64>,
    /// Reseed from a fresh random solution after this many punishment
    /// rounds without improving the incumbent. In sparse candidate spaces
    /// a single-seeded GILS can orbit one maximum indefinitely (punishment
    /// only shuffles it among equal-quality assignments); this safeguard
    /// restores anytime behaviour there while leaving dense instances —
    /// where improvements come far more often — effectively untouched.
    /// `0` disables reseeding (the paper's literal single-seed run).
    pub stagnation_reseed: u64,
}

impl Default for GilsConfig {
    fn default() -> Self {
        GilsConfig {
            lambda: None,
            stagnation_reseed: 1_000,
        }
    }
}

impl GilsConfig {
    /// The paper's printed λ for a given problem size `s` (in bits).
    pub fn paper_lambda(s: f64) -> f64 {
        1e-10 * s
    }

    /// Configuration with an explicit λ.
    pub fn with_lambda(lambda: f64) -> Self {
        GilsConfig {
            lambda: Some(lambda),
            ..GilsConfig::default()
        }
    }
}

/// Guided indexed local search.
#[derive(Debug, Clone, Default)]
pub struct Gils {
    config: GilsConfig,
}

impl Gils {
    /// Creates the algorithm.
    pub fn new(config: GilsConfig) -> Self {
        Gils { config }
    }

    /// Runs GILS until the budget is exhausted. One budget step = one
    /// `find best value` call.
    pub fn run(&self, instance: &Instance, budget: &SearchBudget, rng: &mut StdRng) -> RunOutcome {
        self.search(instance, &SearchContext::local(*budget), rng)
    }

    /// Runs GILS under an explicit [`SearchContext`] — the entry point
    /// used by [`crate::ParallelPortfolio`] to share deadlines and bounds
    /// across restarts.
    pub fn search(&self, instance: &Instance, ctx: &SearchContext, rng: &mut StdRng) -> RunOutcome {
        run_driven(self, instance, ctx, rng)
    }
}

impl DriveSearch for Gils {
    const NAME: &'static str = "GILS";
    const PHASE: &'static str = "gils";

    fn drive(&self, instance: &Instance, driver: &mut SearchDriver, rng: &mut StdRng) {
        let graph = instance.graph();
        let lambda = self
            .config
            .lambda
            .unwrap_or_else(|| GilsConfig::paper_lambda(instance.problem_size_bits()));
        let mut penalties = PenaltyTable::new();
        let mut cache = WindowCache::new(instance);

        // Single seed for the whole run (Fig. 7).
        let mut sol = instance.random_solution(rng);
        let mut cs = instance.evaluate(&sol);
        driver.offer(&sol, cs.total_violations());
        driver.stats_mut().restarts = 1;
        let mut rounds_since_improvement: u64 = 0;
        let mut last_best = driver.best_violations();

        'time: while !driver.exhausted() {
            // Climb (by effective value) to a local maximum.
            #[allow(unused_assignments)]
            let mut any_candidate = false;
            loop {
                if driver.exhausted() {
                    break 'time;
                }
                let mut improved = false;
                any_candidate = false;
                for v in cs.vars_by_badness(graph) {
                    if driver.exhausted() {
                        break 'time;
                    }
                    driver.step();
                    let cur_obj = sol.get(v);
                    let cur_eff = cs.satisfied_of(graph, v) as f64
                        - lambda * penalties.get(v, cur_obj) as f64;
                    if let Some(best) = {
                        let (acc, levels) = driver.tally(v);
                        cache.find_best_value_leveled(
                            instance,
                            &sol,
                            v,
                            Some((&penalties, lambda)),
                            acc,
                            levels,
                        )
                    } {
                        any_candidate = true;
                        if best.object != cur_obj && best.effective > cur_eff {
                            cs.reassign(graph, &mut sol, v, best.object, instance.rect_of());
                            driver.offer(&sol, cs.total_violations());
                            if cs.total_violations() == 0 {
                                // Exact solution: nothing can beat similarity 1.
                                break 'time;
                            }
                            improved = true;
                            break;
                        }
                    }
                }
                if !improved {
                    break;
                }
            }

            driver.stats_mut().local_maxima += 1;
            let best_now = driver.best_violations();
            if best_now == last_best {
                rounds_since_improvement += 1;
            } else {
                last_best = best_now;
                rounds_since_improvement = 0;
            }
            let stagnated = self.config.stagnation_reseed > 0
                && rounds_since_improvement >= self.config.stagnation_reseed;
            if any_candidate && !stagnated {
                // Local maximum: punish its minimum-penalty assignments and
                // continue from the same solution (no restart).
                penalties.penalize_local_maximum(&sol);
            } else {
                // Degenerate maximum (no variable has *any* candidate, so
                // punishment teaches nothing) or prolonged stagnation:
                // reseed. The paper leaves both cases unspecified; they
                // dominate at sparse hard-region densities (e.g. d ≈ 0.025
                // for 5-cliques at N = 10⁵) where a random assignment's
                // windows usually intersect nothing.
                if stagnated {
                    driver.emit_stagnation_reseed(rounds_since_improvement);
                }
                driver.stats_mut().restarts += 1;
                rounds_since_improvement = 0;
                sol = instance.random_solution(rng);
                cs = instance.evaluate(&sol);
                driver.offer(&sol, cs.total_violations());
            }
            driver.sample_cache(&cache);
        }
        driver.stats_mut().cache.absorb(&cache.stats());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwsj_datagen::{hard_region_density, Dataset, QueryShape};
    use rand::SeedableRng;

    fn hard_instance(seed: u64, shape: QueryShape, n: usize, cardinality: usize) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = hard_region_density(shape, n, cardinality, 1.0);
        let datasets: Vec<Dataset> = (0..n)
            .map(|_| Dataset::uniform(cardinality, d, &mut rng))
            .collect();
        Instance::new(shape.graph(n), datasets).unwrap()
    }

    #[test]
    fn gils_improves_over_random_solutions() {
        let inst = hard_instance(71, QueryShape::Chain, 5, 1_000);
        let mut rng = StdRng::seed_from_u64(72);
        let random_sim: f64 = (0..50)
            .map(|_| inst.similarity(&inst.random_solution(&mut rng)))
            .sum::<f64>()
            / 50.0;
        let outcome = Gils::default().run(&inst, &SearchBudget::iterations(2_000), &mut rng);
        assert!(
            outcome.best_similarity > random_sim + 0.2,
            "GILS {} vs random {}",
            outcome.best_similarity,
            random_sim
        );
    }

    #[test]
    fn gils_escapes_local_maxima_without_restarting() {
        let inst = hard_instance(73, QueryShape::Clique, 5, 400);
        let mut rng = StdRng::seed_from_u64(74);
        let outcome = Gils::new(GilsConfig::with_lambda(0.3)).run(
            &inst,
            &SearchBudget::iterations(3_000),
            &mut rng,
        );
        // Many maxima are visited while (almost) never reseeding: the
        // penalty mechanism, not restarts, moves the search. (Reseeds only
        // happen at degenerate maxima with no candidates anywhere.)
        assert!(
            outcome.stats.local_maxima > 1,
            "only {} maxima",
            outcome.stats.local_maxima
        );
        assert!(
            outcome.stats.local_maxima > 4 * outcome.stats.restarts,
            "{} maxima vs {} reseeds — GILS degenerated into restarting",
            outcome.stats.local_maxima,
            outcome.stats.restarts
        );
    }

    #[test]
    fn gils_is_deterministic_under_step_budget() {
        let inst = hard_instance(75, QueryShape::Chain, 4, 300);
        let a = Gils::default().run(
            &inst,
            &SearchBudget::iterations(800),
            &mut StdRng::seed_from_u64(9),
        );
        let b = Gils::default().run(
            &inst,
            &SearchBudget::iterations(800),
            &mut StdRng::seed_from_u64(9),
        );
        assert_eq!(a.best, b.best);
        assert_eq!(a.stats.local_maxima, b.stats.local_maxima);
    }

    #[test]
    fn larger_lambda_visits_more_distinct_regions() {
        // With λ = 0 the penalties never change effective values, so GILS
        // stays glued to the first local maximum; a positive λ keeps moving.
        let inst = hard_instance(76, QueryShape::Clique, 4, 300);
        let mut rng = StdRng::seed_from_u64(77);
        let stuck = Gils::new(GilsConfig::with_lambda(0.0)).run(
            &inst,
            &SearchBudget::iterations(1_000),
            &mut rng,
        );
        let mut rng = StdRng::seed_from_u64(77);
        let moving = Gils::new(GilsConfig::with_lambda(0.5)).run(
            &inst,
            &SearchBudget::iterations(1_000),
            &mut rng,
        );
        assert!(
            moving.stats.node_accesses >= stuck.stats.node_accesses,
            "penalised search should do at least as much index work"
        );
        assert!(moving.best_similarity >= stuck.best_similarity - 1e-9);
    }
}
