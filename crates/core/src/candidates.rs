//! Multi-window candidate enumeration, shared by the systematic algorithms.
//!
//! Given a set of windows (assignments of already-instantiated query
//! variables), enumerate objects of one dataset together with the number of
//! windows they satisfy, visiting only subtrees that can reach a minimum
//! count. With `min_count = windows.len()` this is the conjunctive window
//! query of *window reduction*; with `min_count = 1` it is the candidate
//! generation of IBB ("objects that satisfy the largest number of join
//! conditions are tried first").

use crate::instance::{BackendKind, Instance};
use mwsj_geom::{Predicate, Rect};
use mwsj_query::VarId;
use mwsj_rtree::{grid, NodeRef, RTree};

/// Enumerates `(object, satisfied_count)` for all objects of `var`'s
/// dataset satisfying at least `min_count` of the `windows`, through the
/// instance's selected backend. `min_count` must be ≥ 1.
///
/// Both backends return the identical result *set*; the order differs
/// (R*-tree traversal order vs the grid's canonical `(cell, slot)`
/// order), so callers needing a fixed order sort — IBB already sorts by
/// `(count desc, object asc)`.
///
/// Each visited node (R*-tree) or scanned candidate cell (grid) bumps
/// `node_accesses` and, when the slice is long enough, the matching
/// `level_accesses` row (`[0]` = leaf; the grid charges everything to the
/// leaf row). Pass `&mut []` to skip attribution.
pub(crate) fn candidates_with_counts(
    instance: &Instance,
    var: VarId,
    windows: &[(Predicate, Rect)],
    min_count: u32,
    node_accesses: &mut u64,
    level_accesses: &mut [u64],
) -> Vec<(usize, u32)> {
    match instance.backend() {
        BackendKind::RTree => candidates_in_tree(
            instance.tree(var),
            windows,
            min_count,
            node_accesses,
            level_accesses,
        ),
        BackendKind::Grid => {
            if windows.is_empty() {
                return Vec::new();
            }
            grid::candidates_with_counts(
                instance.grid(var),
                windows,
                min_count,
                node_accesses,
                level_accesses,
            )
            .into_iter()
            .map(|(obj, count)| (obj as usize, count))
            .collect()
        }
    }
}

/// The R*-tree arm: a best-effort pruned walk from the root.
pub(crate) fn candidates_in_tree(
    tree: &RTree<u32>,
    windows: &[(Predicate, Rect)],
    min_count: u32,
    node_accesses: &mut u64,
    level_accesses: &mut [u64],
) -> Vec<(usize, u32)> {
    debug_assert!(min_count >= 1);
    let mut out = Vec::new();
    if windows.is_empty() {
        return out;
    }
    collect(
        tree.root_node(),
        windows,
        min_count,
        &mut out,
        node_accesses,
        level_accesses,
    );
    out
}

fn collect(
    node: NodeRef<'_, u32>,
    windows: &[(Predicate, Rect)],
    min_count: u32,
    out: &mut Vec<(usize, u32)>,
    node_accesses: &mut u64,
    level_accesses: &mut [u64],
) {
    *node_accesses += 1;
    if let Some(slot) = level_accesses.get_mut(node.level() as usize) {
        *slot += 1;
    }
    if node.is_leaf() {
        for entry in node.entries() {
            let mbr = entry.mbr();
            let count = windows.iter().filter(|(pred, w)| pred.eval(mbr, w)).count() as u32;
            if count >= min_count {
                out.push((*entry.value().expect("leaf entry") as usize, count));
            }
        }
    } else {
        for entry in node.entries() {
            let mbr = entry.mbr();
            let possible = windows
                .iter()
                .filter(|(pred, w)| pred.possible(mbr, w))
                .count() as u32;
            if possible >= min_count {
                collect(
                    entry.child().expect("internal entry"),
                    windows,
                    min_count,
                    out,
                    node_accesses,
                    level_accesses,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwsj_datagen::Dataset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (RTree<u32>, Vec<Rect>, Vec<(Predicate, Rect)>) {
        let mut rng = StdRng::seed_from_u64(91);
        let ds = Dataset::uniform(800, 0.3, &mut rng);
        let rects = ds.rects().to_vec();
        let tree = RTree::bulk_load(rects.iter().copied().zip(0u32..).collect());
        let windows = vec![
            (Predicate::Intersects, Rect::new(0.1, 0.1, 0.4, 0.4)),
            (Predicate::Intersects, Rect::new(0.3, 0.3, 0.6, 0.6)),
            (Predicate::Intersects, Rect::new(0.8, 0.8, 0.9, 0.9)),
        ];
        (tree, rects, windows)
    }

    fn brute(rects: &[Rect], windows: &[(Predicate, Rect)], min: u32) -> Vec<(usize, u32)> {
        rects
            .iter()
            .enumerate()
            .filter_map(|(i, r)| {
                let c = windows.iter().filter(|(p, w)| p.eval(r, w)).count() as u32;
                (c >= min).then_some((i, c))
            })
            .collect()
    }

    #[test]
    fn counts_match_brute_force_at_every_threshold() {
        let (tree, rects, windows) = setup();
        for min in 1..=3 {
            let mut acc = 0;
            let mut got = candidates_in_tree(&tree, &windows, min, &mut acc, &mut []);
            got.sort_unstable();
            let mut expected = brute(&rects, &windows, min);
            expected.sort_unstable();
            assert_eq!(got, expected, "min_count {min}");
        }
    }

    #[test]
    fn empty_windows_yield_nothing() {
        let (tree, _, _) = setup();
        let mut acc = 0;
        assert!(candidates_in_tree(&tree, &[], 1, &mut acc, &mut []).is_empty());
    }

    #[test]
    fn higher_threshold_prunes_more() {
        let (tree, _, windows) = setup();
        let mut acc1 = 0;
        let mut acc3 = 0;
        let _ = candidates_in_tree(&tree, &windows, 1, &mut acc1, &mut []);
        let _ = candidates_in_tree(&tree, &windows, 3, &mut acc3, &mut []);
        assert!(acc3 <= acc1, "conjunctive query should visit fewer nodes");
    }
}
