//! Builds [`ExplainReport`]s: the estimate side from the instance via the
//! [`mwsj_datagen::estimate_workload`] cost models, the observed side from
//! a finished run's [`RunStats`].
//!
//! Three layers of actuals back the audit:
//!
//! * **Per-edge observed selectivity** — an exact qualifying-pair count
//!   over the two datasets, divided by `Nᵢ·Nⱼ`. A property of the data,
//!   not the run, so it is deterministic and also available to the pre-run
//!   `mwsj explain` path. Counting is O(Nᵢ·Nⱼ) and therefore gated by
//!   [`OBSERVED_PAIR_BUDGET`]: edges whose dataset product exceeds the
//!   budget report `None` (the paper-scale base suite, `N = 200`, is
//!   always counted; very large tiers skip the quadratic pass).
//! * **Per-variable × per-level node accesses** — the
//!   [`AccessProfile`](crate::AccessProfile) attribution of the shared
//!   access counter, summing exactly to `RunStats::node_accesses` for the
//!   window-query algorithms (ILS/GILS/SEA/IBB).
//! * **Tree structural quality** — [`TreeStats`](mwsj_rtree::TreeStats)
//!   per-level fill / overlap factor / dead space / perimeter, which also
//!   feed the predicted per-query access figure (the classic window-query
//!   cost model `Σ_levels area + w·perimeter + w²·nodes`, summed over
//!   neighbour windows and clamped per level at the level's node count).

use crate::instance::{BackendKind, Instance};
use crate::result::RunStats;
use mwsj_datagen::estimate_workload;
use mwsj_obs::{EdgeExplain, ExplainReport, GridQuality, TreeQuality, VarExplain};

/// Upper bound on `Nᵢ·Nⱼ` for the exact observed-selectivity pair count.
/// 4·10⁶ rectangle-pair evaluations take well under 100 ms and cover the
/// paper's base configurations (`N = 200` → 4·10⁴ pairs per edge) with two
/// orders of magnitude of headroom.
pub const OBSERVED_PAIR_BUDGET: u64 = 4_000_000;

/// Exact observed selectivity of edge `(a, b)`: qualifying pairs divided
/// by `Nₐ·N_b`. Returns `None` when the pair product exceeds
/// [`OBSERVED_PAIR_BUDGET`].
pub fn observed_edge_selectivity(
    instance: &Instance,
    a: usize,
    b: usize,
    pred: mwsj_geom::Predicate,
) -> Option<(f64, u64)> {
    let (na, nb) = (
        instance.cardinality(a) as u64,
        instance.cardinality(b) as u64,
    );
    if na.checked_mul(nb)? > OBSERVED_PAIR_BUDGET {
        return None;
    }
    let mut pairs = 0u64;
    for ra in instance.rects(a) {
        for rb in instance.rects(b) {
            if pred.eval(ra, rb) {
                pairs += 1;
            }
        }
    }
    Some((pairs as f64 / (na as f64 * nb as f64), pairs))
}

/// Builds the pre-run (estimate-only) explain report of `instance`:
/// per-edge estimated + dataset-observed selectivities, per-variable hit
/// rates, predicted per-query accesses and tree quality. All observed
/// *traversal* figures are zero and `observed_node_accesses` is `None`.
///
/// Deterministic: a pure function of the instance, so repeated calls (and
/// `mwsj explain` invocations) serialise byte-identically.
pub fn build_explain_report(instance: &Instance) -> ExplainReport {
    let graph = instance.graph();
    let n = instance.n_vars();
    let cards: Vec<usize> = (0..n).map(|v| instance.cardinality(v)).collect();
    let extents: Vec<f64> = (0..n).map(|v| instance.avg_extent(v)).collect();
    let estimate = estimate_workload(graph, &cards, &extents);

    let edges = graph
        .edges()
        .iter()
        .zip(&estimate.edge_selectivities)
        .map(|(e, &sel)| {
            let observed = observed_edge_selectivity(instance, e.a, e.b, e.pred);
            EdgeExplain {
                a: e.a as u64,
                b: e.b as u64,
                predicate: e.pred.to_string(),
                estimated_selectivity: sel,
                observed_selectivity: observed.map(|(s, _)| s),
                observed_pairs: observed.map(|(_, p)| p),
            }
        })
        .collect();

    let vars = (0..n)
        .map(|v| {
            let stats = instance.tree(v).stats();
            let height = stats.height as usize;
            let windows: Vec<f64> = graph
                .neighbors(v)
                .iter()
                .map(|&(u, _)| extents[u])
                .collect();
            // Window-query cost model per level, union-bounded over the
            // conjunctive windows and clamped at the level's node count.
            let predicted = (0..height)
                .map(|l| {
                    let per_window: f64 = windows
                        .iter()
                        .map(|&w| {
                            stats.area_per_level[l]
                                + w * stats.perimeter_per_level[l]
                                + w * w * stats.nodes_per_level[l] as f64
                        })
                        .sum();
                    per_window.min(stats.nodes_per_level[l] as f64)
                })
                .sum();
            // Grid-backend cost: expected candidate cells of a window of
            // extent w are `(1 + w/cell_w)·(1 + w/cell_h)` (a window spans
            // one cell plus one boundary crossing per cell length), summed
            // over the neighbour windows and clamped at the cell count;
            // each candidate cell costs a full scan of its occupancy.
            let grid = (instance.backend() == BackendKind::Grid).then(|| {
                let g = instance.grid(v);
                let gs = g.stats();
                let cell_w = g.bbox().width() / gs.nx as f64;
                let cell_h = g.bbox().height() / gs.ny as f64;
                let cells = gs.cells as f64;
                let predicted_cells = windows
                    .iter()
                    .map(|&w| ((1.0 + w / cell_w) * (1.0 + w / cell_h)).min(cells))
                    .sum::<f64>()
                    .min(cells);
                GridQuality {
                    cells: gs.cells,
                    occupied_cells: gs.occupied_cells,
                    replication_factor: gs.replication_factor,
                    avg_occupancy: gs.avg_occupancy,
                    max_occupancy: gs.max_occupancy,
                    predicted_cells_per_query: predicted_cells,
                    predicted_cost_per_query: predicted_cells * gs.avg_occupancy,
                }
            });
            VarExplain {
                var: v as u64,
                cardinality: cards[v] as u64,
                avg_extent: extents[v],
                expected_window_hits: estimate.window_hit_rates[v],
                predicted_accesses_per_query: predicted,
                observed_accesses: 0,
                accesses_per_level: vec![0; height],
                tree: TreeQuality {
                    height: stats.height as u64,
                    nodes: stats.nodes as u64,
                    avg_fill: stats.avg_fill,
                    fill_per_level: stats.fill_per_level,
                    overlap_factor_per_level: stats.overlap_factor_per_level,
                    dead_space_per_level: stats.dead_space_per_level,
                    perimeter_per_level: stats.perimeter_per_level,
                },
                grid,
            }
        })
        .collect();

    ExplainReport {
        model: estimate.model.name().to_string(),
        expected_solutions: estimate.expected_solutions,
        edges,
        vars,
        observed_node_accesses: None,
    }
}

/// Builds the post-run explain report: [`build_explain_report`] with the
/// observed side filled in from `stats` — the per-variable × per-level
/// attribution rows and the shared node-access total.
pub fn explain_report_for_run(instance: &Instance, stats: &RunStats) -> ExplainReport {
    let mut report = build_explain_report(instance);
    for (v, var) in report.vars.iter_mut().enumerate() {
        if let Some(levels) = stats.access_profile.per_var.get(v) {
            var.observed_accesses = levels.iter().sum();
            // Keep the estimate-side row length (the tree height); absorb
            // may have grown rows, but never beyond any real tree height.
            for (slot, &count) in var.accesses_per_level.iter_mut().zip(levels) {
                *slot = count;
            }
        }
    }
    report.observed_node_accesses = Some(stats.node_accesses);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwsj_datagen::{hard_region_density, Dataset, QueryShape};
    use mwsj_query::QueryGraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn paper_instance(shape: QueryShape, n: usize, card: usize, seed: u64) -> Instance {
        let density = hard_region_density(shape, n, card, 1.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let datasets: Vec<Dataset> = (0..n)
            .map(|_| Dataset::uniform(card, density, &mut rng))
            .collect();
        Instance::new(shape.graph(n), datasets).unwrap()
    }

    #[test]
    fn pre_run_report_is_deterministic_and_estimate_only() {
        let inst = paper_instance(QueryShape::Chain, 4, 200, 101);
        let a = build_explain_report(&inst);
        let b = build_explain_report(&inst);
        assert_eq!(a, b);
        assert_eq!(
            format!("{{{}}}", a.to_json_fields()),
            format!("{{{}}}", b.to_json_fields()),
            "serialisation must be byte-stable"
        );
        assert!(!a.has_observed());
        assert_eq!(a.attributed_accesses(), 0);
        assert_eq!(a.model, "acyclic");
        assert_eq!(a.edges.len(), 3);
        assert_eq!(a.vars.len(), 4);
        for var in &a.vars {
            assert_eq!(var.accesses_per_level.len(), var.tree.height as usize);
            assert!(var.predicted_accesses_per_query > 0.0);
            assert!(var.predicted_accesses_per_query <= var.tree.nodes as f64);
        }
        // Base-suite scale is under the pair budget: every edge observed.
        for edge in &a.edges {
            assert!(edge.observed_selectivity.is_some());
        }
    }

    #[test]
    fn observed_selectivity_matches_brute_force_and_respects_budget() {
        let inst = paper_instance(QueryShape::Clique, 3, 100, 7);
        let pred = mwsj_geom::Predicate::Intersects;
        let (sel, pairs) = observed_edge_selectivity(&inst, 0, 1, pred).unwrap();
        let manual = inst
            .rects(0)
            .iter()
            .flat_map(|ra| inst.rects(1).iter().map(move |rb| pred.eval(ra, rb)))
            .filter(|&hit| hit)
            .count() as u64;
        assert_eq!(pairs, manual);
        assert!((sel - manual as f64 / 1e4).abs() < 1e-12);

        // A synthetic over-budget product is skipped, not counted.
        let big = (OBSERVED_PAIR_BUDGET as f64).sqrt() as usize + 1;
        let d: Vec<_> = (0..2)
            .map(|_| {
                let mut rng = StdRng::seed_from_u64(9);
                Dataset::uniform(big, 0.01, &mut rng)
            })
            .collect();
        let inst = Instance::new(QueryGraph::chain(2), d).unwrap();
        assert_eq!(observed_edge_selectivity(&inst, 0, 1, pred), None);
    }

    /// Acceptance gate (DESIGN.md §5i): on the pinned base-suite
    /// workloads (the exact specs behind `BENCH_baseline.json`), every
    /// per-edge [TSS98] estimate is within the documented error factor of
    /// the exact observed selectivity.
    #[test]
    fn base_suite_edge_estimates_are_within_documented_error_factor() {
        const DOCUMENTED_ERROR_FACTOR: f64 = 2.0;
        let cases = [
            ("chain-n4-hard", QueryShape::Chain, 1.0, true, 101u64),
            ("chain-n4-easy", QueryShape::Chain, 4.0, false, 102),
            ("clique-n4-hard", QueryShape::Clique, 1.0, true, 103),
            ("clique-n4-easy", QueryShape::Clique, 4.0, false, 104),
        ];
        for (name, shape, target_solutions, plant, seed) in cases {
            let workload = mwsj_datagen::WorkloadSpec {
                shape,
                n_vars: 4,
                cardinality: 200,
                target_solutions,
                plant,
                distribution: mwsj_datagen::Distribution::Uniform,
                seed,
            }
            .generate();
            let inst = Instance::new(workload.graph, workload.datasets).unwrap();
            let report = build_explain_report(&inst);
            for edge in &report.edges {
                let factor = edge
                    .error_factor()
                    .unwrap_or_else(|| panic!("edge ({},{}) of {name} unobserved", edge.a, edge.b));
                assert!(
                    factor <= DOCUMENTED_ERROR_FACTOR,
                    "{name} edge ({},{}) estimate {} vs observed {:?}: \
                     error factor {factor} exceeds {DOCUMENTED_ERROR_FACTOR}",
                    edge.a,
                    edge.b,
                    edge.estimated_selectivity,
                    edge.observed_selectivity,
                );
            }
        }
    }

    #[test]
    fn grid_backend_report_carries_grid_quality_and_round_trips() {
        let inst = paper_instance(QueryShape::Chain, 3, 100, 12).with_backend(BackendKind::Grid);
        let report = build_explain_report(&inst);
        for var in &report.vars {
            let g = var.grid.as_ref().expect("grid quality on grid backend");
            assert!(g.cells >= g.occupied_cells);
            assert!(g.occupied_cells > 0);
            assert!(g.replication_factor >= 1.0);
            assert!(g.predicted_cells_per_query > 0.0);
            assert!(g.predicted_cells_per_query <= g.cells as f64);
            let expected_cost = g.predicted_cells_per_query * g.avg_occupancy;
            assert!((g.predicted_cost_per_query - expected_cost).abs() < 1e-9);
        }
        let json = format!("{{{}}}", report.to_json_fields());
        let parsed = ExplainReport::from_json(&mwsj_obs::Json::parse(&json).unwrap()).unwrap();
        assert_eq!(parsed, report);

        // R*-tree reports stay grid-free, keeping pinned snapshots
        // byte-identical.
        let plain = build_explain_report(&paper_instance(QueryShape::Chain, 3, 100, 12));
        assert!(plain.vars.iter().all(|v| v.grid.is_none()));
    }

    #[test]
    fn run_report_attaches_profile_and_counter_total() {
        let inst = paper_instance(QueryShape::Chain, 3, 50, 11);
        let mut stats = RunStats {
            access_profile: crate::result::AccessProfile::for_instance(&inst),
            ..RunStats::default()
        };
        stats.node_accesses = 30;
        let rows = stats.access_profile.levels_mut(1);
        rows[0] = 20;
        if rows.len() > 1 {
            rows[1] = 5;
        }
        let report = explain_report_for_run(&inst, &stats);
        assert_eq!(report.observed_node_accesses, Some(30));
        assert_eq!(
            report.vars[1].observed_accesses,
            stats.access_profile.var_total(1)
        );
        assert_eq!(report.vars[0].observed_accesses, 0);
        assert!(report.attributed_accesses() <= 30);
    }
}
