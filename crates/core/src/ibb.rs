//! Indexed Branch and Bound (paper §6).
//!
//! A systematic algorithm that retrieves the **best** solution — exact if
//! one exists, otherwise the approximate solution with the minimum
//! inconsistency degree. It extends window reduction \[PMT99\]: variables are
//! instantiated depth-first via (multi-)window queries on the
//! corresponding R*-tree; when no object satisfies *all* conditions
//! against the instantiated prefix, the algorithm does not immediately
//! backtrack but keeps descending as long as the partial solution can
//! still beat the incumbent. Objects satisfying more conditions are tried
//! first, exactly like `find best value`.
//!
//! The incumbent bound is what the two-step methods exploit: seeding IBB
//! with a high-similarity heuristic solution prunes the vast low-quality
//! part of the search space up front (paper Fig. 11).

use crate::budget::{SearchBudget, SearchContext};
use crate::candidates::candidates_with_counts;
use crate::driver::SearchDriver;
use crate::instance::Instance;
use crate::order::connectivity_order;
use crate::result::RunOutcome;
use mwsj_geom::{Predicate, Rect};
use mwsj_obs::ObsHandle;
use mwsj_query::{Solution, VarId};

/// Configuration of [`Ibb`].
#[derive(Debug, Clone)]
pub struct IbbConfig {
    /// Incumbent to start from — typically the best solution of a heuristic
    /// pre-step (the two-step methods of §6). IBB then only explores
    /// branches that can *strictly* beat it.
    pub initial: Option<Solution>,
    /// Stop as soon as an exact (zero-violation) solution is found
    /// (`true`, the default — the paper's Fig. 11 measures exactly this
    /// time) instead of exhausting the space to *prove* optimality.
    pub stop_at_exact: bool,
}

impl Default for IbbConfig {
    fn default() -> Self {
        IbbConfig::new()
    }
}

impl IbbConfig {
    /// Default configuration: no initial bound, stop at the first exact
    /// solution.
    pub fn new() -> Self {
        IbbConfig {
            initial: None,
            stop_at_exact: true,
        }
    }

    /// Seeds the search with a heuristic solution.
    pub fn with_initial(solution: Solution) -> Self {
        IbbConfig {
            initial: Some(solution),
            stop_at_exact: true,
        }
    }
}

/// Indexed branch and bound.
#[derive(Debug, Clone, Default)]
pub struct Ibb {
    config: IbbConfig,
}

struct SearchState<'a, 'd> {
    instance: &'a Instance,
    order: Vec<VarId>,
    /// position of each variable in `order`.
    position: Vec<usize>,
    driver: &'d mut SearchDriver,
    stop_at_exact: bool,
    /// Set when the budget ran out (result not proven optimal).
    truncated: bool,
}

impl Ibb {
    /// Creates the algorithm.
    pub fn new(config: IbbConfig) -> Self {
        Ibb { config }
    }

    /// Runs IBB. The search is deterministic; the budget caps wall-clock /
    /// expanded candidates (one step = one candidate instantiation).
    /// `RunOutcome::proven_optimal` reports whether the space was exhausted
    /// (or an exact solution was found), i.e. whether the answer is the
    /// global best.
    pub fn run(&self, instance: &Instance, budget: &SearchBudget) -> RunOutcome {
        self.run_with_obs(instance, budget, &ObsHandle::disabled())
    }

    /// Runs IBB and reports counters, phase timings ("ibb") and improvement
    /// / stop-reason / `run_end` events through `obs`.
    pub fn run_with_obs(
        &self,
        instance: &Instance,
        budget: &SearchBudget,
        obs: &ObsHandle,
    ) -> RunOutcome {
        self.search(
            instance,
            &SearchContext::local(*budget).with_obs(obs.clone()),
        )
    }

    /// Runs IBB under an explicit [`SearchContext`] — the entry point used
    /// by composites (e.g. [`crate::TwoStep`]) to mark the run nested so it
    /// does not emit its own `run_end`.
    pub fn search(&self, instance: &Instance, ctx: &SearchContext) -> RunOutcome {
        let graph = instance.graph();
        let order = connectivity_order(graph);
        let mut position = vec![0usize; order.len()];
        for (k, &v) in order.iter().enumerate() {
            position[v] = k;
        }

        let mut driver = SearchDriver::new(instance, ctx);
        let _phase = ctx.obs().timer.span("ibb");
        if let Some(sol) = &self.config.initial {
            driver.seed_incumbent(sol, instance.violations(sol));
        }

        let mut state = SearchState {
            instance,
            order,
            position,
            driver: &mut driver,
            stop_at_exact: self.config.stop_at_exact,
            truncated: false,
        };

        let mut assignment = vec![usize::MAX; instance.n_vars()];
        let exact_found = descend(&mut state, 0, &mut assignment, 0);

        let proven_optimal = !state.truncated || (exact_found && state.stop_at_exact);
        driver.finish_systematic(instance, proven_optimal)
    }
}

/// Depth-first search. Returns `true` if an exact solution was found and
/// the search should stop.
fn descend(
    state: &mut SearchState<'_, '_>,
    depth: usize,
    assignment: &mut [usize],
    violations_so_far: usize,
) -> bool {
    let instance = state.instance;
    let graph = instance.graph();
    let n = graph.n_vars();

    if depth == n {
        // Strictly better by construction of the bound checks.
        debug_assert!(violations_so_far < state.driver.bound());
        let sol = Solution::new(assignment.to_vec());
        state.driver.record_best(&sol, violations_so_far);
        return violations_so_far == 0 && state.stop_at_exact;
    }

    let var = state.order[depth];
    // Windows: assignments of neighbours that precede `var` in the order.
    let windows: Vec<(Predicate, Rect)> = graph
        .neighbors(var)
        .iter()
        .filter(|&&(u, _)| state.position[u] < depth)
        .map(|&(u, pred)| (pred, instance.rect(u, assignment[u])))
        .collect();
    let assigned_neighbors = windows.len() as u32;

    // Candidate objects satisfying ≥ 1 window, best first.
    let mut candidates = if windows.is_empty() {
        Vec::new()
    } else {
        {
            let (node_accesses, levels) = state.driver.tally(var);
            candidates_with_counts(instance, var, &windows, 1, node_accesses, levels)
        }
    };
    candidates.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    // Try positive-count candidates in decreasing-count order.
    let mut positive = std::collections::HashSet::new();
    for &(obj, count) in &candidates {
        positive.insert(obj);
        let new_violations = violations_so_far + (assigned_neighbors - count) as usize;
        if new_violations >= state.driver.bound() {
            // Candidates are sorted by count desc: every later candidate is
            // at least as bad.
            break;
        }
        if state.driver.exhausted() {
            state.truncated = true;
            return false;
        }
        state.driver.step();
        assignment[var] = obj;
        if descend(state, depth + 1, assignment, new_violations) {
            return true;
        }
    }

    // Zero-count region (or no windows at all, e.g. the first variable):
    // every remaining object violates all `assigned_neighbors` conditions.
    let zero_violations = violations_so_far + assigned_neighbors as usize;
    if zero_violations < state.driver.bound() {
        for obj in 0..instance.cardinality(var) {
            if positive.contains(&obj) {
                continue;
            }
            // Re-check: the incumbent may have improved mid-loop.
            if zero_violations >= state.driver.bound() {
                break;
            }
            if state.driver.exhausted() {
                state.truncated = true;
                return false;
            }
            state.driver.step();
            assignment[var] = obj;
            if descend(state, depth + 1, assignment, zero_violations) {
                return true;
            }
        }
    }

    assignment[var] = usize::MAX;
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwsj_datagen::{
        count_exact_solutions, hard_region_density, plant_solution, Dataset, QueryShape,
    };
    use mwsj_query::QueryGraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn planted_instance(
        seed: u64,
        shape: QueryShape,
        n: usize,
        cardinality: usize,
    ) -> (Instance, Solution) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = hard_region_density(shape, n, cardinality, 1.0);
        let mut datasets: Vec<Dataset> = (0..n)
            .map(|_| Dataset::uniform(cardinality, d, &mut rng))
            .collect();
        let graph = shape.graph(n);
        let planted = plant_solution(&mut datasets, &graph, &mut rng);
        let inst = Instance::new(graph, datasets).unwrap();
        (inst, planted)
    }

    #[test]
    fn ibb_finds_planted_exact_solution() {
        let (inst, _) = planted_instance(101, QueryShape::Clique, 4, 150);
        let outcome = Ibb::new(IbbConfig::new()).run(&inst, &SearchBudget::seconds(30.0));
        assert!(outcome.is_exact(), "violations {}", outcome.best_violations);
        assert!(outcome.proven_optimal);
        let rect_of = inst.rect_of();
        assert!(inst.graph().is_exact(&outcome.best, rect_of));
    }

    #[test]
    fn ibb_returns_global_best_on_unsatisfiable_instance() {
        // Sparse datasets with no exact solution: IBB must return the true
        // minimum-violation assignment, verified by brute force.
        let mut rng = StdRng::seed_from_u64(102);
        let n = 3;
        let cardinality = 12;
        let d = 0.002; // far below the hard region
        let datasets: Vec<Dataset> = (0..n)
            .map(|_| Dataset::uniform(cardinality, d, &mut rng))
            .collect();
        let graph = QueryGraph::clique(n);
        let ds_for_count = datasets.clone();
        let inst = Instance::new(graph, datasets).unwrap();
        assert_eq!(
            count_exact_solutions(&ds_for_count, inst.graph(), 1),
            0,
            "instance must be unsatisfiable for this test"
        );

        // Brute force minimum violations.
        let mut best_brute = usize::MAX;
        for a in 0..cardinality {
            for b in 0..cardinality {
                for c in 0..cardinality {
                    let v = inst.violations(&Solution::new(vec![a, b, c]));
                    best_brute = best_brute.min(v);
                }
            }
        }

        let mut config = IbbConfig::new();
        config.stop_at_exact = false; // exhaust the space
        let outcome = Ibb::new(config).run(&inst, &SearchBudget::seconds(30.0));
        assert!(outcome.proven_optimal);
        assert_eq!(outcome.best_violations, best_brute);
    }

    #[test]
    fn initial_bound_prunes_work() {
        let (inst, planted) = planted_instance(103, QueryShape::Clique, 4, 120);
        let unseeded = Ibb::new(IbbConfig::new()).run(&inst, &SearchBudget::seconds(30.0));
        // Seed with a near-perfect solution: one variable knocked off.
        let mut near = planted.clone();
        near.set(0, (planted.get(0) + 1) % inst.cardinality(0));
        let seeded =
            Ibb::new(IbbConfig::with_initial(near)).run(&inst, &SearchBudget::seconds(30.0));
        assert!(seeded.is_exact());
        assert!(
            seeded.stats.steps <= unseeded.stats.steps,
            "seeded {} vs unseeded {} steps",
            seeded.stats.steps,
            unseeded.stats.steps
        );
    }

    #[test]
    fn budget_truncation_is_reported() {
        let (inst, _) = planted_instance(104, QueryShape::Clique, 5, 400);
        let outcome = Ibb::new(IbbConfig {
            initial: None,
            stop_at_exact: false,
        })
        .run(&inst, &SearchBudget::iterations(50));
        assert!(
            !outcome.proven_optimal,
            "a 50-step run cannot exhaust this space"
        );
    }

    #[test]
    fn ibb_agrees_with_brute_force_on_chain() {
        let mut rng = StdRng::seed_from_u64(105);
        let datasets: Vec<Dataset> = (0..3)
            .map(|_| Dataset::uniform(15, 0.05, &mut rng))
            .collect();
        let graph = QueryGraph::chain(3);
        let inst = Instance::new(graph, datasets).unwrap();
        let mut best_brute = usize::MAX;
        for a in 0..15 {
            for b in 0..15 {
                for c in 0..15 {
                    best_brute = best_brute.min(inst.violations(&Solution::new(vec![a, b, c])));
                }
            }
        }
        let outcome = Ibb::new(IbbConfig {
            initial: None,
            stop_at_exact: false,
        })
        .run(&inst, &SearchBudget::seconds(30.0));
        assert_eq!(outcome.best_violations, best_brute);
        assert!(outcome.proven_optimal);
    }
}
