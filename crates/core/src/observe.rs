//! Glue between the search layer and `mwsj-obs`.
//!
//! The hot loops keep their plain `u64` counters in [`RunStats`] — an
//! enabled-or-not check per `find best value` call would be pure overhead —
//! and flush them into the metrics registry **once per run** when the run
//! finishes. Event emission (incumbent improvements, stop reasons) happens
//! at the same already-cold points, so a disabled [`ObsHandle`] costs one
//! branch per run, not per step.

use crate::budget::BudgetClock;
use crate::instance::Instance;
use crate::result::{RunOutcome, RunStats};
use mwsj_obs::{ObsHandle, ResourceReport, RunEvent};

/// Canonical metric names every search algorithm reports under.
pub mod metric {
    /// Counter: algorithm steps consumed (budget units).
    pub const STEPS: &str = "search.steps";
    /// Counter: ILS restarts / SEA generations.
    pub const RESTARTS: &str = "search.restarts";
    /// Counter: local maxima reached.
    pub const LOCAL_MAXIMA: &str = "search.local_maxima";
    /// Counter: R*-tree nodes visited by index-driven traversals.
    pub const NODE_ACCESSES: &str = "search.node_accesses";
    /// Counter: incumbent improvements.
    pub const IMPROVEMENTS: &str = "search.improvements";
    /// Histogram: steps per run (one record per finished run).
    pub const STEPS_PER_RUN: &str = "search.steps_per_run";
    /// Counter: window-cache queries answered without a traversal.
    pub const CACHE_HITS: &str = "cache.hits";
    /// Counter: window-cache queries that ran the index traversal.
    pub const CACHE_MISSES: &str = "cache.misses";
    /// Counter: cached results invalidated by a neighbour reassignment.
    pub const CACHE_INVALIDATIONS_REASSIGN: &str = "cache.invalidations.reassign";
    /// Counter: cached results invalidated by a penalty-version bump.
    pub const CACHE_INVALIDATIONS_PENALTY: &str = "cache.invalidations.penalty";
    /// Counter: window-cache resident bytes at run end (sums across
    /// merged restarts — the aggregate cache working set).
    pub const CACHE_BYTES: &str = "cache.bytes";

    /// Per-variable counter name, e.g. `cache.var003.hits`. `kind` is one
    /// of `hits` / `misses` / `invalidations.reassign` /
    /// `invalidations.penalty`.
    pub fn cache_var(var: usize, kind: &str) -> String {
        format!("cache.var{var:03}.{kind}")
    }
}

/// Flushes a finished run's counters into the registry (no-op when the
/// registry is disabled).
pub(crate) fn flush_stats(obs: &ObsHandle, stats: &RunStats) {
    if !obs.metrics.is_enabled() {
        return;
    }
    let m = &obs.metrics;
    m.counter(metric::STEPS).add(stats.steps);
    m.counter(metric::RESTARTS).add(stats.restarts);
    m.counter(metric::LOCAL_MAXIMA).add(stats.local_maxima);
    m.counter(metric::NODE_ACCESSES).add(stats.node_accesses);
    m.counter(metric::IMPROVEMENTS).add(stats.improvements);
    m.histogram(metric::STEPS_PER_RUN).record(stats.steps);
    let cache = &stats.cache;
    if !cache.per_var.is_empty() {
        m.counter(metric::CACHE_HITS).add(cache.hits());
        m.counter(metric::CACHE_MISSES).add(cache.misses());
        m.counter(metric::CACHE_INVALIDATIONS_REASSIGN)
            .add(cache.invalidations_reassign());
        m.counter(metric::CACHE_INVALIDATIONS_PENALTY)
            .add(cache.invalidations_penalty());
        m.counter(metric::CACHE_BYTES).add(cache.bytes);
        for (var, v) in cache.per_var.iter().enumerate() {
            m.counter(&metric::cache_var(var, "hits")).add(v.hits);
            m.counter(&metric::cache_var(var, "misses")).add(v.misses);
            m.counter(&metric::cache_var(var, "invalidations.reassign"))
                .add(v.invalidations_reassign);
            m.counter(&metric::cache_var(var, "invalidations.penalty"))
                .add(v.invalidations_penalty);
        }
    }
}

/// Emits an incumbent-improvement event (no-op without a sink).
pub(crate) fn emit_improvement(clock: &BudgetClock, violations: usize, edges: usize) {
    let obs = clock.obs();
    if !obs.has_sink() {
        return;
    }
    obs.emit(RunEvent::Improvement {
        restart: obs.restart(),
        step: clock.steps(),
        violations: violations as u64,
        similarity: 1.0 - violations as f64 / edges as f64,
        elapsed_secs: clock.elapsed().as_secs_f64(),
    });
}

/// Emits the `run_end` summary event for a finished outcome (no-op without
/// a sink). Ownership rule: exactly **one** `run_end` per top-level run —
/// the search driver emits it for standalone runs, composites
/// ([`crate::TwoStep`], [`crate::ParallelPortfolio`]) emit one merged event
/// and mark their component runs nested instead.
/// Emits the `resource_report` memory table for a finished run (no-op
/// without a sink). Follows the `run_end` ownership rule: one report per
/// top-level run, emitted just before its `run_end`. Components: the
/// instance's index structures (unique datasets only — self-joins share
/// one), the window cache(s) and the retained top solutions.
/// Emits the `explain_report` estimate-vs-actual audit for a finished run
/// (no-op without a sink). Follows the `run_end` ownership rule: one
/// report per top-level run, emitted just before its `resource_report`.
pub(crate) fn emit_explain_report(obs: &ObsHandle, instance: &Instance, outcome: &RunOutcome) {
    if !obs.has_sink() {
        return;
    }
    let report = crate::explain::explain_report_for_run(instance, &outcome.stats);
    obs.emit(RunEvent::ExplainReport { report });
}

pub(crate) fn emit_resource_report(obs: &ObsHandle, instance: &Instance, outcome: &RunOutcome) {
    if !obs.has_sink() {
        return;
    }
    let mut report = ResourceReport::new();
    instance.fill_resource_report(&mut report);
    if outcome.stats.cache.bytes > 0 {
        report.record("window_cache", outcome.stats.cache.bytes);
    }
    report.record(
        "top_solutions",
        crate::result::solutions_bytes(&outcome.top_solutions),
    );
    // The observability layer accounts for itself: a retaining sink (the
    // flight recorder) reports its ring bytes here.
    obs.fill_sink_resources(&mut report);
    obs.emit(RunEvent::ResourceReport { report });
}

pub(crate) fn emit_run_end(obs: &ObsHandle, outcome: &RunOutcome) {
    if !obs.has_sink() {
        return;
    }
    obs.emit(RunEvent::RunEnd {
        best_violations: outcome.best_violations as u64,
        best_similarity: outcome.best_similarity,
        steps: outcome.stats.steps,
        node_accesses: outcome.stats.node_accesses,
        local_maxima: outcome.stats.local_maxima,
        improvements: outcome.stats.improvements,
        restarts: outcome.stats.restarts,
        elapsed_secs: outcome.stats.elapsed.as_secs_f64(),
        proven_optimal: outcome.proven_optimal,
    });
}
