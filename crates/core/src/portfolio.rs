//! Parallel multi-restart portfolio for the anytime heuristics.
//!
//! The paper's heuristics are *anytime* searches whose quality-per-second
//! is the headline metric (Figs. 10a–c), yet each run is inherently
//! sequential. A [`ParallelPortfolio`] recovers hardware parallelism the
//! way portfolio solvers do: it fans out `K` **independently seeded
//! restarts** of one algorithm across a scoped thread pool, lets them
//! share the best-known violation count through an atomic bound
//! ([`SharedSearchState`], mirroring how the two-step scheme of §6 feeds a
//! heuristic bound into IBB), and merges the per-restart results with a
//! **deterministic, seed-ordered reduction**.
//!
//! # Determinism guarantee
//!
//! For a **step-limited** budget the portfolio's solution-valued outputs —
//! best solution, violation count, similarity, the merged
//! [`TopSolutions`] ordering, the merged trace's `(step, similarity)`
//! pairs, and the summed step/restart counters — are a pure function of
//! `(algorithm, instance, master_seed, restarts)`. They are bit-identical
//! run-to-run **and independent of the thread count**, because:
//!
//! * restart `i` always receives seed [`derive_seed`]`(master_seed, i)`
//!   and the `i`-th share of [`SearchBudget::split`], regardless of which
//!   thread executes it;
//! * the reduction folds per-restart results in restart order, never
//!   completion order;
//! * the cross-restart cutoff (stop when the shared bound proves
//!   similarity 1 was reached) is only armed for **time-limited** budgets
//!   under [`CutoffPolicy::Auto`], because whether a racing restart gets
//!   cut off mid-climb depends on scheduling. Time-limited runs are
//!   already non-reproducible — the paper's own setting — so there the
//!   cutoff is pure win: late restarts stop burning CPU the moment any
//!   restart publishes an exact (zero-violation) solution, which is the
//!   only *sound* cutoff for a heuristic (nothing beats similarity 1).
//!
//! Wall-clock fields ([`RunStats::elapsed`], [`TracePoint::elapsed`]) are
//! measured and therefore exempt from the guarantee.

use crate::budget::{SearchBudget, SearchContext, SharedSearchState, TelemetryConfig};
use crate::instance::Instance;
use crate::result::{RunOutcome, RunStats, TopSolutions, TracePoint};
use mwsj_obs::{merge_phase_snapshots, MetricsSnapshot, ObsHandle, PhaseSnapshot, RunEvent};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// An anytime search that can run under a [`SearchContext`] — the
/// interface [`ParallelPortfolio`] fans out. Every `DriveSearch`
/// implementor — the paper's heuristics ([`crate::Ils`],
/// [`crate::Gils`], [`crate::Sea`]) and the ablation baselines — gets
/// this for free via the blanket impl in the (crate-private) driver
/// module.
pub trait AnytimeSearch: Sync {
    /// Display name (matches the paper's figures).
    fn name(&self) -> &'static str;

    /// Runs one search to budget exhaustion under `ctx`.
    fn search(&self, instance: &Instance, ctx: &SearchContext, rng: &mut StdRng) -> RunOutcome;
}

/// When cooperating restarts may stop early on a shared similarity-1
/// certificate (see the module docs for why this is the only sound
/// cross-restart cutoff).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CutoffPolicy {
    /// Cut off only for time-limited budgets; pure step budgets stay
    /// bit-reproducible. The default.
    #[default]
    Auto,
    /// Always cut off (step-budgeted runs may under-consume their budget
    /// non-deterministically; solution quality is unaffected — the merged
    /// best is an exact solution whenever a cutoff fires).
    Always,
    /// Never cut off; every restart consumes its full budget share.
    Never,
}

impl CutoffPolicy {
    fn armed(self, budget: &SearchBudget) -> bool {
        match self {
            CutoffPolicy::Auto => budget.time_limit.is_some(),
            CutoffPolicy::Always => true,
            CutoffPolicy::Never => false,
        }
    }
}

/// Configuration of a [`ParallelPortfolio`].
#[derive(Debug, Clone)]
pub struct PortfolioConfig {
    /// Number of independently seeded restarts `K` (≥ 1).
    pub restarts: usize,
    /// Worker threads; `0` uses the machine's available parallelism.
    /// Never more threads than restarts are spawned. The thread count
    /// affects wall-clock only, never results (see the module docs).
    pub threads: usize,
    /// Capacity of the merged [`TopSolutions`] list.
    pub top_k: usize,
    /// Cross-restart cutoff policy.
    pub cutoff: CutoffPolicy,
    /// Live-telemetry configuration applied to every restart: each
    /// restart emits its own restart-tagged `progress` / `stall_detected`
    /// events through the shared sink, and the stall watchdog (with
    /// `stall_abort`) stops restarts individually.
    pub telemetry: TelemetryConfig,
}

impl PortfolioConfig {
    /// `restarts` restarts on `threads` threads, defaults elsewhere.
    pub fn new(restarts: usize, threads: usize) -> Self {
        PortfolioConfig {
            restarts,
            threads,
            ..PortfolioConfig::default()
        }
    }
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            restarts: 4,
            threads: 0,
            top_k: crate::result::DEFAULT_TOP_K,
            cutoff: CutoffPolicy::Auto,
            telemetry: TelemetryConfig::default(),
        }
    }
}

/// The result of one seeded restart, tagged with its position in the
/// portfolio (reduction order) and the seed that produced it.
#[derive(Debug, Clone)]
pub struct RestartOutcome {
    /// Restart index in `0..restarts` (the reduction order).
    pub index: usize,
    /// The derived RNG seed this restart ran with.
    pub seed: u64,
    /// The restart's own search outcome.
    pub outcome: RunOutcome,
    /// Snapshot of the restart's private metrics registry (empty when the
    /// portfolio ran without observability).
    pub metrics: MetricsSnapshot,
    /// Snapshot of the restart's phase timings (empty when disabled).
    pub phases: Vec<PhaseSnapshot>,
}

/// The merged result of a portfolio run.
#[derive(Debug, Clone)]
pub struct PortfolioOutcome {
    /// The deterministic seed-ordered reduction of all restarts. Its
    /// `stats` sums the per-restart counters; `stats.elapsed` is the
    /// portfolio's wall-clock time.
    pub merged: RunOutcome,
    /// Per-restart outcomes in restart (seed) order.
    pub restarts: Vec<RestartOutcome>,
    /// Worker threads actually used.
    pub threads_used: usize,
    /// Final value of the shared bound: the best violation count any
    /// restart published. `None` if no restart got far enough to publish
    /// (zero-step budgets). Feed this into [`crate::Ibb`] via
    /// [`crate::IbbConfig`] to mirror the two-step scheme with a
    /// parallel first step.
    pub bound_violations: Option<usize>,
    /// Seed-ordered merge of the per-restart metrics snapshots: counters
    /// sum, gauges take the maximum, histograms add bucket-wise. Under a
    /// step budget this is bit-identical across thread counts, exactly
    /// like the solution-valued outputs (see the module docs).
    pub metrics: MetricsSnapshot,
    /// Merge of the per-restart phase timings (wall-clock fields are
    /// measured and exempt from the determinism guarantee).
    pub phases: Vec<PhaseSnapshot>,
}

/// Derives the RNG seed of restart `index` from the portfolio's master
/// seed: a SplitMix64 mix of `master ^ (index + 1)·φ64`. Stable across
/// releases — recorded seeds in results files stay replayable.
pub fn derive_seed(master: u64, index: usize) -> u64 {
    const PHI: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut z = master ^ (index as u64 + 1).wrapping_mul(PHI);
    z = z.wrapping_add(PHI);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `K` independently seeded restarts of one anytime algorithm across
/// a scoped thread pool and reduces their results deterministically. See
/// the module docs for the full contract.
#[derive(Debug, Clone)]
pub struct ParallelPortfolio<A> {
    algo: A,
    config: PortfolioConfig,
}

impl<A: AnytimeSearch> ParallelPortfolio<A> {
    /// Creates the portfolio runner.
    ///
    /// # Panics
    /// Panics if `config.restarts == 0`.
    pub fn new(algo: A, config: PortfolioConfig) -> Self {
        assert!(config.restarts >= 1, "a portfolio needs at least 1 restart");
        ParallelPortfolio { algo, config }
    }

    /// The wrapped algorithm.
    pub fn algorithm(&self) -> &A {
        &self.algo
    }

    /// The configuration.
    pub fn config(&self) -> &PortfolioConfig {
        &self.config
    }

    /// Runs the portfolio: `budget` is the **total** budget (steps are
    /// split across restarts; the time limit becomes one shared absolute
    /// deadline), `master_seed` determines every restart's seed.
    pub fn run(
        &self,
        instance: &Instance,
        budget: &SearchBudget,
        master_seed: u64,
    ) -> PortfolioOutcome {
        self.run_with_obs(instance, budget, master_seed, &ObsHandle::disabled())
    }

    /// Like [`ParallelPortfolio::run`], additionally reporting through
    /// `obs`: every restart gets a private registry and timer (mirroring
    /// `obs`'s enabledness) via [`ObsHandle::for_restart`], restart
    /// lifecycle events go to the shared sink, and the per-restart
    /// snapshots are merged seed-ordered into [`PortfolioOutcome::metrics`]
    /// / [`PortfolioOutcome::phases`].
    pub fn run_with_obs(
        &self,
        instance: &Instance,
        budget: &SearchBudget,
        master_seed: u64,
        obs: &ObsHandle,
    ) -> PortfolioOutcome {
        let start = Instant::now();
        let k = self.config.restarts;
        let shares = budget.split(k);
        let shared = SharedSearchState::new();
        let cutoff = self.config.cutoff.armed(budget);
        let deadline = budget.time_limit.map(|limit| start + limit);

        let threads_used = self.effective_threads();
        let mut outcomes: Vec<RestartOutcome> = if threads_used <= 1 {
            // In-thread execution: identical results by construction (the
            // parallel path differs only in which thread runs a restart).
            (0..k)
                .map(|i| {
                    self.run_restart(
                        instance,
                        &shares[i],
                        deadline,
                        &shared,
                        cutoff,
                        master_seed,
                        i,
                        obs,
                    )
                })
                .collect()
        } else {
            let next = AtomicUsize::new(0);
            let collected: Mutex<Vec<RestartOutcome>> = Mutex::new(Vec::with_capacity(k));
            std::thread::scope(|scope| {
                for _ in 0..threads_used {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= k {
                            break;
                        }
                        let result = self.run_restart(
                            instance,
                            &shares[i],
                            deadline,
                            &shared,
                            cutoff,
                            master_seed,
                            i,
                            obs,
                        );
                        collected.lock().expect("collector poisoned").push(result);
                    });
                }
            });
            collected.into_inner().expect("collector poisoned")
        };
        // Seed order, not completion order: the reduction below must not
        // depend on thread scheduling.
        outcomes.sort_unstable_by_key(|r| r.index);

        let mut merged =
            merge_outcomes(&outcomes, instance.graph().edge_count(), self.config.top_k);
        merged.stats.elapsed = start.elapsed();
        // One `resource_report` + `run_end` for the whole portfolio: the
        // restarts themselves run under restart-scoped handles, which
        // suppresses their own emission.
        crate::observe::emit_explain_report(obs, instance, &merged);
        crate::observe::emit_resource_report(obs, instance, &merged);
        crate::observe::emit_run_end(obs, &merged);

        // Seed-ordered reduction of the per-restart snapshots: the fold
        // visits restarts in index order, so the merged values are
        // independent of which thread ran which restart.
        let mut metrics = MetricsSnapshot::default();
        for restart in &outcomes {
            metrics.merge(&restart.metrics);
        }
        let phases = merge_phase_snapshots(outcomes.iter().map(|r| r.phases.clone()));

        PortfolioOutcome {
            merged,
            restarts: outcomes,
            threads_used,
            bound_violations: shared.bound_violations(),
            metrics,
            phases,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_restart(
        &self,
        instance: &Instance,
        share: &SearchBudget,
        deadline: Option<Instant>,
        shared: &SharedSearchState,
        cutoff: bool,
        master_seed: u64,
        index: usize,
        obs: &ObsHandle,
    ) -> RestartOutcome {
        let seed = derive_seed(master_seed, index);
        let robs = obs.for_restart(index as u64);
        robs.emit(RunEvent::RestartStart {
            restart: index as u64,
            seed,
        });
        let mut ctx = SearchContext::local(*share)
            .with_shared(shared.clone(), cutoff)
            .with_obs(robs.clone())
            .with_telemetry(self.config.telemetry);
        if let Some(deadline) = deadline {
            ctx = ctx.with_deadline(deadline);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = {
            let _span = robs.timer.span(&format!("restart[{index}]"));
            self.algo.search(instance, &ctx, &mut rng)
        };
        robs.emit(RunEvent::RestartEnd {
            restart: index as u64,
            best_violations: outcome.best_violations as u64,
            steps: outcome.stats.steps,
            elapsed_secs: outcome.stats.elapsed.as_secs_f64(),
        });
        RestartOutcome {
            index,
            seed,
            metrics: robs.metrics.snapshot(),
            phases: robs.timer.snapshot(),
            outcome,
        }
    }

    fn effective_threads(&self) -> usize {
        let requested = if self.config.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.config.threads
        };
        requested.clamp(1, self.config.restarts)
    }
}

/// Folds per-restart outcomes in restart order into one [`RunOutcome`].
fn merge_outcomes(outcomes: &[RestartOutcome], edges: usize, top_k: usize) -> RunOutcome {
    assert!(!outcomes.is_empty());

    // Best solution: fewest violations, ties to the lowest restart index.
    let winner = outcomes
        .iter()
        .min_by_key(|r| (r.outcome.best_violations, r.index))
        .expect("non-empty");

    // Top list: offer every restart's list in restart order; TopSolutions
    // dedups and breaks violation ties by arrival (= restart) order.
    let mut top = TopSolutions::new(top_k);
    for restart in outcomes {
        for (sol, violations) in &restart.outcome.top_solutions {
            top.insert(sol, *violations);
        }
    }

    // Trace: all points ordered by (step, restart index), thinned to the
    // strictly improving prefix — "the best similarity known once every
    // restart has spent ≤ s steps". Deterministic for step budgets; the
    // recorded `elapsed` values are kept as measured.
    let mut points: Vec<(u64, usize, TracePoint)> = outcomes
        .iter()
        .flat_map(|r| r.outcome.trace.iter().map(move |p| (p.step, r.index, *p)))
        .collect();
    points.sort_by_key(|a| (a.0, a.1));
    let mut trace: Vec<TracePoint> = Vec::new();
    for (_, _, p) in points {
        if trace
            .last()
            .is_none_or(|last| p.similarity > last.similarity)
        {
            trace.push(p);
        }
    }

    // Counters: sums over restarts (elapsed is overwritten by the caller
    // with the portfolio's wall-clock).
    let mut stats = RunStats::default();
    for restart in outcomes {
        let s = &restart.outcome.stats;
        stats.steps += s.steps;
        stats.restarts += s.restarts;
        stats.local_maxima += s.local_maxima;
        stats.node_accesses += s.node_accesses;
        stats.improvements += s.improvements;
        stats.cache.absorb(&s.cache);
        stats.access_profile.absorb(&s.access_profile);
    }

    RunOutcome {
        best: winner.outcome.best.clone(),
        best_violations: winner.outcome.best_violations,
        best_similarity: 1.0 - winner.outcome.best_violations as f64 / edges as f64,
        stats,
        trace,
        proven_optimal: outcomes.iter().any(|r| r.outcome.proven_optimal),
        top_solutions: top.into_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gils::Gils;
    use crate::ils::Ils;
    use crate::sea::Sea;
    use mwsj_datagen::{hard_region_density, Dataset, QueryShape};

    fn hard_instance(seed: u64, shape: QueryShape, n: usize, cardinality: usize) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = hard_region_density(shape, n, cardinality, 1.0);
        let datasets: Vec<Dataset> = (0..n)
            .map(|_| Dataset::uniform(cardinality, d, &mut rng))
            .collect();
        Instance::new(shape.graph(n), datasets).unwrap()
    }

    fn assert_same_results(a: &PortfolioOutcome, b: &PortfolioOutcome) {
        assert_eq!(a.merged.best, b.merged.best);
        assert_eq!(a.merged.best_violations, b.merged.best_violations);
        assert_eq!(a.merged.top_solutions, b.merged.top_solutions);
        assert_eq!(a.merged.stats.steps, b.merged.stats.steps);
        assert_eq!(a.merged.stats.restarts, b.merged.stats.restarts);
        let steps_sim = |o: &PortfolioOutcome| -> Vec<(u64, f64)> {
            o.merged
                .trace
                .iter()
                .map(|p| (p.step, p.similarity))
                .collect()
        };
        assert_eq!(steps_sim(a), steps_sim(b));
        for (ra, rb) in a.restarts.iter().zip(&b.restarts) {
            assert_eq!(ra.index, rb.index);
            assert_eq!(ra.seed, rb.seed);
            assert_eq!(ra.outcome.best, rb.outcome.best);
            assert_eq!(ra.outcome.best_violations, rb.outcome.best_violations);
            assert_eq!(ra.outcome.stats.steps, rb.outcome.stats.steps);
        }
    }

    #[test]
    fn derived_seeds_are_distinct_and_stable() {
        let seeds: Vec<u64> = (0..64).map(|i| derive_seed(42, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "seed collision");
        // Pinned so recorded seeds stay replayable across releases.
        assert_eq!(derive_seed(42, 0), derive_seed(42, 0));
        assert_ne!(derive_seed(42, 0), derive_seed(43, 0));
    }

    #[test]
    fn parallel_matches_sequential_bit_for_bit() {
        let inst = hard_instance(90, QueryShape::Chain, 4, 300);
        let budget = SearchBudget::iterations(2_000);
        let run = |threads: usize| {
            ParallelPortfolio::new(Ils::default(), PortfolioConfig::new(4, threads))
                .run(&inst, &budget, 1234)
        };
        let sequential = run(1);
        let parallel = run(4);
        assert_eq!(sequential.threads_used, 1);
        assert_eq!(parallel.threads_used, 4);
        assert_same_results(&sequential, &parallel);
        // Repeat runs are bit-identical too.
        assert_same_results(&parallel, &run(4));
    }

    #[test]
    fn portfolio_metrics_are_bit_identical_across_thread_counts() {
        let inst = hard_instance(90, QueryShape::Chain, 4, 300);
        let budget = SearchBudget::iterations(2_000);
        let run =
            |threads: usize| {
                ParallelPortfolio::new(Ils::default(), PortfolioConfig::new(4, threads))
                    .run_with_obs(&inst, &budget, 1234, &ObsHandle::enabled())
            };
        let sequential = run(1);
        let parallel = run(4);
        assert_eq!(sequential.threads_used, 1);
        assert_eq!(parallel.threads_used, 4);
        assert_eq!(sequential.metrics, parallel.metrics);
        for (a, b) in sequential.restarts.iter().zip(&parallel.restarts) {
            assert_eq!(a.metrics, b.metrics, "restart {} metrics differ", a.index);
        }
        // Phase paths, call counts and step attribution are deterministic;
        // wall-clock is measured and exempt.
        let shape = |phases: &[PhaseSnapshot]| -> Vec<(String, u64, u64)> {
            phases
                .iter()
                .map(|p| (p.path.clone(), p.calls, p.steps))
                .collect()
        };
        assert_eq!(shape(&sequential.phases), shape(&parallel.phases));
        // The merged counters agree with the merged RunStats.
        assert_eq!(
            sequential.metrics.counter(crate::observe::metric::STEPS),
            Some(sequential.merged.stats.steps)
        );
        assert!(sequential
            .metrics
            .counter(crate::observe::metric::NODE_ACCESSES)
            .is_some_and(|n| n > 0));
        // Cache-efficiency telemetry obeys the same determinism contract:
        // counters are present, meaningful, and independent of threads.
        for name in [
            crate::observe::metric::CACHE_HITS,
            crate::observe::metric::CACHE_MISSES,
            crate::observe::metric::CACHE_BYTES,
        ] {
            assert_eq!(
                sequential.metrics.counter(name),
                parallel.metrics.counter(name),
                "{name} differs across thread counts"
            );
            assert!(
                sequential.metrics.counter(name).is_some_and(|n| n > 0),
                "{name} missing or zero"
            );
        }
        assert_eq!(
            sequential
                .metrics
                .counter(crate::observe::metric::CACHE_HITS),
            Some(sequential.merged.stats.cache.hits())
        );
        assert_eq!(
            sequential
                .metrics
                .counter(crate::observe::metric::CACHE_MISSES),
            Some(sequential.merged.stats.cache.misses())
        );
        assert_eq!(sequential.merged.stats.cache, parallel.merged.stats.cache);
    }

    #[test]
    fn disabled_obs_leaves_snapshots_empty() {
        let inst = hard_instance(95, QueryShape::Chain, 3, 150);
        let outcome = ParallelPortfolio::new(Ils::default(), PortfolioConfig::new(2, 2)).run(
            &inst,
            &SearchBudget::iterations(200),
            3,
        );
        assert_eq!(outcome.metrics, MetricsSnapshot::default());
        assert!(outcome.phases.is_empty());
    }

    #[test]
    fn portfolio_consumes_exactly_the_step_budget() {
        let inst = hard_instance(91, QueryShape::Clique, 4, 200);
        let outcome = ParallelPortfolio::new(Ils::default(), PortfolioConfig::new(3, 3)).run(
            &inst,
            &SearchBudget::iterations(1_000),
            7,
        );
        // A restart may stop early on an exact solution; otherwise the
        // shares together consume exactly the total budget.
        if outcome.restarts.iter().all(|r| !r.outcome.is_exact()) {
            assert_eq!(outcome.merged.stats.steps, 1_000);
        }
        assert!(outcome.merged.stats.steps <= 1_000);
        let per_restart: u64 = outcome.restarts.iter().map(|r| r.outcome.stats.steps).sum();
        assert_eq!(per_restart, outcome.merged.stats.steps);
    }

    #[test]
    fn merged_best_is_no_worse_than_any_restart() {
        let inst = hard_instance(92, QueryShape::Chain, 4, 300);
        let outcome = ParallelPortfolio::new(Gils::default(), PortfolioConfig::new(4, 2)).run(
            &inst,
            &SearchBudget::iterations(2_000),
            99,
        );
        for r in &outcome.restarts {
            assert!(outcome.merged.best_violations <= r.outcome.best_violations);
        }
        assert!(outcome
            .bound_violations
            .is_some_and(|b| b == outcome.merged.best_violations));
        // The winner's solution verifies against the instance.
        assert_eq!(
            inst.violations(&outcome.merged.best),
            outcome.merged.best_violations
        );
    }

    #[test]
    fn merged_trace_is_strictly_improving() {
        let inst = hard_instance(93, QueryShape::Clique, 4, 300);
        let outcome = ParallelPortfolio::new(
            Sea::new(crate::sea::SeaConfig::default()),
            PortfolioConfig::new(4, 4),
        )
        .run(&inst, &SearchBudget::iterations(400), 5);
        for w in outcome.merged.trace.windows(2) {
            assert!(w[0].similarity < w[1].similarity);
        }
        assert_eq!(
            outcome.merged.trace.last().unwrap().similarity,
            outcome.merged.best_similarity
        );
    }

    #[test]
    fn auto_cutoff_stays_off_for_step_budgets() {
        let budget = SearchBudget::iterations(100);
        assert!(!CutoffPolicy::Auto.armed(&budget));
        assert!(CutoffPolicy::Always.armed(&budget));
        let timed = SearchBudget::seconds(1.0);
        assert!(CutoffPolicy::Auto.armed(&timed));
        assert!(!CutoffPolicy::Never.armed(&timed));
    }

    #[test]
    fn more_restarts_than_threads_all_run() {
        let inst = hard_instance(94, QueryShape::Chain, 3, 150);
        let outcome = ParallelPortfolio::new(Ils::default(), PortfolioConfig::new(7, 2)).run(
            &inst,
            &SearchBudget::iterations(700),
            11,
        );
        assert_eq!(outcome.restarts.len(), 7);
        assert_eq!(outcome.threads_used, 2);
        let indices: Vec<usize> = outcome.restarts.iter().map(|r| r.index).collect();
        assert_eq!(indices, (0..7).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "at least 1 restart")]
    fn zero_restarts_rejected() {
        let _ = ParallelPortfolio::new(Ils::default(), PortfolioConfig::new(0, 1));
    }
}
