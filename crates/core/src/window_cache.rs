//! Per-variable window caching for the *find best value* hot path.
//!
//! Every [`find_best_value`](crate::find_best_value) call rebuilds the
//! neighbour-window vector from scratch, even though a local-search step
//! changes at most one assignment — so between consecutive calls for the
//! same variable most windows (and often all of them) are unchanged.
//! [`WindowCache`] keeps one window vector per variable, refreshes only
//! the entries whose neighbour assignment actually changed, and — when
//! nothing relevant changed at all — returns the previously computed
//! [`BestValue`] without touching the index.
//!
//! Invalidation rule: a cached traversal result for variable `v` is valid
//! iff (a) every neighbour of `v` holds the same assignment as when the
//! result was computed, and (b) in penalty mode, the
//! [`PenaltyTable::version`] is unchanged (penalties only ever apply to
//! `v`'s own objects, but any punishment can re-rank the leaves).
//! The variable's *own* assignment is irrelevant: the query depends only
//! on the neighbour windows.
//!
//! Because a cache hit returns a bit-identical result while skipping the
//! traversal, node-access counts under the cache are ≤ the uncached
//! counts and every other counter (steps, improvements, trajectories) is
//! unchanged — the counter-compatibility contract of DESIGN.md §5e.
//!
//! Every query is classified into the cache's own telemetry
//! ([`CacheStats`]: hits, misses, invalidations by cause, per variable) as
//! plain `u64` increments — no atomics, no registry lookups in the hot
//! loop. Drives absorb the counters into
//! [`RunStats`](crate::RunStats) when the run finishes, from where they
//! follow the same deterministic flush-and-merge path as every other work
//! counter (DESIGN.md §5g).

use crate::find_best_value::{best_value_in_windows, BestValue};
use crate::instance::Instance;
use mwsj_geom::{Predicate, Rect};
use mwsj_obs::MemoryFootprint;
use mwsj_query::{PenaltyTable, Solution, VarId};

/// Cache telemetry for one variable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VarCacheStats {
    /// Queries answered from the memoised result without a traversal.
    pub hits: u64,
    /// Queries that ran the index traversal (cold or invalidated).
    pub misses: u64,
    /// Misses caused by a neighbour-assignment change that invalidated a
    /// previously memoised result.
    pub invalidations_reassign: u64,
    /// Misses caused by a [`PenaltyTable::version`] bump alone (all
    /// neighbour windows unchanged).
    pub invalidations_penalty: u64,
}

impl VarCacheStats {
    fn absorb(&mut self, other: &VarCacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.invalidations_reassign += other.invalidations_reassign;
        self.invalidations_penalty += other.invalidations_penalty;
    }
}

/// [`WindowCache`] efficiency telemetry: per-variable hit/miss/invalidation
/// counters plus the cache's resident bytes.
///
/// All fields are counters of deterministic algorithmic work, so they obey
/// the same merge rules as every other metric: pointwise sums are
/// bit-identical across thread counts under step budgets
/// ([`CacheStats::absorb`] is the portfolio/two-step reduction).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Per-variable breakdown, indexed by variable id.
    pub per_var: Vec<VarCacheStats>,
    /// Resident bytes of the cache(s) at the end of the run
    /// ([`MemoryFootprint`] accounting; sums across merged runs).
    pub bytes: u64,
}

impl CacheStats {
    /// Total hits across variables.
    pub fn hits(&self) -> u64 {
        self.per_var.iter().map(|v| v.hits).sum()
    }

    /// Total misses across variables.
    pub fn misses(&self) -> u64 {
        self.per_var.iter().map(|v| v.misses).sum()
    }

    /// Total reassignment-caused invalidations across variables.
    pub fn invalidations_reassign(&self) -> u64 {
        self.per_var.iter().map(|v| v.invalidations_reassign).sum()
    }

    /// Total penalty-version-caused invalidations across variables.
    pub fn invalidations_penalty(&self) -> u64 {
        self.per_var.iter().map(|v| v.invalidations_penalty).sum()
    }

    /// `true` when no cache was ever consulted.
    pub fn is_empty(&self) -> bool {
        self.per_var.is_empty() && self.bytes == 0
    }

    /// Pointwise sum of `other` into `self` (extending the per-variable
    /// vector as needed); bytes add up. Associative and commutative, so a
    /// seed-ordered fold is independent of thread scheduling.
    pub fn absorb(&mut self, other: &CacheStats) {
        if self.per_var.len() < other.per_var.len() {
            self.per_var
                .resize(other.per_var.len(), VarCacheStats::default());
        }
        for (mine, theirs) in self.per_var.iter_mut().zip(&other.per_var) {
            mine.absorb(theirs);
        }
        self.bytes += other.bytes;
    }
}

/// Cached window state for one variable.
#[derive(Debug, Clone)]
struct VarWindows {
    /// Neighbour assignments the windows were built from; `usize::MAX`
    /// marks a slot that has never been built (no dataset is that large).
    assignments: Vec<usize>,
    /// One `(predicate, rect)` window per neighbour, in
    /// `graph().neighbors(var)` order — the same order
    /// [`find_best_value`](crate::find_best_value) builds.
    windows: Vec<(Predicate, Rect)>,
    /// Result of the last traversal with these windows, if still valid.
    result: Option<Option<BestValue>>,
    /// Penalty-table version the cached result was computed at.
    penalty_version: u64,
}

/// Reusable window vectors + memoised results for repeated
/// [`find_best_value`](crate::find_best_value) calls over one instance.
///
/// Create one per search run and route every best-value query through
/// [`WindowCache::find_best_value`]; the answers are identical to the
/// free function's, only cheaper. [`WindowCache::stats`] reports how much
/// cheaper.
#[derive(Debug, Clone)]
pub struct WindowCache {
    vars: Vec<VarWindows>,
    stats: Vec<VarCacheStats>,
}

impl WindowCache {
    /// An empty cache sized for `instance`.
    pub fn new(instance: &Instance) -> Self {
        let vars = (0..instance.n_vars())
            .map(|var| {
                let deg = instance.graph().neighbors(var).len();
                VarWindows {
                    assignments: vec![usize::MAX; deg],
                    windows: Vec::with_capacity(deg),
                    result: None,
                    penalty_version: 0,
                }
            })
            .collect();
        let stats = vec![VarCacheStats::default(); instance.n_vars()];
        WindowCache { vars, stats }
    }

    /// Drops every cached window and result (e.g. after swapping in an
    /// unrelated solution wholesale is *not* required — assignments are
    /// re-checked per call — but callers may use this to bound memory on
    /// huge instances). Telemetry is cumulative and survives a clear.
    pub fn clear(&mut self) {
        for entry in &mut self.vars {
            entry.assignments.fill(usize::MAX);
            entry.windows.clear();
            entry.result = None;
        }
    }

    /// Freezes the cache's telemetry: the per-variable counters recorded
    /// so far plus the cache's current [`MemoryFootprint`] bytes. Drives
    /// absorb this into [`RunStats`](crate::RunStats) when the run ends.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            per_var: self.stats.clone(),
            bytes: self.memory_bytes(),
        }
    }

    /// Cheap totals for live-telemetry sampling — `(hits, misses,
    /// resident bytes)` without cloning the per-variable table. Pure
    /// reads of deterministic counters, so sampling never perturbs the
    /// search.
    pub fn sample_totals(&self) -> (u64, u64, u64) {
        let hits = self.stats.iter().map(|v| v.hits).sum();
        let misses = self.stats.iter().map(|v| v.misses).sum();
        (hits, misses, self.memory_bytes())
    }

    /// Cached equivalent of [`find_best_value`](crate::find_best_value):
    /// same arguments, bit-identical result, fewer node accesses.
    ///
    /// The window vector for `var` is refreshed in place (only slots whose
    /// neighbour assignment changed are rebuilt); if no slot changed and
    /// the penalty version is unchanged, the memoised result is returned
    /// without traversing the index (`node_accesses` is left untouched).
    pub fn find_best_value(
        &mut self,
        instance: &Instance,
        sol: &Solution,
        var: VarId,
        penalties: Option<(&PenaltyTable, f64)>,
        node_accesses: &mut u64,
    ) -> Option<BestValue> {
        self.find_best_value_leveled(instance, sol, var, penalties, node_accesses, &mut [])
    }

    /// [`WindowCache::find_best_value`] with per-level node-access
    /// attribution: misses bump `level_accesses[lvl]` (`[0]` = leaf) per
    /// visited node alongside `node_accesses`, hits touch neither — so the
    /// attributed counts sum exactly to the shared access counter.
    pub fn find_best_value_leveled(
        &mut self,
        instance: &Instance,
        sol: &Solution,
        var: VarId,
        penalties: Option<(&PenaltyTable, f64)>,
        node_accesses: &mut u64,
        level_accesses: &mut [u64],
    ) -> Option<BestValue> {
        let neighbors = instance.graph().neighbors(var);
        let entry = &mut self.vars[var];

        let mut dirty = false;
        if entry.windows.len() != neighbors.len() {
            // First use of this variable: build the full vector.
            entry.windows.clear();
            for (slot, &(u, pred)) in neighbors.iter().enumerate() {
                let assigned = sol.get(u);
                entry.assignments[slot] = assigned;
                entry.windows.push((pred, instance.rect(u, assigned)));
            }
            dirty = true;
        } else {
            for (slot, &(u, _)) in neighbors.iter().enumerate() {
                let assigned = sol.get(u);
                if entry.assignments[slot] != assigned {
                    entry.assignments[slot] = assigned;
                    entry.windows[slot].1 = instance.rect(u, assigned);
                    dirty = true;
                }
            }
        }

        let had_result = entry.result.is_some();
        let penalty_version = penalties.map_or(0, |(table, _)| table.version());
        if !dirty && entry.penalty_version == penalty_version {
            if let Some(cached) = entry.result {
                self.stats[var].hits += 1;
                return cached;
            }
        }

        // Traversal required; classify why a memoised result didn't serve.
        let var_stats = &mut self.stats[var];
        var_stats.misses += 1;
        if had_result {
            if dirty {
                var_stats.invalidations_reassign += 1;
            } else if entry.penalty_version != penalty_version {
                var_stats.invalidations_penalty += 1;
            }
            // (neither: the memoised result was dropped by `clear`)
        }

        let result = best_value_in_windows(
            instance,
            var,
            &entry.windows,
            penalties,
            node_accesses,
            level_accesses,
        );
        let entry = &mut self.vars[var];
        entry.result = Some(result);
        entry.penalty_version = penalty_version;
        result
    }
}

impl MemoryFootprint for WindowCache {
    /// Length-based resident bytes: the per-variable window/assignment
    /// vectors, the telemetry counters and the per-variable headers.
    fn memory_bytes(&self) -> u64 {
        let per_entry: u64 = self
            .vars
            .iter()
            .map(|e| {
                (e.assignments.len() * std::mem::size_of::<usize>()
                    + e.windows.len() * std::mem::size_of::<(Predicate, Rect)>())
                    as u64
            })
            .sum();
        let headers = (self.vars.len() * std::mem::size_of::<VarWindows>()) as u64;
        let stats = (self.stats.len() * std::mem::size_of::<VarCacheStats>()) as u64;
        per_entry + headers + stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::find_best_value::find_best_value;
    use mwsj_datagen::Dataset;
    use mwsj_query::QueryGraph;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_instance(seed: u64, n: usize, cardinality: usize) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = QueryGraph::clique(n);
        let datasets: Vec<Dataset> = (0..n)
            .map(|_| Dataset::uniform(cardinality, 0.3, &mut rng))
            .collect();
        Instance::new(graph, datasets).unwrap()
    }

    #[test]
    fn cached_results_match_uncached_across_reassignments() {
        let inst = random_instance(61, 4, 300);
        let mut rng = StdRng::seed_from_u64(62);
        let mut sol = inst.random_solution(&mut rng);
        let mut cache = WindowCache::new(&inst);
        for _ in 0..200 {
            let var = rng.random_range(0..4);
            let mut acc_fast = 0;
            let mut acc_slow = 0;
            let fast = cache.find_best_value(&inst, &sol, var, None, &mut acc_fast);
            let slow = find_best_value(&inst, &sol, var, None, &mut acc_slow);
            assert_eq!(fast, slow);
            assert!(acc_fast <= acc_slow, "cache must not add node accesses");
            // Mutate one assignment like a local-search step would.
            let v = rng.random_range(0..4);
            sol.set(v, rng.random_range(0..300));
        }
        let stats = cache.stats();
        assert_eq!(stats.hits() + stats.misses(), 200, "every query classified");
    }

    #[test]
    fn repeat_query_without_changes_skips_the_traversal() {
        let inst = random_instance(63, 3, 200);
        let mut rng = StdRng::seed_from_u64(64);
        let sol = inst.random_solution(&mut rng);
        let mut cache = WindowCache::new(&inst);
        let mut acc = 0;
        let first = cache.find_best_value(&inst, &sol, 0, None, &mut acc);
        assert!(acc > 0);
        let after_first = acc;
        let second = cache.find_best_value(&inst, &sol, 0, None, &mut acc);
        assert_eq!(first, second);
        assert_eq!(acc, after_first, "full cache hit must not touch the index");
        let stats = cache.stats();
        assert_eq!(stats.per_var[0].hits, 1);
        assert_eq!(stats.per_var[0].misses, 1, "the cold build is a miss");
        assert_eq!(stats.invalidations_reassign(), 0);
        assert_eq!(stats.invalidations_penalty(), 0);
    }

    #[test]
    fn own_assignment_change_keeps_the_cache_valid() {
        // The query for `var` depends only on its neighbours' windows.
        let inst = random_instance(65, 3, 200);
        let mut rng = StdRng::seed_from_u64(66);
        let mut sol = inst.random_solution(&mut rng);
        let mut cache = WindowCache::new(&inst);
        let mut acc = 0;
        let first = cache.find_best_value(&inst, &sol, 1, None, &mut acc);
        let after_first = acc;
        sol.set(1, (sol.get(1) + 1) % 200);
        let second = cache.find_best_value(&inst, &sol, 1, None, &mut acc);
        assert_eq!(first, second);
        assert_eq!(acc, after_first);
        assert_eq!(cache.stats().per_var[1].hits, 1);
    }

    #[test]
    fn penalty_version_change_invalidates_the_result() {
        let inst = random_instance(67, 3, 200);
        let mut rng = StdRng::seed_from_u64(68);
        let sol = inst.random_solution(&mut rng);
        let mut cache = WindowCache::new(&inst);
        let mut table = PenaltyTable::new();
        let lambda = 0.1;
        let mut acc = 0;
        let first = cache.find_best_value(&inst, &sol, 0, Some((&table, lambda)), &mut acc);
        let mut check = 0;
        assert_eq!(
            first,
            find_best_value(&inst, &sol, 0, Some((&table, lambda)), &mut check)
        );
        // Punish the current assignments; the cached result is now stale.
        table.penalize_local_maximum(&sol);
        let after_first = acc;
        let second = cache.find_best_value(&inst, &sol, 0, Some((&table, lambda)), &mut acc);
        assert!(acc > after_first, "version bump must force a re-traversal");
        let mut check = 0;
        assert_eq!(
            second,
            find_best_value(&inst, &sol, 0, Some((&table, lambda)), &mut check)
        );
        let stats = cache.stats();
        assert_eq!(stats.per_var[0].invalidations_penalty, 1);
        assert_eq!(stats.per_var[0].invalidations_reassign, 0);
        assert_eq!(stats.per_var[0].misses, 2);
    }

    #[test]
    fn reassignment_invalidation_is_classified_by_cause() {
        let inst = random_instance(71, 3, 200);
        let mut rng = StdRng::seed_from_u64(72);
        let mut sol = inst.random_solution(&mut rng);
        let mut cache = WindowCache::new(&inst);
        let mut acc = 0;
        let _ = cache.find_best_value(&inst, &sol, 1, None, &mut acc);
        // Move a neighbour of var 1 (clique: var 0 is a neighbour).
        sol.set(0, (sol.get(0) + 1) % 200);
        let _ = cache.find_best_value(&inst, &sol, 1, None, &mut acc);
        let stats = cache.stats();
        assert_eq!(stats.per_var[1].invalidations_reassign, 1);
        assert_eq!(stats.per_var[1].invalidations_penalty, 0);
        assert_eq!(stats.per_var[1].misses, 2);
        assert_eq!(stats.per_var[1].hits, 0);
    }

    #[test]
    fn clear_resets_to_cold_state() {
        let inst = random_instance(69, 3, 200);
        let mut rng = StdRng::seed_from_u64(70);
        let sol = inst.random_solution(&mut rng);
        let mut cache = WindowCache::new(&inst);
        let mut acc = 0;
        let first = cache.find_best_value(&inst, &sol, 0, None, &mut acc);
        cache.clear();
        let before = acc;
        let again = cache.find_best_value(&inst, &sol, 0, None, &mut acc);
        assert_eq!(first, again);
        assert!(acc > before, "cleared cache must re-traverse");
        let stats = cache.stats();
        assert_eq!(stats.per_var[0].misses, 2);
        assert_eq!(
            stats.per_var[0].invalidations_reassign + stats.per_var[0].invalidations_penalty,
            0,
            "a cleared result is a cold miss, not an invalidation"
        );
    }

    #[test]
    fn cache_stats_absorb_sums_pointwise_and_extends() {
        let a = CacheStats {
            per_var: vec![VarCacheStats {
                hits: 1,
                misses: 2,
                invalidations_reassign: 1,
                invalidations_penalty: 0,
            }],
            bytes: 100,
        };
        let b = CacheStats {
            per_var: vec![
                VarCacheStats {
                    hits: 10,
                    misses: 20,
                    invalidations_reassign: 3,
                    invalidations_penalty: 4,
                },
                VarCacheStats {
                    hits: 5,
                    ..VarCacheStats::default()
                },
            ],
            bytes: 50,
        };
        let mut ab = a.clone();
        ab.absorb(&b);
        let mut ba = b.clone();
        ba.absorb(&a);
        assert_eq!(ab, ba, "absorb is commutative");
        assert_eq!(ab.hits(), 16);
        assert_eq!(ab.misses(), 22);
        assert_eq!(ab.invalidations_reassign(), 4);
        assert_eq!(ab.invalidations_penalty(), 4);
        assert_eq!(ab.bytes, 150);
        assert_eq!(ab.per_var.len(), 2);
    }

    #[test]
    fn memory_bytes_is_deterministic_and_grows_with_use() {
        let inst = random_instance(73, 4, 300);
        let cache_a = WindowCache::new(&inst);
        let cache_b = WindowCache::new(&inst);
        assert_eq!(cache_a.memory_bytes(), cache_b.memory_bytes());
        let mut rng = StdRng::seed_from_u64(74);
        let sol = inst.random_solution(&mut rng);
        let mut used = WindowCache::new(&inst);
        let mut acc = 0;
        let _ = used.find_best_value(&inst, &sol, 0, None, &mut acc);
        assert!(
            used.memory_bytes() > cache_a.memory_bytes(),
            "built windows must count"
        );
    }
}

#[cfg(test)]
mod drive_integration {
    use crate::{Ils, SearchBudget};
    use mwsj_datagen::{hard_region_density, plant_solution, Dataset, QueryShape};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// An end-to-end ILS run must actually *hit* the cache: the
    /// local-maximum sweep re-queries variables whose neighbour windows
    /// are unchanged (e.g. the variable improved last), so a real search
    /// saves traversals, not just in principle. The counters ride along in
    /// [`crate::RunStats::cache`] — per run, not process-wide.
    #[test]
    fn ils_run_produces_cache_hits() {
        let mut rng = StdRng::seed_from_u64(101);
        let shape = QueryShape::Chain;
        let (n, card) = (4, 200);
        let d = hard_region_density(shape, n, card, 1.0);
        let mut datasets: Vec<Dataset> = (0..n)
            .map(|_| Dataset::uniform(card, d, &mut rng))
            .collect();
        let graph = shape.graph(n);
        plant_solution(&mut datasets, &graph, &mut rng);
        let inst = crate::Instance::new(graph, datasets).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let outcome = Ils::default().run(&inst, &SearchBudget::iterations(3000), &mut rng);
        let cache = &outcome.stats.cache;
        assert!(
            cache.hits() > 0,
            "a full ILS run should produce window-cache hits: {cache:?}"
        );
        assert!(cache.misses() > 0);
        assert!(
            cache.invalidations_reassign() > 0,
            "local search reassigns neighbours, so reassignment invalidations must show"
        );
        assert_eq!(
            cache.invalidations_penalty(),
            0,
            "ILS runs without penalties"
        );
        assert_eq!(
            cache.per_var.len(),
            n,
            "per-variable breakdown sized to the query"
        );
        assert!(cache.bytes > 0, "the cache footprint is recorded");
    }
}
