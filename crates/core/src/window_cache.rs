//! Per-variable window caching for the *find best value* hot path.
//!
//! Every [`find_best_value`](crate::find_best_value) call rebuilds the
//! neighbour-window vector from scratch, even though a local-search step
//! changes at most one assignment — so between consecutive calls for the
//! same variable most windows (and often all of them) are unchanged.
//! [`WindowCache`] keeps one window vector per variable, refreshes only
//! the entries whose neighbour assignment actually changed, and — when
//! nothing relevant changed at all — returns the previously computed
//! [`BestValue`] without touching the index.
//!
//! Invalidation rule: a cached traversal result for variable `v` is valid
//! iff (a) every neighbour of `v` holds the same assignment as when the
//! result was computed, and (b) in penalty mode, the
//! [`PenaltyTable::version`] is unchanged (penalties only ever apply to
//! `v`'s own objects, but any punishment can re-rank the leaves).
//! The variable's *own* assignment is irrelevant: the query depends only
//! on the neighbour windows.
//!
//! Because a cache hit returns a bit-identical result while skipping the
//! traversal, node-access counts under the cache are ≤ the uncached
//! counts and every other counter (steps, improvements, trajectories) is
//! unchanged — the counter-compatibility contract of DESIGN.md §5e.

use crate::find_best_value::{best_value_in_windows, BestValue};
use crate::instance::Instance;
use mwsj_geom::{Predicate, Rect};
use mwsj_query::{PenaltyTable, Solution, VarId};

/// Cached window state for one variable.
#[derive(Debug, Clone)]
struct VarWindows {
    /// Neighbour assignments the windows were built from; `usize::MAX`
    /// marks a slot that has never been built (no dataset is that large).
    assignments: Vec<usize>,
    /// One `(predicate, rect)` window per neighbour, in
    /// `graph().neighbors(var)` order — the same order
    /// [`find_best_value`](crate::find_best_value) builds.
    windows: Vec<(Predicate, Rect)>,
    /// Result of the last traversal with these windows, if still valid.
    result: Option<Option<BestValue>>,
    /// Penalty-table version the cached result was computed at.
    penalty_version: u64,
}

/// Reusable window vectors + memoised results for repeated
/// [`find_best_value`](crate::find_best_value) calls over one instance.
///
/// Create one per search run and route every best-value query through
/// [`WindowCache::find_best_value`]; the answers are identical to the
/// free function's, only cheaper.
#[derive(Debug, Clone)]
pub struct WindowCache {
    vars: Vec<VarWindows>,
}

impl WindowCache {
    /// An empty cache sized for `instance`.
    pub fn new(instance: &Instance) -> Self {
        let vars = (0..instance.n_vars())
            .map(|var| {
                let deg = instance.graph().neighbors(var).len();
                VarWindows {
                    assignments: vec![usize::MAX; deg],
                    windows: Vec::with_capacity(deg),
                    result: None,
                    penalty_version: 0,
                }
            })
            .collect();
        WindowCache { vars }
    }

    /// Drops every cached window and result (e.g. after swapping in an
    /// unrelated solution wholesale is *not* required — assignments are
    /// re-checked per call — but callers may use this to bound memory on
    /// huge instances).
    pub fn clear(&mut self) {
        for entry in &mut self.vars {
            entry.assignments.fill(usize::MAX);
            entry.windows.clear();
            entry.result = None;
        }
    }

    /// Cached equivalent of [`find_best_value`](crate::find_best_value):
    /// same arguments, bit-identical result, fewer node accesses.
    ///
    /// The window vector for `var` is refreshed in place (only slots whose
    /// neighbour assignment changed are rebuilt); if no slot changed and
    /// the penalty version is unchanged, the memoised result is returned
    /// without traversing the index (`node_accesses` is left untouched).
    pub fn find_best_value(
        &mut self,
        instance: &Instance,
        sol: &Solution,
        var: VarId,
        penalties: Option<(&PenaltyTable, f64)>,
        node_accesses: &mut u64,
    ) -> Option<BestValue> {
        let neighbors = instance.graph().neighbors(var);
        let entry = &mut self.vars[var];

        let mut dirty = false;
        if entry.windows.len() != neighbors.len() {
            // First use of this variable: build the full vector.
            entry.windows.clear();
            for (slot, &(u, pred)) in neighbors.iter().enumerate() {
                let assigned = sol.get(u);
                entry.assignments[slot] = assigned;
                entry.windows.push((pred, instance.rect(u, assigned)));
            }
            dirty = true;
        } else {
            for (slot, &(u, _)) in neighbors.iter().enumerate() {
                let assigned = sol.get(u);
                if entry.assignments[slot] != assigned {
                    entry.assignments[slot] = assigned;
                    entry.windows[slot].1 = instance.rect(u, assigned);
                    dirty = true;
                }
            }
        }

        let penalty_version = penalties.map_or(0, |(table, _)| table.version());
        if !dirty && entry.penalty_version == penalty_version {
            if let Some(cached) = entry.result {
                #[cfg(test)]
                HITS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                return cached;
            }
        }

        let result = best_value_in_windows(instance, var, &entry.windows, penalties, node_accesses);
        let entry = &mut self.vars[var];
        entry.result = Some(result);
        entry.penalty_version = penalty_version;
        result
    }
}

#[cfg(test)]
pub(crate) static HITS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::find_best_value::find_best_value;
    use mwsj_datagen::Dataset;
    use mwsj_query::QueryGraph;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_instance(seed: u64, n: usize, cardinality: usize) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = QueryGraph::clique(n);
        let datasets: Vec<Dataset> = (0..n)
            .map(|_| Dataset::uniform(cardinality, 0.3, &mut rng))
            .collect();
        Instance::new(graph, datasets).unwrap()
    }

    #[test]
    fn cached_results_match_uncached_across_reassignments() {
        let inst = random_instance(61, 4, 300);
        let mut rng = StdRng::seed_from_u64(62);
        let mut sol = inst.random_solution(&mut rng);
        let mut cache = WindowCache::new(&inst);
        for _ in 0..200 {
            let var = rng.random_range(0..4);
            let mut acc_fast = 0;
            let mut acc_slow = 0;
            let fast = cache.find_best_value(&inst, &sol, var, None, &mut acc_fast);
            let slow = find_best_value(&inst, &sol, var, None, &mut acc_slow);
            assert_eq!(fast, slow);
            assert!(acc_fast <= acc_slow, "cache must not add node accesses");
            // Mutate one assignment like a local-search step would.
            let v = rng.random_range(0..4);
            sol.set(v, rng.random_range(0..300));
        }
    }

    #[test]
    fn repeat_query_without_changes_skips_the_traversal() {
        let inst = random_instance(63, 3, 200);
        let mut rng = StdRng::seed_from_u64(64);
        let sol = inst.random_solution(&mut rng);
        let mut cache = WindowCache::new(&inst);
        let mut acc = 0;
        let first = cache.find_best_value(&inst, &sol, 0, None, &mut acc);
        assert!(acc > 0);
        let after_first = acc;
        let second = cache.find_best_value(&inst, &sol, 0, None, &mut acc);
        assert_eq!(first, second);
        assert_eq!(acc, after_first, "full cache hit must not touch the index");
    }

    #[test]
    fn own_assignment_change_keeps_the_cache_valid() {
        // The query for `var` depends only on its neighbours' windows.
        let inst = random_instance(65, 3, 200);
        let mut rng = StdRng::seed_from_u64(66);
        let mut sol = inst.random_solution(&mut rng);
        let mut cache = WindowCache::new(&inst);
        let mut acc = 0;
        let first = cache.find_best_value(&inst, &sol, 1, None, &mut acc);
        let after_first = acc;
        sol.set(1, (sol.get(1) + 1) % 200);
        let second = cache.find_best_value(&inst, &sol, 1, None, &mut acc);
        assert_eq!(first, second);
        assert_eq!(acc, after_first);
    }

    #[test]
    fn penalty_version_change_invalidates_the_result() {
        let inst = random_instance(67, 3, 200);
        let mut rng = StdRng::seed_from_u64(68);
        let sol = inst.random_solution(&mut rng);
        let mut cache = WindowCache::new(&inst);
        let mut table = PenaltyTable::new();
        let lambda = 0.1;
        let mut acc = 0;
        let first = cache.find_best_value(&inst, &sol, 0, Some((&table, lambda)), &mut acc);
        let mut check = 0;
        assert_eq!(
            first,
            find_best_value(&inst, &sol, 0, Some((&table, lambda)), &mut check)
        );
        // Punish the current assignments; the cached result is now stale.
        table.penalize_local_maximum(&sol);
        let after_first = acc;
        let second = cache.find_best_value(&inst, &sol, 0, Some((&table, lambda)), &mut acc);
        assert!(acc > after_first, "version bump must force a re-traversal");
        let mut check = 0;
        assert_eq!(
            second,
            find_best_value(&inst, &sol, 0, Some((&table, lambda)), &mut check)
        );
    }

    #[test]
    fn clear_resets_to_cold_state() {
        let inst = random_instance(69, 3, 200);
        let mut rng = StdRng::seed_from_u64(70);
        let sol = inst.random_solution(&mut rng);
        let mut cache = WindowCache::new(&inst);
        let mut acc = 0;
        let first = cache.find_best_value(&inst, &sol, 0, None, &mut acc);
        cache.clear();
        let before = acc;
        let again = cache.find_best_value(&inst, &sol, 0, None, &mut acc);
        assert_eq!(first, again);
        assert!(acc > before, "cleared cache must re-traverse");
    }
}

#[cfg(test)]
mod drive_integration {
    use crate::{Ils, SearchBudget};
    use mwsj_datagen::{hard_region_density, plant_solution, Dataset, QueryShape};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// An end-to-end ILS run must actually *hit* the cache: the
    /// local-maximum sweep re-queries variables whose neighbour windows
    /// are unchanged (e.g. the variable improved last), so a real search
    /// saves traversals, not just in principle.
    #[test]
    fn ils_run_produces_cache_hits() {
        let mut rng = StdRng::seed_from_u64(101);
        let shape = QueryShape::Chain;
        let (n, card) = (4, 200);
        let d = hard_region_density(shape, n, card, 1.0);
        let mut datasets: Vec<Dataset> = (0..n)
            .map(|_| Dataset::uniform(card, d, &mut rng))
            .collect();
        let graph = shape.graph(n);
        plant_solution(&mut datasets, &graph, &mut rng);
        let inst = crate::Instance::new(graph, datasets).unwrap();
        let before = super::HITS.load(std::sync::atomic::Ordering::Relaxed);
        let mut rng = StdRng::seed_from_u64(7);
        let _ = Ils::default().run(&inst, &SearchBudget::iterations(3000), &mut rng);
        let hits = super::HITS.load(std::sync::atomic::Ordering::Relaxed) - before;
        assert!(hits > 0, "a full ILS run should produce window-cache hits");
    }
}
