//! Window Reduction (paper §2, \[PMT99\]): exact multiway join by
//! backtracking with index window queries.
//!
//! The first variable in the order takes every value of its dataset; each
//! subsequent variable is instantiated via a conjunctive multi-window query
//! (the assignments of its already-instantiated neighbours), backtracking
//! when the query returns nothing. WR enumerates exactly the set of exact
//! solutions; it cannot return approximate matches (which is precisely the
//! limitation the paper's heuristics address).

use crate::budget::{BudgetClock, SearchBudget, SearchContext};
use crate::candidates::candidates_with_counts;
use crate::instance::Instance;
use crate::order::connectivity_order;
use crate::result::RunStats;
use mwsj_geom::{Predicate, Rect};
use mwsj_obs::ObsHandle;
use mwsj_query::Solution;

/// Result of an exact-join enumeration (WR, ST or PJM).
#[derive(Debug, Clone, Default)]
pub struct ExactJoinOutcome {
    /// The exact solutions found (up to the requested limit).
    pub solutions: Vec<Solution>,
    /// Counters (`steps` = variable instantiations tried).
    pub stats: RunStats,
    /// `true` if enumeration finished (neither the limit nor the budget
    /// truncated it) — the solution list is then complete.
    pub complete: bool,
}

/// Window reduction.
#[derive(Debug, Clone, Default)]
pub struct WindowReduction {}

impl WindowReduction {
    /// Creates the algorithm.
    pub fn new() -> Self {
        WindowReduction {}
    }

    /// Enumerates up to `limit` exact solutions within `budget`.
    pub fn run(
        &self,
        instance: &Instance,
        budget: &SearchBudget,
        limit: usize,
    ) -> ExactJoinOutcome {
        self.run_with_obs(instance, budget, limit, &ObsHandle::disabled())
    }

    /// Like [`WindowReduction::run`], additionally reporting counters and
    /// phase timings ("wr") through `obs`.
    pub fn run_with_obs(
        &self,
        instance: &Instance,
        budget: &SearchBudget,
        limit: usize,
        obs: &ObsHandle,
    ) -> ExactJoinOutcome {
        let graph = instance.graph();
        let order = connectivity_order(graph);
        let mut position = vec![0usize; order.len()];
        for (k, &v) in order.iter().enumerate() {
            position[v] = k;
        }
        let ctx = SearchContext::local(*budget).with_obs(obs.clone());
        let clock = BudgetClock::from_context(&ctx);
        let _phase = clock.obs().timer.span("wr");
        let mut state = WrState {
            instance,
            order,
            position,
            clock,
            stats: RunStats::default(),
            solutions: Vec::new(),
            limit,
            truncated: false,
        };
        let mut assignment = vec![usize::MAX; instance.n_vars()];
        descend(&mut state, 0, &mut assignment);
        let mut stats = state.stats;
        stats.elapsed = state.clock.elapsed();
        stats.steps = state.clock.steps();
        crate::observe::flush_stats(state.clock.obs(), &stats);
        state.clock.emit_stop_reason();
        let complete = !state.truncated && state.solutions.len() < state.limit;
        ExactJoinOutcome {
            solutions: state.solutions,
            stats,
            complete,
        }
    }
}

struct WrState<'a> {
    instance: &'a Instance,
    order: Vec<usize>,
    position: Vec<usize>,
    clock: BudgetClock,
    stats: RunStats,
    solutions: Vec<Solution>,
    limit: usize,
    truncated: bool,
}

/// Returns `true` when enumeration should stop (limit or budget hit).
fn descend(state: &mut WrState<'_>, depth: usize, assignment: &mut [usize]) -> bool {
    let instance = state.instance;
    let graph = instance.graph();
    if depth == graph.n_vars() {
        state.solutions.push(Solution::new(assignment.to_vec()));
        return state.solutions.len() >= state.limit;
    }
    let var = state.order[depth];
    let windows: Vec<(Predicate, Rect)> = graph
        .neighbors(var)
        .iter()
        .filter(|&&(u, _)| state.position[u] < depth)
        .map(|&(u, pred)| (pred, instance.rect(u, assignment[u])))
        .collect();

    if windows.is_empty() {
        // First variable (or a variable with no instantiated neighbours —
        // impossible on connected graphs past depth 0): full scan.
        for obj in 0..instance.cardinality(var) {
            if state.clock.exhausted() {
                state.truncated = true;
                return true;
            }
            state.clock.step();
            assignment[var] = obj;
            if descend(state, depth + 1, assignment) {
                return true;
            }
        }
    } else {
        // Conjunctive window query: every condition must hold.
        let required = windows.len() as u32;
        let candidates = candidates_with_counts(
            instance,
            var,
            &windows,
            required,
            &mut state.stats.node_accesses,
            &mut [],
        );
        for (obj, _) in candidates {
            if state.clock.exhausted() {
                state.truncated = true;
                return true;
            }
            state.clock.step();
            assignment[var] = obj;
            if descend(state, depth + 1, assignment) {
                return true;
            }
        }
    }
    assignment[var] = usize::MAX;
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwsj_datagen::{count_exact_solutions, Dataset, QueryShape};
    use mwsj_query::ConflictState;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn instance(
        seed: u64,
        shape: QueryShape,
        n: usize,
        cardinality: usize,
        density: f64,
    ) -> (Instance, Vec<Dataset>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let datasets: Vec<Dataset> = (0..n)
            .map(|_| Dataset::uniform(cardinality, density, &mut rng))
            .collect();
        (
            Instance::new(shape.graph(n), datasets.clone()).unwrap(),
            datasets,
        )
    }

    #[test]
    fn wr_count_matches_brute_force() {
        for shape in [QueryShape::Chain, QueryShape::Clique, QueryShape::Cycle] {
            let (inst, datasets) = instance(121, shape, 3, 60, 0.5);
            let outcome =
                WindowReduction::new().run(&inst, &SearchBudget::seconds(30.0), usize::MAX);
            assert!(outcome.complete);
            let brute = count_exact_solutions(&datasets, inst.graph(), u64::MAX);
            assert_eq!(outcome.solutions.len() as u64, brute, "{}", shape.name());
        }
    }

    #[test]
    fn wr_solutions_are_all_exact_and_distinct() {
        let (inst, _) = instance(122, QueryShape::Chain, 4, 40, 0.4);
        let outcome = WindowReduction::new().run(&inst, &SearchBudget::seconds(30.0), usize::MAX);
        let mut seen = std::collections::HashSet::new();
        for sol in &outcome.solutions {
            let cs = ConflictState::evaluate(inst.graph(), sol, inst.rect_of());
            assert_eq!(cs.total_violations(), 0);
            assert!(seen.insert(sol.clone()), "duplicate solution {sol}");
        }
    }

    #[test]
    fn wr_respects_solution_limit() {
        let (inst, _) = instance(123, QueryShape::Chain, 3, 60, 1.5);
        let outcome = WindowReduction::new().run(&inst, &SearchBudget::seconds(30.0), 5);
        assert_eq!(outcome.solutions.len(), 5);
        assert!(!outcome.complete);
    }

    #[test]
    fn wr_budget_truncation_is_flagged() {
        let (inst, _) = instance(124, QueryShape::Chain, 4, 500, 0.6);
        let outcome = WindowReduction::new().run(&inst, &SearchBudget::iterations(10), usize::MAX);
        assert!(!outcome.complete);
    }

    #[test]
    fn wr_empty_result_when_unsatisfiable() {
        let (inst, datasets) = instance(125, QueryShape::Clique, 3, 15, 0.001);
        assert_eq!(count_exact_solutions(&datasets, inst.graph(), 1), 0);
        let outcome = WindowReduction::new().run(&inst, &SearchBudget::seconds(10.0), usize::MAX);
        assert!(outcome.complete);
        assert!(outcome.solutions.is_empty());
    }
}
