//! Ablation baselines: the \[PMK+99\]-style heuristics the paper compares
//! against in §6.
//!
//! The paper attributes SEA/ILS's advantage over earlier configuration-
//! similarity work to two improvements: (i) index-based re-instantiation
//! instead of random values, and (ii) the greedy quality-aware crossover
//! instead of a random crossover point. These baselines remove exactly
//! those ingredients so the ablation benches can quantify each one:
//!
//! * [`NaiveLocalSearch`] — conflict-directed hill climbing whose
//!   re-instantiation samples random values (no index);
//! * [`NaiveGa`] — a genetic algorithm with random single-point crossover
//!   and random-value mutation (no index, no greedy split);
//! * [`SimulatedAnnealing`] — the classic temperature-scheduled random walk
//!   from \[PMK+99\].

use crate::budget::{SearchBudget, SearchContext};
use crate::driver::{run_driven, DriveSearch, SearchDriver};
use crate::instance::Instance;
use crate::result::RunOutcome;
use mwsj_query::{ConflictState, Solution};
use rand::rngs::StdRng;
use rand::RngExt;

/// Local search with **random** re-instantiation (no index).
#[derive(Debug, Clone)]
pub struct NaiveLocalSearch {
    /// Random values sampled per re-instantiation attempt; the best of the
    /// sample replaces the variable if it improves the solution.
    pub samples: usize,
}

impl Default for NaiveLocalSearch {
    fn default() -> Self {
        NaiveLocalSearch { samples: 8 }
    }
}

impl NaiveLocalSearch {
    /// Creates the baseline with a per-move sample size.
    pub fn new(samples: usize) -> Self {
        assert!(samples >= 1);
        NaiveLocalSearch { samples }
    }

    /// Runs the baseline. One budget step = one re-instantiation attempt.
    pub fn run(&self, instance: &Instance, budget: &SearchBudget, rng: &mut StdRng) -> RunOutcome {
        self.search(instance, &SearchContext::local(*budget), rng)
    }

    /// Runs the baseline under an explicit [`SearchContext`].
    pub fn search(&self, instance: &Instance, ctx: &SearchContext, rng: &mut StdRng) -> RunOutcome {
        run_driven(self, instance, ctx, rng)
    }
}

impl DriveSearch for NaiveLocalSearch {
    const NAME: &'static str = "naive-LS";
    const PHASE: &'static str = "naive-ls";

    fn drive(&self, instance: &Instance, driver: &mut SearchDriver, rng: &mut StdRng) {
        let graph = instance.graph();

        'restarts: while !driver.exhausted() {
            driver.stats_mut().restarts += 1;
            let mut sol = instance.random_solution(rng);
            let mut cs = instance.evaluate(&sol);
            driver.offer(&sol, cs.total_violations());

            loop {
                if driver.exhausted() {
                    break 'restarts;
                }
                let mut improved = false;
                for v in cs.vars_by_badness(graph) {
                    if driver.exhausted() {
                        break 'restarts;
                    }
                    driver.step();
                    // Sample random candidates; keep the one with the most
                    // satisfied conditions towards v's neighbours.
                    let current = cs.satisfied_of(graph, v);
                    let mut best: Option<(u32, usize)> = None;
                    for _ in 0..self.samples {
                        let obj = rng.random_range(0..instance.cardinality(v));
                        let r = instance.rect(v, obj);
                        let sat = graph
                            .neighbors(v)
                            .iter()
                            .filter(|&&(u, pred)| pred.eval(&r, &instance.rect(u, sol.get(u))))
                            .count() as u32;
                        if best.is_none_or(|(bs, _)| sat > bs) {
                            best = Some((sat, obj));
                        }
                    }
                    if let Some((sat, obj)) = best {
                        if sat > current {
                            cs.reassign(graph, &mut sol, v, obj, instance.rect_of());
                            driver.offer(&sol, cs.total_violations());
                            if cs.total_violations() == 0 {
                                break 'restarts;
                            }
                            improved = true;
                            break;
                        }
                    }
                }
                if !improved {
                    driver.stats_mut().local_maxima += 1;
                    break;
                }
            }
        }
    }
}

/// Configuration of [`NaiveGa`].
#[derive(Debug, Clone)]
pub struct NaiveGaConfig {
    /// Population size.
    pub population: usize,
    /// Tournament size.
    pub tournament: usize,
    /// Crossover rate.
    pub crossover_rate: f64,
    /// Mutation rate (random re-instantiation of one random variable).
    pub mutation_rate: f64,
}

impl Default for NaiveGaConfig {
    fn default() -> Self {
        NaiveGaConfig {
            population: 128,
            tournament: 6,
            crossover_rate: 0.6,
            mutation_rate: 1.0,
        }
    }
}

/// Genetic algorithm with random single-point crossover and random-value
/// mutation — the \[PMK+99\] baseline SEA is measured against.
#[derive(Debug, Clone, Default)]
pub struct NaiveGa {
    config: NaiveGaConfig,
}

impl NaiveGa {
    /// Creates the baseline.
    pub fn new(config: NaiveGaConfig) -> Self {
        assert!(config.population >= 2);
        NaiveGa { config }
    }

    /// Runs the baseline. One budget step = one generation.
    pub fn run(&self, instance: &Instance, budget: &SearchBudget, rng: &mut StdRng) -> RunOutcome {
        self.search(instance, &SearchContext::local(*budget), rng)
    }

    /// Runs the baseline under an explicit [`SearchContext`].
    pub fn search(&self, instance: &Instance, ctx: &SearchContext, rng: &mut StdRng) -> RunOutcome {
        run_driven(self, instance, ctx, rng)
    }
}

impl DriveSearch for NaiveGa {
    const NAME: &'static str = "naive-GA";
    const PHASE: &'static str = "naive-ga";

    fn drive(&self, instance: &Instance, driver: &mut SearchDriver, rng: &mut StdRng) {
        let graph = instance.graph();
        let n = instance.n_vars();
        let p = self.config.population;

        let mut pop: Vec<(Solution, ConflictState)> = (0..p)
            .map(|_| {
                let sol = instance.random_solution(rng);
                let cs = instance.evaluate(&sol);
                (sol, cs)
            })
            .collect();
        // Silent eager seed: this baseline predates bound sharing, so it
        // neither publishes nor emits for its arbitrary first member.
        driver.seed_incumbent(&pop[0].0, pop[0].1.total_violations());

        while !driver.exhausted() {
            driver.step();
            driver.stats_mut().restarts += 1;

            for (sol, cs) in &pop {
                driver.offer_unpublished(sol, cs.total_violations());
            }
            if driver.best_violations() == Some(0) {
                break;
            }

            // Tournament selection.
            let mut next = Vec::with_capacity(p);
            for i in 0..p {
                let mut winner = i;
                for _ in 0..self.config.tournament {
                    let rival = rng.random_range(0..p);
                    if pop[rival].1.total_violations() < pop[winner].1.total_violations() {
                        winner = rival;
                    }
                }
                next.push(pop[winner].clone());
            }
            pop = next;

            // Random single-point crossover between adjacent pairs.
            for i in (0..p - 1).step_by(2) {
                if !rng.random_bool(self.config.crossover_rate) {
                    continue;
                }
                let cut = rng.random_range(1..n.max(2));
                let (left, right) = pop.split_at_mut(i + 1);
                let (a, b) = (&mut left[i], &mut right[0]);
                for v in cut..n {
                    let av = a.0.get(v);
                    a.0.set(v, b.0.get(v));
                    b.0.set(v, av);
                }
                a.1 = instance.evaluate(&a.0);
                b.1 = instance.evaluate(&b.0);
            }

            // Random mutation.
            for (sol, cs) in pop.iter_mut() {
                if !rng.random_bool(self.config.mutation_rate) {
                    continue;
                }
                let v = rng.random_range(0..n);
                let obj = rng.random_range(0..instance.cardinality(v));
                cs.reassign(graph, sol, v, obj, instance.rect_of());
            }
        }

        // Final evaluation pass so the last generation's work counts.
        for (sol, cs) in &pop {
            driver.offer_unpublished(sol, cs.total_violations());
        }
    }
}

/// Configuration of [`SimulatedAnnealing`].
#[derive(Debug, Clone)]
pub struct SaConfig {
    /// Initial temperature, in units of violations.
    pub initial_temperature: f64,
    /// Geometric cooling factor per move, in `(0, 1)`.
    pub cooling: f64,
    /// Restart temperature floor: below this the walk restarts hot from the
    /// current solution.
    pub floor: f64,
}

impl Default for SaConfig {
    fn default() -> Self {
        SaConfig {
            initial_temperature: 2.0,
            cooling: 0.9995,
            floor: 0.01,
        }
    }
}

/// Simulated annealing over random single-variable moves.
#[derive(Debug, Clone, Default)]
pub struct SimulatedAnnealing {
    config: SaConfig,
}

impl SimulatedAnnealing {
    /// Creates the baseline.
    pub fn new(config: SaConfig) -> Self {
        assert!(config.cooling > 0.0 && config.cooling < 1.0);
        SimulatedAnnealing { config }
    }

    /// Runs the baseline. One budget step = one proposed move.
    pub fn run(&self, instance: &Instance, budget: &SearchBudget, rng: &mut StdRng) -> RunOutcome {
        self.search(instance, &SearchContext::local(*budget), rng)
    }

    /// Runs the baseline under an explicit [`SearchContext`].
    pub fn search(&self, instance: &Instance, ctx: &SearchContext, rng: &mut StdRng) -> RunOutcome {
        run_driven(self, instance, ctx, rng)
    }
}

impl DriveSearch for SimulatedAnnealing {
    const NAME: &'static str = "SA";
    const PHASE: &'static str = "sa";

    fn drive(&self, instance: &Instance, driver: &mut SearchDriver, rng: &mut StdRng) {
        let graph = instance.graph();
        let n = instance.n_vars();

        let mut sol = instance.random_solution(rng);
        let mut cs = instance.evaluate(&sol);
        driver.offer(&sol, cs.total_violations());
        driver.stats_mut().restarts = 1;

        let mut temperature = self.config.initial_temperature;
        while !driver.exhausted() {
            driver.step();
            let v = rng.random_range(0..n);
            let old_obj = sol.get(v);
            let obj = rng.random_range(0..instance.cardinality(v));
            let before = cs.total_violations() as f64;
            cs.reassign(graph, &mut sol, v, obj, instance.rect_of());
            let delta = cs.total_violations() as f64 - before;
            let accept =
                delta <= 0.0 || rng.random_range(0.0..1.0) < (-delta / temperature.max(1e-9)).exp();
            if accept {
                driver.offer(&sol, cs.total_violations());
                if cs.total_violations() == 0 {
                    break;
                }
            } else {
                cs.reassign(graph, &mut sol, v, old_obj, instance.rect_of());
            }
            temperature *= self.config.cooling;
            if temperature < self.config.floor {
                temperature = self.config.initial_temperature;
                driver.stats_mut().restarts += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ils, SearchBudget};
    use mwsj_datagen::{hard_region_density, Dataset, QueryShape};
    use rand::SeedableRng;

    fn hard_instance(seed: u64, n: usize, cardinality: usize) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let shape = QueryShape::Chain;
        let d = hard_region_density(shape, n, cardinality, 1.0);
        let datasets: Vec<Dataset> = (0..n)
            .map(|_| Dataset::uniform(cardinality, d, &mut rng))
            .collect();
        Instance::new(shape.graph(n), datasets).unwrap()
    }

    #[test]
    fn naive_ls_improves_over_random() {
        let inst = hard_instance(161, 5, 500);
        let mut rng = StdRng::seed_from_u64(162);
        let random_sim: f64 = (0..50)
            .map(|_| inst.similarity(&inst.random_solution(&mut rng)))
            .sum::<f64>()
            / 50.0;
        let outcome =
            NaiveLocalSearch::default().run(&inst, &SearchBudget::iterations(3_000), &mut rng);
        assert!(outcome.best_similarity > random_sim);
    }

    #[test]
    fn indexed_ils_beats_naive_ls_per_step() {
        // The paper's ablation claim (i): index-based re-instantiation
        // dominates random re-instantiation at equal step budgets.
        let inst = hard_instance(163, 6, 2_000);
        let steps = 600;
        let trials = 5;
        let mut ils_total = 0.0;
        let mut naive_total = 0.0;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(164 + t);
            ils_total += Ils::default()
                .run(&inst, &SearchBudget::iterations(steps), &mut rng)
                .best_similarity;
            let mut rng = StdRng::seed_from_u64(164 + t);
            naive_total += NaiveLocalSearch::default()
                .run(&inst, &SearchBudget::iterations(steps), &mut rng)
                .best_similarity;
        }
        assert!(
            ils_total >= naive_total,
            "ILS {ils_total} vs naive {naive_total} (sum over {trials} trials)"
        );
    }

    #[test]
    fn naive_ga_improves_over_random() {
        let inst = hard_instance(165, 5, 500);
        let mut rng = StdRng::seed_from_u64(166);
        let random_sim: f64 = (0..50)
            .map(|_| inst.similarity(&inst.random_solution(&mut rng)))
            .sum::<f64>()
            / 50.0;
        let outcome = NaiveGa::default().run(&inst, &SearchBudget::iterations(40), &mut rng);
        assert!(outcome.best_similarity > random_sim);
    }

    #[test]
    fn sa_improves_over_random() {
        let inst = hard_instance(167, 5, 500);
        let mut rng = StdRng::seed_from_u64(168);
        let random_sim: f64 = (0..50)
            .map(|_| inst.similarity(&inst.random_solution(&mut rng)))
            .sum::<f64>()
            / 50.0;
        let outcome =
            SimulatedAnnealing::default().run(&inst, &SearchBudget::iterations(20_000), &mut rng);
        assert!(outcome.best_similarity > random_sim);
    }

    #[test]
    fn baselines_are_deterministic() {
        let inst = hard_instance(169, 4, 200);
        let a = NaiveGa::default().run(
            &inst,
            &SearchBudget::iterations(10),
            &mut StdRng::seed_from_u64(1),
        );
        let b = NaiveGa::default().run(
            &inst,
            &SearchBudget::iterations(10),
            &mut StdRng::seed_from_u64(1),
        );
        assert_eq!(a.best, b.best);
    }
}
