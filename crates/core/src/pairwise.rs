//! Pairwise R-tree spatial join (Brinkhoff, Kriegel & Seeger, SIGMOD 1993).
//!
//! Synchronous depth-first traversal of two R-trees producing all pairs of
//! objects whose MBRs intersect. This is the building block of the
//! pairwise join method ([`crate::Pjm`]) against which the paper positions
//! its multiway algorithms.

use mwsj_geom::Rect;
use mwsj_rtree::{NodeRef, RTree};

/// Result of a pairwise join: matching object id pairs plus node-access
/// counters.
#[derive(Debug, Clone, Default)]
pub struct PairwiseJoin {
    /// Matching `(left object, right object)` pairs.
    pub pairs: Vec<(u32, u32)>,
    /// R-tree nodes visited across both trees.
    pub node_accesses: u64,
}

impl PairwiseJoin {
    /// Joins two R-trees on MBR intersection.
    pub fn join(left: &RTree<u32>, right: &RTree<u32>) -> PairwiseJoin {
        let mut result = PairwiseJoin::default();
        if left.is_empty() || right.is_empty() {
            return result;
        }
        result.node_accesses = 2;
        join_rec(
            Cursor::Node(left.root_node()),
            Cursor::Node(right.root_node()),
            &mut result,
        );
        result
    }
}

/// Either a subtree still being descended or an already-fixed data object
/// (needed when the two trees have different heights).
enum Cursor<'a> {
    Node(NodeRef<'a, u32>),
    Data(u32, &'a Rect),
}

fn join_rec(a: Cursor<'_>, b: Cursor<'_>, out: &mut PairwiseJoin) {
    match (a, b) {
        (Cursor::Data(va, ra), Cursor::Data(vb, rb)) => {
            if ra.intersects(rb) {
                out.pairs.push((va, vb));
            }
        }
        (Cursor::Node(na), Cursor::Data(vb, rb)) => {
            for ea in na.entries() {
                if ea.mbr().intersects(rb) {
                    match ea.child() {
                        Some(child) => {
                            out.node_accesses += 1;
                            join_rec(Cursor::Node(child), Cursor::Data(vb, rb), out);
                        }
                        None => out.pairs.push((*ea.value().expect("leaf"), vb)),
                    }
                }
            }
        }
        (Cursor::Data(va, ra), Cursor::Node(nb)) => {
            for eb in nb.entries() {
                if ra.intersects(eb.mbr()) {
                    match eb.child() {
                        Some(child) => {
                            out.node_accesses += 1;
                            join_rec(Cursor::Data(va, ra), Cursor::Node(child), out);
                        }
                        None => out.pairs.push((va, *eb.value().expect("leaf"))),
                    }
                }
            }
        }
        (Cursor::Node(na), Cursor::Node(nb)) => {
            // Descend the taller tree (or both when equal) — the classic
            // strategy for trees of different heights.
            if na.level() > nb.level() {
                for ea in na.entries() {
                    if ea.mbr().intersects(&nb.mbr()) {
                        out.node_accesses += 1;
                        join_rec(cursor_of(ea), Cursor::Node(nb), out);
                    }
                }
            } else if nb.level() > na.level() {
                for eb in nb.entries() {
                    if eb.mbr().intersects(&na.mbr()) {
                        out.node_accesses += 1;
                        join_rec(Cursor::Node(na), cursor_of(eb), out);
                    }
                }
            } else {
                for ea in na.entries() {
                    for eb in nb.entries() {
                        if ea.mbr().intersects(eb.mbr()) {
                            match (ea.child(), eb.child()) {
                                (None, None) => out
                                    .pairs
                                    .push((*ea.value().expect("leaf"), *eb.value().expect("leaf"))),
                                _ => {
                                    out.node_accesses += 2;
                                    join_rec(cursor_of(ea), cursor_of(eb), out);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

fn cursor_of<'a>(entry: mwsj_rtree::EntryRef<'a, u32>) -> Cursor<'a> {
    match entry.child() {
        Some(node) => Cursor::Node(node),
        None => Cursor::Data(*entry.value().expect("leaf entry"), entry.mbr()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwsj_datagen::Dataset;
    use mwsj_rtree::RTreeParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tree_of(rects: &[Rect], cap: usize) -> RTree<u32> {
        RTree::bulk_load_with_params(
            RTreeParams::new(cap),
            rects.iter().copied().zip(0u32..).collect(),
        )
    }

    #[test]
    fn join_matches_nested_loops() {
        let mut rng = StdRng::seed_from_u64(111);
        let a = Dataset::uniform(500, 0.2, &mut rng);
        let b = Dataset::uniform(700, 0.2, &mut rng);
        let ta = tree_of(a.rects(), 8);
        let tb = tree_of(b.rects(), 8);
        let mut got = PairwiseJoin::join(&ta, &tb).pairs;
        got.sort_unstable();
        let mut expected = Vec::new();
        for (i, ra) in a.rects().iter().enumerate() {
            for (j, rb) in b.rects().iter().enumerate() {
                if ra.intersects(rb) {
                    expected.push((i as u32, j as u32));
                }
            }
        }
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn join_with_different_heights() {
        let mut rng = StdRng::seed_from_u64(112);
        let small = Dataset::uniform(10, 0.3, &mut rng);
        let large = Dataset::uniform(3_000, 0.3, &mut rng);
        let ts = tree_of(small.rects(), 4);
        let tl = tree_of(large.rects(), 4);
        assert!(tl.height() > ts.height());
        let mut got = PairwiseJoin::join(&ts, &tl).pairs;
        got.sort_unstable();
        let mut expected = Vec::new();
        for (i, ra) in small.rects().iter().enumerate() {
            for (j, rb) in large.rects().iter().enumerate() {
                if ra.intersects(rb) {
                    expected.push((i as u32, j as u32));
                }
            }
        }
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn empty_inputs_yield_empty_result() {
        let empty: RTree<u32> = RTree::new();
        let mut rng = StdRng::seed_from_u64(113);
        let d = Dataset::uniform(10, 0.2, &mut rng);
        let t = tree_of(d.rects(), 8);
        assert!(PairwiseJoin::join(&empty, &t).pairs.is_empty());
        assert!(PairwiseJoin::join(&t, &empty).pairs.is_empty());
    }

    #[test]
    fn disjoint_datasets_produce_no_pairs() {
        let left = vec![Rect::new(0.0, 0.0, 0.1, 0.1)];
        let right = vec![Rect::new(0.9, 0.9, 1.0, 1.0)];
        let res = PairwiseJoin::join(&tree_of(&left, 4), &tree_of(&right, 4));
        assert!(res.pairs.is_empty());
    }
}
