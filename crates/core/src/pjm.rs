//! Pairwise Join Method (paper §2, \[MP99\]): exact multiway joins composed
//! from pairwise R-tree joins.
//!
//! The first two variables of a connectivity order are joined with the
//! BKS93 synchronous pairwise join; every further variable is attached by
//! an index-nested-loop step that, for each intermediate tuple, runs a
//! conjunctive multi-window query against the new variable's R*-tree. The
//! intermediate result is materialised between steps — the source of PJM's
//! memory blow-up on high-selectivity queries, and the reason it cannot be
//! adapted to approximate retrieval (intermediate pairs must intersect).

use crate::budget::{BudgetClock, SearchBudget, SearchContext};
use crate::candidates::candidates_with_counts;
use crate::instance::{BackendKind, Instance};
use crate::order::connectivity_order;
use crate::pairwise::PairwiseJoin;
use crate::result::RunStats;
use crate::wr::ExactJoinOutcome;
use mwsj_geom::{Predicate, Rect};
use mwsj_obs::ObsHandle;
use mwsj_query::Solution;
use mwsj_rtree::AccessCounter;

/// Join-order strategy for [`Pjm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PjmOrder {
    /// Cost-based greedy ordering \[MP99\]: start with the edge whose
    /// estimated pairwise output (`Nᵢ·Nⱼ·(|rᵢ|+|rⱼ|)²`, extents measured
    /// from the data) is smallest, then repeatedly attach the connected
    /// variable with the smallest estimated growth factor. Minimises the
    /// materialised intermediate results.
    #[default]
    CostBased,
    /// Structural ordering (most-connected first), ignoring statistics.
    Connectivity,
}

/// Pairwise join method.
#[derive(Debug, Clone)]
pub struct Pjm {
    /// Cap on the materialised intermediate result (tuples). Exceeding it
    /// truncates the join (`complete = false`).
    pub max_intermediate: usize,
    /// Join-order strategy.
    pub order: PjmOrder,
}

impl Default for Pjm {
    fn default() -> Self {
        Pjm {
            max_intermediate: 5_000_000,
            order: PjmOrder::default(),
        }
    }
}

impl Pjm {
    /// Creates the algorithm with an intermediate-result cap.
    pub fn new(max_intermediate: usize) -> Self {
        Pjm {
            max_intermediate,
            ..Pjm::default()
        }
    }

    /// Sets the join-order strategy.
    pub fn with_order(mut self, order: PjmOrder) -> Self {
        self.order = order;
        self
    }

    /// Computes the variable order according to the configured strategy.
    fn join_order(&self, instance: &Instance) -> Vec<usize> {
        match self.order {
            PjmOrder::Connectivity => connectivity_order(instance.graph()),
            PjmOrder::CostBased => cost_based_order(instance),
        }
    }

    /// Enumerates up to `limit` exact solutions within `budget`.
    pub fn run(
        &self,
        instance: &Instance,
        budget: &SearchBudget,
        limit: usize,
    ) -> ExactJoinOutcome {
        self.run_with_obs(instance, budget, limit, &ObsHandle::disabled())
    }

    /// Like [`Pjm::run`], additionally reporting counters and phase timings
    /// ("pjm") through `obs`.
    pub fn run_with_obs(
        &self,
        instance: &Instance,
        budget: &SearchBudget,
        limit: usize,
        obs: &ObsHandle,
    ) -> ExactJoinOutcome {
        let graph = instance.graph();
        let n = graph.n_vars();
        let order = self.join_order(instance);
        let ctx = SearchContext::local(*budget).with_obs(obs.clone());
        let mut clock = BudgetClock::from_context(&ctx);
        let _phase = clock.obs().timer.span("pjm");
        let mut stats = RunStats::default();
        let mut truncated = false;

        // Step 1: pairwise join of the first two variables in the order
        // (connected by construction of the order on connected graphs;
        // fall back to a cross filter if not).
        let (v0, v1) = (order[0], order[1]);
        let mut tuples: Vec<Vec<usize>> =
            match (instance.backend(), graph.predicate_between(v0, v1)) {
                // No edge between the first two: Cartesian product is required;
                // guarded by the intermediate cap.
                (_, None) => {
                    let mut out = Vec::new();
                    'outer: for a in 0..instance.cardinality(v0) {
                        for b in 0..instance.cardinality(v1) {
                            if out.len() >= self.max_intermediate {
                                truncated = true;
                                break 'outer;
                            }
                            out.push(vec![a, b]);
                        }
                    }
                    out
                }
                (BackendKind::RTree, Some(Predicate::Intersects)) => {
                    let join = PairwiseJoin::join(instance.tree(v0), instance.tree(v1));
                    stats.node_accesses += join.node_accesses;
                    join.pairs
                        .into_iter()
                        .map(|(a, b)| vec![a as usize, b as usize])
                        .collect()
                }
                (BackendKind::RTree, Some(pred)) => {
                    // Generic predicate: index-nested-loop over v0.
                    let counter = AccessCounter::new();
                    let mut out = Vec::new();
                    for a in 0..instance.cardinality(v0) {
                        let w = instance.rect(v0, a);
                        for (_, b) in instance
                            .tree(v1)
                            .query_predicate_counted(pred.transpose(), &w, &counter)
                            .map(|(r, v)| (r, *v as usize))
                        {
                            out.push(vec![a, b]);
                        }
                    }
                    stats.node_accesses += counter.get();
                    out
                }
                (BackendKind::Grid, Some(pred)) => {
                    grid_pair_join(instance, v0, v1, pred, &mut stats.node_accesses)
                }
            };
        clock.step();

        // Steps 2..n: attach one variable at a time.
        for k in 2..n {
            if tuples.is_empty() {
                break;
            }
            let var = order[k];
            let mut next: Vec<Vec<usize>> = Vec::new();
            'tuples: for tuple in &tuples {
                if clock.exhausted() {
                    truncated = true;
                    break 'tuples;
                }
                clock.step();
                let windows: Vec<(Predicate, Rect)> = graph
                    .neighbors(var)
                    .iter()
                    .filter_map(|&(u, pred)| {
                        let pos = order[..k].iter().position(|&x| x == u)?;
                        Some((pred, instance.rect(u, tuple[pos])))
                    })
                    .collect();
                debug_assert!(!windows.is_empty(), "connectivity order guarantees windows");
                let required = windows.len() as u32;
                for (obj, _) in candidates_with_counts(
                    instance,
                    var,
                    &windows,
                    required,
                    &mut stats.node_accesses,
                    &mut [],
                ) {
                    if next.len() >= self.max_intermediate {
                        truncated = true;
                        break 'tuples;
                    }
                    let mut extended = tuple.clone();
                    extended.push(obj);
                    next.push(extended);
                }
            }
            tuples = next;
        }

        // Convert order-indexed tuples back to variable-indexed solutions.
        let mut solutions: Vec<Solution> = Vec::with_capacity(tuples.len().min(limit));
        for tuple in tuples {
            if solutions.len() >= limit {
                truncated = true;
                break;
            }
            if tuple.len() < n {
                continue; // truncated mid-extension
            }
            let mut assignment = vec![0usize; n];
            for (pos, &var) in order.iter().enumerate() {
                assignment[var] = tuple[pos];
            }
            solutions.push(Solution::new(assignment));
        }

        stats.elapsed = clock.elapsed();
        stats.steps = clock.steps();
        crate::observe::flush_stats(clock.obs(), &stats);
        clock.emit_stop_reason();
        ExactJoinOutcome {
            solutions,
            stats,
            complete: !truncated,
        }
    }
}

/// Greedy cost-based ordering: smallest estimated first pair, then the
/// cheapest connected extension (estimated growth factor
/// `Nᵥ · Π (|rᵥ|+|rᵤ|)²` over edges to already-placed variables; a factor
/// below 1 *shrinks* the intermediate result). Falls back to connectivity
/// for variables with no placed neighbour (disconnected graphs).
fn cost_based_order(instance: &Instance) -> Vec<usize> {
    let graph = instance.graph();
    let n = graph.n_vars();
    if n <= 2 {
        return (0..n).collect();
    }
    let extent: Vec<f64> = (0..n).map(|v| instance.avg_extent(v)).collect();
    let card: Vec<f64> = (0..n).map(|v| instance.cardinality(v) as f64).collect();

    // Best starting edge.
    let mut best_pair: Option<(f64, usize, usize)> = None;
    for e in graph.edges() {
        let est = card[e.a] * card[e.b] * (extent[e.a] + extent[e.b]).powi(2);
        if best_pair.is_none_or(|(b, _, _)| est < b) {
            best_pair = Some((est, e.a, e.b));
        }
    }
    let (_, a, b) = best_pair.expect("graph has edges");
    let mut order = vec![a, b];
    let mut placed = vec![false; n];
    placed[a] = true;
    placed[b] = true;

    while order.len() < n {
        let mut best: Option<(f64, usize)> = None;
        for v in 0..n {
            if placed[v] {
                continue;
            }
            let mut growth = card[v];
            let mut connected = false;
            for &(u, _) in graph.neighbors(v) {
                if placed[u] {
                    connected = true;
                    growth *= (extent[v] + extent[u]).powi(2);
                }
            }
            if !connected {
                continue;
            }
            if best.is_none_or(|(g, _)| growth < g) {
                best = Some((growth, v));
            }
        }
        match best {
            Some((_, v)) => {
                placed[v] = true;
                order.push(v);
            }
            None => {
                // Disconnected remainder: append by connectivity order.
                for v in connectivity_order(graph) {
                    if !placed[v] {
                        placed[v] = true;
                        order.push(v);
                    }
                }
            }
        }
    }
    order
}

/// First-pair join on the grid backend: an index-nested-loop over `v0`'s
/// objects, each probing `v1`'s grid with the transposed predicate. With
/// `grid_threads() > 1` the probes fan out over scoped worker threads; the
/// result is merged back in `v0`-object order and the per-probe cell-access
/// counts are summed, so both the pair list and `node_accesses` are
/// bit-identical to the sequential run (see DESIGN.md §5j).
fn grid_pair_join(
    instance: &Instance,
    v0: usize,
    v1: usize,
    pred: Predicate,
    node_accesses: &mut u64,
) -> Vec<Vec<usize>> {
    use mwsj_rtree::grid;

    let g = instance.grid(v1);
    let n = instance.cardinality(v0);
    let probe = |a: usize, accesses: &mut u64| -> Vec<Vec<usize>> {
        let w = instance.rect(v0, a);
        grid::query_predicate(g, pred.transpose(), &w, 1, accesses)
            .into_iter()
            .map(|b| vec![a, b as usize])
            .collect()
    };
    let threads = instance.grid_threads().min(n);
    if threads <= 1 {
        let mut out = Vec::new();
        for a in 0..n {
            out.extend(probe(a, node_accesses));
        }
        return out;
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    // (probe object, its pair rows, its cell accesses) per finished probe.
    type ProbeResult = (usize, Vec<Vec<usize>>, u64);
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<ProbeResult>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let a = next.fetch_add(1, Ordering::Relaxed);
                if a >= n {
                    break;
                }
                let mut accesses = 0u64;
                let rows = probe(a, &mut accesses);
                done.lock().expect("probe mutex").push((a, rows, accesses));
            });
        }
    });
    let mut done = done.into_inner().expect("probe mutex");
    done.sort_unstable_by_key(|&(a, _, _)| a);
    let mut out = Vec::new();
    for (_, rows, accesses) in done {
        *node_accesses += accesses;
        out.extend(rows);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WindowReduction;
    use mwsj_datagen::{count_exact_solutions, Dataset, QueryShape};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn instance(
        seed: u64,
        shape: QueryShape,
        n: usize,
        cardinality: usize,
        density: f64,
    ) -> (Instance, Vec<Dataset>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let datasets: Vec<Dataset> = (0..n)
            .map(|_| Dataset::uniform(cardinality, density, &mut rng))
            .collect();
        (
            Instance::new(shape.graph(n), datasets.clone()).unwrap(),
            datasets,
        )
    }

    #[test]
    fn pjm_count_matches_brute_force() {
        for shape in [QueryShape::Chain, QueryShape::Clique, QueryShape::Star] {
            let (inst, datasets) = instance(141, shape, 4, 50, 0.35);
            let outcome = Pjm::default().run(&inst, &SearchBudget::seconds(30.0), usize::MAX);
            assert!(outcome.complete);
            let brute = count_exact_solutions(&datasets, inst.graph(), u64::MAX);
            assert_eq!(outcome.solutions.len() as u64, brute, "{}", shape.name());
        }
    }

    #[test]
    fn pjm_agrees_with_wr() {
        let (inst, _) = instance(142, QueryShape::Cycle, 4, 40, 0.4);
        let mut pjm: Vec<Solution> = Pjm::default()
            .run(&inst, &SearchBudget::seconds(30.0), usize::MAX)
            .solutions;
        let mut wr: Vec<Solution> = WindowReduction::new()
            .run(&inst, &SearchBudget::seconds(30.0), usize::MAX)
            .solutions;
        pjm.sort_by(|a, b| a.as_slice().cmp(b.as_slice()));
        wr.sort_by(|a, b| a.as_slice().cmp(b.as_slice()));
        assert_eq!(pjm, wr);
    }

    #[test]
    fn pjm_intermediate_cap_truncates() {
        let (inst, _) = instance(143, QueryShape::Chain, 3, 100, 1.5);
        let outcome = Pjm::new(10).run(&inst, &SearchBudget::seconds(30.0), usize::MAX);
        assert!(!outcome.complete);
    }

    #[test]
    fn both_orders_produce_identical_solution_sets() {
        let (inst, _) = instance(145, QueryShape::Cycle, 4, 50, 0.4);
        let budget = SearchBudget::seconds(30.0);
        let mut cost: Vec<Solution> = Pjm::default()
            .with_order(PjmOrder::CostBased)
            .run(&inst, &budget, usize::MAX)
            .solutions;
        let mut conn: Vec<Solution> = Pjm::default()
            .with_order(PjmOrder::Connectivity)
            .run(&inst, &budget, usize::MAX)
            .solutions;
        cost.sort_by(|a, b| a.as_slice().cmp(b.as_slice()));
        conn.sort_by(|a, b| a.as_slice().cmp(b.as_slice()));
        assert_eq!(cost, conn);
    }

    #[test]
    fn cost_based_order_starts_with_cheapest_pair() {
        // Two tiny datasets and two huge ones in a chain: the cheap pair
        // must be joined first.
        let mut rng = StdRng::seed_from_u64(146);
        let small_a = Dataset::uniform(10, 0.001, &mut rng);
        let small_b = Dataset::uniform(10, 0.001, &mut rng);
        let big_a = Dataset::uniform(2_000, 0.5, &mut rng);
        let big_b = Dataset::uniform(2_000, 0.5, &mut rng);
        // chain: big_a(0) - small_a(1) - small_b(2) - big_b(3)
        let graph = QueryShape::Chain.graph(4);
        let inst = Instance::new(
            graph,
            vec![
                big_a.rects().to_vec(),
                small_a.rects().to_vec(),
                small_b.rects().to_vec(),
                big_b.rects().to_vec(),
            ],
        )
        .unwrap();
        let order = cost_based_order(&inst);
        assert_eq!(
            {
                let mut first_two = order[..2].to_vec();
                first_two.sort_unstable();
                first_two
            },
            vec![1, 2],
            "cheapest pair (1,2) should start the order, got {order:?}"
        );
    }

    #[test]
    fn pjm_solutions_are_exact() {
        let (inst, _) = instance(144, QueryShape::Clique, 3, 60, 0.5);
        let outcome = Pjm::default().run(&inst, &SearchBudget::seconds(30.0), usize::MAX);
        for sol in &outcome.solutions {
            assert_eq!(inst.violations(sol), 0);
        }
    }
}
