//! *Find best value* (paper §3, Fig. 5): a branch-and-bound multi-window
//! query.
//!
//! Given a solution and a variable `vᵢ` to re-instantiate, the assignments
//! of `vᵢ`'s query-graph neighbours act as query *windows*; the goal is the
//! object of dataset `Dᵢ` that satisfies the most join conditions against
//! those windows. The traversal starts at the root of `vᵢ`'s R*-tree,
//! sorts each node's entries by the number of windows they (can) satisfy,
//! visits them best-first, and prunes any subtree whose potential count
//! cannot exceed the best leaf count found so far.
//!
//! GILS extends the comparison at leaf level with assignment penalties
//! (paper §4): the *effective* value of a leaf object is
//! `satisfied − λ·penalty(vᵢ ← object)`; internal-node bounds stay the raw
//! satisfied-count, which remains admissible because penalties only lower a
//! leaf's value.
//!
//! The traversal itself is the shared multi-window kernel in
//! [`mwsj_rtree::multiwindow`]; this module builds the windows from the
//! query graph and injects the raw or λ-penalised leaf scorer. Hot loops
//! should prefer [`WindowCache::find_best_value`](crate::WindowCache),
//! which reuses the window vector across calls and skips the traversal
//! entirely when nothing relevant changed.

use crate::instance::{BackendKind, Instance, LeafLayout};
use mwsj_geom::{Predicate, Rect};
use mwsj_query::{PenaltyTable, Solution, VarId};
use mwsj_rtree::{grid, multiwindow};

/// Result of a [`find_best_value`] search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BestValue {
    /// The best object of the variable's dataset.
    pub object: usize,
    /// Number of join conditions the object satisfies against the current
    /// assignments of the variable's neighbours.
    pub satisfied: u32,
    /// `satisfied − λ·penalty`; equals `satisfied` when no penalties are in
    /// play.
    pub effective: f64,
}

/// Retrieves the best value for `var` given the other assignments in `sol`
/// (paper Fig. 5). Returns `None` when no object satisfies any join
/// condition (the paper's `bestValue = ∅`).
///
/// `penalties` activates GILS mode: leaf values are compared by their
/// λ-discounted effective value. `node_accesses` is incremented once per
/// R*-tree node visited.
pub fn find_best_value(
    instance: &Instance,
    sol: &Solution,
    var: VarId,
    penalties: Option<(&PenaltyTable, f64)>,
    node_accesses: &mut u64,
) -> Option<BestValue> {
    // The windows: one per neighbour, with the predicate oriented var → u.
    let windows: Vec<(Predicate, Rect)> = instance
        .graph()
        .neighbors(var)
        .iter()
        .map(|&(u, pred)| (pred, instance.rect(u, sol.get(u))))
        .collect();
    best_value_in_windows(instance, var, &windows, penalties, node_accesses, &mut [])
}

/// Runs the traversal kernel over `var`'s tree with pre-built windows.
///
/// This is the shared back half of [`find_best_value`] and the
/// [`WindowCache`](crate::WindowCache) fast path. Raw mode scores a leaf
/// by its satisfied count; penalty mode subtracts `λ·penalty` — both as
/// `f64`, which reproduces the paper's raw strict-count comparison exactly
/// because `u32 → f64` is lossless.
///
/// `level_accesses[lvl]` (`[0]` = leaf) is bumped per visited node when the
/// slice covers the tree height; pass `&mut []` to skip attribution. The
/// leveled and plain kernels are bit-identical in results and counts.
pub(crate) fn best_value_in_windows(
    instance: &Instance,
    var: VarId,
    windows: &[(Predicate, Rect)],
    penalties: Option<(&PenaltyTable, f64)>,
    node_accesses: &mut u64,
    level_accesses: &mut [u64],
) -> Option<BestValue> {
    // Backend is matched before the closures are built: the grid kernel
    // fans cells across threads and therefore needs `Fn + Sync` scorers,
    // while the R*-tree kernel keeps its original `FnMut` contract.
    let best = match (instance.backend(), penalties) {
        (BackendKind::RTree, Some((table, lambda))) => run_kernel(
            instance,
            var,
            windows,
            |&object, count| count as f64 - lambda * table.get(var, object as usize) as f64,
            node_accesses,
            level_accesses,
        ),
        (BackendKind::RTree, None) => run_kernel(
            instance,
            var,
            windows,
            |_, count| count as f64,
            node_accesses,
            level_accesses,
        ),
        (BackendKind::Grid, Some((table, lambda))) => grid::find_best_in_windows(
            instance.grid(var),
            windows,
            |&object, count| count as f64 - lambda * table.get(var, object as usize) as f64,
            instance.grid_threads(),
            node_accesses,
            level_accesses,
        ),
        (BackendKind::Grid, None) => grid::find_best_in_windows(
            instance.grid(var),
            windows,
            |_, count| count as f64,
            instance.grid_threads(),
            node_accesses,
            level_accesses,
        ),
    }?;
    Some(BestValue {
        object: best.value as usize,
        satisfied: best.satisfied,
        effective: best.score,
    })
}

/// Dispatches the traversal to the leaf layout the instance selects. The
/// two kernels are bit-identical in results and node accesses (DESIGN.md
/// §5f); [`LeafLayout::Flat`] scans the frozen SoA arrays and is the
/// default hot path.
fn run_kernel(
    instance: &Instance,
    var: VarId,
    windows: &[(Predicate, Rect)],
    score: impl FnMut(&u32, u32) -> f64,
    node_accesses: &mut u64,
    level_accesses: &mut [u64],
) -> Option<multiwindow::BestLeaf<u32>> {
    let root = instance.tree(var).root_node();
    match instance.leaf_layout() {
        LeafLayout::Flat => multiwindow::find_best_leaf_flat_leveled(
            root,
            instance.flat_leaves(var),
            windows,
            score,
            node_accesses,
            level_accesses,
        ),
        LeafLayout::Entry => {
            multiwindow::find_best_leaf_leveled(root, windows, score, node_accesses, level_accesses)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwsj_datagen::Dataset;
    use mwsj_query::{QueryGraph, QueryGraphBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Brute-force reference implementation.
    fn brute_best(
        instance: &Instance,
        sol: &Solution,
        var: VarId,
        penalties: Option<(&PenaltyTable, f64)>,
    ) -> Option<BestValue> {
        let windows: Vec<(Predicate, Rect)> = instance
            .graph()
            .neighbors(var)
            .iter()
            .map(|&(u, pred)| (pred, instance.rect(u, sol.get(u))))
            .collect();
        let mut best: Option<BestValue> = None;
        for obj in 0..instance.cardinality(var) {
            let r = instance.rect(var, obj);
            let count = windows.iter().filter(|(pred, w)| pred.eval(&r, w)).count() as u32;
            if count == 0 {
                continue;
            }
            let effective = match penalties {
                Some((t, l)) => count as f64 - l * t.get(var, obj) as f64,
                None => count as f64,
            };
            let better = match &best {
                None => true,
                Some(b) => {
                    if penalties.is_some() {
                        effective > b.effective
                    } else {
                        count > b.satisfied
                    }
                }
            };
            if better {
                best = Some(BestValue {
                    object: obj,
                    satisfied: count,
                    effective,
                });
            }
        }
        best
    }

    fn random_instance(seed: u64, n: usize, cardinality: usize, density: f64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = QueryGraph::clique(n);
        let datasets: Vec<Dataset> = (0..n)
            .map(|_| Dataset::uniform(cardinality, density, &mut rng))
            .collect();
        Instance::new(graph, datasets).unwrap()
    }

    #[test]
    fn matches_brute_force_on_satisfied_count() {
        let inst = random_instance(51, 5, 400, 0.3);
        let mut rng = StdRng::seed_from_u64(52);
        for _ in 0..50 {
            let sol = inst.random_solution(&mut rng);
            for var in 0..5 {
                let mut acc = 0u64;
                let fast = find_best_value(&inst, &sol, var, None, &mut acc);
                let slow = brute_best(&inst, &sol, var, None);
                match (fast, slow) {
                    (None, None) => {}
                    (Some(f), Some(s)) => {
                        // Several objects may tie; the counts must agree.
                        assert_eq!(f.satisfied, s.satisfied, "var {var}");
                    }
                    (f, s) => panic!("mismatch: fast {f:?} vs slow {s:?}"),
                }
                assert!(acc > 0, "traversal must visit at least the root");
            }
        }
    }

    #[test]
    fn returns_none_when_nothing_intersects() {
        // Two far-apart clusters: dataset 1 near origin, dataset 0 far away.
        let d0 = vec![Rect::new(0.9, 0.9, 0.95, 0.95)];
        let d1 = vec![
            Rect::new(0.0, 0.0, 0.05, 0.05),
            Rect::new(0.1, 0.1, 0.15, 0.15),
        ];
        let inst = Instance::new(QueryGraph::chain(2), vec![d0, d1]).unwrap();
        let sol = Solution::new(vec![0, 0]);
        let mut acc = 0;
        assert_eq!(find_best_value(&inst, &sol, 1, None, &mut acc), None);
    }

    #[test]
    fn paper_example_prefers_object_intersecting_both_windows() {
        // Three datasets; the middle variable should pick the object that
        // overlaps both neighbours rather than one of them.
        let left = vec![Rect::new(0.0, 0.0, 0.3, 0.3)];
        let right = vec![Rect::new(0.5, 0.5, 0.8, 0.8)];
        let middle = vec![
            Rect::new(0.0, 0.0, 0.1, 0.1),     // hits left only
            Rect::new(0.25, 0.25, 0.55, 0.55), // hits both
            Rect::new(0.6, 0.6, 0.7, 0.7),     // hits right only
        ];
        let graph = QueryGraphBuilder::new(3)
            .edge(1, 0)
            .edge(1, 2)
            .build()
            .unwrap();
        let inst = Instance::new(graph, vec![left, middle, right]).unwrap();
        let sol = Solution::new(vec![0, 0, 0]);
        let mut acc = 0;
        let best = find_best_value(&inst, &sol, 1, None, &mut acc).unwrap();
        assert_eq!(best.object, 1);
        assert_eq!(best.satisfied, 2);
    }

    #[test]
    fn penalties_steer_away_from_punished_assignments() {
        // Two identical objects both satisfying one window; penalising the
        // first must make the second win.
        let d0 = vec![Rect::new(0.0, 0.0, 1.0, 1.0)];
        let d1 = vec![Rect::new(0.2, 0.2, 0.4, 0.4), Rect::new(0.2, 0.2, 0.4, 0.4)];
        let inst = Instance::new(QueryGraph::chain(2), vec![d0, d1]).unwrap();
        let sol = Solution::new(vec![0, 0]);
        let mut table = PenaltyTable::new();
        table.penalize(1, 0);
        let mut acc = 0;
        let best = find_best_value(&inst, &sol, 1, Some((&table, 0.1)), &mut acc).unwrap();
        assert_eq!(best.object, 1, "penalised object 0 should lose the tie");
        assert!((best.effective - 1.0).abs() < 1e-12);
    }

    #[test]
    fn penalty_mode_matches_brute_force() {
        let inst = random_instance(53, 4, 300, 0.3);
        let mut rng = StdRng::seed_from_u64(54);
        let mut table = PenaltyTable::new();
        // Random penalties.
        use rand::RngExt;
        for _ in 0..200 {
            table.penalize(rng.random_range(0..4), rng.random_range(0..300));
        }
        let lambda = 0.05;
        for _ in 0..30 {
            let sol = inst.random_solution(&mut rng);
            for var in 0..4 {
                let mut acc = 0;
                let fast = find_best_value(&inst, &sol, var, Some((&table, lambda)), &mut acc);
                let slow = brute_best(&inst, &sol, var, Some((&table, lambda)));
                match (fast, slow) {
                    (None, None) => {}
                    (Some(f), Some(s)) => {
                        assert!(
                            (f.effective - s.effective).abs() < 1e-12,
                            "var {var}: fast {f:?} vs slow {s:?}"
                        );
                    }
                    (f, s) => panic!("mismatch: fast {f:?} vs slow {s:?}"),
                }
            }
        }
    }

    #[test]
    fn pruning_reduces_node_accesses() {
        let inst = random_instance(55, 3, 5_000, 0.2);
        let mut rng = StdRng::seed_from_u64(56);
        let sol = inst.random_solution(&mut rng);
        let mut accesses = 0;
        let _ = find_best_value(&inst, &sol, 0, None, &mut accesses);
        let total_nodes = inst.tree(0).node_count() as u64;
        assert!(
            accesses < total_nodes,
            "visited {accesses} of {total_nodes} nodes — pruning ineffective"
        );
    }
}
