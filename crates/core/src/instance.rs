//! A join instance: query graph plus indexed datasets.

use mwsj_geom::Rect;
use mwsj_obs::{MemoryFootprint, ResourceReport};
use mwsj_query::{ConflictState, QueryGraph, Solution, VarId};
use mwsj_rtree::{FlatLeaves, RTree, RTreeParams, UniformGrid};
use rand::rngs::StdRng;
use rand::RngExt;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Which leaf representation the multi-window kernel scans.
///
/// Both layouts are bit-identical in results and node-access counts
/// (DESIGN.md §5f); [`LeafLayout::Flat`] reads the frozen SoA coordinate
/// arrays and is the default — the entry layout stays selectable for A/B
/// benchmarking and the scale-invariance tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LeafLayout {
    /// Contiguous SoA leaf arrays ([`FlatLeaves`]); the fast path.
    #[default]
    Flat,
    /// The slab's array-of-structs entry vectors; the reference path.
    Entry,
}

/// Which spatial index backend answers the window and multi-window
/// queries of the search algorithms.
///
/// Dispatch is by enum, not generics: `Instance` stays a concrete type
/// (every algorithm, cache, sink and CLI signature is untouched), the
/// R*-tree arm compiles to exactly the code it was before the backend
/// axis existed, and both indexes can coexist on one instance for A/B
/// runs over the same `Arc`-shared data. See DESIGN.md §5j.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// The R*-tree branch-and-bound traversals (the paper's setting).
    #[default]
    RTree,
    /// The PBSM-style uniform grid with cell-replicated MBRs and
    /// reference-point deduplication ([`mwsj_rtree::grid`]).
    Grid,
}

impl BackendKind {
    /// Parses a CLI backend name.
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s {
            "rtree" => Some(BackendKind::RTree),
            "grid" => Some(BackendKind::Grid),
            _ => None,
        }
    }

    /// Display name (`rtree` / `grid`).
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::RTree => "rtree",
            BackendKind::Grid => "grid",
        }
    }
}

/// One dataset with its R*-tree index (payloads are object indices).
#[derive(Debug)]
pub(crate) struct IndexedDataset {
    pub rects: Vec<Rect>,
    pub tree: RTree<u32>,
    /// Frozen SoA view of `tree`'s leaf level (the kernel's fast path).
    /// Valid for the instance's lifetime: instance trees are bulk-loaded
    /// once and never mutated.
    pub flat: FlatLeaves<u32>,
    /// Uniform-grid index over the same rectangles, built on first use
    /// (selecting [`BackendKind::Grid`] builds it eagerly). `OnceLock`
    /// keeps the dataset shareable across `Arc` aliases without cloning
    /// the non-cloneable tree.
    pub grid: OnceLock<UniformGrid<u32>>,
}

impl IndexedDataset {
    fn build(rects: Vec<Rect>, params: RTreeParams) -> Self {
        let items: Vec<(Rect, u32)> = rects.iter().copied().zip(0u32..).collect();
        let tree = RTree::bulk_load_with_params(params, items);
        let flat = tree.flat_leaves();
        IndexedDataset {
            rects,
            tree,
            flat,
            grid: OnceLock::new(),
        }
    }

    /// The grid index, built deterministically from the rectangles on
    /// first access.
    fn grid(&self) -> &UniformGrid<u32> {
        self.grid.get_or_init(|| {
            let items: Vec<(Rect, u32)> = self.rects.iter().copied().zip(0u32..).collect();
            UniformGrid::build(&items)
        })
    }
}

/// Errors raised by [`Instance::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceError {
    /// Number of datasets must equal the number of query variables.
    DatasetCountMismatch {
        /// Query variables.
        expected: usize,
        /// Datasets provided.
        got: usize,
    },
    /// Every dataset must hold at least one object.
    EmptyDataset(VarId),
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::DatasetCountMismatch { expected, got } => write!(
                f,
                "query has {expected} variables but {got} datasets were given"
            ),
            InstanceError::EmptyDataset(v) => write!(f, "dataset for variable {v} is empty"),
        }
    }
}

impl std::error::Error for InstanceError {}

/// A multiway spatial join instance: the query graph plus one R*-tree
/// indexed dataset per variable.
///
/// Datasets are stored behind `Arc`s so self-joins (one dataset aliased
/// under several variables) share rectangles and index.
#[derive(Debug, Clone)]
pub struct Instance {
    graph: QueryGraph,
    data: Vec<Arc<IndexedDataset>>,
    leaf_layout: LeafLayout,
    backend: BackendKind,
    /// Worker threads for intra-query grid parallelism (1 = sequential;
    /// results are bit-identical at any setting).
    grid_threads: usize,
}

impl Instance {
    /// Builds an instance, bulk-loading one R*-tree per dataset with
    /// default parameters. Accepts anything that dereferences to a slice of
    /// rectangles — e.g. `mwsj_datagen::Dataset` or a plain `Vec<Rect>`.
    pub fn new<D>(
        graph: QueryGraph,
        datasets: impl IntoIterator<Item = D>,
    ) -> Result<Self, InstanceError>
    where
        D: AsRef<[Rect]>,
    {
        Self::with_tree_params(graph, datasets, RTreeParams::default())
    }

    /// [`Instance::new`] with explicit R*-tree parameters.
    pub fn with_tree_params<D>(
        graph: QueryGraph,
        datasets: impl IntoIterator<Item = D>,
        params: RTreeParams,
    ) -> Result<Self, InstanceError>
    where
        D: AsRef<[Rect]>,
    {
        let data: Vec<Arc<IndexedDataset>> = datasets
            .into_iter()
            .map(|d| Arc::new(IndexedDataset::build(d.as_ref().to_vec(), params)))
            .collect();
        if data.len() != graph.n_vars() {
            return Err(InstanceError::DatasetCountMismatch {
                expected: graph.n_vars(),
                got: data.len(),
            });
        }
        if let Some(v) = data.iter().position(|d| d.rects.is_empty()) {
            return Err(InstanceError::EmptyDataset(v));
        }
        Ok(Instance {
            graph,
            data,
            leaf_layout: LeafLayout::default(),
            backend: BackendKind::default(),
            grid_threads: 1,
        })
    }

    /// Builds a **self-join** instance: every query variable ranges over
    /// the same dataset (e.g. "configurations of objects within the same
    /// image", paper §7). Rectangles and index are shared, not copied.
    pub fn self_join<D>(graph: QueryGraph, dataset: D) -> Result<Self, InstanceError>
    where
        D: AsRef<[Rect]>,
    {
        let shared = Arc::new(IndexedDataset::build(
            dataset.as_ref().to_vec(),
            RTreeParams::default(),
        ));
        if shared.rects.is_empty() {
            return Err(InstanceError::EmptyDataset(0));
        }
        let n = graph.n_vars();
        Ok(Instance {
            graph,
            data: vec![shared; n],
            leaf_layout: LeafLayout::default(),
            backend: BackendKind::default(),
            grid_threads: 1,
        })
    }

    /// Selects the leaf representation the multi-window kernel scans
    /// (builder style). Defaults to [`LeafLayout::Flat`]; the entry layout
    /// exists for A/B benchmarking and layout-equivalence tests.
    pub fn with_leaf_layout(mut self, layout: LeafLayout) -> Self {
        self.leaf_layout = layout;
        self
    }

    /// The leaf representation the multi-window kernel scans.
    #[inline]
    pub fn leaf_layout(&self) -> LeafLayout {
        self.leaf_layout
    }

    /// Selects the spatial backend answering the index queries (builder
    /// style). Choosing [`BackendKind::Grid`] builds the grid index of
    /// every unique dataset eagerly, so later queries (and the resource
    /// report) see a fully materialised backend.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        if backend == BackendKind::Grid {
            for (_, d) in self.unique_datasets() {
                let _ = d.grid();
            }
        }
        self
    }

    /// Sets the worker-thread count for intra-query grid parallelism
    /// (builder style). Clamped to at least 1; query results and access
    /// counters are bit-identical at any setting (DESIGN.md §5j).
    pub fn with_grid_threads(mut self, threads: usize) -> Self {
        self.grid_threads = threads.max(1);
        self
    }

    /// The spatial backend answering the index queries.
    #[inline]
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// Worker threads for intra-query grid parallelism.
    #[inline]
    pub fn grid_threads(&self) -> usize {
        self.grid_threads
    }

    /// The uniform-grid index over variable `v`'s dataset (built on first
    /// access; shared across `Arc`-aliased self-join variables).
    pub fn grid(&self, v: VarId) -> &UniformGrid<u32> {
        self.data[v].grid()
    }

    /// The query graph.
    #[inline]
    pub fn graph(&self) -> &QueryGraph {
        &self.graph
    }

    /// Number of query variables.
    #[inline]
    pub fn n_vars(&self) -> usize {
        self.graph.n_vars()
    }

    /// Cardinality of the dataset bound to variable `v`.
    #[inline]
    pub fn cardinality(&self, v: VarId) -> usize {
        self.data[v].rects.len()
    }

    /// MBR of object `obj` in variable `v`'s dataset.
    #[inline]
    pub fn rect(&self, v: VarId, obj: usize) -> Rect {
        self.data[v].rects[obj]
    }

    /// All rectangles of variable `v`'s dataset.
    #[inline]
    pub fn rects(&self, v: VarId) -> &[Rect] {
        &self.data[v].rects
    }

    /// The R*-tree over variable `v`'s dataset.
    #[inline]
    pub fn tree(&self, v: VarId) -> &RTree<u32> {
        &self.data[v].tree
    }

    /// The flat SoA leaf snapshot of variable `v`'s tree.
    #[inline]
    pub(crate) fn flat_leaves(&self, v: VarId) -> &FlatLeaves<u32> {
        &self.data[v].flat
    }

    /// Closure resolving `(variable, object)` to its MBR, the shape the
    /// `mwsj-query` evaluation APIs expect.
    pub fn rect_of(&self) -> impl Fn(VarId, usize) -> Rect + '_ {
        move |v, o| self.rect(v, o)
    }

    /// Average per-axis extent of variable `v`'s objects — the `|rᵥ|` of
    /// the \[TSS98\] selectivity model, computed from the data. Used by
    /// cost-based join ordering.
    pub fn avg_extent(&self, v: VarId) -> f64 {
        let rects = &self.data[v].rects;
        let sum: f64 = rects.iter().map(|r| 0.5 * (r.width() + r.height())).sum();
        sum / rects.len() as f64
    }

    /// Problem size `s = log₂ ∏ Nᵢ` (paper §5), used to scale SEA/GILS
    /// parameters.
    pub fn problem_size_bits(&self) -> f64 {
        let cards: Vec<usize> = (0..self.n_vars()).map(|v| self.cardinality(v)).collect();
        self.graph.problem_size_bits(&cards)
    }

    /// A uniformly random full assignment (a local-search seed).
    pub fn random_solution(&self, rng: &mut StdRng) -> Solution {
        Solution::new(
            (0..self.n_vars())
                .map(|v| rng.random_range(0..self.cardinality(v)))
                .collect(),
        )
    }

    /// Yields `(first_var, dataset)` for every **unique** dataset, so
    /// self-joins (one `Arc` aliased under several variables) are counted
    /// once, named after the first variable bound to them.
    fn unique_datasets(&self) -> impl Iterator<Item = (VarId, &IndexedDataset)> {
        self.data.iter().enumerate().filter_map(|(v, d)| {
            let first = self
                .data
                .iter()
                .position(|other| Arc::ptr_eq(other, d))
                .unwrap_or(v);
            (first == v).then_some((v, &**d))
        })
    }

    /// Records per-structure byte counts into `report`: for each unique
    /// dataset, the raw rectangles (`rects.varNNN`), the R*-tree arena
    /// (`rtree.varNNN`) and the frozen SoA leaves (`flat_leaves.varNNN`),
    /// named after the first variable bound to that dataset. The same
    /// table backs the `resource_report` run event and the `memory`
    /// section of bench snapshots.
    pub fn fill_resource_report(&self, report: &mut ResourceReport) {
        for (v, d) in self.unique_datasets() {
            report.record(
                &format!("rects.var{v:03}"),
                d.rects.len() as u64 * std::mem::size_of::<Rect>() as u64,
            );
            report.record(&format!("rtree.var{v:03}"), d.tree.memory_bytes());
            report.record(
                &format!("flat_leaves.var{v:03}"),
                MemoryFootprint::memory_bytes(&d.flat),
            );
            // The grid component appears only once the grid backend has
            // been materialised, keeping R*-tree-only reports (and the
            // pinned bench snapshots) byte-identical.
            if let Some(grid) = d.grid.get() {
                report.record(&format!("grid.var{v:03}"), grid.memory_bytes());
            }
        }
    }

    /// Evaluates a solution from scratch.
    pub fn evaluate(&self, sol: &Solution) -> ConflictState {
        ConflictState::evaluate(&self.graph, sol, self.rect_of())
    }

    /// Number of violated join conditions of `sol`.
    pub fn violations(&self, sol: &Solution) -> usize {
        self.evaluate(sol).total_violations()
    }

    /// Similarity of `sol` (`1 − violations / edges`).
    pub fn similarity(&self, sol: &Solution) -> f64 {
        self.graph.similarity_of_violations(self.violations(sol))
    }
}

impl MemoryFootprint for Instance {
    /// Resident bytes of the indexed datasets (rectangles, R*-tree arenas
    /// and frozen SoA leaves), with `Arc`-shared self-join datasets counted
    /// once. Deterministic: the same logical instance always reports the
    /// same total.
    fn memory_bytes(&self) -> u64 {
        self.unique_datasets()
            .map(|(_, d)| {
                d.rects.len() as u64 * std::mem::size_of::<Rect>() as u64
                    + d.tree.memory_bytes()
                    + MemoryFootprint::memory_bytes(&d.flat)
                    + d.grid.get().map_or(0, MemoryFootprint::memory_bytes)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwsj_datagen::Dataset;
    use rand::SeedableRng;

    fn tiny_instance() -> Instance {
        let mut rng = StdRng::seed_from_u64(1);
        let graph = QueryGraph::chain(3);
        let datasets: Vec<Dataset> = (0..3)
            .map(|_| Dataset::uniform(100, 0.1, &mut rng))
            .collect();
        Instance::new(graph, datasets).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let inst = tiny_instance();
        assert_eq!(inst.n_vars(), 3);
        assert_eq!(inst.cardinality(0), 100);
        assert_eq!(inst.tree(1).len(), 100);
        assert_eq!(inst.rect(2, 5), inst.rects(2)[5]);
        assert!(inst.problem_size_bits() > 0.0);
    }

    #[test]
    fn rejects_mismatched_dataset_count() {
        let mut rng = StdRng::seed_from_u64(2);
        let graph = QueryGraph::chain(3);
        let datasets: Vec<Dataset> = (0..2)
            .map(|_| Dataset::uniform(10, 0.1, &mut rng))
            .collect();
        assert_eq!(
            Instance::new(graph, datasets).unwrap_err(),
            InstanceError::DatasetCountMismatch {
                expected: 3,
                got: 2
            }
        );
    }

    #[test]
    fn rejects_empty_dataset() {
        let graph = QueryGraph::chain(2);
        let rects: Vec<Vec<Rect>> = vec![vec![Rect::new(0.0, 0.0, 1.0, 1.0)], vec![]];
        assert_eq!(
            Instance::new(graph, rects).unwrap_err(),
            InstanceError::EmptyDataset(1)
        );
    }

    #[test]
    fn self_join_shares_data() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = Dataset::uniform(50, 0.2, &mut rng);
        let inst = Instance::self_join(QueryGraph::clique(4), data.rects()).unwrap();
        assert_eq!(inst.n_vars(), 4);
        for v in 0..4 {
            assert_eq!(inst.cardinality(v), 50);
        }
        assert_eq!(inst.rect(0, 7), inst.rect(3, 7));
    }

    #[test]
    fn random_solution_is_in_range() {
        let inst = tiny_instance();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let sol = inst.random_solution(&mut rng);
            assert_eq!(sol.len(), 3);
            for v in 0..3 {
                assert!(sol.get(v) < inst.cardinality(v));
            }
        }
    }

    #[test]
    fn resource_report_is_deterministic_and_dedupes_self_joins() {
        let mut rng = StdRng::seed_from_u64(6);
        let data = Dataset::uniform(80, 0.2, &mut rng);
        let inst = Instance::self_join(QueryGraph::clique(4), data.rects()).unwrap();
        let again = Instance::self_join(QueryGraph::clique(4), data.rects()).unwrap();
        assert_eq!(inst.memory_bytes(), again.memory_bytes());

        let mut report = ResourceReport::new();
        inst.fill_resource_report(&mut report);
        // Four aliased variables, one shared dataset: var000 components only.
        let names: Vec<&str> = report
            .components()
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(
            names,
            ["flat_leaves.var000", "rects.var000", "rtree.var000"]
        );
        assert_eq!(report.total_bytes(), inst.memory_bytes());

        // Distinct datasets report one component set per variable.
        let distinct = tiny_instance();
        let mut report = ResourceReport::new();
        distinct.fill_resource_report(&mut report);
        assert_eq!(report.components().len(), 9);
        assert_eq!(report.total_bytes(), distinct.memory_bytes());
    }

    #[test]
    fn grid_backend_adds_components_and_shares_self_join_grids() {
        let mut rng = StdRng::seed_from_u64(7);
        let data = Dataset::uniform(80, 0.2, &mut rng);
        let inst = Instance::self_join(QueryGraph::clique(4), data.rects()).unwrap();
        let rtree_bytes = inst.memory_bytes();
        let inst = inst.with_backend(BackendKind::Grid);
        assert_eq!(inst.backend(), BackendKind::Grid);
        assert!(inst.memory_bytes() > rtree_bytes, "grid bytes must show up");

        let mut report = ResourceReport::new();
        inst.fill_resource_report(&mut report);
        let names: Vec<&str> = report
            .components()
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(
            names,
            [
                "flat_leaves.var000",
                "grid.var000",
                "rects.var000",
                "rtree.var000"
            ]
        );
        assert_eq!(report.total_bytes(), inst.memory_bytes());
        // Aliased variables share one grid.
        assert!(std::ptr::eq(inst.grid(0), inst.grid(3)));
        // Default stays R*-tree with no grid component.
        let plain = tiny_instance();
        assert_eq!(plain.backend(), BackendKind::RTree);
        let mut report = ResourceReport::new();
        plain.fill_resource_report(&mut report);
        assert_eq!(report.components().len(), 9);
    }

    #[test]
    fn evaluation_matches_query_crate() {
        let inst = tiny_instance();
        let mut rng = StdRng::seed_from_u64(5);
        let sol = inst.random_solution(&mut rng);
        let cs = inst.evaluate(&sol);
        assert_eq!(cs.total_violations(), inst.violations(&sol));
        assert!((inst.similarity(&sol) - cs.similarity(inst.graph())).abs() < 1e-12);
    }
}
