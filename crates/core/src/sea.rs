//! Spatial Evolutionary Algorithm (paper §5, Fig. 9).
//!
//! A generational evolutionary algorithm whose three operators are adapted
//! to the spatial structure of the problem:
//!
//! * **selection** — tournament offspring allocation \[BT96\]: each solution
//!   competes with `T` random members, the fittest of the `T+1` takes its
//!   slot;
//! * **crossover** — a *variable crossover point* `c` that starts at 1 and
//!   increases every `g_c` generations, plus a greedy split: the `c`
//!   variables kept are chosen by descending solved-ness, growing a set `X`
//!   that maximises satisfied conditions *within* `X` (the paper's Fig. 8
//!   example), while the remaining variables adopt the assignments of a
//!   random other solution — so early generations explore aggressively and
//!   later ones preserve good building blocks;
//! * **mutation** — the only index-driven operator: with probability `μm`
//!   the worst variable of a solution is re-instantiated with
//!   [`find_best_value`](crate::find_best_value), exactly like one ILS move
//!   ("mutation can only have positive results").

use crate::budget::{SearchBudget, SearchContext};
use crate::driver::{run_driven, DriveSearch, SearchDriver};
use crate::instance::Instance;
use crate::result::RunOutcome;
use crate::window_cache::WindowCache;
use mwsj_query::{ConflictState, Solution, VarId};
use rand::rngs::StdRng;
use rand::RngExt;

/// Configuration of [`Sea`].
///
/// The paper tunes every parameter as a function of the problem size
/// `s = log₂ ∏ Nᵢ` \[CFG+98\]; see [`SeaConfig::paper`]. For short budgets
/// the scaled-down [`SeaConfig::scaled`] converges much faster (fewer
/// individuals to evolve) at slightly worse asymptotic quality — this is
/// the "variable parameter values depending on the time available" idea
/// from the paper's Discussion.
#[derive(Debug, Clone, PartialEq)]
pub struct SeaConfig {
    /// Population size `p`.
    pub population: usize,
    /// Tournament size `T`.
    pub tournament: usize,
    /// Crossover rate `μc`.
    pub crossover_rate: f64,
    /// Mutation rate `μm` (the paper uses 1: every solution mutates).
    pub mutation_rate: f64,
    /// Generations between increments of the crossover point `c`.
    /// **0 enables budget-aware annealing** instead: `c` grows linearly
    /// with the consumed fraction of the search budget, reaching `n − 1`
    /// as the budget runs out — the paper's §7 idea of "variable parameter
    /// values depending on the time available", which makes the
    /// exploration→preservation schedule independent of how many
    /// generations the budget affords.
    pub generations_per_c: u64,
    /// Restart the population from fresh random solutions (keeping the
    /// incumbent) after this many generations without improving the best
    /// solution. `0` disables restarts. The paper's population (`p = 100·s`,
    /// tens of thousands) never converges within its budget; a scaled-down
    /// population does, and stagnation restarts restore the anytime
    /// behaviour at any budget length.
    pub stagnation_restart: u64,
    /// Seed the initial population with ILS local maxima instead of random
    /// solutions — the hybrid the paper's Discussion proposes ("apply ILS
    /// and use the first p local maxima visited as the p solutions of the
    /// first generation"). The seeding phase is capped at `20·p` `find
    /// best value` calls; any shortfall is filled with random solutions.
    pub seed_with_ils: bool,
}

impl SeaConfig {
    /// The published parameter set (§5): `p = 100·s`, `T = 0.05·s`,
    /// `μc = 0.6`, `g_c = 10·s`, `μm = 1`, with `s` the problem size in
    /// bits. Intended for the paper's long (`10·n` seconds) budgets.
    pub fn paper(s: f64) -> Self {
        SeaConfig {
            population: (100.0 * s).round().max(4.0) as usize,
            tournament: (0.05 * s).round().max(1.0) as usize,
            crossover_rate: 0.6,
            mutation_rate: 1.0,
            generations_per_c: (10.0 * s).round().max(1.0) as u64,
            stagnation_restart: 0,
            seed_with_ils: false,
        }
    }

    /// A budget-friendly scaling: population proportional to `s` but capped
    /// (so a generation costs milliseconds, not seconds), tournament ≈ 5 %
    /// of the population, and a crossover point that anneals within a few
    /// hundred generations.
    pub fn scaled(s: f64) -> Self {
        // The paper's p = 100·s keeps the population diverse for hours-long
        // budgets; 2·s (clamped) preserves enough diversity to avoid
        // premature convergence while keeping generations at millisecond
        // cost for second-scale budgets.
        let population = ((2.0 * s).round() as usize).clamp(64, 512);
        SeaConfig {
            population,
            // Binary tournament: the paper's T = 0.05·s is calibrated for
            // p = 100·s; at a scaled-down p the same ratio homogenises the
            // population within a couple of generations and search stalls.
            tournament: 2,
            crossover_rate: 0.6,
            mutation_rate: 1.0,
            generations_per_c: 0, // budget-aware annealing
            stagnation_restart: 50,
            seed_with_ils: false,
        }
    }

    /// [`SeaConfig::scaled`] for a concrete instance.
    pub fn default_for(instance: &Instance) -> Self {
        Self::scaled(instance.problem_size_bits())
    }

    /// Enables ILS-seeded initialisation (see
    /// [`SeaConfig::seed_with_ils`]).
    pub fn with_ils_seeding(mut self) -> Self {
        self.seed_with_ils = true;
        self
    }
}

impl Default for SeaConfig {
    fn default() -> Self {
        // A reasonable mid-size default; prefer `default_for`.
        SeaConfig::scaled(128.0)
    }
}

/// One member of the population: a solution with its cached evaluation.
#[derive(Debug, Clone)]
struct Individual {
    sol: Solution,
    cs: ConflictState,
}

/// Spatial evolutionary algorithm.
#[derive(Debug, Clone)]
pub struct Sea {
    config: SeaConfig,
}

impl Sea {
    /// Creates the algorithm.
    pub fn new(config: SeaConfig) -> Self {
        assert!(config.population >= 2, "population must hold at least 2");
        assert!(config.tournament >= 1);
        Sea { config }
    }

    /// Runs SEA until the budget is exhausted. One budget step = one
    /// generation.
    pub fn run(&self, instance: &Instance, budget: &SearchBudget, rng: &mut StdRng) -> RunOutcome {
        self.search(instance, &SearchContext::local(*budget), rng)
    }

    /// Runs SEA under an explicit [`SearchContext`] — the entry point used
    /// by [`crate::ParallelPortfolio`] to share deadlines and bounds
    /// across restarts.
    pub fn search(&self, instance: &Instance, ctx: &SearchContext, rng: &mut StdRng) -> RunOutcome {
        run_driven(self, instance, ctx, rng)
    }
}

impl DriveSearch for Sea {
    const NAME: &'static str = "SEA";
    const PHASE: &'static str = "sea";

    fn drive(&self, instance: &Instance, driver: &mut SearchDriver, rng: &mut StdRng) {
        let graph = instance.graph();
        let n = instance.n_vars();
        let p = self.config.population;
        let mut cache = WindowCache::new(instance);

        // Initial population: random, or the first p ILS local maxima
        // (the hybrid initialisation of the paper's Discussion).
        let mut pop: Vec<Individual> = {
            let _seed_phase = driver.obs().timer.span("seed");
            let mut pop: Vec<Individual> = if self.config.seed_with_ils {
                let mut seed_cache = crate::window_cache::CacheStats::default();
                let maxima = {
                    let (acc, profile) = driver.access_mut();
                    crate::ils::collect_local_maxima(
                        instance,
                        p,
                        20 * p as u64,
                        rng,
                        acc,
                        profile,
                        &mut seed_cache,
                    )
                };
                driver.stats_mut().cache.absorb(&seed_cache);
                maxima
                    .into_iter()
                    .map(|sol| {
                        let cs = instance.evaluate(&sol);
                        Individual { sol, cs }
                    })
                    .collect()
            } else {
                Vec::new()
            };
            while pop.len() < p {
                let sol = instance.random_solution(rng);
                let cs = instance.evaluate(&sol);
                pop.push(Individual { sol, cs });
            }
            pop
        };

        // Eager incumbent from the first member, so the run always has a
        // full trace even on a zero-generation budget.
        driver.offer(&pop[0].sol, pop[0].cs.total_violations());

        let _evolve_phase = driver.obs().timer.span("evolve");
        let mut generation: u64 = 0;
        let mut last_improvement_gen: u64 = 0;
        'generations: while !driver.exhausted() {
            driver.step();
            generation += 1;
            driver.stats_mut().restarts = generation; // generations telemetry
            driver.sample_cache(&cache);

            // Stagnation restart: re-diversify a converged population.
            if self.config.stagnation_restart > 0
                && generation - last_improvement_gen > self.config.stagnation_restart
            {
                // Re-diversify: fresh ILS local maxima in hybrid mode,
                // otherwise fresh random solutions.
                let seeds = if self.config.seed_with_ils {
                    let mut seed_cache = crate::window_cache::CacheStats::default();
                    let maxima = {
                        let (acc, profile) = driver.access_mut();
                        crate::ils::collect_local_maxima(
                            instance,
                            p,
                            20 * p as u64,
                            rng,
                            acc,
                            profile,
                            &mut seed_cache,
                        )
                    };
                    driver.stats_mut().cache.absorb(&seed_cache);
                    maxima
                } else {
                    Vec::new()
                };
                let mut seeds = seeds.into_iter();
                for ind in pop.iter_mut() {
                    ind.sol = seeds
                        .next()
                        .unwrap_or_else(|| instance.random_solution(rng));
                    ind.cs = instance.evaluate(&ind.sol);
                }
                last_improvement_gen = generation;
            }

            // Crossover point: starts at 1 and grows to n − 1, either every
            // g_c generations (the paper's schedule) or linearly in the
            // consumed budget (budget-aware annealing, g_c = 0).
            let max_c = n.saturating_sub(1).max(1);
            let c = match self.config.generations_per_c {
                0 => (1 + (driver.fraction_consumed() * (max_c - 1) as f64).round() as usize)
                    .min(max_c),
                g_c => ((1 + (generation - 1) / g_c) as usize).min(max_c),
            };

            // --- Evaluation: offer everyone to the incumbent. ---
            for ind in &pop {
                if driver.offer(&ind.sol, ind.cs.total_violations()) {
                    last_improvement_gen = generation;
                }
            }
            if driver.best_violations() == Some(0) {
                break 'generations; // nothing can beat similarity 1
            }

            // --- Offspring allocation: tournament selection. ---
            let mut next: Vec<Individual> = Vec::with_capacity(p);
            for i in 0..p {
                let mut winner = i;
                for _ in 0..self.config.tournament {
                    let rival = rng.random_range(0..p);
                    if pop[rival].cs.total_violations() < pop[winner].cs.total_violations() {
                        winner = rival;
                    }
                }
                next.push(pop[winner].clone());
            }
            pop = next;

            // --- Crossover. ---
            for i in 0..p {
                if !rng.random_bool(self.config.crossover_rate) {
                    continue;
                }
                let donor = rng.random_range(0..p);
                if donor == i {
                    continue;
                }
                let keep = greedy_keep_set(graph, &pop[i].cs, c);
                let donor_sol = pop[donor].sol.clone();
                let ind = &mut pop[i];
                let mut changed = false;
                #[allow(clippy::needless_range_loop)]
                for v in 0..n {
                    if !keep[v] && ind.sol.get(v) != donor_sol.get(v) {
                        ind.sol.set(v, donor_sol.get(v));
                        changed = true;
                    }
                }
                if changed {
                    ind.cs = instance.evaluate(&ind.sol);
                }
            }

            // --- Mutation: one ILS move per selected individual. ---
            for ind in pop.iter_mut() {
                if driver.exhausted() {
                    break 'generations;
                }
                if !rng.random_bool(self.config.mutation_rate) {
                    continue;
                }
                // Worst variable, ties broken randomly: after selection the
                // population contains many copies of good solutions, and a
                // deterministic tie-break would mutate all of them
                // identically.
                let order = ind.cs.vars_by_badness(graph);
                let key = |v: VarId| (ind.cs.conflicts_of(v), ind.cs.satisfied_of(graph, v));
                let tied = order
                    .iter()
                    .take_while(|&&v| key(v) == key(order[0]))
                    .count();
                let worst = order[rng.random_range(0..tied)];
                let current_satisfied = ind.cs.satisfied_of(graph, worst);
                if let Some(best) = {
                    let (acc, levels) = driver.tally(worst);
                    cache.find_best_value_leveled(instance, &ind.sol, worst, None, acc, levels)
                } {
                    if best.satisfied > current_satisfied {
                        ind.cs.reassign(
                            graph,
                            &mut ind.sol,
                            worst,
                            best.object,
                            instance.rect_of(),
                        );
                    }
                }
            }
        }

        // Final evaluation pass so the last generation's work counts.
        for ind in &pop {
            driver.offer(&ind.sol, ind.cs.total_violations());
        }
        driver.stats_mut().cache.absorb(&cache.stats());
    }
}

/// The greedy crossover split (paper §5, Fig. 8): selects `c` variables to
/// keep. Variables are first ordered by satisfied conditions (desc), ties
/// by violations (asc); the set `X` then grows by repeatedly adding the
/// variable satisfying the most conditions towards members of `X`, ties
/// resolved by the initial order. Returns a keep-mask.
fn greedy_keep_set(graph: &mwsj_query::QueryGraph, cs: &ConflictState, c: usize) -> Vec<bool> {
    let n = graph.n_vars();
    let c = c.min(n);
    // Initial order.
    let mut order: Vec<VarId> = (0..n).collect();
    order.sort_by_key(|&v| {
        (
            std::cmp::Reverse(cs.satisfied_of(graph, v)),
            cs.conflicts_of(v),
            v,
        )
    });
    let mut rank = vec![0usize; n];
    for (r, &v) in order.iter().enumerate() {
        rank[v] = r;
    }

    let mut keep = vec![false; n];
    if c == 0 {
        return keep;
    }
    keep[order[0]] = true;
    for _ in 1..c {
        let mut best: Option<(u32, usize, VarId)> = None; // (sat_to_X desc, rank asc)
        for v in 0..n {
            if keep[v] {
                continue;
            }
            let sat_to_x = graph
                .neighbors(v)
                .iter()
                .filter(|&&(u, _)| {
                    keep[u] && !cs.is_edge_violated(graph.edge_index(v, u).expect("neighbor edge"))
                })
                .count() as u32;
            let candidate = (sat_to_x, rank[v], v);
            let better = match best {
                None => true,
                Some((bs, br, _)) => sat_to_x > bs || (sat_to_x == bs && rank[v] < br),
            };
            if better {
                best = Some(candidate);
            }
        }
        keep[best.expect("n > c candidates remain").2] = true;
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwsj_datagen::{hard_region_density, Dataset, QueryShape};
    use mwsj_query::QueryGraphBuilder;
    use rand::SeedableRng;

    fn hard_instance(seed: u64, shape: QueryShape, n: usize, cardinality: usize) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = hard_region_density(shape, n, cardinality, 1.0);
        let datasets: Vec<Dataset> = (0..n)
            .map(|_| Dataset::uniform(cardinality, d, &mut rng))
            .collect();
        Instance::new(shape.graph(n), datasets).unwrap()
    }

    #[test]
    fn sea_improves_over_random_solutions() {
        let inst = hard_instance(81, QueryShape::Clique, 5, 500);
        let mut rng = StdRng::seed_from_u64(82);
        let random_sim: f64 = (0..50)
            .map(|_| inst.similarity(&inst.random_solution(&mut rng)))
            .sum::<f64>()
            / 50.0;
        let sea = Sea::new(SeaConfig::default_for(&inst));
        let outcome = sea.run(&inst, &SearchBudget::iterations(60), &mut rng);
        assert!(
            outcome.best_similarity > random_sim + 0.2,
            "SEA {} vs random {}",
            outcome.best_similarity,
            random_sim
        );
        assert!(outcome.stats.restarts > 0, "no generations ran");
    }

    #[test]
    fn sea_is_deterministic_under_step_budget() {
        let inst = hard_instance(83, QueryShape::Chain, 4, 300);
        let cfg = SeaConfig::default_for(&inst);
        let a = Sea::new(cfg.clone()).run(
            &inst,
            &SearchBudget::iterations(20),
            &mut StdRng::seed_from_u64(3),
        );
        let b = Sea::new(cfg).run(
            &inst,
            &SearchBudget::iterations(20),
            &mut StdRng::seed_from_u64(3),
        );
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_violations, b.best_violations);
    }

    #[test]
    fn paper_config_follows_published_formulas() {
        let s = 250.0;
        let cfg = SeaConfig::paper(s);
        assert_eq!(cfg.population, 25_000);
        assert_eq!(cfg.tournament, 13); // round(12.5)
        assert_eq!(cfg.generations_per_c, 2_500);
        assert_eq!(cfg.crossover_rate, 0.6);
        assert_eq!(cfg.mutation_rate, 1.0);
    }

    #[test]
    fn greedy_keep_set_prefers_solved_subgraph() {
        // Figure 8 style: variables 0,1,2 form a satisfied triangle;
        // variables 3,4 are violated stragglers.
        let data = vec![
            vec![mwsj_geom::Rect::new(0.0, 0.0, 0.4, 0.4)],
            vec![mwsj_geom::Rect::new(0.2, 0.2, 0.5, 0.5)],
            vec![mwsj_geom::Rect::new(0.3, 0.3, 0.6, 0.6)],
            vec![mwsj_geom::Rect::new(0.9, 0.9, 0.95, 0.95)],
            vec![mwsj_geom::Rect::new(0.8, 0.1, 0.85, 0.15)],
        ];
        let graph = QueryGraphBuilder::new(5)
            .edge(0, 1)
            .edge(1, 2)
            .edge(0, 2)
            .edge(2, 3)
            .edge(3, 4)
            .build()
            .unwrap();
        let inst = Instance::new(graph, data).unwrap();
        let sol = Solution::new(vec![0; 5]);
        let cs = inst.evaluate(&sol);
        let keep = greedy_keep_set(inst.graph(), &cs, 3);
        assert_eq!(keep, vec![true, true, true, false, false]);
    }

    #[test]
    fn keep_set_size_is_respected() {
        let inst = hard_instance(84, QueryShape::Clique, 6, 100);
        let mut rng = StdRng::seed_from_u64(85);
        let sol = inst.random_solution(&mut rng);
        let cs = inst.evaluate(&sol);
        for c in 0..=6 {
            let keep = greedy_keep_set(inst.graph(), &cs, c);
            assert_eq!(keep.iter().filter(|&&k| k).count(), c.min(6));
        }
    }

    #[test]
    fn sea_trace_is_monotone() {
        let inst = hard_instance(86, QueryShape::Chain, 6, 400);
        let mut rng = StdRng::seed_from_u64(87);
        let outcome = Sea::new(SeaConfig::default_for(&inst)).run(
            &inst,
            &SearchBudget::iterations(40),
            &mut rng,
        );
        for w in outcome.trace.windows(2) {
            assert!(w[0].similarity < w[1].similarity);
        }
    }

    #[test]
    fn ils_seeded_population_starts_better() {
        // The hybrid's first generation consists of local maxima, which are
        // far better than random solutions — its first-trace similarity
        // must (weakly) dominate across seeds.
        let inst = hard_instance(88, QueryShape::Clique, 5, 400);
        let budget = SearchBudget::iterations(1);
        let mut hybrid_first = 0.0;
        let mut random_first = 0.0;
        for seed in 0..5 {
            let cfg = SeaConfig::default_for(&inst);
            let mut rng = StdRng::seed_from_u64(seed);
            let h = Sea::new(cfg.clone().with_ils_seeding()).run(&inst, &budget, &mut rng);
            hybrid_first += h.best_similarity;
            let mut rng = StdRng::seed_from_u64(seed);
            let r = Sea::new(cfg).run(&inst, &budget, &mut rng);
            random_first += r.best_similarity;
        }
        assert!(
            hybrid_first >= random_first,
            "hybrid {hybrid_first} vs random {random_first}"
        );
    }

    #[test]
    fn ils_seeding_is_deterministic() {
        let inst = hard_instance(89, QueryShape::Chain, 4, 300);
        let cfg = SeaConfig::default_for(&inst).with_ils_seeding();
        let a = Sea::new(cfg.clone()).run(
            &inst,
            &SearchBudget::iterations(8),
            &mut StdRng::seed_from_u64(4),
        );
        let b = Sea::new(cfg).run(
            &inst,
            &SearchBudget::iterations(8),
            &mut StdRng::seed_from_u64(4),
        );
        assert_eq!(a.best, b.best);
    }

    #[test]
    #[should_panic(expected = "population must hold at least 2")]
    fn rejects_tiny_population() {
        let _ = Sea::new(SeaConfig {
            population: 1,
            tournament: 1,
            crossover_rate: 0.5,
            mutation_rate: 1.0,
            generations_per_c: 5,
            stagnation_restart: 0,
            seed_with_ils: false,
        });
    }
}
