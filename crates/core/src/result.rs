//! Run outcomes: best solution, counters and convergence traces.

use crate::window_cache::CacheStats;
use mwsj_obs::MemoryFootprint;
use mwsj_query::Solution;
use std::time::Duration;

/// Counters collected during one search run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Algorithm steps consumed (see [`crate::SearchBudget`] for units).
    pub steps: u64,
    /// ILS restarts or SEA generations.
    pub restarts: u64,
    /// Local maxima reached (ILS/GILS).
    pub local_maxima: u64,
    /// R*-tree nodes visited by index-driven traversals.
    pub node_accesses: u64,
    /// Number of times the incumbent best solution improved.
    pub improvements: u64,
    /// [`WindowCache`](crate::WindowCache) efficiency telemetry (empty for
    /// algorithms that run without the cache).
    pub cache: CacheStats,
    /// Per-variable × per-tree-level attribution of
    /// [`RunStats::node_accesses`] (empty for algorithms that predate the
    /// attribution plumbing). See [`AccessProfile`] for the invariant.
    pub access_profile: AccessProfile,
}

/// Per-variable, per-tree-level attribution of R*-tree node accesses.
///
/// `per_var[v][l]` counts the nodes of variable `v`'s tree visited at
/// level `l` (`[0]` = leaf level, matching
/// [`NodeRef::level`](mwsj_rtree::NodeRef::level)). For runs whose
/// traversals all flow through the attributed kernels (ILS, GILS, SEA,
/// IBB), the profile total equals [`RunStats::node_accesses`] **exactly**
/// — the invariant the attribution property tests pin. Algorithms with
/// unattributed traversals leave the difference as implicit unattributed
/// work.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessProfile {
    /// `per_var[v][l]` = node accesses on variable `v`'s tree at level `l`.
    pub per_var: Vec<Vec<u64>>,
}

impl AccessProfile {
    /// Creates a zeroed profile: one row per variable, sized to that
    /// variable's tree height.
    pub fn for_instance(instance: &crate::Instance) -> Self {
        AccessProfile {
            per_var: (0..instance.n_vars())
                .map(|v| vec![0u64; instance.tree(v).height() as usize])
                .collect(),
        }
    }

    /// `true` when no attribution rows exist (pre-attribution algorithms).
    pub fn is_empty(&self) -> bool {
        self.per_var.is_empty()
    }

    /// Mutable level row of variable `v` (empty when unattributed).
    pub(crate) fn levels_mut(&mut self, var: usize) -> &mut [u64] {
        match self.per_var.get_mut(var) {
            Some(row) => row.as_mut_slice(),
            None => &mut [],
        }
    }

    /// Total attributed accesses of variable `v`.
    pub fn var_total(&self, var: usize) -> u64 {
        self.per_var.get(var).map_or(0, |row| row.iter().sum())
    }

    /// Total attributed accesses across all variables and levels.
    pub fn total(&self) -> u64 {
        self.per_var.iter().map(|row| row.iter().sum::<u64>()).sum()
    }

    /// Pointwise merge of another profile (used by the portfolio's
    /// seed-ordered reduction and the two-step pipeline). Rows and levels
    /// grow to cover the larger operand.
    pub fn absorb(&mut self, other: &AccessProfile) {
        if self.per_var.len() < other.per_var.len() {
            self.per_var.resize(other.per_var.len(), Vec::new());
        }
        for (mine, theirs) in self.per_var.iter_mut().zip(&other.per_var) {
            if mine.len() < theirs.len() {
                mine.resize(theirs.len(), 0);
            }
            for (m, t) in mine.iter_mut().zip(theirs) {
                *m += t;
            }
        }
    }
}

/// One point of the convergence trace: the best similarity known at a given
/// time/step — the raw material of the paper's Fig. 10b.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Time since the run started.
    pub elapsed: Duration,
    /// Steps consumed when the improvement happened.
    pub step: u64,
    /// Best similarity after the improvement.
    pub similarity: f64,
}

/// Default number of distinct best solutions retained by a run
/// (see [`TopSolutions`]).
pub const DEFAULT_TOP_K: usize = 10;

/// A bounded, ordered collection of the best **distinct** solutions seen
/// during a run — the paper's "throughout this process the best solutions
/// are kept" (§3). Multiway joins are retrieval queries: callers usually
/// want the few best matches, not only the single winner.
#[derive(Debug, Clone)]
pub struct TopSolutions {
    k: usize,
    /// Sorted ascending by violations (best first).
    entries: Vec<(Solution, usize)>,
}

impl TopSolutions {
    /// Creates an empty collection bounded to `k` solutions.
    pub fn new(k: usize) -> Self {
        TopSolutions {
            k,
            entries: Vec::with_capacity(k.min(64)),
        }
    }

    /// Offers a candidate. Returns `true` if it entered the top list.
    /// Duplicates (identical assignments) are ignored.
    pub fn insert(&mut self, sol: &Solution, violations: usize) -> bool {
        if self.k == 0 {
            return false;
        }
        if self.entries.len() == self.k && violations >= self.entries.last().expect("non-empty").1 {
            return false;
        }
        if self.entries.iter().any(|(s, _)| s == sol) {
            return false;
        }
        let pos = self.entries.partition_point(|(_, v)| *v <= violations);
        self.entries.insert(pos, (sol.clone(), violations));
        self.entries.truncate(self.k);
        true
    }

    /// The retained solutions, best (fewest violations) first.
    pub fn iter(&self) -> impl Iterator<Item = &(Solution, usize)> {
        self.entries.iter()
    }

    /// Number of retained solutions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The capacity bound `k`.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Consumes the collection, yielding `(solution, violations)` pairs
    /// best-first.
    pub fn into_vec(self) -> Vec<(Solution, usize)> {
        self.entries
    }
}

/// Length-based resident bytes of retained `(solution, violations)` pairs:
/// one pair header plus the solution's assignment vector per entry. Shared
/// by [`TopSolutions`] and the flattened [`RunOutcome::top_solutions`].
pub(crate) fn solutions_bytes(entries: &[(Solution, usize)]) -> u64 {
    entries
        .iter()
        .map(|(sol, _)| {
            (std::mem::size_of::<(Solution, usize)>() + std::mem::size_of_val(sol.as_slice()))
                as u64
        })
        .sum()
}

impl MemoryFootprint for TopSolutions {
    /// Length-based resident bytes of the retained `(solution,
    /// violations)` pairs.
    fn memory_bytes(&self) -> u64 {
        solutions_bytes(&self.entries)
    }
}

/// The result of one search run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Best solution found.
    pub best: Solution,
    /// Number of join conditions the best solution violates
    /// (its inconsistency degree; 0 = exact).
    pub best_violations: usize,
    /// Similarity of the best solution (`1 − violations / edges`).
    pub best_similarity: f64,
    /// Counters.
    pub stats: RunStats,
    /// Similarity improvements over time, first entry = initial solution.
    pub trace: Vec<TracePoint>,
    /// `true` when a systematic algorithm proved the result optimal
    /// (search space exhausted or an exact solution found). Always `false`
    /// for the anytime heuristics.
    pub proven_optimal: bool,
    /// The best distinct solutions seen during the run (up to
    /// [`DEFAULT_TOP_K`]), best first. `top_solutions[0]` is `best`.
    pub top_solutions: Vec<(Solution, usize)>,
}

impl RunOutcome {
    /// Returns `true` if the best solution is exact.
    #[inline]
    pub fn is_exact(&self) -> bool {
        self.best_violations == 0
    }

    /// Best similarity known at `t` according to the trace (step function),
    /// used to resample convergence curves onto a common time grid.
    ///
    /// Edge cases: an empty trace yields `0.0` (nothing was known at any
    /// time); a `t` before the first trace point also yields `0.0`; a `t`
    /// exactly on a trace point's timestamp includes that point.
    pub fn best_similarity_at(&self, t: Duration) -> f64 {
        let mut sim = 0.0;
        for p in &self.trace {
            if p.elapsed <= t {
                sim = p.similarity;
            } else {
                break;
            }
        }
        sim
    }

    /// Alias of [`RunOutcome::best_similarity_at`], kept for existing
    /// callers.
    pub fn similarity_at(&self, t: Duration) -> f64 {
        self.best_similarity_at(t)
    }
}

/// Shared bookkeeping for the incumbent best solution + trace.
#[derive(Debug)]
pub(crate) struct Incumbent {
    pub best: Solution,
    pub best_violations: usize,
    pub improvements: u64,
    pub trace: Vec<TracePoint>,
    pub top: TopSolutions,
}

impl Incumbent {
    pub(crate) fn new(
        initial: Solution,
        violations: usize,
        edge_count: usize,
        elapsed: Duration,
        step: u64,
    ) -> Self {
        let similarity = 1.0 - violations as f64 / edge_count as f64;
        let mut top = TopSolutions::new(DEFAULT_TOP_K);
        top.insert(&initial, violations);
        Incumbent {
            best: initial,
            best_violations: violations,
            improvements: 0,
            trace: vec![TracePoint {
                elapsed,
                step,
                similarity,
            }],
            top,
        }
    }

    /// Offers a candidate; keeps it if strictly better.
    pub(crate) fn offer(
        &mut self,
        candidate: &Solution,
        violations: usize,
        edge_count: usize,
        elapsed: Duration,
        step: u64,
    ) -> bool {
        self.top.insert(candidate, violations);
        if violations < self.best_violations {
            self.best = candidate.clone();
            self.best_violations = violations;
            self.improvements += 1;
            self.trace.push(TracePoint {
                elapsed,
                step,
                similarity: 1.0 - violations as f64 / edge_count as f64,
            });
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_solutions_keeps_k_best_distinct() {
        let mut top = TopSolutions::new(3);
        assert!(top.insert(&Solution::new(vec![1]), 5));
        assert!(top.insert(&Solution::new(vec![2]), 3));
        assert!(
            !top.insert(&Solution::new(vec![2]), 3),
            "duplicate rejected"
        );
        assert!(top.insert(&Solution::new(vec![3]), 4));
        assert_eq!(top.len(), 3);
        // Full: worse candidates bounce, better ones evict the worst.
        assert!(!top.insert(&Solution::new(vec![4]), 9));
        assert!(top.insert(&Solution::new(vec![5]), 1));
        let v: Vec<usize> = top.iter().map(|(_, v)| *v).collect();
        assert_eq!(v, vec![1, 3, 4]);
    }

    #[test]
    fn top_solutions_zero_capacity() {
        let mut top = TopSolutions::new(0);
        assert!(!top.insert(&Solution::new(vec![1]), 0));
        assert!(top.is_empty());
    }

    #[test]
    fn top_solutions_orders_ties_by_arrival() {
        let mut top = TopSolutions::new(4);
        top.insert(&Solution::new(vec![1]), 2);
        top.insert(&Solution::new(vec![2]), 2);
        top.insert(&Solution::new(vec![3]), 1);
        let got: Vec<(Vec<usize>, usize)> = top
            .iter()
            .map(|(s, v)| (s.as_slice().to_vec(), *v))
            .collect();
        assert_eq!(got, vec![(vec![3], 1), (vec![1], 2), (vec![2], 2)]);
    }

    #[test]
    fn incumbent_feeds_top_solutions() {
        let mut inc = Incumbent::new(Solution::new(vec![0, 0]), 3, 4, Duration::ZERO, 0);
        inc.offer(&Solution::new(vec![1, 1]), 2, 4, Duration::ZERO, 1);
        inc.offer(&Solution::new(vec![2, 2]), 3, 4, Duration::ZERO, 2); // not best, still top
        assert_eq!(inc.top.len(), 3);
        assert_eq!(inc.top.iter().next().unwrap().1, 2);
    }

    #[test]
    fn incumbent_keeps_only_improvements() {
        let mut inc = Incumbent::new(Solution::new(vec![0, 0]), 3, 4, Duration::ZERO, 0);
        assert!(!inc.offer(&Solution::new(vec![1, 1]), 3, 4, Duration::ZERO, 1));
        assert!(inc.offer(&Solution::new(vec![2, 2]), 1, 4, Duration::ZERO, 2));
        assert_eq!(inc.best_violations, 1);
        assert_eq!(inc.best.as_slice(), &[2, 2]);
        assert_eq!(inc.improvements, 1);
        assert_eq!(inc.trace.len(), 2);
    }

    #[test]
    fn similarity_at_is_a_step_function() {
        let outcome = RunOutcome {
            best: Solution::new(vec![0]),
            best_violations: 0,
            best_similarity: 1.0,
            stats: RunStats::default(),
            proven_optimal: false,
            top_solutions: vec![],
            trace: vec![
                TracePoint {
                    elapsed: Duration::from_secs(0),
                    step: 0,
                    similarity: 0.2,
                },
                TracePoint {
                    elapsed: Duration::from_secs(2),
                    step: 10,
                    similarity: 0.7,
                },
                TracePoint {
                    elapsed: Duration::from_secs(5),
                    step: 20,
                    similarity: 1.0,
                },
            ],
        };
        assert_eq!(outcome.similarity_at(Duration::from_secs(1)), 0.2);
        assert_eq!(outcome.similarity_at(Duration::from_secs(2)), 0.7);
        assert_eq!(outcome.similarity_at(Duration::from_secs(99)), 1.0);
    }

    fn outcome_with_trace(trace: Vec<TracePoint>) -> RunOutcome {
        RunOutcome {
            best: Solution::new(vec![0]),
            best_violations: 0,
            best_similarity: 1.0,
            stats: RunStats::default(),
            proven_optimal: false,
            top_solutions: vec![],
            trace,
        }
    }

    #[test]
    fn best_similarity_at_empty_trace_is_zero() {
        let outcome = outcome_with_trace(vec![]);
        assert_eq!(outcome.best_similarity_at(Duration::ZERO), 0.0);
        assert_eq!(outcome.best_similarity_at(Duration::from_secs(100)), 0.0);
    }

    #[test]
    fn best_similarity_at_before_first_point_is_zero() {
        let outcome = outcome_with_trace(vec![TracePoint {
            elapsed: Duration::from_millis(500),
            step: 3,
            similarity: 0.4,
        }]);
        assert_eq!(outcome.best_similarity_at(Duration::from_millis(499)), 0.0);
        // Exact-boundary timestamps include the point.
        assert_eq!(outcome.best_similarity_at(Duration::from_millis(500)), 0.4);
        assert_eq!(outcome.best_similarity_at(Duration::from_millis(501)), 0.4);
    }

    #[test]
    fn best_similarity_at_exact_boundaries_take_the_later_value() {
        let outcome = outcome_with_trace(vec![
            TracePoint {
                elapsed: Duration::from_secs(1),
                step: 1,
                similarity: 0.25,
            },
            TracePoint {
                elapsed: Duration::from_secs(1),
                step: 2,
                similarity: 0.5,
            },
            TracePoint {
                elapsed: Duration::from_secs(3),
                step: 9,
                similarity: 0.75,
            },
        ]);
        // Two points share a timestamp: the later (better) one wins at the
        // boundary, matching "best similarity known at t".
        assert_eq!(outcome.best_similarity_at(Duration::from_secs(1)), 0.5);
        assert_eq!(outcome.best_similarity_at(Duration::from_secs(3)), 0.75);
        assert_eq!(
            outcome.similarity_at(Duration::from_secs(3)),
            outcome.best_similarity_at(Duration::from_secs(3)),
            "alias agrees"
        );
    }

    #[test]
    fn is_exact_matches_violations() {
        let mut outcome = RunOutcome {
            best: Solution::new(vec![0]),
            best_violations: 0,
            best_similarity: 1.0,
            stats: RunStats::default(),
            proven_optimal: false,
            top_solutions: vec![],
            trace: vec![],
        };
        assert!(outcome.is_exact());
        outcome.best_violations = 1;
        assert!(!outcome.is_exact());
    }
}
