//! Synchronous Traversal (paper §2, \[PMT99\]): exact multiway join by
//! simultaneous descent of all R-trees.
//!
//! Starting from the roots, the algorithm enumerates combinations of node
//! entries (one per query variable) whose MBRs satisfy every join edge at
//! the MBR level, and recurses on the children of each qualifying
//! combination until the leaf level, where combinations are exact
//! solutions. Combination enumeration is itself a backtracking search with
//! edge-consistency pruning, avoiding the naive `Cⁿ` blow-up.
//!
//! Restricted to *overlap* queries: MBR-level intersection of two subtree
//! MBRs is the correct (complete) filter for the intersect predicate.

use crate::budget::{BudgetClock, SearchBudget, SearchContext};
use crate::instance::{BackendKind, Instance};
use crate::result::RunStats;
use crate::wr::ExactJoinOutcome;
use mwsj_geom::{Predicate, Rect};
use mwsj_obs::ObsHandle;
use mwsj_query::Solution;
use mwsj_rtree::{NodeRef, UniformGrid};

/// Synchronous traversal.
#[derive(Debug, Clone, Default)]
pub struct SynchronousTraversal {}

/// One variable's position during the descent: still inside a subtree (or,
/// on the grid backend, at the grid root / inside one cell), or already
/// fixed to a data object (trees can have different heights).
///
/// The grid is a two-level "tree": root → occupied cells → entries. Cell
/// MBRs are unions of the *full* entry rectangles, so the MBR-consistency
/// prune stays admissible, and entries are accepted only at their
/// [`UniformGrid::home_cell`] so each object is enumerated exactly once
/// despite boundary replication (DESIGN.md §5j).
#[derive(Clone)]
enum Cursor<'a> {
    Node(NodeRef<'a, u32>),
    GridRoot(&'a UniformGrid<u32>),
    GridCell(&'a UniformGrid<u32>, usize),
    Data(usize, Rect),
}

impl Cursor<'_> {
    fn mbr(&self) -> Rect {
        match self {
            Cursor::Node(n) => n.mbr(),
            Cursor::GridRoot(g) => g.bbox(),
            Cursor::GridCell(g, c) => g.cell_mbr(*c),
            Cursor::Data(_, r) => *r,
        }
    }
    fn is_data(&self) -> bool {
        matches!(self, Cursor::Data(..))
    }
}

impl SynchronousTraversal {
    /// Creates the algorithm.
    pub fn new() -> Self {
        SynchronousTraversal {}
    }

    /// Enumerates up to `limit` exact solutions within `budget`.
    ///
    /// # Panics
    /// Panics if the query uses a predicate other than
    /// [`Predicate::Intersects`].
    pub fn run(
        &self,
        instance: &Instance,
        budget: &SearchBudget,
        limit: usize,
    ) -> ExactJoinOutcome {
        self.run_with_obs(instance, budget, limit, &ObsHandle::disabled())
    }

    /// Like [`SynchronousTraversal::run`], additionally reporting counters
    /// and phase timings ("st") through `obs`.
    ///
    /// # Panics
    /// Panics if the query uses a predicate other than
    /// [`Predicate::Intersects`].
    pub fn run_with_obs(
        &self,
        instance: &Instance,
        budget: &SearchBudget,
        limit: usize,
        obs: &ObsHandle,
    ) -> ExactJoinOutcome {
        assert!(
            instance
                .graph()
                .edges()
                .iter()
                .all(|e| e.pred == Predicate::Intersects),
            "synchronous traversal supports overlap queries only"
        );
        let ctx = SearchContext::local(*budget).with_obs(obs.clone());
        let clock = BudgetClock::from_context(&ctx);
        let _phase = clock.obs().timer.span("st");
        let mut state = StState {
            instance,
            clock,
            stats: RunStats::default(),
            solutions: Vec::new(),
            limit,
            truncated: false,
        };
        let roots: Vec<Cursor<'_>> = (0..instance.n_vars())
            .map(|v| match instance.backend() {
                BackendKind::RTree => Cursor::Node(instance.tree(v).root_node()),
                BackendKind::Grid => Cursor::GridRoot(instance.grid(v)),
            })
            .collect();
        state.stats.node_accesses += instance.n_vars() as u64;
        expand(&mut state, &roots);
        let mut stats = state.stats;
        stats.elapsed = state.clock.elapsed();
        stats.steps = state.clock.steps();
        crate::observe::flush_stats(state.clock.obs(), &stats);
        state.clock.emit_stop_reason();
        let complete = !state.truncated && state.solutions.len() < state.limit;
        ExactJoinOutcome {
            solutions: state.solutions,
            stats,
            complete,
        }
    }
}

struct StState<'a> {
    instance: &'a Instance,
    clock: BudgetClock,
    stats: RunStats,
    solutions: Vec<Solution>,
    limit: usize,
    truncated: bool,
}

/// Processes one combination of cursors; returns `true` to stop everything.
fn expand(state: &mut StState<'_>, cursors: &[Cursor<'_>]) -> bool {
    if state.clock.exhausted() {
        state.truncated = true;
        return true;
    }
    state.clock.step();

    // All fixed: a complete exact solution (MBR intersection is exact for
    // rectangle data under the overlap predicate).
    if cursors.iter().all(Cursor::is_data) {
        let sol = Solution::new(
            cursors
                .iter()
                .map(|c| match c {
                    Cursor::Data(o, _) => *o,
                    _ => unreachable!(),
                })
                .collect(),
        );
        state.solutions.push(sol);
        return state.solutions.len() >= state.limit;
    }

    // Enumerate entry choices for every unfixed variable, backtracking with
    // edge-consistency checks against all already-chosen variables.
    let n = cursors.len();
    let mut chosen: Vec<Option<Cursor<'_>>> = vec![None; n];
    choose(state, cursors, &mut chosen, 0)
}

/// Backtracking over variables 0..n, picking a child (or keeping the data
/// object) for each, consistent with the query edges.
fn choose<'a>(
    state: &mut StState<'_>,
    cursors: &[Cursor<'a>],
    chosen: &mut Vec<Option<Cursor<'a>>>,
    var: usize,
) -> bool {
    let graph = state.instance.graph();
    let n = cursors.len();
    if var == n {
        let next: Vec<Cursor<'a>> = chosen.iter().map(|c| c.clone().expect("chosen")).collect();
        return expand(state, &next);
    }

    // Candidate cursors for this variable at the next level down.
    match &cursors[var] {
        Cursor::Data(o, r) => {
            if consistent(graph, chosen, var, r) {
                chosen[var] = Some(Cursor::Data(*o, *r));
                if choose(state, cursors, chosen, var + 1) {
                    return true;
                }
                chosen[var] = None;
            }
        }
        Cursor::Node(node) => {
            for entry in node.entries() {
                let mbr = *entry.mbr();
                if !consistent(graph, chosen, var, &mbr) {
                    continue;
                }
                let cursor = match entry.child() {
                    Some(child) => {
                        state.stats.node_accesses += 1;
                        Cursor::Node(child)
                    }
                    None => Cursor::Data(*entry.value().expect("leaf") as usize, mbr),
                };
                chosen[var] = Some(cursor);
                if choose(state, cursors, chosen, var + 1) {
                    return true;
                }
                chosen[var] = None;
            }
        }
        Cursor::GridRoot(g) => {
            for c in 0..g.cells() {
                if g.cell_len(c) == 0 {
                    continue;
                }
                if !consistent(graph, chosen, var, &g.cell_mbr(c)) {
                    continue;
                }
                state.stats.node_accesses += 1;
                chosen[var] = Some(Cursor::GridCell(g, c));
                if choose(state, cursors, chosen, var + 1) {
                    return true;
                }
                chosen[var] = None;
            }
        }
        Cursor::GridCell(g, c) => {
            for (value, rect) in g.cell_entries(*c) {
                if g.home_cell(&rect) != *c {
                    continue; // replica; enumerated at its home cell
                }
                if !consistent(graph, chosen, var, &rect) {
                    continue;
                }
                chosen[var] = Some(Cursor::Data(value as usize, rect));
                if choose(state, cursors, chosen, var + 1) {
                    return true;
                }
                chosen[var] = None;
            }
        }
    }
    false
}

/// MBR-level consistency of `var`'s candidate against all chosen earlier
/// variables (every join edge must remain possible).
fn consistent(
    graph: &mwsj_query::QueryGraph,
    chosen: &[Option<Cursor<'_>>],
    var: usize,
    mbr: &Rect,
) -> bool {
    graph.neighbors(var).iter().all(|&(u, _)| match &chosen[u] {
        Some(c) => mbr.intersects(&c.mbr()),
        None => true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WindowReduction;
    use mwsj_datagen::{count_exact_solutions, Dataset, QueryShape};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn instance(
        seed: u64,
        shape: QueryShape,
        n: usize,
        cardinality: usize,
        density: f64,
    ) -> (Instance, Vec<Dataset>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let datasets: Vec<Dataset> = (0..n)
            .map(|_| Dataset::uniform(cardinality, density, &mut rng))
            .collect();
        (
            Instance::new(shape.graph(n), datasets.clone()).unwrap(),
            datasets,
        )
    }

    #[test]
    fn st_count_matches_brute_force() {
        for shape in [QueryShape::Chain, QueryShape::Clique] {
            let (inst, datasets) = instance(131, shape, 3, 60, 0.5);
            let outcome =
                SynchronousTraversal::new().run(&inst, &SearchBudget::seconds(30.0), usize::MAX);
            assert!(outcome.complete);
            let brute = count_exact_solutions(&datasets, inst.graph(), u64::MAX);
            assert_eq!(outcome.solutions.len() as u64, brute, "{}", shape.name());
        }
    }

    #[test]
    fn st_agrees_with_wr() {
        let (inst, _) = instance(132, QueryShape::Cycle, 4, 40, 0.4);
        let mut st: Vec<Solution> = SynchronousTraversal::new()
            .run(&inst, &SearchBudget::seconds(30.0), usize::MAX)
            .solutions;
        let mut wr: Vec<Solution> = WindowReduction::new()
            .run(&inst, &SearchBudget::seconds(30.0), usize::MAX)
            .solutions;
        st.sort_by(|a, b| a.as_slice().cmp(b.as_slice()));
        wr.sort_by(|a, b| a.as_slice().cmp(b.as_slice()));
        assert_eq!(st, wr);
    }

    #[test]
    fn st_respects_limit_and_budget() {
        let (inst, _) = instance(133, QueryShape::Chain, 3, 80, 1.2);
        let capped = SynchronousTraversal::new().run(&inst, &SearchBudget::seconds(30.0), 3);
        assert_eq!(capped.solutions.len(), 3);
        assert!(!capped.complete);
        let starved =
            SynchronousTraversal::new().run(&inst, &SearchBudget::iterations(2), usize::MAX);
        assert!(!starved.complete);
    }

    #[test]
    #[should_panic(expected = "overlap queries only")]
    fn st_rejects_non_overlap_predicates() {
        let mut rng = StdRng::seed_from_u64(134);
        let datasets: Vec<Dataset> = (0..2)
            .map(|_| Dataset::uniform(10, 0.1, &mut rng))
            .collect();
        let graph = mwsj_query::QueryGraphBuilder::new(2)
            .edge_with(0, 1, Predicate::NorthEast)
            .build()
            .unwrap();
        let inst = Instance::new(graph, datasets).unwrap();
        let _ = SynchronousTraversal::new().run(&inst, &SearchBudget::seconds(1.0), 1);
    }
}
