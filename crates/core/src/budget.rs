//! Search budgets: wall-clock and/or step limits, plus the cross-thread
//! state that lets a portfolio of restarts share one budget.
//!
//! The paper frames approximate processing as retrieval of the best
//! solution *within a time threshold* (its experiments use `10·n` seconds).
//! Wall-clock budgets are inherently non-deterministic, so every algorithm
//! here also accepts a *step* budget — one step is one `find best value`
//! call (ILS/GILS), one generation (SEA) or one expanded node (IBB) — which
//! makes tests and CI runs reproducible.
//!
//! For parallel portfolios ([`crate::ParallelPortfolio`]) a single budget
//! is shared by `K` concurrent restarts: the wall-clock limit becomes one
//! **absolute deadline** (every restart stops at the same instant, instead
//! of each measuring its own start), the step limit is **split
//! deterministically** across restarts, and a [`SharedSearchState`]
//! aggregates steps and the best-known violation count across threads.

use mwsj_obs::{ObsHandle, RunEvent};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A budget limiting a search run. Both limits may be set; the run stops at
/// whichever is hit first. At least one limit must be set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchBudget {
    /// Maximum wall-clock time.
    pub time_limit: Option<Duration>,
    /// Maximum number of algorithm steps.
    pub max_steps: Option<u64>,
}

impl SearchBudget {
    /// Budget limited by wall-clock time only (the paper's setting).
    pub fn time(limit: Duration) -> Self {
        SearchBudget {
            time_limit: Some(limit),
            max_steps: None,
        }
    }

    /// Budget limited by wall-clock seconds.
    pub fn seconds(secs: f64) -> Self {
        Self::time(Duration::from_secs_f64(secs))
    }

    /// Budget limited by a deterministic step count only.
    pub fn iterations(steps: u64) -> Self {
        SearchBudget {
            time_limit: None,
            max_steps: Some(steps),
        }
    }

    /// Budget limited by both time and steps.
    pub fn time_and_iterations(limit: Duration, steps: u64) -> Self {
        SearchBudget {
            time_limit: Some(limit),
            max_steps: Some(steps),
        }
    }

    /// Splits this budget across `k` parallel restarts.
    ///
    /// The step limit is divided evenly — the first `max_steps % k`
    /// restarts receive one extra step — so the restarts together consume
    /// exactly `max_steps` and the split depends only on `(max_steps, k)`.
    /// The time limit is copied verbatim into every share: a portfolio
    /// converts it into one absolute deadline common to all restarts (see
    /// [`SearchContext::with_deadline`]).
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn split(&self, k: usize) -> Vec<SearchBudget> {
        assert!(k > 0, "cannot split a budget across zero restarts");
        let k64 = k as u64;
        (0..k64)
            .map(|i| SearchBudget {
                time_limit: self.time_limit,
                max_steps: self.max_steps.map(|total| {
                    let base = total / k64;
                    let extra = u64::from(i < total % k64);
                    base + extra
                }),
            })
            .collect()
    }

    /// Panics if neither limit is set (a run would never terminate).
    pub(crate) fn validate(&self) {
        assert!(
            self.time_limit.is_some() || self.max_steps.is_some(),
            "a search budget must set a time limit, a step limit, or both"
        );
    }
}

/// Live-telemetry configuration threaded through a [`SearchContext`]:
/// progress-heartbeat cadence and the stall watchdog.
///
/// The default is fully off, so existing call sites pay nothing. Progress
/// emission is **step-indexed** (`steps % progress_every == 0`), which
/// keeps every counter-valued field of the emitted `progress` events
/// deterministic under step budgets; wall-clock fields are measured and
/// exempt, like bench-snapshot wall columns.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TelemetryConfig {
    /// Emit a `progress` event every this many steps (requires a sink).
    pub progress_every: Option<u64>,
    /// Declare a stall after this many steps without incumbent improvement.
    pub stall_window_steps: Option<u64>,
    /// Declare a stall after this many wall-clock seconds without
    /// incumbent improvement (non-deterministic; opt-in).
    pub stall_window_secs: Option<f64>,
    /// When a stall is declared, stop the run through the cutoff machinery
    /// (stop reason `stall_aborted`) instead of only reporting it.
    pub stall_abort: bool,
}

impl TelemetryConfig {
    /// `true` when any stall window is configured.
    pub fn watches_stalls(&self) -> bool {
        self.stall_window_steps.is_some() || self.stall_window_secs.is_some()
    }

    /// `true` when the config asks for any live telemetry at all.
    pub fn is_active(&self) -> bool {
        self.progress_every.is_some() || self.watches_stalls()
    }
}

/// Coordination state shared by every restart of a parallel portfolio:
/// an aggregate step counter and the best-known violation count (the
/// portfolio's *bound*, mirroring how the two-step scheme of §6 feeds a
/// heuristic bound into IBB).
///
/// Cloning shares the underlying atomics.
#[derive(Debug, Clone)]
pub struct SharedSearchState {
    steps: Arc<AtomicU64>,
    /// Best-known violations across all restarts; `u32::MAX` = none yet.
    bound: Arc<AtomicU32>,
}

impl SharedSearchState {
    /// Fresh state with no published bound.
    pub fn new() -> Self {
        SharedSearchState {
            steps: Arc::new(AtomicU64::new(0)),
            bound: Arc::new(AtomicU32::new(u32::MAX)),
        }
    }

    /// Total steps consumed so far across every attached restart.
    pub fn steps(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    /// The best-known violation count published by any restart, if any.
    pub fn bound_violations(&self) -> Option<usize> {
        match self.bound.load(Ordering::Relaxed) {
            u32::MAX => None,
            v => Some(v as usize),
        }
    }

    /// Lowers the shared bound to `violations` if it improves on it.
    pub fn publish(&self, violations: usize) {
        let v = u32::try_from(violations).unwrap_or(u32::MAX - 1);
        self.bound.fetch_min(v, Ordering::Relaxed);
    }

    /// `true` once a zero-violation (similarity 1) solution was published:
    /// nothing can improve on it, so cooperating restarts may stop.
    pub fn optimum_reached(&self) -> bool {
        self.bound.load(Ordering::Relaxed) == 0
    }

    #[inline]
    fn add_step(&self) {
        self.steps.fetch_add(1, Ordering::Relaxed);
    }
}

impl Default for SharedSearchState {
    fn default() -> Self {
        Self::new()
    }
}

/// Everything an anytime search needs to know about *when to stop*: the
/// per-run [`SearchBudget`], an optional absolute deadline overriding the
/// budget's relative time limit, and optional portfolio coordination.
#[derive(Debug, Clone)]
pub struct SearchContext {
    budget: SearchBudget,
    deadline: Option<Instant>,
    shared: Option<SharedSearchState>,
    cutoff: bool,
    obs: ObsHandle,
    nested: bool,
    telemetry: TelemetryConfig,
}

impl SearchContext {
    /// A standalone (single-threaded) run of `budget`: the deadline is
    /// measured from the moment the search starts.
    pub fn local(budget: SearchBudget) -> Self {
        budget.validate();
        SearchContext {
            budget,
            deadline: None,
            shared: None,
            cutoff: false,
            obs: ObsHandle::disabled(),
            nested: false,
            telemetry: TelemetryConfig::default(),
        }
    }

    /// Marks this run as a *component* of a larger composite run (a
    /// two-step pipeline stage, a recorded batch entry, …). The search
    /// driver then leaves `run_end` emission to the enclosing composite,
    /// which reports one merged outcome instead.
    pub fn nested(mut self) -> Self {
        self.nested = true;
        self
    }

    /// `true` when [`SearchContext::nested`] was applied.
    pub(crate) fn is_nested(&self) -> bool {
        self.nested
    }

    /// Replaces the budget's relative time limit with an absolute deadline
    /// (shared by every restart of a portfolio).
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches portfolio coordination state. With `cutoff` set, the run
    /// additionally stops as soon as the shared bound reaches zero
    /// violations (a similarity-1 certificate another restart published —
    /// the only *sound* cross-restart cutoff for heuristics, since nothing
    /// can beat an exact solution). Cutoff trades bit-reproducibility of
    /// secondary results for wall-clock, so portfolios enable it only for
    /// time-limited budgets unless told otherwise (see
    /// [`crate::CutoffPolicy`]).
    pub fn with_shared(mut self, shared: SharedSearchState, cutoff: bool) -> Self {
        self.shared = Some(shared);
        self.cutoff = cutoff;
        self
    }

    /// Attaches an observability handle: the run flushes its counters into
    /// the handle's metrics registry, attributes steps to the handle's
    /// phase timer, and emits improvement / stop-reason events to its sink.
    /// Defaults to a fully disabled handle.
    pub fn with_obs(mut self, obs: ObsHandle) -> Self {
        self.obs = obs;
        self
    }

    /// The attached observability handle.
    pub fn obs(&self) -> &ObsHandle {
        &self.obs
    }

    /// Attaches a live-telemetry configuration (progress heartbeats and
    /// the stall watchdog). Defaults to fully off.
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The attached live-telemetry configuration.
    pub fn telemetry(&self) -> &TelemetryConfig {
        &self.telemetry
    }

    /// The per-run budget.
    pub fn budget(&self) -> &SearchBudget {
        &self.budget
    }
}

/// Running clock for one search invocation.
#[derive(Debug)]
pub(crate) struct BudgetClock {
    start: Instant,
    deadline: Option<Instant>,
    max_steps: Option<u64>,
    steps: u64,
    shared: Option<SharedSearchState>,
    cutoff: bool,
    obs: ObsHandle,
    /// Set by the stall watchdog (`--stall-abort`): the run stops through
    /// the same exhaustion check as budget/cutoff, with its own distinct
    /// stop reason.
    stall_tripped: bool,
}

impl BudgetClock {
    #[cfg(test)]
    pub(crate) fn start(budget: &SearchBudget) -> Self {
        Self::from_context(&SearchContext::local(*budget))
    }

    pub(crate) fn from_context(ctx: &SearchContext) -> Self {
        let start = Instant::now();
        let deadline = ctx
            .deadline
            .or_else(|| ctx.budget.time_limit.map(|d| start + d));
        assert!(
            deadline.is_some() || ctx.budget.max_steps.is_some(),
            "a search budget must set a time limit, a step limit, or both"
        );
        BudgetClock {
            start,
            deadline,
            max_steps: ctx.budget.max_steps,
            steps: 0,
            shared: ctx.shared.clone(),
            cutoff: ctx.cutoff,
            obs: ctx.obs.clone(),
            stall_tripped: false,
        }
    }

    /// Trips the stall watchdog: from now on [`BudgetClock::exhausted`]
    /// returns `true` and the stop reason is `stall_aborted` (which takes
    /// precedence over budget/cutoff reasons — the watchdog stopped the
    /// run before either fired).
    pub(crate) fn trip_stall(&mut self) {
        self.stall_tripped = true;
    }

    /// Records one step (locally, in the shared aggregate, and against the
    /// innermost open phase span).
    #[inline]
    pub(crate) fn step(&mut self) {
        self.steps += 1;
        if let Some(shared) = &self.shared {
            shared.add_step();
        }
        self.obs.timer.add_steps(1);
    }

    /// The observability handle this run reports through.
    #[inline]
    pub(crate) fn obs(&self) -> &ObsHandle {
        &self.obs
    }

    /// Emits the stop-reason event for a finished run: `budget_exhausted`
    /// when either limit was hit, `cutoff_fired` when a cooperating restart
    /// stopped on another restart's similarity-1 certificate. Runs that end
    /// for algorithmic reasons (exact solution found, space exhausted) emit
    /// neither. Called once at finish time so the hot `exhausted()` check
    /// stays branch-free.
    pub(crate) fn emit_stop_reason(&self) {
        if !self.obs.has_sink() {
            return;
        }
        if self.stall_tripped {
            self.obs.emit(RunEvent::StallAborted {
                restart: self.obs.restart(),
                steps: self.steps,
                elapsed_secs: self.elapsed().as_secs_f64(),
            });
            return;
        }
        let steps_out = self.max_steps.is_some_and(|max| self.steps >= max);
        let time_out = self.deadline.is_some_and(|d| Instant::now() >= d);
        let cut = self.cutoff
            && self
                .shared
                .as_ref()
                .is_some_and(|shared| shared.optimum_reached());
        if steps_out || time_out {
            self.obs.emit(RunEvent::BudgetExhausted {
                restart: self.obs.restart(),
                steps: self.steps,
                elapsed_secs: self.elapsed().as_secs_f64(),
            });
        } else if cut {
            self.obs.emit(RunEvent::CutoffFired {
                restart: self.obs.restart(),
                steps: self.steps,
                elapsed_secs: self.elapsed().as_secs_f64(),
            });
        }
    }

    /// Steps recorded so far by this run.
    #[inline]
    pub(crate) fn steps(&self) -> u64 {
        self.steps
    }

    /// Time since the run started.
    #[inline]
    pub(crate) fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Publishes an improved violation count to the portfolio bound
    /// (no-op for standalone runs).
    #[inline]
    pub(crate) fn publish_bound(&self, violations: usize) {
        if let Some(shared) = &self.shared {
            shared.publish(violations);
        }
    }

    /// Fraction of the budget consumed, in `[0, 1]`: the maximum of the
    /// step fraction and the time fraction (whichever limit is closer).
    /// Used by SEA's budget-aware crossover-point annealing.
    pub(crate) fn fraction_consumed(&self) -> f64 {
        let mut fraction: f64 = 0.0;
        if let Some(max) = self.max_steps {
            if max > 0 {
                fraction = fraction.max(self.steps as f64 / max as f64);
            }
        }
        if let Some(deadline) = self.deadline {
            let total = deadline.saturating_duration_since(self.start);
            if !total.is_zero() {
                fraction = fraction.max(self.start.elapsed().as_secs_f64() / total.as_secs_f64());
            }
        }
        fraction.min(1.0)
    }

    /// Returns `true` once either limit is reached — or, for cooperating
    /// portfolio restarts with cutoff enabled, once any restart has
    /// published a similarity-1 solution.
    #[inline]
    pub(crate) fn exhausted(&self) -> bool {
        if self.stall_tripped {
            return true;
        }
        if let Some(max) = self.max_steps {
            if self.steps >= max {
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return true;
            }
        }
        if self.cutoff {
            if let Some(shared) = &self.shared {
                if shared.optimum_reached() {
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_budget_exhausts_deterministically() {
        let mut clock = BudgetClock::start(&SearchBudget::iterations(3));
        assert!(!clock.exhausted());
        clock.step();
        clock.step();
        assert!(!clock.exhausted());
        clock.step();
        assert!(clock.exhausted());
        assert_eq!(clock.steps(), 3);
    }

    #[test]
    fn time_budget_exhausts() {
        let clock = BudgetClock::start(&SearchBudget::time(Duration::from_millis(1)));
        assert!(!clock.exhausted() || clock.elapsed() >= Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        assert!(clock.exhausted());
    }

    #[test]
    fn combined_budget_stops_at_first_limit() {
        let budget = SearchBudget::time_and_iterations(Duration::from_secs(3600), 1);
        let mut clock = BudgetClock::start(&budget);
        clock.step();
        assert!(clock.exhausted());
    }

    #[test]
    #[should_panic(expected = "must set a time limit")]
    fn empty_budget_is_rejected() {
        let budget = SearchBudget {
            time_limit: None,
            max_steps: None,
        };
        let _ = BudgetClock::start(&budget);
    }

    #[test]
    fn fraction_consumed_tracks_steps() {
        let mut clock = BudgetClock::start(&SearchBudget::iterations(4));
        assert_eq!(clock.fraction_consumed(), 0.0);
        clock.step();
        assert_eq!(clock.fraction_consumed(), 0.25);
        clock.step();
        clock.step();
        clock.step();
        assert_eq!(clock.fraction_consumed(), 1.0);
    }

    #[test]
    fn seconds_constructor() {
        let b = SearchBudget::seconds(1.5);
        assert_eq!(b.time_limit, Some(Duration::from_millis(1500)));
    }

    #[test]
    fn split_divides_steps_exactly() {
        let shares = SearchBudget::iterations(10).split(4);
        let steps: Vec<u64> = shares.iter().map(|b| b.max_steps.unwrap()).collect();
        assert_eq!(steps, vec![3, 3, 2, 2]);
        assert_eq!(steps.iter().sum::<u64>(), 10);

        let shares = SearchBudget::iterations(3).split(4);
        let steps: Vec<u64> = shares.iter().map(|b| b.max_steps.unwrap()).collect();
        assert_eq!(steps, vec![1, 1, 1, 0]);

        let timed = SearchBudget::seconds(2.0).split(3);
        assert!(timed
            .iter()
            .all(|b| b.time_limit == Some(Duration::from_secs(2))));
        assert!(timed.iter().all(|b| b.max_steps.is_none()));
    }

    #[test]
    fn split_with_more_restarts_than_steps_yields_zero_step_shares() {
        // K > total_steps: the surplus restarts get zero-step budgets,
        // which are still valid (`validate` passes — `Some(0)` is a set
        // limit) and exhaust immediately.
        let shares = SearchBudget::iterations(3).split(5);
        let steps: Vec<u64> = shares.iter().map(|b| b.max_steps.unwrap()).collect();
        assert_eq!(steps, vec![1, 1, 1, 0, 0]);
        for share in &shares {
            share.validate();
            let clock = BudgetClock::start(share);
            assert_eq!(
                clock.exhausted(),
                share.max_steps == Some(0),
                "zero-step shares are born exhausted, the rest are not"
            );
        }
    }

    #[test]
    #[should_panic(expected = "zero restarts")]
    fn split_zero_panics() {
        let _ = SearchBudget::iterations(1).split(0);
    }

    #[test]
    fn shared_state_aggregates_and_bounds() {
        let shared = SharedSearchState::new();
        assert_eq!(shared.bound_violations(), None);
        assert!(!shared.optimum_reached());

        let ctx =
            SearchContext::local(SearchBudget::iterations(5)).with_shared(shared.clone(), false);
        let mut a = BudgetClock::from_context(&ctx);
        let mut b = BudgetClock::from_context(&ctx);
        a.step();
        a.step();
        b.step();
        assert_eq!(shared.steps(), 3);
        assert_eq!(a.steps(), 2);

        a.publish_bound(7);
        b.publish_bound(9); // worse: ignored
        assert_eq!(shared.bound_violations(), Some(7));
        b.publish_bound(0);
        assert!(shared.optimum_reached());
    }

    #[test]
    fn cutoff_stops_cooperating_clocks() {
        let shared = SharedSearchState::new();
        let ctx = SearchContext::local(SearchBudget::iterations(1_000_000))
            .with_shared(shared.clone(), true);
        let clock = BudgetClock::from_context(&ctx);
        assert!(!clock.exhausted());
        shared.publish(0);
        assert!(clock.exhausted(), "similarity-1 certificate stops the run");

        // Without cutoff the same certificate does not stop the run.
        let ctx =
            SearchContext::local(SearchBudget::iterations(1_000_000)).with_shared(shared, false);
        let clock = BudgetClock::from_context(&ctx);
        assert!(!clock.exhausted());
    }

    #[test]
    fn absolute_deadline_is_respected() {
        let ctx = SearchContext::local(SearchBudget::seconds(3600.0))
            .with_deadline(Instant::now() - Duration::from_millis(1));
        let clock = BudgetClock::from_context(&ctx);
        assert!(clock.exhausted(), "deadline already passed");
    }
}
