//! Search budgets: wall-clock and/or step limits.
//!
//! The paper frames approximate processing as retrieval of the best
//! solution *within a time threshold* (its experiments use `10·n` seconds).
//! Wall-clock budgets are inherently non-deterministic, so every algorithm
//! here also accepts a *step* budget — one step is one `find best value`
//! call (ILS/GILS), one generation (SEA) or one expanded node (IBB) — which
//! makes tests and CI runs reproducible.

use std::time::{Duration, Instant};

/// A budget limiting a search run. Both limits may be set; the run stops at
/// whichever is hit first. At least one limit must be set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchBudget {
    /// Maximum wall-clock time.
    pub time_limit: Option<Duration>,
    /// Maximum number of algorithm steps.
    pub max_steps: Option<u64>,
}

impl SearchBudget {
    /// Budget limited by wall-clock time only (the paper's setting).
    pub fn time(limit: Duration) -> Self {
        SearchBudget {
            time_limit: Some(limit),
            max_steps: None,
        }
    }

    /// Budget limited by wall-clock seconds.
    pub fn seconds(secs: f64) -> Self {
        Self::time(Duration::from_secs_f64(secs))
    }

    /// Budget limited by a deterministic step count only.
    pub fn iterations(steps: u64) -> Self {
        SearchBudget {
            time_limit: None,
            max_steps: Some(steps),
        }
    }

    /// Budget limited by both time and steps.
    pub fn time_and_iterations(limit: Duration, steps: u64) -> Self {
        SearchBudget {
            time_limit: Some(limit),
            max_steps: Some(steps),
        }
    }

    /// Panics if neither limit is set (a run would never terminate).
    pub(crate) fn validate(&self) {
        assert!(
            self.time_limit.is_some() || self.max_steps.is_some(),
            "a search budget must set a time limit, a step limit, or both"
        );
    }
}

/// Running clock for one search invocation.
#[derive(Debug)]
pub(crate) struct BudgetClock {
    start: Instant,
    deadline: Option<Instant>,
    max_steps: Option<u64>,
    steps: u64,
}

impl BudgetClock {
    pub(crate) fn start(budget: &SearchBudget) -> Self {
        budget.validate();
        let start = Instant::now();
        BudgetClock {
            start,
            deadline: budget.time_limit.map(|d| start + d),
            max_steps: budget.max_steps,
            steps: 0,
        }
    }

    /// Records one step.
    #[inline]
    pub(crate) fn step(&mut self) {
        self.steps += 1;
    }

    /// Steps recorded so far.
    #[inline]
    pub(crate) fn steps(&self) -> u64 {
        self.steps
    }

    /// Time since the run started.
    #[inline]
    pub(crate) fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Fraction of the budget consumed, in `[0, 1]`: the maximum of the
    /// step fraction and the time fraction (whichever limit is closer).
    /// Used by SEA's budget-aware crossover-point annealing.
    pub(crate) fn fraction_consumed(&self) -> f64 {
        let mut fraction: f64 = 0.0;
        if let Some(max) = self.max_steps {
            if max > 0 {
                fraction = fraction.max(self.steps as f64 / max as f64);
            }
        }
        if let Some(deadline) = self.deadline {
            let total = deadline - self.start;
            if !total.is_zero() {
                fraction = fraction.max(self.start.elapsed().as_secs_f64() / total.as_secs_f64());
            }
        }
        fraction.min(1.0)
    }

    /// Returns `true` once either limit is reached.
    #[inline]
    pub(crate) fn exhausted(&self) -> bool {
        if let Some(max) = self.max_steps {
            if self.steps >= max {
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_budget_exhausts_deterministically() {
        let mut clock = BudgetClock::start(&SearchBudget::iterations(3));
        assert!(!clock.exhausted());
        clock.step();
        clock.step();
        assert!(!clock.exhausted());
        clock.step();
        assert!(clock.exhausted());
        assert_eq!(clock.steps(), 3);
    }

    #[test]
    fn time_budget_exhausts() {
        let clock = BudgetClock::start(&SearchBudget::time(Duration::from_millis(1)));
        assert!(!clock.exhausted() || clock.elapsed() >= Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        assert!(clock.exhausted());
    }

    #[test]
    fn combined_budget_stops_at_first_limit() {
        let budget =
            SearchBudget::time_and_iterations(Duration::from_secs(3600), 1);
        let mut clock = BudgetClock::start(&budget);
        clock.step();
        assert!(clock.exhausted());
    }

    #[test]
    #[should_panic(expected = "must set a time limit")]
    fn empty_budget_is_rejected() {
        let budget = SearchBudget {
            time_limit: None,
            max_steps: None,
        };
        let _ = BudgetClock::start(&budget);
    }

    #[test]
    fn fraction_consumed_tracks_steps() {
        let mut clock = BudgetClock::start(&SearchBudget::iterations(4));
        assert_eq!(clock.fraction_consumed(), 0.0);
        clock.step();
        assert_eq!(clock.fraction_consumed(), 0.25);
        clock.step();
        clock.step();
        clock.step();
        assert_eq!(clock.fraction_consumed(), 1.0);
    }

    #[test]
    fn seconds_constructor() {
        let b = SearchBudget::seconds(1.5);
        assert_eq!(b.time_limit, Some(Duration::from_millis(1500)));
    }
}
