//! Indexed Local Search (paper §3, Fig. 3).
//!
//! Restart-based hill climbing over the solution graph: from a random seed,
//! repeatedly re-instantiate the *worst* variable (most violated incident
//! conditions, ties by fewest satisfied) with the best value the index can
//! provide ([`find_best_value`](crate::find_best_value)). When no variable
//! can be improved the solution is a local maximum and the search restarts
//! from a fresh random seed, keeping the best solution seen, until the
//! budget is exhausted.

use crate::budget::{SearchBudget, SearchContext};
use crate::driver::{run_driven, DriveSearch, SearchDriver};
use crate::instance::Instance;
use crate::result::RunOutcome;
use crate::window_cache::WindowCache;
use rand::rngs::StdRng;

/// Configuration of [`Ils`]. The paper emphasises that ILS "does not
/// include any problem specific parameters"; the single knob here bounds
/// memory for the convergence trace.
#[derive(Debug, Clone, Default)]
pub struct IlsConfig {}

/// Indexed local search.
#[derive(Debug, Clone, Default)]
pub struct Ils {
    #[allow(dead_code)]
    config: IlsConfig,
}

impl Ils {
    /// Creates the algorithm.
    pub fn new(config: IlsConfig) -> Self {
        Ils { config }
    }

    /// Runs ILS until the budget is exhausted. One budget step = one
    /// `find best value` call.
    pub fn run(&self, instance: &Instance, budget: &SearchBudget, rng: &mut StdRng) -> RunOutcome {
        self.search(instance, &SearchContext::local(*budget), rng)
    }

    /// Runs ILS under an explicit [`SearchContext`] — the entry point used
    /// by [`crate::ParallelPortfolio`] to share deadlines and bounds
    /// across restarts.
    pub fn search(&self, instance: &Instance, ctx: &SearchContext, rng: &mut StdRng) -> RunOutcome {
        run_driven(self, instance, ctx, rng)
    }
}

impl DriveSearch for Ils {
    const NAME: &'static str = "ILS";
    const PHASE: &'static str = "ils";

    fn drive(&self, instance: &Instance, driver: &mut SearchDriver, rng: &mut StdRng) {
        let graph = instance.graph();
        let mut cache = WindowCache::new(instance);

        'restarts: while !driver.exhausted() {
            driver.stats_mut().restarts += 1;
            let mut sol = instance.random_solution(rng);
            let mut cs = instance.evaluate(&sol);
            driver.offer(&sol, cs.total_violations());

            // Hill-climb to a local maximum.
            loop {
                if driver.exhausted() {
                    break 'restarts;
                }
                let mut improved = false;
                // Worst variable first; fall through to progressively
                // better-off variables when the worst cannot improve.
                for v in cs.vars_by_badness(graph) {
                    if driver.exhausted() {
                        break 'restarts;
                    }
                    driver.step();
                    let current_satisfied = cs.satisfied_of(graph, v);
                    if let Some(best) = {
                        let (acc, levels) = driver.tally(v);
                        cache.find_best_value_leveled(instance, &sol, v, None, acc, levels)
                    } {
                        if best.satisfied > current_satisfied {
                            cs.reassign(graph, &mut sol, v, best.object, instance.rect_of());
                            driver.offer(&sol, cs.total_violations());
                            improved = true;
                            break;
                        }
                    }
                }
                if !improved {
                    driver.stats_mut().local_maxima += 1;
                    break;
                }
                if cs.total_violations() == 0 {
                    // Exact solution: nothing can beat similarity 1.
                    driver.stats_mut().local_maxima += 1;
                    break 'restarts;
                }
            }
            driver.sample_cache(&cache);
        }
        driver.stats_mut().cache.absorb(&cache.stats());
    }
}

/// Collects up to `want` local maxima by repeated ILS climbs, spending at
/// most `step_cap` `find best value` calls. Used by the hybrid SEA
/// initialisation the paper's Discussion proposes ("apply ILS and use the
/// first p local maxima visited as the p solutions of the first
/// generation").
pub(crate) fn collect_local_maxima(
    instance: &Instance,
    want: usize,
    step_cap: u64,
    rng: &mut StdRng,
    node_accesses: &mut u64,
    profile: &mut crate::result::AccessProfile,
    cache_stats: &mut crate::window_cache::CacheStats,
) -> Vec<mwsj_query::Solution> {
    let graph = instance.graph();
    let mut cache = WindowCache::new(instance);
    let mut maxima = Vec::with_capacity(want);
    let mut steps = 0u64;
    while maxima.len() < want && steps < step_cap {
        let mut sol = instance.random_solution(rng);
        let mut cs = instance.evaluate(&sol);
        'climb: loop {
            if steps >= step_cap {
                break;
            }
            for v in cs.vars_by_badness(graph) {
                steps += 1;
                let current = cs.satisfied_of(graph, v);
                if let Some(best) = cache.find_best_value_leveled(
                    instance,
                    &sol,
                    v,
                    None,
                    node_accesses,
                    profile.levels_mut(v),
                ) {
                    if best.satisfied > current {
                        cs.reassign(graph, &mut sol, v, best.object, instance.rect_of());
                        if cs.total_violations() == 0 {
                            break 'climb;
                        }
                        continue 'climb;
                    }
                }
                if steps >= step_cap {
                    break;
                }
            }
            break; // no variable improved: local maximum
        }
        maxima.push(sol);
    }
    cache_stats.absorb(&cache.stats());
    maxima
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwsj_datagen::{hard_region_density, plant_solution, Dataset, QueryShape};
    use mwsj_query::QueryGraph;
    use rand::SeedableRng;

    fn hard_instance(seed: u64, shape: QueryShape, n: usize, cardinality: usize) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = hard_region_density(shape, n, cardinality, 1.0);
        let datasets: Vec<Dataset> = (0..n)
            .map(|_| Dataset::uniform(cardinality, d, &mut rng))
            .collect();
        Instance::new(shape.graph(n), datasets).unwrap()
    }

    #[test]
    fn ils_improves_over_random_solutions() {
        let inst = hard_instance(61, QueryShape::Chain, 5, 1_000);
        let mut rng = StdRng::seed_from_u64(62);
        // Baseline: expected similarity of random solutions is near zero in
        // the hard region.
        let random_sim: f64 = (0..50)
            .map(|_| inst.similarity(&inst.random_solution(&mut rng)))
            .sum::<f64>()
            / 50.0;
        let outcome = Ils::default().run(&inst, &SearchBudget::iterations(2_000), &mut rng);
        assert!(
            outcome.best_similarity > random_sim + 0.2,
            "ILS {} vs random {}",
            outcome.best_similarity,
            random_sim
        );
        assert!(outcome.stats.local_maxima >= 1);
        assert!(outcome.stats.node_accesses > 0);
    }

    #[test]
    fn ils_finds_planted_solution_on_easy_instance() {
        let mut rng = StdRng::seed_from_u64(63);
        let n = 4;
        let cardinality = 300;
        let d = hard_region_density(QueryShape::Chain, n, cardinality, 1.0);
        let mut datasets: Vec<Dataset> = (0..n)
            .map(|_| Dataset::uniform(cardinality, d, &mut rng))
            .collect();
        let graph = QueryGraph::chain(n);
        plant_solution(&mut datasets, &graph, &mut rng);
        let inst = Instance::new(graph, datasets).unwrap();
        let outcome = Ils::default().run(&inst, &SearchBudget::iterations(20_000), &mut rng);
        assert!(
            outcome.best_similarity >= 0.66,
            "similarity {}",
            outcome.best_similarity
        );
    }

    #[test]
    fn ils_respects_step_budget() {
        let inst = hard_instance(64, QueryShape::Clique, 4, 200);
        let mut rng = StdRng::seed_from_u64(65);
        let outcome = Ils::default().run(&inst, &SearchBudget::iterations(100), &mut rng);
        assert_eq!(outcome.stats.steps, 100);
    }

    #[test]
    fn ils_is_deterministic_under_step_budget() {
        let inst = hard_instance(66, QueryShape::Chain, 4, 300);
        let a = Ils::default().run(
            &inst,
            &SearchBudget::iterations(500),
            &mut StdRng::seed_from_u64(7),
        );
        let b = Ils::default().run(
            &inst,
            &SearchBudget::iterations(500),
            &mut StdRng::seed_from_u64(7),
        );
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_violations, b.best_violations);
        assert_eq!(a.stats.local_maxima, b.stats.local_maxima);
    }

    #[test]
    fn trace_similarities_are_monotone() {
        let inst = hard_instance(67, QueryShape::Clique, 5, 300);
        let mut rng = StdRng::seed_from_u64(68);
        let outcome = Ils::default().run(&inst, &SearchBudget::iterations(1_500), &mut rng);
        for w in outcome.trace.windows(2) {
            assert!(w[0].similarity < w[1].similarity);
        }
        assert_eq!(
            outcome.trace.last().unwrap().similarity,
            outcome.best_similarity
        );
    }

    #[test]
    fn zero_variance_budget_still_returns_solution() {
        let inst = hard_instance(69, QueryShape::Chain, 3, 100);
        let mut rng = StdRng::seed_from_u64(70);
        let outcome = Ils::default().run(&inst, &SearchBudget::iterations(1), &mut rng);
        assert_eq!(outcome.best.len(), 3);
    }
}
