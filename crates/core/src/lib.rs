//! Multiway spatial join algorithms — the core contribution of
//! *Papadias & Arkoumanis, "Approximate Processing of Multiway Spatial
//! Joins in Very Large Databases" (EDBT 2002)*.
//!
//! Given `n` R*-tree-indexed datasets and a query graph of binary spatial
//! predicates, these algorithms retrieve the best (exact or approximate)
//! solutions within a budget:
//!
//! | Algorithm | Paper | Kind |
//! |---|---|---|
//! | [`Ils`] — indexed local search | §3, Fig. 3 | anytime heuristic |
//! | [`Gils`] — guided indexed local search | §4, Fig. 7 | anytime heuristic |
//! | [`Sea`] — spatial evolutionary algorithm | §5, Fig. 9 | anytime heuristic |
//! | [`Ibb`] — indexed branch and bound | §6 | systematic, optimal |
//! | [`TwoStep`] — heuristic then `Ibb` with its bound | §6, Fig. 11 | systematic, optimal |
//! | [`WindowReduction`] | \[PMT99\] | exact baseline |
//! | [`SynchronousTraversal`] | \[PMT99\] | exact baseline |
//! | [`Pjm`] (pairwise join method) | \[MP99\] | exact baseline |
//! | [`NaiveLocalSearch`], [`NaiveGa`], [`SimulatedAnnealing`] | \[PMK+99\] | ablation baselines |
//!
//! The shared primitive is [`find_best_value`] (§3, Fig. 5): a
//! branch-and-bound *multi-window* query that retrieves, for one query
//! variable, the object intersecting the most windows — the current
//! assignments of the variable's query-graph neighbours.
//!
//! Every randomized algorithm takes a seeded [`rand::rngs::StdRng`] and a
//! [`SearchBudget`] (wall-clock and/or step limits), making runs
//! reproducible under iteration budgets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod candidates;
mod driver;
pub mod explain;
mod find_best_value;
mod gils;
mod ibb;
mod ils;
mod instance;
mod naive;
mod observe;
mod order;
mod pairwise;
mod pjm;
mod portfolio;
mod result;
mod sea;
mod st;
mod two_step;
mod window_cache;
mod wr;

pub use budget::{SearchBudget, SearchContext, SharedSearchState, TelemetryConfig};
pub use explain::{build_explain_report, explain_report_for_run, observed_edge_selectivity};
pub use find_best_value::{find_best_value, BestValue};
pub use gils::{Gils, GilsConfig};
pub use ibb::{Ibb, IbbConfig};
pub use ils::{Ils, IlsConfig};
pub use instance::{BackendKind, Instance, InstanceError, LeafLayout};
pub use naive::{NaiveGa, NaiveGaConfig, NaiveLocalSearch, SaConfig, SimulatedAnnealing};
pub use observe::metric;
pub use pairwise::PairwiseJoin;
pub use pjm::{Pjm, PjmOrder};
pub use portfolio::{
    derive_seed, AnytimeSearch, CutoffPolicy, ParallelPortfolio, PortfolioConfig, PortfolioOutcome,
    RestartOutcome,
};
pub use result::{AccessProfile, RunOutcome, RunStats, TopSolutions, TracePoint, DEFAULT_TOP_K};
pub use sea::{Sea, SeaConfig};
pub use st::SynchronousTraversal;
pub use two_step::{TwoStep, TwoStepConfig, TwoStepOutcome};
pub use window_cache::{CacheStats, VarCacheStats, WindowCache};
pub use wr::{ExactJoinOutcome, WindowReduction};

// Observability building blocks, re-exported so downstream crates can wire
// search runs to sinks without depending on `mwsj-obs` directly.
pub use mwsj_obs as obs;
pub use mwsj_obs::{
    merge_phase_snapshots, EventSink, FanoutSink, FlightRecorder, FlushPolicy, JsonlSink,
    MemoryFootprint, MetricsRegistry, MetricsSnapshot, ObsHandle, PhaseSnapshot, PhaseTimer,
    ResourceReport, RunEvent, VecSink, DEFAULT_FLIGHT_RECORDER_BYTES,
};
