//! The search driver: shared run bookkeeping for every algorithm.
//!
//! Historically each algorithm (ILS, GILS, SEA, the naive baselines, SA,
//! IBB, the two-step pipeline) carried its own copy of the run scaffolding:
//! stepping the [`BudgetClock`], tracking the incumbent and
//! [`TopSolutions`](crate::TopSolutions), recording `(step, similarity)`
//! trace points, publishing bounds, flushing counters and emitting
//! stop-reason / `run_end` events. [`SearchDriver`] owns all of that; the
//! algorithms reduce to *drive* functions ([`DriveSearch`]) that only
//! encode their search moves.
//!
//! Counter-compatibility contract (DESIGN.md §5e): the driver reproduces
//! the pre-refactor bookkeeping **bit-exactly** — steps, improvements,
//! restarts, local maxima and the `(step, similarity)` trace of every
//! algorithm are unchanged; `node_accesses` may only decrease (via
//! [`WindowCache`](crate::WindowCache) hits).
//!
//! `run_end` ownership: exactly one `run_end` event is emitted per
//! top-level run. Standalone runs get it from [`SearchDriver::finish`];
//! composite runs ([`crate::TwoStep`], [`crate::ParallelPortfolio`],
//! recorded batch entries) mark their component contexts
//! [`SearchContext::nested`] (or run under a restart-scoped
//! [`ObsHandle`](mwsj_obs::ObsHandle)) and emit one merged event
//! themselves.

use crate::budget::{BudgetClock, SearchContext};
use crate::instance::Instance;
use crate::portfolio::AnytimeSearch;
use crate::result::{Incumbent, RunOutcome, RunStats, TopSolutions, DEFAULT_TOP_K};
use mwsj_obs::ObsHandle;
use mwsj_query::Solution;
use rand::rngs::StdRng;
use std::time::Duration;

/// Owns the run-wide state of one search invocation: budget clock, counter
/// block, incumbent (best solution + trace + top list) and the
/// end-of-run observability duties.
#[derive(Debug)]
pub(crate) struct SearchDriver {
    clock: BudgetClock,
    stats: RunStats,
    incumbent: Option<Incumbent>,
    edges: usize,
    /// Whether this driver owns the run's `run_end` event (standalone
    /// top-level runs only; see the module docs).
    emit_end: bool,
}

impl SearchDriver {
    /// Starts the clock for one run of `instance` under `ctx`.
    pub(crate) fn new(instance: &Instance, ctx: &SearchContext) -> Self {
        let clock = BudgetClock::from_context(ctx);
        let emit_end = !ctx.is_nested() && ctx.obs().restart().is_none() && ctx.obs().has_sink();
        SearchDriver {
            clock,
            stats: RunStats::default(),
            incumbent: None,
            edges: instance.graph().edge_count(),
            emit_end,
        }
    }

    /// Records one budget step (see [`BudgetClock::step`]).
    #[inline]
    pub(crate) fn step(&mut self) {
        self.clock.step();
    }

    /// `true` once the budget (or a cooperating cutoff) stops the run.
    #[inline]
    pub(crate) fn exhausted(&self) -> bool {
        self.clock.exhausted()
    }

    /// Steps recorded so far.
    #[inline]
    #[allow(dead_code)]
    pub(crate) fn steps(&self) -> u64 {
        self.clock.steps()
    }

    /// Time since the run started.
    #[inline]
    #[allow(dead_code)]
    pub(crate) fn elapsed(&self) -> Duration {
        self.clock.elapsed()
    }

    /// Fraction of the budget consumed (see
    /// [`BudgetClock::fraction_consumed`]).
    #[inline]
    pub(crate) fn fraction_consumed(&self) -> f64 {
        self.clock.fraction_consumed()
    }

    /// The run's observability handle.
    #[inline]
    pub(crate) fn obs(&self) -> &ObsHandle {
        self.clock.obs()
    }

    /// Mutable access to the counter block (restarts, local maxima, …).
    #[inline]
    pub(crate) fn stats_mut(&mut self) -> &mut RunStats {
        &mut self.stats
    }

    /// The node-access counter, in the `&mut u64` shape the traversal
    /// kernels increment.
    #[inline]
    pub(crate) fn node_accesses_mut(&mut self) -> &mut u64 {
        &mut self.stats.node_accesses
    }

    /// Violations of the incumbent, if one exists yet.
    #[inline]
    pub(crate) fn best_violations(&self) -> Option<usize> {
        self.incumbent.as_ref().map(|inc| inc.best_violations)
    }

    /// The branch-and-bound pruning bound: the incumbent's violations, or
    /// one more than the worst possible so any full solution beats it.
    #[inline]
    pub(crate) fn bound(&self) -> usize {
        self.best_violations().unwrap_or(self.edges + 1)
    }

    /// Offers `sol` to the incumbent (the shared move of the anytime
    /// heuristics): creations and strict improvements update the trace and
    /// top list, publish the portfolio bound and emit an improvement
    /// event. Returns `true` when the incumbent was created or improved.
    pub(crate) fn offer(&mut self, sol: &Solution, violations: usize) -> bool {
        match &mut self.incumbent {
            None => {
                self.incumbent = Some(Incumbent::new(
                    sol.clone(),
                    violations,
                    self.edges,
                    self.clock.elapsed(),
                    self.clock.steps(),
                ));
                self.clock.publish_bound(violations);
                crate::observe::emit_improvement(&self.clock, violations, self.edges);
                true
            }
            Some(inc) => {
                if inc.offer(
                    sol,
                    violations,
                    self.edges,
                    self.clock.elapsed(),
                    self.clock.steps(),
                ) {
                    self.stats.improvements += 1;
                    self.clock.publish_bound(violations);
                    crate::observe::emit_improvement(&self.clock, violations, self.edges);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// [`SearchDriver::offer`] without publishing the portfolio bound —
    /// the naive-GA baseline predates bound sharing and is kept
    /// bit-faithful to its published behaviour.
    ///
    /// # Panics
    /// Panics if no incumbent was seeded yet.
    pub(crate) fn offer_unpublished(&mut self, sol: &Solution, violations: usize) {
        let inc = self
            .incumbent
            .as_mut()
            .expect("offer_unpublished requires a seeded incumbent");
        if inc.offer(
            sol,
            violations,
            self.edges,
            self.clock.elapsed(),
            self.clock.steps(),
        ) {
            self.stats.improvements += 1;
            crate::observe::emit_improvement(&self.clock, inc.best_violations, self.edges);
        }
    }

    /// Installs an initial incumbent **silently**: trace point and top-list
    /// entry, but no improvement event and no bound publication. Used for
    /// seeds that are given, not found (IBB's heuristic bound, naive-GA's
    /// first population member).
    pub(crate) fn seed_incumbent(&mut self, sol: &Solution, violations: usize) {
        debug_assert!(self.incumbent.is_none(), "incumbent already seeded");
        self.incumbent = Some(Incumbent::new(
            sol.clone(),
            violations,
            self.edges,
            self.clock.elapsed(),
            self.clock.steps(),
        ));
    }

    /// Records a full solution found by systematic search (IBB): strictly
    /// better than the bound by construction, counted as an improvement and
    /// emitted as one, but — matching IBB's published behaviour — without
    /// publishing a portfolio bound.
    pub(crate) fn record_best(&mut self, sol: &Solution, violations: usize) {
        match &mut self.incumbent {
            None => {
                let mut inc = Incumbent::new(
                    sol.clone(),
                    violations,
                    self.edges,
                    self.clock.elapsed(),
                    self.clock.steps(),
                );
                // The first *found* solution counts as an improvement
                // (unlike a given seed, which Incumbent::new records as 0).
                inc.improvements = 1;
                self.incumbent = Some(inc);
            }
            Some(inc) => {
                let improved = inc.offer(
                    sol,
                    violations,
                    self.edges,
                    self.clock.elapsed(),
                    self.clock.steps(),
                );
                debug_assert!(improved, "record_best requires a bound-beating solution");
            }
        }
        crate::observe::emit_improvement(&self.clock, violations, self.edges);
    }

    /// Finishes an anytime run: falls back to a random solution when the
    /// budget expired before any incumbent existed, freezes the counters,
    /// flushes them to the metrics registry, emits the stop-reason (and,
    /// for standalone runs, `run_end`) events and assembles the outcome.
    pub(crate) fn finish(self, instance: &Instance, rng: &mut StdRng) -> RunOutcome {
        let fallback = |clock: &BudgetClock, rng: &mut StdRng| {
            let sol = instance.random_solution(rng);
            let v = instance.violations(&sol);
            Incumbent::new(
                sol,
                v,
                instance.graph().edge_count(),
                clock.elapsed(),
                clock.steps(),
            )
        };
        let incumbent = match self.incumbent {
            Some(inc) => inc,
            None => fallback(&self.clock, rng),
        };
        Self::into_outcome(
            self.clock,
            self.stats,
            incumbent,
            self.edges,
            false,
            self.emit_end,
            instance,
        )
    }

    /// Finishes a systematic (IBB) run: `proven_optimal` is the caller's
    /// exhaustiveness verdict, and the no-incumbent fallback is the
    /// arbitrary all-zero assignment with an **empty** trace/top list (the
    /// run provably never found anything).
    pub(crate) fn finish_systematic(self, instance: &Instance, proven_optimal: bool) -> RunOutcome {
        let incumbent = self.incumbent.unwrap_or_else(|| {
            let sol = Solution::new(vec![0; instance.n_vars()]);
            let best_violations = instance.violations(&sol);
            Incumbent {
                best: sol,
                best_violations,
                improvements: 0,
                trace: Vec::new(),
                top: TopSolutions::new(DEFAULT_TOP_K),
            }
        });
        Self::into_outcome(
            self.clock,
            self.stats,
            incumbent,
            self.edges,
            proven_optimal,
            self.emit_end,
            instance,
        )
    }

    fn into_outcome(
        clock: BudgetClock,
        mut stats: RunStats,
        incumbent: Incumbent,
        edges: usize,
        proven_optimal: bool,
        emit_end: bool,
        instance: &Instance,
    ) -> RunOutcome {
        stats.elapsed = clock.elapsed();
        stats.steps = clock.steps();
        stats.improvements = incumbent.improvements;
        crate::observe::flush_stats(clock.obs(), &stats);
        clock.emit_stop_reason();
        let outcome = RunOutcome {
            best_similarity: 1.0 - incumbent.best_violations as f64 / edges as f64,
            best: incumbent.best,
            best_violations: incumbent.best_violations,
            stats,
            trace: incumbent.trace,
            proven_optimal,
            top_solutions: incumbent.top.into_vec(),
        };
        if emit_end {
            crate::observe::emit_resource_report(clock.obs(), instance, &outcome);
            crate::observe::emit_run_end(clock.obs(), &outcome);
        }
        outcome
    }
}

/// An algorithm expressed as a *drive* function over a [`SearchDriver`]:
/// the driver owns the run-wide bookkeeping, the implementation encodes
/// only the search moves. Every implementor is an [`AnytimeSearch`] via
/// the blanket impl below.
pub(crate) trait DriveSearch: Sync {
    /// Display name (matches the paper's figures).
    const NAME: &'static str;
    /// Phase-timer span label of one run.
    const PHASE: &'static str;

    /// Runs the search moves until the driver reports exhaustion (or the
    /// algorithm decides to stop early).
    fn drive(&self, instance: &Instance, driver: &mut SearchDriver, rng: &mut StdRng);
}

/// Runs a [`DriveSearch`] under `ctx`: driver construction, phase span,
/// drive, finish.
pub(crate) fn run_driven<T: DriveSearch + ?Sized>(
    algo: &T,
    instance: &Instance,
    ctx: &SearchContext,
    rng: &mut StdRng,
) -> RunOutcome {
    let mut driver = SearchDriver::new(instance, ctx);
    let _phase = ctx.obs().timer.span(T::PHASE);
    algo.drive(instance, &mut driver, rng);
    driver.finish(instance, rng)
}

impl<T: DriveSearch> AnytimeSearch for T {
    fn name(&self) -> &'static str {
        T::NAME
    }

    fn search(&self, instance: &Instance, ctx: &SearchContext, rng: &mut StdRng) -> RunOutcome {
        run_driven(self, instance, ctx, rng)
    }
}
