//! The search driver: shared run bookkeeping for every algorithm.
//!
//! Historically each algorithm (ILS, GILS, SEA, the naive baselines, SA,
//! IBB, the two-step pipeline) carried its own copy of the run scaffolding:
//! stepping the [`BudgetClock`], tracking the incumbent and
//! [`TopSolutions`](crate::TopSolutions), recording `(step, similarity)`
//! trace points, publishing bounds, flushing counters and emitting
//! stop-reason / `run_end` events. [`SearchDriver`] owns all of that; the
//! algorithms reduce to *drive* functions ([`DriveSearch`]) that only
//! encode their search moves.
//!
//! Counter-compatibility contract (DESIGN.md §5e): the driver reproduces
//! the pre-refactor bookkeeping **bit-exactly** — steps, improvements,
//! restarts, local maxima and the `(step, similarity)` trace of every
//! algorithm are unchanged; `node_accesses` may only decrease (via
//! [`WindowCache`](crate::WindowCache) hits).
//!
//! `run_end` ownership: exactly one `run_end` event is emitted per
//! top-level run. Standalone runs get it from [`SearchDriver::finish`];
//! composite runs ([`crate::TwoStep`], [`crate::ParallelPortfolio`],
//! recorded batch entries) mark their component contexts
//! [`SearchContext::nested`] (or run under a restart-scoped
//! [`ObsHandle`](mwsj_obs::ObsHandle)) and emit one merged event
//! themselves.

use crate::budget::{BudgetClock, SearchContext, TelemetryConfig};
use crate::instance::Instance;
use crate::portfolio::AnytimeSearch;
use crate::result::{Incumbent, RunOutcome, RunStats, TopSolutions, DEFAULT_TOP_K};
use crate::window_cache::WindowCache;
use mwsj_obs::{MemoryFootprint, ObsHandle, RunEvent};
use mwsj_query::Solution;
use rand::rngs::StdRng;
use std::time::{Duration, Instant};

/// Live-telemetry state of one run: the progress-heartbeat cadence and the
/// stall watchdog. Present only when the context's [`TelemetryConfig`]
/// asked for something this run can deliver, so the per-step cost of the
/// disabled path stays one `Option` check.
#[derive(Debug)]
struct WatchState {
    /// Progress cadence in steps (`None` = no heartbeats; requires a sink).
    progress_every: Option<u64>,
    /// Stall window in steps.
    stall_window_steps: Option<u64>,
    /// Stall window in wall-clock seconds (opt-in: costs an
    /// `Instant::now()` per step while armed).
    stall_window_secs: Option<f64>,
    /// Stop the run (via [`BudgetClock::trip_stall`]) when a stall fires.
    stall_abort: bool,
    /// Instance index-structure bytes, computed once (deterministic).
    instance_bytes: u64,
    /// Step count at the last incumbent improvement (or run start).
    last_improvement_step: u64,
    /// Wall clock at the last incumbent improvement (or run start).
    last_improvement_time: Instant,
    /// `true` while a declared stall episode is open (re-armed by the next
    /// improvement), so each episode emits one `stall_detected`.
    stalled: bool,
    /// Latest deterministic window-cache sample (see
    /// [`SearchDriver::sample_cache`]).
    cache_hits: u64,
    cache_misses: u64,
    cache_bytes: u64,
}

impl WatchState {
    /// Builds the watch state for `telemetry`, or `None` when nothing is
    /// asked for (or nothing can be delivered: progress and stall
    /// *reporting* need a sink; stall-*abort* works sinkless).
    fn new(telemetry: &TelemetryConfig, instance: &Instance, obs: &ObsHandle) -> Option<Self> {
        let progress_every = if obs.has_sink() {
            telemetry.progress_every.filter(|&n| n > 0)
        } else {
            None
        };
        let watches_stalls =
            telemetry.watches_stalls() && (obs.has_sink() || telemetry.stall_abort);
        if progress_every.is_none() && !watches_stalls {
            return None;
        }
        Some(WatchState {
            progress_every,
            stall_window_steps: telemetry.stall_window_steps.filter(|_| watches_stalls),
            stall_window_secs: telemetry.stall_window_secs.filter(|_| watches_stalls),
            stall_abort: telemetry.stall_abort,
            instance_bytes: if progress_every.is_some() {
                instance.memory_bytes()
            } else {
                0
            },
            last_improvement_step: 0,
            last_improvement_time: Instant::now(),
            stalled: false,
            cache_hits: 0,
            cache_misses: 0,
            cache_bytes: 0,
        })
    }
}

/// Owns the run-wide state of one search invocation: budget clock, counter
/// block, incumbent (best solution + trace + top list) and the
/// end-of-run observability duties.
#[derive(Debug)]
pub(crate) struct SearchDriver {
    clock: BudgetClock,
    stats: RunStats,
    incumbent: Option<Incumbent>,
    edges: usize,
    /// Whether this driver owns the run's `run_end` event (standalone
    /// top-level runs only; see the module docs).
    emit_end: bool,
    /// Live-telemetry state; `None` keeps the hot path at one check.
    watch: Option<WatchState>,
}

impl SearchDriver {
    /// Starts the clock for one run of `instance` under `ctx`.
    pub(crate) fn new(instance: &Instance, ctx: &SearchContext) -> Self {
        let clock = BudgetClock::from_context(ctx);
        let emit_end = !ctx.is_nested() && ctx.obs().restart().is_none() && ctx.obs().has_sink();
        let watch = WatchState::new(ctx.telemetry(), instance, ctx.obs());
        let stats = RunStats {
            access_profile: crate::result::AccessProfile::for_instance(instance),
            ..RunStats::default()
        };
        SearchDriver {
            clock,
            stats,
            incumbent: None,
            edges: instance.graph().edge_count(),
            emit_end,
            watch,
        }
    }

    /// Records one budget step (see [`BudgetClock::step`]).
    #[inline]
    pub(crate) fn step(&mut self) {
        self.clock.step();
        if self.watch.is_some() {
            self.watch_step();
        }
    }

    /// Per-step live-telemetry work, outlined so the telemetry-off path
    /// costs only the `is_some` check above.
    fn watch_step(&mut self) {
        let step = self.clock.steps();
        let (do_progress, stall) = {
            let watch = self
                .watch
                .as_mut()
                .expect("watch_step requires watch state");
            let do_progress = watch
                .progress_every
                .is_some_and(|every| step.is_multiple_of(every));
            let mut stall = None;
            if !watch.stalled
                && (watch.stall_window_steps.is_some() || watch.stall_window_secs.is_some())
            {
                let steps_since = step - watch.last_improvement_step;
                let step_stall = watch.stall_window_steps.is_some_and(|w| steps_since >= w);
                // Only pay an Instant::now() per step when a wall window
                // was explicitly configured.
                let secs_since = watch
                    .stall_window_secs
                    .map(|_| watch.last_improvement_time.elapsed().as_secs_f64());
                let wall_stall = watch
                    .stall_window_secs
                    .zip(secs_since)
                    .is_some_and(|(w, s)| s >= w);
                if step_stall || wall_stall {
                    watch.stalled = true;
                    stall = Some((steps_since, secs_since, watch.stall_abort));
                }
            }
            (do_progress, stall)
        };
        if do_progress {
            self.emit_progress(step);
        }
        if let Some((steps_since, secs_since, abort)) = stall {
            let obs = self.clock.obs();
            if obs.has_sink() {
                let secs_since = secs_since.unwrap_or_else(|| {
                    self.watch
                        .as_ref()
                        .expect("watch state")
                        .last_improvement_time
                        .elapsed()
                        .as_secs_f64()
                });
                obs.emit(RunEvent::StallDetected {
                    restart: obs.restart(),
                    step,
                    steps_since_improvement: steps_since,
                    secs_since_improvement: secs_since,
                    elapsed_secs: self.clock.elapsed().as_secs_f64(),
                });
            }
            if abort {
                self.clock.trip_stall();
            }
        }
    }

    /// Emits one `progress` heartbeat. Every counter-valued field is a
    /// pure function of algorithmic state (the cadence is step-indexed and
    /// the cache sample points are algorithm-chosen), so heartbeats are
    /// deterministic under step budgets; the two wall fields are measured.
    fn emit_progress(&self, step: u64) {
        let watch = self.watch.as_ref().expect("progress requires watch state");
        let obs = self.clock.obs();
        let elapsed = self.clock.elapsed().as_secs_f64();
        let steps_per_sec = if elapsed > 0.0 {
            step as f64 / elapsed
        } else {
            0.0
        };
        obs.emit(RunEvent::Progress {
            restart: obs.restart(),
            step,
            steps_per_sec,
            elapsed_secs: elapsed,
            best_violations: self.best_violations().map(|v| v as u64),
            best_similarity: self
                .best_violations()
                .map(|v| 1.0 - v as f64 / self.edges as f64),
            node_accesses: self.stats.node_accesses,
            cache_hits: watch.cache_hits,
            cache_misses: watch.cache_misses,
            resident_bytes: watch.instance_bytes + watch.cache_bytes,
        });
    }

    /// Notes an incumbent improvement for the stall watchdog: re-arms the
    /// stall episode and resets both windows.
    fn note_improvement(&mut self) {
        if let Some(watch) = &mut self.watch {
            watch.last_improvement_step = self.clock.steps();
            watch.last_improvement_time = Instant::now();
            watch.stalled = false;
        }
    }

    /// Records a deterministic window-cache sample for subsequent
    /// `progress` heartbeats. Drives call this at algorithm-chosen
    /// boundaries (ILS restarts/local maxima, GILS punishment rounds, SEA
    /// generations), so the sampled values are themselves deterministic
    /// and reading them never perturbs the search. No-op unless progress
    /// heartbeats are active.
    pub(crate) fn sample_cache(&mut self, cache: &WindowCache) {
        if let Some(watch) = &mut self.watch {
            if watch.progress_every.is_some() {
                let (hits, misses, bytes) = cache.sample_totals();
                watch.cache_hits = hits;
                watch.cache_misses = misses;
                watch.cache_bytes = bytes;
            }
        }
    }

    /// Emits GILS's `stagnation_reseed` trace event (no-op without a sink).
    pub(crate) fn emit_stagnation_reseed(&self, rounds: u64) {
        let obs = self.clock.obs();
        if !obs.has_sink() {
            return;
        }
        obs.emit(RunEvent::StagnationReseed {
            restart: obs.restart(),
            step: self.clock.steps(),
            rounds,
            elapsed_secs: self.clock.elapsed().as_secs_f64(),
        });
    }

    /// `true` once the budget (or a cooperating cutoff) stops the run.
    #[inline]
    pub(crate) fn exhausted(&self) -> bool {
        self.clock.exhausted()
    }

    /// Steps recorded so far.
    #[inline]
    #[allow(dead_code)]
    pub(crate) fn steps(&self) -> u64 {
        self.clock.steps()
    }

    /// Time since the run started.
    #[inline]
    #[allow(dead_code)]
    pub(crate) fn elapsed(&self) -> Duration {
        self.clock.elapsed()
    }

    /// Fraction of the budget consumed (see
    /// [`BudgetClock::fraction_consumed`]).
    #[inline]
    pub(crate) fn fraction_consumed(&self) -> f64 {
        self.clock.fraction_consumed()
    }

    /// The run's observability handle.
    #[inline]
    pub(crate) fn obs(&self) -> &ObsHandle {
        self.clock.obs()
    }

    /// Mutable access to the counter block (restarts, local maxima, …).
    #[inline]
    pub(crate) fn stats_mut(&mut self) -> &mut RunStats {
        &mut self.stats
    }

    /// Split borrow of the node-access counter and the per-level
    /// attribution row of `var`, in the shape the leveled traversal
    /// kernels increment. The two live in disjoint `RunStats` fields, so
    /// both can be handed out mutably at once.
    #[inline]
    pub(crate) fn tally(&mut self, var: mwsj_query::VarId) -> (&mut u64, &mut [u64]) {
        (
            &mut self.stats.node_accesses,
            self.stats.access_profile.levels_mut(var),
        )
    }

    /// Split borrow of the node-access counter and the whole attribution
    /// profile, for helpers that attribute across several variables
    /// (ILS-seeded SEA initialisation).
    #[inline]
    pub(crate) fn access_mut(&mut self) -> (&mut u64, &mut crate::result::AccessProfile) {
        (
            &mut self.stats.node_accesses,
            &mut self.stats.access_profile,
        )
    }

    /// Violations of the incumbent, if one exists yet.
    #[inline]
    pub(crate) fn best_violations(&self) -> Option<usize> {
        self.incumbent.as_ref().map(|inc| inc.best_violations)
    }

    /// The branch-and-bound pruning bound: the incumbent's violations, or
    /// one more than the worst possible so any full solution beats it.
    #[inline]
    pub(crate) fn bound(&self) -> usize {
        self.best_violations().unwrap_or(self.edges + 1)
    }

    /// Offers `sol` to the incumbent (the shared move of the anytime
    /// heuristics): creations and strict improvements update the trace and
    /// top list, publish the portfolio bound and emit an improvement
    /// event. Returns `true` when the incumbent was created or improved.
    pub(crate) fn offer(&mut self, sol: &Solution, violations: usize) -> bool {
        let improved = match &mut self.incumbent {
            None => {
                self.incumbent = Some(Incumbent::new(
                    sol.clone(),
                    violations,
                    self.edges,
                    self.clock.elapsed(),
                    self.clock.steps(),
                ));
                self.clock.publish_bound(violations);
                crate::observe::emit_improvement(&self.clock, violations, self.edges);
                true
            }
            Some(inc) => {
                if inc.offer(
                    sol,
                    violations,
                    self.edges,
                    self.clock.elapsed(),
                    self.clock.steps(),
                ) {
                    self.stats.improvements += 1;
                    self.clock.publish_bound(violations);
                    crate::observe::emit_improvement(&self.clock, violations, self.edges);
                    true
                } else {
                    false
                }
            }
        };
        if improved {
            self.note_improvement();
        }
        improved
    }

    /// [`SearchDriver::offer`] without publishing the portfolio bound —
    /// the naive-GA baseline predates bound sharing and is kept
    /// bit-faithful to its published behaviour.
    ///
    /// # Panics
    /// Panics if no incumbent was seeded yet.
    pub(crate) fn offer_unpublished(&mut self, sol: &Solution, violations: usize) {
        let inc = self
            .incumbent
            .as_mut()
            .expect("offer_unpublished requires a seeded incumbent");
        if inc.offer(
            sol,
            violations,
            self.edges,
            self.clock.elapsed(),
            self.clock.steps(),
        ) {
            self.stats.improvements += 1;
            crate::observe::emit_improvement(&self.clock, inc.best_violations, self.edges);
            self.note_improvement();
        }
    }

    /// Installs an initial incumbent **silently**: trace point and top-list
    /// entry, but no improvement event and no bound publication. Used for
    /// seeds that are given, not found (IBB's heuristic bound, naive-GA's
    /// first population member).
    pub(crate) fn seed_incumbent(&mut self, sol: &Solution, violations: usize) {
        debug_assert!(self.incumbent.is_none(), "incumbent already seeded");
        self.incumbent = Some(Incumbent::new(
            sol.clone(),
            violations,
            self.edges,
            self.clock.elapsed(),
            self.clock.steps(),
        ));
    }

    /// Records a full solution found by systematic search (IBB): strictly
    /// better than the bound by construction, counted as an improvement and
    /// emitted as one, but — matching IBB's published behaviour — without
    /// publishing a portfolio bound.
    pub(crate) fn record_best(&mut self, sol: &Solution, violations: usize) {
        match &mut self.incumbent {
            None => {
                let mut inc = Incumbent::new(
                    sol.clone(),
                    violations,
                    self.edges,
                    self.clock.elapsed(),
                    self.clock.steps(),
                );
                // The first *found* solution counts as an improvement
                // (unlike a given seed, which Incumbent::new records as 0).
                inc.improvements = 1;
                self.incumbent = Some(inc);
            }
            Some(inc) => {
                let improved = inc.offer(
                    sol,
                    violations,
                    self.edges,
                    self.clock.elapsed(),
                    self.clock.steps(),
                );
                debug_assert!(improved, "record_best requires a bound-beating solution");
            }
        }
        crate::observe::emit_improvement(&self.clock, violations, self.edges);
        self.note_improvement();
    }

    /// Finishes an anytime run: falls back to a random solution when the
    /// budget expired before any incumbent existed, freezes the counters,
    /// flushes them to the metrics registry, emits the stop-reason (and,
    /// for standalone runs, `run_end`) events and assembles the outcome.
    pub(crate) fn finish(self, instance: &Instance, rng: &mut StdRng) -> RunOutcome {
        let fallback = |clock: &BudgetClock, rng: &mut StdRng| {
            let sol = instance.random_solution(rng);
            let v = instance.violations(&sol);
            Incumbent::new(
                sol,
                v,
                instance.graph().edge_count(),
                clock.elapsed(),
                clock.steps(),
            )
        };
        let incumbent = match self.incumbent {
            Some(inc) => inc,
            None => fallback(&self.clock, rng),
        };
        Self::into_outcome(
            self.clock,
            self.stats,
            incumbent,
            self.edges,
            false,
            self.emit_end,
            instance,
        )
    }

    /// Finishes a systematic (IBB) run: `proven_optimal` is the caller's
    /// exhaustiveness verdict, and the no-incumbent fallback is the
    /// arbitrary all-zero assignment with an **empty** trace/top list (the
    /// run provably never found anything).
    pub(crate) fn finish_systematic(self, instance: &Instance, proven_optimal: bool) -> RunOutcome {
        let incumbent = self.incumbent.unwrap_or_else(|| {
            let sol = Solution::new(vec![0; instance.n_vars()]);
            let best_violations = instance.violations(&sol);
            Incumbent {
                best: sol,
                best_violations,
                improvements: 0,
                trace: Vec::new(),
                top: TopSolutions::new(DEFAULT_TOP_K),
            }
        });
        Self::into_outcome(
            self.clock,
            self.stats,
            incumbent,
            self.edges,
            proven_optimal,
            self.emit_end,
            instance,
        )
    }

    fn into_outcome(
        clock: BudgetClock,
        mut stats: RunStats,
        incumbent: Incumbent,
        edges: usize,
        proven_optimal: bool,
        emit_end: bool,
        instance: &Instance,
    ) -> RunOutcome {
        stats.elapsed = clock.elapsed();
        stats.steps = clock.steps();
        stats.improvements = incumbent.improvements;
        crate::observe::flush_stats(clock.obs(), &stats);
        clock.emit_stop_reason();
        let outcome = RunOutcome {
            best_similarity: 1.0 - incumbent.best_violations as f64 / edges as f64,
            best: incumbent.best,
            best_violations: incumbent.best_violations,
            stats,
            trace: incumbent.trace,
            proven_optimal,
            top_solutions: incumbent.top.into_vec(),
        };
        if emit_end {
            crate::observe::emit_explain_report(clock.obs(), instance, &outcome);
            crate::observe::emit_resource_report(clock.obs(), instance, &outcome);
            crate::observe::emit_run_end(clock.obs(), &outcome);
        }
        outcome
    }
}

/// An algorithm expressed as a *drive* function over a [`SearchDriver`]:
/// the driver owns the run-wide bookkeeping, the implementation encodes
/// only the search moves. Every implementor is an [`AnytimeSearch`] via
/// the blanket impl below.
pub(crate) trait DriveSearch: Sync {
    /// Display name (matches the paper's figures).
    const NAME: &'static str;
    /// Phase-timer span label of one run.
    const PHASE: &'static str;

    /// Runs the search moves until the driver reports exhaustion (or the
    /// algorithm decides to stop early).
    fn drive(&self, instance: &Instance, driver: &mut SearchDriver, rng: &mut StdRng);
}

/// Runs a [`DriveSearch`] under `ctx`: driver construction, phase span,
/// drive, finish.
pub(crate) fn run_driven<T: DriveSearch + ?Sized>(
    algo: &T,
    instance: &Instance,
    ctx: &SearchContext,
    rng: &mut StdRng,
) -> RunOutcome {
    let mut driver = SearchDriver::new(instance, ctx);
    let _phase = ctx.obs().timer.span(T::PHASE);
    algo.drive(instance, &mut driver, rng);
    driver.finish(instance, rng)
}

impl<T: DriveSearch> AnytimeSearch for T {
    fn name(&self) -> &'static str {
        T::NAME
    }

    fn search(&self, instance: &Instance, ctx: &SearchContext, rng: &mut StdRng) -> RunOutcome {
        run_driven(self, instance, ctx, rng)
    }
}
