//! End-to-end tests of the performance-trajectory tooling: `mwsj report`
//! on damaged metrics files, `mwsj bench snapshot`/`compare`, and the
//! `--profile-out` folded-stack export.

use mwsj_core::obs::{folded_root_totals, parse_folded};
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn mwsj() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mwsj"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mwsj_bench_obs_{name}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn generate(dir: &Path, name: &str, n: u32, seed: u64) -> PathBuf {
    let path = dir.join(name);
    let out = mwsj()
        .args([
            "generate",
            "--out",
            path.to_str().unwrap(),
            "--n",
            &n.to_string(),
            "--density",
            "0.3",
            "--seed",
            &seed.to_string(),
        ])
        .output()
        .expect("run mwsj generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    path
}

/// Runs a short seeded solve with `--metrics-out` and returns the metrics
/// file path.
fn solve_with_metrics(dir: &Path, extra: &[&str]) -> (PathBuf, Output) {
    let a = generate(dir, "a.csv", 200, 1);
    let b = generate(dir, "b.csv", 200, 2);
    let metrics = dir.join("run.jsonl");
    let mut cmd = mwsj();
    cmd.args([
        "solve",
        "--data",
        a.to_str().unwrap(),
        "--data",
        b.to_str().unwrap(),
        "--query",
        "chain",
        "--algo",
        "ils",
        "--iterations",
        "300",
        "--seed",
        "9",
        "--metrics-out",
        metrics.to_str().unwrap(),
    ]);
    cmd.args(extra);
    let out = cmd.output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    (metrics, out)
}

fn report(path: &Path) -> Output {
    mwsj()
        .args(["report", path.to_str().unwrap()])
        .output()
        .unwrap()
}

#[test]
fn report_summarises_a_metrics_file() {
    let dir = temp_dir("report_ok");
    let (metrics, _) = solve_with_metrics(&dir, &[]);
    let out = report(&metrics);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("schema OK"), "{text}");
    assert!(text.contains("run: ils"), "{text}");
}

#[test]
fn report_rejects_empty_file() {
    let dir = temp_dir("report_empty");
    let path = dir.join("empty.jsonl");
    std::fs::write(&path, "").unwrap();
    let out = report(&path);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("empty metrics file"), "{err}");

    // Whitespace-only counts as empty too.
    std::fs::write(&path, "\n\n  \n").unwrap();
    let out = report(&path);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("empty metrics file"), "{err}");
}

#[test]
fn report_rejects_truncated_file() {
    let dir = temp_dir("report_trunc");
    let (metrics, _) = solve_with_metrics(&dir, &[]);
    let text = std::fs::read_to_string(&metrics).unwrap();
    // Cut the file a few bytes into a line near the middle, leaving a
    // partial final record (the JSONL events are ASCII, so a byte offset
    // is a char boundary).
    let line_start = text[..text.len() / 2].rfind('\n').unwrap() + 1;
    let truncated = &text[..line_start + 5];
    assert!(!truncated.ends_with('\n'));
    let path = dir.join("truncated.jsonl");
    std::fs::write(&path, truncated).unwrap();
    let out = report(&path);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("appears truncated"), "{err}");
}

#[test]
fn report_rejects_trailing_partial_line() {
    let dir = temp_dir("report_partial");
    let (metrics, _) = solve_with_metrics(&dir, &[]);
    let mut text = std::fs::read_to_string(&metrics).unwrap();
    // A writer killed mid-append leaves a valid file plus a partial line.
    text.push_str("{\"event\":\"improvem");
    let path = dir.join("partial.jsonl");
    std::fs::write(&path, &text).unwrap();
    let out = report(&path);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("appears truncated"), "{err}");
}

#[test]
fn profile_out_writes_parseable_folded_stacks() {
    let dir = temp_dir("profile");
    let profile = dir.join("solve.folded");
    let (_, out) = solve_with_metrics(&dir, &["--profile-out", profile.to_str().unwrap()]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("wrote phase profile"), "{text}");

    let folded = std::fs::read_to_string(&profile).unwrap();
    let stacks = parse_folded(&folded).expect("folded output must round-trip");
    assert!(
        !stacks.is_empty(),
        "profile should contain phases:\n{folded}"
    );
    let roots = folded_root_totals(&stacks);
    assert!(roots.contains_key("ils"), "roots: {roots:?}");
    // The solve ran 300 steps; its root phase must have measurable time.
    assert!(roots["ils"] > 0, "roots: {roots:?}");
}

#[test]
fn profile_out_works_without_metrics_out_and_with_portfolio() {
    let dir = temp_dir("profile_portfolio");
    let a = generate(&dir, "a.csv", 200, 3);
    let b = generate(&dir, "b.csv", 200, 4);
    let profile = dir.join("portfolio.folded");
    let out = mwsj()
        .args([
            "solve",
            "--data",
            a.to_str().unwrap(),
            "--data",
            b.to_str().unwrap(),
            "--query",
            "chain",
            "--algo",
            "ils",
            "--iterations",
            "200",
            "--restarts",
            "2",
            "--threads",
            "1",
            "--profile-out",
            profile.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let folded = std::fs::read_to_string(&profile).unwrap();
    let stacks = parse_folded(&folded).unwrap();
    let roots = folded_root_totals(&stacks);
    // Portfolio profiles are rooted at the per-restart spans.
    assert!(
        roots.keys().any(|r| r.starts_with("restart[")),
        "roots: {roots:?}"
    );
}

#[test]
fn report_renders_resource_report_as_memory_table() {
    let dir = temp_dir("report_memory");
    let (metrics, _) = solve_with_metrics(&dir, &[]);
    let out = report(&metrics);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("memory:"), "{text}");
    // One rects/rtree/flat_leaves row per variable, plus the totals line.
    for component in [
        "rects.var000",
        "rtree.var001",
        "flat_leaves.var000",
        "total",
    ] {
        assert!(text.contains(component), "missing {component}:\n{text}");
    }
    assert!(text.contains("bytes"), "{text}");
}

#[test]
fn flight_recorder_out_writes_schema_valid_jsonl() {
    let dir = temp_dir("flight");
    let flight = dir.join("flight.jsonl");
    let (metrics, out) =
        solve_with_metrics(&dir, &["--flight-recorder-out", flight.to_str().unwrap()]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("flight recorder"), "{text}");

    // The recorded ring is itself a valid metrics file; with a 64 KiB
    // budget and a short run it holds the complete event stream, so it
    // reports identically to the JSONL sink's file.
    let out = report(&flight);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let flight_text = std::fs::read_to_string(&flight).unwrap();
    let metrics_text = std::fs::read_to_string(&metrics).unwrap();
    assert_eq!(
        flight_text, metrics_text,
        "short-run flight recording must equal the full event stream"
    );
}

#[test]
fn flight_recorder_works_without_metrics_out() {
    let dir = temp_dir("flight_solo");
    let a = generate(&dir, "a.csv", 200, 5);
    let b = generate(&dir, "b.csv", 200, 6);
    let flight = dir.join("flight.jsonl");
    let out = mwsj()
        .args([
            "solve",
            "--data",
            a.to_str().unwrap(),
            "--data",
            b.to_str().unwrap(),
            "--query",
            "chain",
            "--iterations",
            "200",
            "--flight-recorder-out",
            flight.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report_out = report(&flight);
    assert!(
        report_out.status.success(),
        "{}",
        String::from_utf8_lossy(&report_out.stderr)
    );
    let text = String::from_utf8_lossy(&report_out.stdout);
    assert!(text.contains("schema OK"), "{text}");
    assert!(text.contains("memory:"), "{text}");
}

#[test]
fn bench_snapshot_then_compare_passes_and_detects_tampering() {
    let dir = temp_dir("bench_roundtrip");
    let snap = dir.join("BENCH_t1.json");
    let out = mwsj()
        .args([
            "bench",
            "snapshot",
            "--label",
            "t1",
            "--reps",
            "1",
            "--out",
            snap.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("wrote benchmark snapshot"), "{text}");
    let body = std::fs::read_to_string(&snap).unwrap();
    assert!(body.contains("mwsj-bench-snapshot"), "format discriminator");

    // A snapshot compared against itself passes: counters are identical
    // and the wall ratio is exactly 1.0.
    let out = mwsj()
        .args([
            "bench",
            "compare",
            snap.to_str().unwrap(),
            snap.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("result: PASS"), "{text}");

    // Perturb every node_accesses counter: the gate must fail loudly.
    let tampered_body = body.replace("\"node_accesses\": ", "\"node_accesses\": 9");
    assert_ne!(tampered_body, body, "tamper must change the snapshot");
    let tampered = dir.join("BENCH_t2.json");
    std::fs::write(&tampered, tampered_body).unwrap();
    let out = mwsj()
        .args([
            "bench",
            "compare",
            snap.to_str().unwrap(),
            tampered.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success(), "tampered compare must fail");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("FAIL"), "{text}");
    assert!(text.contains("node_accesses"), "{text}");

    // A wider wall tolerance must not excuse counter drift.
    let out = mwsj()
        .args([
            "bench",
            "compare",
            snap.to_str().unwrap(),
            tampered.to_str().unwrap(),
            "--wall-tolerance",
            "10",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn bench_compare_rejects_damaged_snapshots() {
    let dir = temp_dir("bench_damaged");
    let empty = dir.join("empty.json");
    std::fs::write(&empty, "").unwrap();
    let out = mwsj()
        .args([
            "bench",
            "compare",
            empty.to_str().unwrap(),
            empty.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("empty snapshot file"), "{err}");

    let cut = dir.join("cut.json");
    std::fs::write(
        &cut,
        "{\n  \"format\": \"mwsj-bench-snapshot\",\n  \"version\": 1,\n  \"label\": \"x",
    )
    .unwrap();
    let out = mwsj()
        .args([
            "bench",
            "compare",
            cut.to_str().unwrap(),
            cut.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("appears truncated"), "{err}");
}

#[test]
fn bench_rejects_unknown_subcommand_and_bad_arity() {
    let out = mwsj().args(["bench", "frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown bench subcommand"));

    let out = mwsj().args(["bench"]).output().unwrap();
    assert!(!out.status.success());

    let out = mwsj()
        .args(["bench", "compare", "only-one.json"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

/// A sparse dataset (density 0.002): joins over these have no exact
/// solution in a clique, so heuristic runs exhaust their full step budget.
fn generate_sparse(dir: &Path, name: &str, seed: u64) -> PathBuf {
    let path = dir.join(name);
    let out = mwsj()
        .args([
            "generate",
            "--out",
            path.to_str().unwrap(),
            "--n",
            "400",
            "--density",
            "0.002",
            "--seed",
            &seed.to_string(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    path
}

/// Runs `mwsj explain` over the three-dataset chain and returns stdout.
fn explain(dir: &Path, extra: &[&str]) -> String {
    let a = generate(dir, "ea.csv", 200, 11);
    let b = generate(dir, "eb.csv", 200, 12);
    let c = generate(dir, "ec.csv", 200, 13);
    let mut cmd = mwsj();
    cmd.args([
        "explain",
        "--data",
        a.to_str().unwrap(),
        "--data",
        b.to_str().unwrap(),
        "--data",
        c.to_str().unwrap(),
        "--query",
        "chain",
    ]);
    cmd.args(extra);
    let out = cmd.output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn explain_is_byte_stable_and_estimate_only() {
    let dir = temp_dir("explain_stable");
    let first = explain(&dir, &[]);
    let second = explain(&dir, &[]);
    assert_eq!(first, second, "explain output must be byte-stable");
    assert!(first.contains("explain: acyclic model"), "{first}");
    assert!(
        first.contains("estimated vs observed selectivity"),
        "{first}"
    );
    // N=200 per dataset is far under the pair budget: both chain edges
    // carry exact observed selectivities and an error factor column.
    assert!(first.contains("intersects"), "{first}");
    assert!(first.contains('x'), "error factor column:\n{first}");
    assert!(first.contains("predicted accesses/query"), "{first}");
    assert!(first.contains("per level (leaf->root): fill"), "{first}");
    // No run happened: the observed-traversal block must be absent.
    assert!(!first.contains("observed node accesses"), "{first}");
}

#[test]
fn explain_metrics_out_is_schema_valid_and_report_renders_it() {
    let dir = temp_dir("explain_metrics");
    let est = dir.join("est.jsonl");
    let stdout = explain(&dir, &["--metrics-out", est.to_str().unwrap()]);
    assert!(stdout.contains("wrote explain report"), "{stdout}");

    let line = std::fs::read_to_string(&est).unwrap();
    assert!(line.contains("\"event\":\"explain_report\""), "{line}");

    let out = report(&est);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("1 events, schema OK"), "{text}");
    assert!(text.contains("explain: acyclic model"), "{text}");
    assert!(text.contains("estimated vs observed selectivity"), "{text}");
}

#[test]
fn solve_metrics_carry_explain_report_with_actuals() {
    let dir = temp_dir("explain_actuals");
    // Sparse datasets admit no exact solution, so the solver runs its
    // whole step budget: the stream is progress-heavy, with heartbeats
    // interleaving the explain and resource reports, and the report must
    // summarise all of them.
    let a = generate_sparse(&dir, "sa.csv", 21);
    let b = generate_sparse(&dir, "sb.csv", 22);
    let c = generate_sparse(&dir, "sc.csv", 23);
    let metrics = dir.join("hard.jsonl");
    let out = mwsj()
        .args([
            "solve",
            "--data",
            a.to_str().unwrap(),
            "--data",
            b.to_str().unwrap(),
            "--data",
            c.to_str().unwrap(),
            "--query",
            "clique",
            "--algo",
            "ils",
            "--iterations",
            "600",
            "--seed",
            "9",
            "--progress-every",
            "100",
            "--metrics-out",
            metrics.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&metrics).unwrap();
    assert!(text.contains("\"event\":\"progress\""), "{text}");
    assert!(text.contains("\"event\":\"explain_report\""), "{text}");

    let out = report(&metrics);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let summary = String::from_utf8_lossy(&out.stdout);
    assert!(summary.contains("schema OK"), "{summary}");
    assert!(summary.contains("explain: clique model"), "{summary}");
    // The run attached the observed side: the per-variable attribution of
    // the shared node-access counter renders under the estimate table.
    assert!(summary.contains("observed node accesses"), "{summary}");
    assert!(summary.contains("per level, leaf->root:"), "{summary}");
    assert!(summary.contains("progress heartbeats"), "{summary}");
}

#[test]
fn report_renders_snapshot_explain_summary() {
    let dir = temp_dir("snapshot_explain");
    let snap = dir.join("BENCH_e.json");
    let out = mwsj()
        .args([
            "bench",
            "snapshot",
            "--label",
            "e",
            "--reps",
            "1",
            "--out",
            snap.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let body = std::fs::read_to_string(&snap).unwrap();
    assert!(body.contains("\"explain\""), "{body}");

    let out = report(&snap);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("explain:"), "{text}");
    assert!(text.contains("worst edge estimate error"), "{text}");
}
