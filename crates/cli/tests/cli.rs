//! End-to-end tests of the `mwsj` binary: generate → inspect → solve →
//! join over real files and processes.

use std::path::PathBuf;
use std::process::Command;

fn mwsj() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mwsj"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mwsj_cli_{name}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn generate(dir: &std::path::Path, name: &str, n: u32, density: f64, seed: u64) -> PathBuf {
    let path = dir.join(name);
    let out = mwsj()
        .args([
            "generate",
            "--out",
            path.to_str().unwrap(),
            "--n",
            &n.to_string(),
            "--density",
            &density.to_string(),
            "--seed",
            &seed.to_string(),
        ])
        .output()
        .expect("run mwsj generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    path
}

#[test]
fn help_runs() {
    let out = mwsj().output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn unknown_command_fails() {
    let out = mwsj().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn generate_then_info() {
    let dir = temp_dir("info");
    let path = generate(&dir, "a.csv", 500, 0.1, 1);
    let out = mwsj()
        .args(["info", "--data", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("500 objects"), "{text}");
}

#[test]
fn solve_chain_with_ils() {
    let dir = temp_dir("solve");
    let a = generate(&dir, "a.csv", 400, 0.3, 1);
    let b = generate(&dir, "b.csv", 400, 0.3, 2);
    let c = generate(&dir, "c.csv", 400, 0.3, 3);
    let out = mwsj()
        .args([
            "solve",
            "--data",
            a.to_str().unwrap(),
            "--data",
            b.to_str().unwrap(),
            "--data",
            c.to_str().unwrap(),
            "--query",
            "chain",
            "--algo",
            "ils",
            "--iterations",
            "500",
            "--top",
            "3",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("best solution"), "{text}");
    assert!(text.contains("top"), "{text}");
}

#[test]
fn solve_rejects_bad_query() {
    let dir = temp_dir("badquery");
    let a = generate(&dir, "a.csv", 50, 0.1, 1);
    let out = mwsj()
        .args(["solve", "--data", a.to_str().unwrap(), "--query", "0-0"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn exact_join_counts_solutions() {
    let dir = temp_dir("join");
    let a = generate(&dir, "a.csv", 100, 0.8, 4);
    let b = generate(&dir, "b.csv", 100, 0.8, 5);
    let out = mwsj()
        .args([
            "join",
            "--data",
            a.to_str().unwrap(),
            "--data",
            b.to_str().unwrap(),
            "--query",
            "0-1",
            "--algo",
            "wr",
            "--limit",
            "10",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("exact solutions"), "{text}");
}

#[test]
fn hard_density_prints_formula_result() {
    let out = mwsj()
        .args([
            "hard-density",
            "--shape",
            "chain",
            "--vars",
            "5",
            "--n",
            "100000",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    // d = 1/(4·⁴√100000) ≈ 0.014
    assert!(text.contains("0.014"), "{text}");
}

#[test]
fn solve_with_mixed_predicates_via_edge_list() {
    let dir = temp_dir("mixed");
    let a = generate(&dir, "a.csv", 200, 0.9, 6);
    let b = generate(&dir, "b.csv", 200, 0.01, 7);
    let out = mwsj()
        .args([
            "solve",
            "--data",
            a.to_str().unwrap(),
            "--data",
            b.to_str().unwrap(),
            "--query",
            "0-1:contains",
            "--algo",
            "gils",
            "--iterations",
            "300",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
