//! End-to-end tests of the `mwsj` binary: generate → inspect → solve →
//! join over real files and processes.

use std::path::PathBuf;
use std::process::Command;

fn mwsj() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mwsj"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mwsj_cli_{name}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn generate(dir: &std::path::Path, name: &str, n: u32, density: f64, seed: u64) -> PathBuf {
    let path = dir.join(name);
    let out = mwsj()
        .args([
            "generate",
            "--out",
            path.to_str().unwrap(),
            "--n",
            &n.to_string(),
            "--density",
            &density.to_string(),
            "--seed",
            &seed.to_string(),
        ])
        .output()
        .expect("run mwsj generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    path
}

#[test]
fn help_runs() {
    let out = mwsj().output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn unknown_command_fails() {
    let out = mwsj().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn generate_then_info() {
    let dir = temp_dir("info");
    let path = generate(&dir, "a.csv", 500, 0.1, 1);
    let out = mwsj()
        .args(["info", "--data", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("500 objects"), "{text}");
}

#[test]
fn solve_chain_with_ils() {
    let dir = temp_dir("solve");
    let a = generate(&dir, "a.csv", 400, 0.3, 1);
    let b = generate(&dir, "b.csv", 400, 0.3, 2);
    let c = generate(&dir, "c.csv", 400, 0.3, 3);
    let out = mwsj()
        .args([
            "solve",
            "--data",
            a.to_str().unwrap(),
            "--data",
            b.to_str().unwrap(),
            "--data",
            c.to_str().unwrap(),
            "--query",
            "chain",
            "--algo",
            "ils",
            "--iterations",
            "500",
            "--top",
            "3",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("best solution"), "{text}");
    assert!(text.contains("top"), "{text}");
}

#[test]
fn solve_rejects_bad_query() {
    let dir = temp_dir("badquery");
    let a = generate(&dir, "a.csv", 50, 0.1, 1);
    let out = mwsj()
        .args(["solve", "--data", a.to_str().unwrap(), "--query", "0-0"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn exact_join_counts_solutions() {
    let dir = temp_dir("join");
    let a = generate(&dir, "a.csv", 100, 0.8, 4);
    let b = generate(&dir, "b.csv", 100, 0.8, 5);
    let out = mwsj()
        .args([
            "join",
            "--data",
            a.to_str().unwrap(),
            "--data",
            b.to_str().unwrap(),
            "--query",
            "0-1",
            "--algo",
            "wr",
            "--limit",
            "10",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("exact solutions"), "{text}");
}

#[test]
fn hard_density_prints_formula_result() {
    let out = mwsj()
        .args([
            "hard-density",
            "--shape",
            "chain",
            "--vars",
            "5",
            "--n",
            "100000",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    // d = 1/(4·⁴√100000) ≈ 0.014
    assert!(text.contains("0.014"), "{text}");
}

/// Three sparse clique datasets: no exact solution exists, so heuristics
/// run their full step budget — progress heartbeats and stalls happen.
fn hard_trio(dir: &std::path::Path) -> [PathBuf; 3] {
    [
        generate(dir, "ha.csv", 400, 0.002, 11),
        generate(dir, "hb.csv", 400, 0.002, 12),
        generate(dir, "hc.csv", 400, 0.002, 13),
    ]
}

#[test]
fn follow_streams_progress_events_live() {
    let dir = temp_dir("follow");
    let [a, b, c] = hard_trio(&dir);
    let metrics = dir.join("run.jsonl");
    let out = mwsj()
        .args([
            "solve",
            "--data",
            a.to_str().unwrap(),
            "--data",
            b.to_str().unwrap(),
            "--data",
            c.to_str().unwrap(),
            "--query",
            "clique",
            "--iterations",
            "2000",
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--follow",
            "--progress-every",
            "100",
            "--stall-steps",
            "400",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&metrics).unwrap();
    let progress = text
        .lines()
        .filter(|l| l.contains("\"event\":\"progress\""))
        .count();
    assert_eq!(progress, 2000 / 100, "one heartbeat per cadence slot");
    // The stream must satisfy the documented schema end to end.
    let report = mwsj()
        .args(["report", metrics.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        report.status.success(),
        "{}",
        String::from_utf8_lossy(&report.stderr)
    );
    let summary = String::from_utf8_lossy(&report.stdout);
    assert!(summary.contains("schema OK"), "{summary}");
    assert!(summary.contains("progress heartbeats"), "{summary}");
}

#[test]
fn stall_abort_stops_a_hopeless_run_early() {
    let dir = temp_dir("stallabort");
    let [a, b, c] = hard_trio(&dir);
    let metrics = dir.join("abort.jsonl");
    let out = mwsj()
        .args([
            "solve",
            "--data",
            a.to_str().unwrap(),
            "--data",
            b.to_str().unwrap(),
            "--data",
            c.to_str().unwrap(),
            "--query",
            "clique",
            "--iterations",
            "500000",
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--stall-steps",
            "500",
            "--stall-abort",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&metrics).unwrap();
    assert!(
        text.contains("\"event\":\"stall_detected\""),
        "detection precedes the abort"
    );
    assert!(
        text.contains("\"event\":\"stall_aborted\""),
        "the distinct stop reason is recorded"
    );
    assert!(
        !text.contains("\"event\":\"budget_exhausted\""),
        "the 500k budget was never reached"
    );
}

#[test]
fn watch_tails_a_finished_run_and_exits_cleanly() {
    let dir = temp_dir("watch");
    let [a, b, c] = hard_trio(&dir);
    let metrics = dir.join("watched.jsonl");
    let out = mwsj()
        .args([
            "solve",
            "--data",
            a.to_str().unwrap(),
            "--data",
            b.to_str().unwrap(),
            "--data",
            c.to_str().unwrap(),
            "--query",
            "clique",
            "--iterations",
            "1000",
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--follow",
            "--progress-every",
            "100",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let watch = mwsj()
        .args([
            "watch",
            metrics.to_str().unwrap(),
            "--no-tty",
            "--timeout-secs",
            "30",
        ])
        .output()
        .unwrap();
    assert!(
        watch.status.success(),
        "{}",
        String::from_utf8_lossy(&watch.stderr)
    );
    let text = String::from_utf8_lossy(&watch.stdout);
    assert!(text.contains("run_start"), "{text}");
    assert!(text.contains("progress step="), "{text}");
    assert!(text.contains("run_end"), "{text}");
}

#[test]
fn watch_times_out_without_a_run_end() {
    let dir = temp_dir("watchtimeout");
    let orphan = dir.join("orphan.jsonl");
    std::fs::write(&orphan, "").unwrap();
    let watch = mwsj()
        .args([
            "watch",
            orphan.to_str().unwrap(),
            "--no-tty",
            "--poll-ms",
            "10",
            "--timeout-secs",
            "1",
        ])
        .output()
        .unwrap();
    assert!(!watch.status.success());
    assert!(
        String::from_utf8_lossy(&watch.stderr).contains("no run_end"),
        "{}",
        String::from_utf8_lossy(&watch.stderr)
    );
}

#[test]
fn telemetry_flags_are_validated() {
    let dir = temp_dir("telemval");
    let a = generate(&dir, "a.csv", 50, 0.1, 1);
    let fr = dir.join("fr.jsonl");
    let run = |extra: &[&str]| {
        let out = mwsj()
            .args(["solve", "--data", a.to_str().unwrap(), "--data"])
            .arg(a.to_str().unwrap())
            .args(["--query", "0-1", "--iterations", "10"])
            .args(extra)
            .output()
            .unwrap();
        assert!(!out.status.success(), "expected {extra:?} to be rejected");
        String::from_utf8_lossy(&out.stderr).into_owned()
    };
    assert!(run(&["--follow"]).contains("--follow needs --metrics-out"));
    assert!(run(&["--progress-every", "10"]).contains("needs --metrics-out"));
    assert!(run(&["--stall-abort"]).contains("needs a stall window"));
    assert!(run(&[
        "--flight-recorder-bytes",
        "100",
        "--flight-recorder-out",
        fr.to_str().unwrap(),
    ])
    .contains("at least 4096"));
    assert!(run(&["--flight-recorder-bytes", "8192"]).contains("needs --flight-recorder-out"));
}

#[test]
fn solve_with_mixed_predicates_via_edge_list() {
    let dir = temp_dir("mixed");
    let a = generate(&dir, "a.csv", 200, 0.9, 6);
    let b = generate(&dir, "b.csv", 200, 0.01, 7);
    let out = mwsj()
        .args([
            "solve",
            "--data",
            a.to_str().unwrap(),
            "--data",
            b.to_str().unwrap(),
            "--query",
            "0-1:contains",
            "--algo",
            "gils",
            "--iterations",
            "300",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
