//! Minimal dependency-free argument parsing for the `mwsj` binary.

use std::collections::HashMap;
use std::fmt;

/// A parsed command line: subcommand, positional arguments,
/// `--key value` options (repeatable) and `--flag` switches.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: Option<String>,
    /// Positional arguments after the subcommand, in order (e.g. the file
    /// in `mwsj report run.jsonl`, or the two snapshots in `mwsj bench
    /// compare A B`). Commands validate their own arity.
    pub positionals: Vec<String>,
    options: HashMap<String, Vec<String>>,
    flags: Vec<String>,
}

/// Errors produced while parsing or validating arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// `--key` given without a value where one is required.
    MissingValue(String),
    /// A required option is absent.
    MissingOption(String),
    /// An option value failed to parse.
    BadValue {
        /// The option name.
        option: String,
        /// The raw value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
    /// Unexpected free-standing argument.
    UnexpectedArgument(String),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingValue(k) => write!(f, "option --{k} needs a value"),
            ArgError::MissingOption(k) => write!(f, "required option --{k} is missing"),
            ArgError::BadValue {
                option,
                value,
                expected,
            } => write!(f, "--{option} {value}: expected {expected}"),
            ArgError::UnexpectedArgument(a) => write!(f, "unexpected argument '{a}'"),
        }
    }
}

impl std::error::Error for ArgError {}

/// Options that take a value (everything else after `--` is a flag).
const VALUE_OPTIONS: &[&str] = &[
    "out",
    "n",
    "density",
    "distribution",
    "seed",
    "data",
    "query",
    "algo",
    "backend",
    "grid-threads",
    "seconds",
    "iterations",
    "top",
    "limit",
    "lambda",
    "target",
    "shape",
    "vars",
    "threads",
    "restarts",
    "metrics-out",
    "trace-out",
    "profile-out",
    "flight-recorder-out",
    "flight-recorder-bytes",
    "progress-every",
    "stall-steps",
    "stall-secs",
    "poll-ms",
    "timeout-secs",
    "label",
    "reps",
    "tier",
    "wall-tolerance",
    "wall-slack-ms",
];

impl Args {
    /// Parses an iterator of arguments (excluding the program name).
    pub fn parse<I: IntoIterator<Item = String>>(items: I) -> Result<Args, ArgError> {
        let mut args = Args::default();
        let mut iter = items.into_iter().peekable();
        while let Some(item) = iter.next() {
            if let Some(rest) = item.strip_prefix("--") {
                if let Some((k, v)) = rest.split_once('=') {
                    // `--key=value` form.
                    if VALUE_OPTIONS.contains(&k) {
                        args.options
                            .entry(k.to_string())
                            .or_default()
                            .push(v.to_string());
                    } else {
                        return Err(ArgError::UnexpectedArgument(format!("--{rest}")));
                    }
                } else if VALUE_OPTIONS.contains(&rest) {
                    // `--key value` form.
                    match iter.next() {
                        Some(v) if !v.starts_with("--") => {
                            args.options.entry(rest.to_string()).or_default().push(v)
                        }
                        _ => return Err(ArgError::MissingValue(rest.to_string())),
                    }
                } else {
                    args.flags.push(rest.to_string());
                }
            } else if args.command.is_none() {
                args.command = Some(item);
            } else {
                args.positionals.push(item);
            }
        }
        Ok(args)
    }

    /// All values given for a repeatable option.
    pub fn values(&self, key: &str) -> &[String] {
        self.options.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The single value of an option, if present.
    pub fn value(&self, key: &str) -> Option<&str> {
        self.options
            .get(key)
            .and_then(|v| v.first())
            .map(String::as_str)
    }

    /// The single value of a required option.
    pub fn required(&self, key: &str) -> Result<&str, ArgError> {
        self.value(key)
            .ok_or_else(|| ArgError::MissingOption(key.to_string()))
    }

    /// Parses an option into `T`, with a default when absent.
    pub fn parse_or<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        match self.value(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                option: key.to_string(),
                value: v.to_string(),
                expected,
            }),
        }
    }

    /// The first positional argument, for single-argument commands.
    pub fn arg(&self) -> Option<&str> {
        self.positionals.first().map(String::as_str)
    }

    /// Whether a boolean flag was given.
    #[allow(dead_code)] // part of the parser API; exercised by tests
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, ArgError> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_and_options() {
        let a = parse("solve --algo ils --seconds 2.5 --verbose").unwrap();
        assert_eq!(a.command.as_deref(), Some("solve"));
        assert_eq!(a.value("algo"), Some("ils"));
        assert_eq!(a.value("seconds"), Some("2.5"));
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn repeatable_options_accumulate() {
        let a = parse("solve --data a.csv --data b.csv --data c.csv").unwrap();
        assert_eq!(a.values("data"), &["a.csv", "b.csv", "c.csv"]);
    }

    #[test]
    fn equals_syntax() {
        let a = parse("generate --n=100 --density=0.5").unwrap();
        assert_eq!(a.value("n"), Some("100"));
        assert_eq!(a.value("density"), Some("0.5"));
    }

    #[test]
    fn missing_value_is_an_error() {
        assert_eq!(
            parse("solve --algo").unwrap_err(),
            ArgError::MissingValue("algo".into())
        );
        assert_eq!(
            parse("solve --algo --seconds 1").unwrap_err(),
            ArgError::MissingValue("algo".into())
        );
    }

    #[test]
    fn single_positional_is_captured() {
        let a = parse("report run.jsonl").unwrap();
        assert_eq!(a.command.as_deref(), Some("report"));
        assert_eq!(a.arg(), Some("run.jsonl"));
    }

    #[test]
    fn multiple_positionals_are_kept_in_order() {
        let a = parse(
            "bench compare BENCH_baseline.json BENCH_ci.json --wall-tolerance 0.5 --wall-slack-ms 0",
        )
        .unwrap();
        assert_eq!(a.command.as_deref(), Some("bench"));
        assert_eq!(
            a.positionals,
            vec!["compare", "BENCH_baseline.json", "BENCH_ci.json"]
        );
        assert_eq!(a.arg(), Some("compare"));
        assert_eq!(a.value("wall-tolerance"), Some("0.5"));
        assert_eq!(a.value("wall-slack-ms"), Some("0"));
    }

    #[test]
    fn tier_takes_a_value() {
        let a = parse("bench snapshot --tier large --reps 1").unwrap();
        assert_eq!(a.value("tier"), Some("large"));
        assert_eq!(a.value("reps"), Some("1"));
        assert!(a.positionals.len() == 1, "{:?}", a.positionals);
    }

    #[test]
    fn required_and_parse_or() {
        let a = parse("generate --n 50").unwrap();
        assert_eq!(a.required("n").unwrap(), "50");
        assert!(matches!(
            a.required("density"),
            Err(ArgError::MissingOption(_))
        ));
        assert_eq!(a.parse_or("n", 0usize, "an integer").unwrap(), 50);
        assert_eq!(a.parse_or("seed", 7u64, "an integer").unwrap(), 7);
        let bad = parse("generate --n x").unwrap();
        assert!(matches!(
            bad.parse_or("n", 0usize, "an integer"),
            Err(ArgError::BadValue { .. })
        ));
    }

    #[test]
    fn unknown_equals_flag_is_rejected() {
        assert!(matches!(
            parse("solve --bogus=1"),
            Err(ArgError::UnexpectedArgument(_))
        ));
    }
}
