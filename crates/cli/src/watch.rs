//! `mwsj watch` — tail a live metrics JSONL file (written by `mwsj solve
//! --follow`) and render the run's progress as it happens.
//!
//! The watcher polls the file by byte offset, consuming only *complete*
//! lines (the writer flushes per event, so a complete line is a complete
//! JSON object), and keeps one status row per portfolio restart. On a TTY
//! the status block is redrawn in place; with `--no-tty` (or when stdout
//! is not a terminal) every update is one plain line, suitable for CI
//! logs. The watcher exits successfully when the run's `run_end` event
//! arrives, and fails after `--timeout-secs` without one.

use crate::args::Args;
use mwsj_core::obs::Json;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{IsTerminal, Read, Seek, SeekFrom, Write};
use std::time::{Duration, Instant};

/// Key for the untagged (non-portfolio) status row.
const NO_RESTART: u64 = u64::MAX;

pub fn cmd_watch(args: &Args) -> Result<(), String> {
    let path = args
        .arg()
        .ok_or("usage: mwsj watch FILE [--poll-ms MS] [--timeout-secs S] [--no-tty]")?;
    if let Some(extra) = args.positionals.get(1) {
        return Err(format!(
            "unexpected argument '{extra}' (mwsj watch takes exactly one file)"
        ));
    }
    let poll_ms: u64 = args
        .parse_or("poll-ms", 50, "a poll interval in milliseconds")
        .map_err(|e| e.to_string())?;
    let timeout_secs: f64 = args
        .parse_or("timeout-secs", 600.0, "a timeout in seconds")
        .map_err(|e| e.to_string())?;
    if !timeout_secs.is_finite() || timeout_secs <= 0.0 {
        return Err("--timeout-secs must be a positive number of seconds".into());
    }
    let plain = args.flag("no-tty") || !std::io::stdout().is_terminal();
    watch_file(
        path,
        Duration::from_millis(poll_ms.max(1)),
        Duration::from_secs_f64(timeout_secs),
        plain,
    )
}

fn watch_file(path: &str, poll: Duration, timeout: Duration, plain: bool) -> Result<(), String> {
    let start = Instant::now();
    let mut offset: u64 = 0;
    let mut pending = String::new();
    let mut view = View::default();
    let mut drawn_lines = 0usize;
    let stdout = std::io::stdout();

    loop {
        match read_appended(path, &mut offset)? {
            // Tolerate the race with the writer: watch may start before
            // solve has created the file.
            None => {}
            Some(chunk) => pending.push_str(&chunk),
        }
        let mut updated = false;
        while let Some(nl) = pending.find('\n') {
            let line: String = pending.drain(..=nl).collect();
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            for log in view.ingest(line, path)? {
                if plain {
                    // A closed downstream pipe (e.g. `mwsj watch | head`)
                    // just means nobody is reading any more: stop quietly.
                    let mut out = stdout.lock();
                    if writeln!(out, "{log}").is_err() {
                        return Ok(());
                    }
                }
            }
            updated = true;
        }
        if !plain && updated {
            let block = view.render(path);
            let mut out = stdout.lock();
            // Redraw in place: climb back over the previous block, then
            // overwrite it line by line (\x1b[K clears each stale tail).
            if drawn_lines > 0 {
                let _ = write!(out, "\x1b[{drawn_lines}A");
            }
            for line in &block {
                let _ = writeln!(out, "\x1b[K{line}");
            }
            let _ = out.flush();
            drawn_lines = block.len();
        }
        if view.done {
            return Ok(());
        }
        if start.elapsed() > timeout {
            return Err(format!(
                "{path}: no run_end after {:.0}s — the run is still going (raise \
                 --timeout-secs) or was interrupted",
                timeout.as_secs_f64()
            ));
        }
        std::thread::sleep(poll);
    }
}

/// Reads everything appended to `path` since `offset`, advancing it.
/// Returns `None` while the file does not exist yet.
fn read_appended(path: &str, offset: &mut u64) -> Result<Option<String>, String> {
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("{path}: {e}")),
    };
    let len = file.metadata().map_err(|e| format!("{path}: {e}"))?.len();
    if len < *offset {
        // Truncated or replaced under us: start over from the top.
        *offset = 0;
    }
    if len == *offset {
        return Ok(Some(String::new()));
    }
    file.seek(SeekFrom::Start(*offset))
        .map_err(|e| format!("{path}: {e}"))?;
    let mut buf = Vec::with_capacity((len - *offset) as usize);
    file.take(len - *offset)
        .read_to_end(&mut buf)
        .map_err(|e| format!("{path}: {e}"))?;
    *offset += buf.len() as u64;
    Ok(Some(String::from_utf8_lossy(&buf).into_owned()))
}

/// Latest progress of one restart (or of the whole run when untagged).
#[derive(Debug, Default, Clone)]
struct Row {
    step: u64,
    steps_per_sec: f64,
    similarity: Option<f64>,
    violations: Option<u64>,
    node_accesses: u64,
    stalled: bool,
    finished: bool,
}

/// Accumulated state of the run being watched.
#[derive(Debug, Default)]
struct View {
    header: Option<String>,
    rows: BTreeMap<u64, Row>,
    improvements: u64,
    stalls: u64,
    aborts: u64,
    reseeds: u64,
    stop: Option<&'static str>,
    final_line: Option<String>,
    done: bool,
}

impl View {
    /// Folds one JSONL event line into the view; returns the plain-mode
    /// log lines it produced.
    fn ingest(&mut self, line: &str, path: &str) -> Result<Vec<String>, String> {
        let ev = Json::parse(line).map_err(|e| format!("{path}: {e}"))?;
        let kind = ev.get("event").and_then(Json::as_str).unwrap_or("");
        let restart = ev.get("restart").and_then(Json::as_u64);
        let row_key = restart.unwrap_or(NO_RESTART);
        let mut logs = Vec::new();
        match kind {
            "run_start" => {
                let algo = ev.get("algo").and_then(Json::as_str).unwrap_or("?");
                let n_vars = ev.get("n_vars").and_then(Json::as_u64).unwrap_or(0);
                let edges = ev.get("edges").and_then(Json::as_u64).unwrap_or(0);
                let seed = ev.get("seed").and_then(Json::as_u64).unwrap_or(0);
                let restarts = ev.get("restarts").and_then(Json::as_u64).unwrap_or(1);
                let header = format!(
                    "{algo} on {n_vars} vars / {edges} edges, seed {seed}, {restarts} restart(s)"
                );
                logs.push(format!("run_start {header}"));
                self.header = Some(header);
            }
            "progress" => {
                let row = self.rows.entry(row_key).or_default();
                row.step = ev.get("step").and_then(Json::as_u64).unwrap_or(0);
                row.steps_per_sec = ev
                    .get("steps_per_sec")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0);
                row.similarity = ev.get("best_similarity").and_then(Json::as_f64);
                row.violations = ev.get("best_violations").and_then(Json::as_u64);
                row.node_accesses = ev.get("node_accesses").and_then(Json::as_u64).unwrap_or(0);
                row.stalled = false;
                logs.push(format!(
                    "progress{} step={} steps_per_sec={:.0} best_similarity={} node_accesses={}",
                    restart_tag(restart),
                    row.step,
                    row.steps_per_sec,
                    row.similarity
                        .map(|s| format!("{s:.3}"))
                        .unwrap_or_else(|| "-".into()),
                    row.node_accesses
                ));
            }
            "improvement" => self.improvements += 1,
            "stall_detected" => {
                self.stalls += 1;
                self.rows.entry(row_key).or_default().stalled = true;
                let since = ev
                    .get("steps_since_improvement")
                    .and_then(Json::as_u64)
                    .unwrap_or(0);
                logs.push(format!(
                    "stall_detected{} steps_since_improvement={since}",
                    restart_tag(restart)
                ));
            }
            "stall_aborted" => {
                self.aborts += 1;
                self.stop = Some("stall_aborted");
                logs.push(format!("stall_aborted{}", restart_tag(restart)));
            }
            "stagnation_reseed" => self.reseeds += 1,
            "budget_exhausted" => self.stop = Some("budget_exhausted"),
            "cutoff_fired" => self.stop = Some("cutoff_fired"),
            "restart_end" => {
                self.rows.entry(row_key).or_default().finished = true;
            }
            "run_end" => {
                let similarity = ev
                    .get("best_similarity")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0);
                let steps = ev.get("steps").and_then(Json::as_u64).unwrap_or(0);
                let secs = ev.get("elapsed_secs").and_then(Json::as_f64).unwrap_or(0.0);
                let final_line = format!(
                    "run_end best_similarity={similarity:.3} steps={steps} elapsed={secs:.3}s{}",
                    self.stop.map(|s| format!(" stop={s}")).unwrap_or_default()
                );
                logs.push(final_line.clone());
                self.final_line = Some(final_line);
                self.done = true;
            }
            _ => {}
        }
        Ok(logs)
    }

    /// The TTY status block, redrawn in place on every update.
    fn render(&self, path: &str) -> Vec<String> {
        let mut lines = Vec::new();
        match &self.header {
            Some(h) => lines.push(format!("watching {path} — {h}")),
            None => lines.push(format!("watching {path} — waiting for run_start")),
        }
        for (key, row) in &self.rows {
            let label = if *key == NO_RESTART {
                "run        ".to_string()
            } else {
                format!("restart {key:<3}")
            };
            let state = if row.finished {
                " [done]"
            } else if row.stalled {
                " [stalled]"
            } else {
                ""
            };
            lines.push(format!(
                "  {label} step {:>8} ({:>7.0}/s)  best {} ({} violations)  {} node accesses{state}",
                row.step,
                row.steps_per_sec,
                row.similarity
                    .map(|s| format!("{s:.3}"))
                    .unwrap_or_else(|| "-".into()),
                row.violations
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "-".into()),
                row.node_accesses
            ));
        }
        lines.push(format!(
            "  {} improvements · {} stalls · {} aborts · {} reseeds",
            self.improvements, self.stalls, self.aborts, self.reseeds
        ));
        if let Some(final_line) = &self.final_line {
            lines.push(final_line.clone());
        }
        lines
    }
}

fn restart_tag(restart: Option<u64>) -> String {
    restart.map(|r| format!(" restart={r}")).unwrap_or_default()
}
