//! Parsing query specifications from the command line.
//!
//! A query is either a named shape (`chain`, `clique`, `cycle`, `star`)
//! sized by the number of datasets, or an explicit edge list like
//! `"0-1,1-2,2-0"` with optional predicates: `"0-1:intersects,0-2:contains,
//! 1-2:within:0.05"`.

use mwsj_geom::Predicate;
use mwsj_query::{QueryGraph, QueryGraphBuilder};
use std::fmt;

/// Errors raised when parsing a `--query` value.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::enum_variant_names)] // Bad* reads naturally for parse errors
pub enum QuerySpecError {
    /// Edge not of the form `a-b[:predicate]`.
    BadEdge(String),
    /// Unknown predicate name.
    BadPredicate(String),
    /// The built graph was rejected (self-loop, duplicate, range…).
    BadGraph(String),
}

impl fmt::Display for QuerySpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuerySpecError::BadEdge(e) => write!(f, "bad edge '{e}' (expected a-b[:pred])"),
            QuerySpecError::BadPredicate(p) => write!(
                f,
                "unknown predicate '{p}' (intersects|contains|inside|northeast|southwest|within:<eps>)"
            ),
            QuerySpecError::BadGraph(m) => write!(f, "invalid query graph: {m}"),
        }
    }
}

impl std::error::Error for QuerySpecError {}

/// Builds a query graph from a `--query` string over `n_vars` datasets.
pub fn parse_query(spec: &str, n_vars: usize) -> Result<QueryGraph, QuerySpecError> {
    // The shape constructors assert their minimum size; turn an
    // undersized `--data` list into a parse error instead of a panic.
    let need = |min: usize| {
        if n_vars < min {
            Err(QuerySpecError::BadGraph(format!(
                "a {spec} query needs at least {min} datasets, got {n_vars}"
            )))
        } else {
            Ok(())
        }
    };
    match spec {
        "chain" => need(2).map(|()| QueryGraph::chain(n_vars)),
        "clique" => need(2).map(|()| QueryGraph::clique(n_vars)),
        "cycle" => need(3).map(|()| QueryGraph::cycle(n_vars)),
        "star" => need(2).map(|()| QueryGraph::star(n_vars)),
        edges => parse_edge_list(edges, n_vars),
    }
}

fn parse_edge_list(spec: &str, n_vars: usize) -> Result<QueryGraph, QuerySpecError> {
    let mut builder = QueryGraphBuilder::new(n_vars);
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let mut pieces = part.splitn(2, ':');
        let pair = pieces.next().expect("split yields at least one piece");
        let pred = match pieces.next() {
            None => Predicate::Intersects,
            Some(p) => parse_predicate(p)?,
        };
        let (a, b) = pair
            .split_once('-')
            .ok_or_else(|| QuerySpecError::BadEdge(part.to_string()))?;
        let a: usize = a
            .trim()
            .parse()
            .map_err(|_| QuerySpecError::BadEdge(part.to_string()))?;
        let b: usize = b
            .trim()
            .parse()
            .map_err(|_| QuerySpecError::BadEdge(part.to_string()))?;
        builder = builder.edge_with(a, b, pred);
    }
    builder
        .build()
        .map_err(|e| QuerySpecError::BadGraph(e.to_string()))
}

fn parse_predicate(spec: &str) -> Result<Predicate, QuerySpecError> {
    match spec {
        "intersects" | "overlap" => Ok(Predicate::Intersects),
        "contains" => Ok(Predicate::Contains),
        "inside" => Ok(Predicate::Inside),
        "northeast" | "ne" => Ok(Predicate::NorthEast),
        "southwest" | "sw" => Ok(Predicate::SouthWest),
        other => {
            if let Some(eps) = other.strip_prefix("within:") {
                let eps: f64 = eps
                    .parse()
                    .map_err(|_| QuerySpecError::BadPredicate(other.to_string()))?;
                Ok(Predicate::WithinDistance(eps))
            } else {
                Err(QuerySpecError::BadPredicate(other.to_string()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_shapes() {
        assert_eq!(parse_query("chain", 4).unwrap().edge_count(), 3);
        assert_eq!(parse_query("clique", 4).unwrap().edge_count(), 6);
        assert_eq!(parse_query("cycle", 4).unwrap().edge_count(), 4);
        assert_eq!(parse_query("star", 4).unwrap().edge_count(), 3);
    }

    #[test]
    fn named_shapes_reject_undersized_variable_counts() {
        for spec in ["chain", "clique", "star"] {
            assert!(matches!(
                parse_query(spec, 1),
                Err(QuerySpecError::BadGraph(_))
            ));
            assert!(parse_query(spec, 2).is_ok());
        }
        assert!(matches!(
            parse_query("cycle", 2),
            Err(QuerySpecError::BadGraph(_))
        ));
        assert!(parse_query("cycle", 3).is_ok());
    }

    #[test]
    fn edge_lists_with_predicates() {
        let g = parse_query("0-1,1-2:contains,0-2:within:0.1", 3).unwrap();
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.predicate_between(1, 2), Some(Predicate::Contains));
        assert_eq!(g.predicate_between(2, 1), Some(Predicate::Inside));
        assert_eq!(
            g.predicate_between(0, 2),
            Some(Predicate::WithinDistance(0.1))
        );
    }

    #[test]
    fn rejects_malformed_edges() {
        assert!(matches!(
            parse_query("01", 3),
            Err(QuerySpecError::BadEdge(_))
        ));
        assert!(matches!(
            parse_query("a-b", 3),
            Err(QuerySpecError::BadEdge(_))
        ));
        assert!(matches!(
            parse_query("0-1:sideways", 3),
            Err(QuerySpecError::BadPredicate(_))
        ));
        assert!(matches!(
            parse_query("0-0", 3),
            Err(QuerySpecError::BadGraph(_))
        ));
        assert!(matches!(
            parse_query("0-7", 3),
            Err(QuerySpecError::BadGraph(_))
        ));
    }

    #[test]
    fn within_requires_numeric_epsilon() {
        assert!(matches!(
            parse_query("0-1:within:big", 2),
            Err(QuerySpecError::BadPredicate(_))
        ));
    }
}
