//! `mwsj` — command-line multiway spatial join processing.
//!
//! ```text
//! mwsj generate --out rivers.csv --n 10000 --density 0.05 [--distribution uniform|clustered|skewed] [--seed 1]
//! mwsj info     --data rivers.csv
//! mwsj solve    --data a.csv --data b.csv --data c.csv --query chain
//!               [--algo ils|gils|sea|sea-hybrid|ibb|two-step] [--seconds 2] [--iterations N]
//!               [--seed 42] [--top 5] [--restarts K] [--threads T]
//! mwsj join     --data a.csv --data b.csv --query 0-1 [--algo wr|st|pjm] [--limit 100]
//! mwsj hard-density --shape chain|clique|star|cycle --vars 5 --n 100000 [--target 1]
//! ```
//!
//! Datasets are CSV files of `min_x,min_y,max_x,max_y` rows (see
//! `mwsj-datagen`); `generate` produces them synthetically.

mod args;
mod query_spec;

use args::Args;
use mwsj_core::{
    AnytimeSearch, Gils, GilsConfig, Ibb, IbbConfig, Ils, IlsConfig, Instance, ParallelPortfolio,
    Pjm, PortfolioConfig, RunOutcome, Sea, SeaConfig, SearchBudget, SynchronousTraversal, TwoStep,
    TwoStepConfig, WindowReduction,
};
use mwsj_datagen::{Dataset, DatasetSpec, Distribution, QueryShape};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.command.as_deref() {
        Some("generate") => cmd_generate(&args),
        Some("info") => cmd_info(&args),
        Some("solve") => cmd_solve(&args),
        Some("join") => cmd_join(&args),
        Some("hard-density") => cmd_hard_density(&args),
        Some("help") | None => {
            print!("{}", HELP);
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}' (try 'mwsj help')")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const HELP: &str = "\
mwsj — approximate multiway spatial join processing (EDBT 2002)

USAGE:
  mwsj generate --out FILE --n N --density D [--distribution uniform|clustered|skewed] [--seed S]
  mwsj info --data FILE
  mwsj solve --data FILE... --query SPEC [--algo ils|gils|sea|sea-hybrid|ibb|two-step]
             [--seconds S | --iterations I] [--seed S] [--top K]
             [--restarts K] [--threads T]   parallel portfolio of K seeded restarts
                                            (heuristics only; T=0 -> all cores)
  mwsj join --data FILE... --query SPEC [--algo wr|st|pjm] [--limit K] [--seconds S]
  mwsj hard-density --shape chain|clique|star|cycle --vars N --n CARD [--target SOL]

QUERY SPECS:
  chain | clique | cycle | star            sized by the number of --data files
  \"0-1,1-2:contains,0-2:within:0.05\"       explicit edges with optional predicates
";

fn load_datasets(args: &Args) -> Result<Vec<Dataset>, String> {
    let paths = args.values("data");
    if paths.is_empty() {
        return Err("at least one --data FILE is required".into());
    }
    paths
        .iter()
        .map(|p| Dataset::read_csv_file(p).map_err(|e| format!("{p}: {e}")))
        .collect()
}

fn budget_from(args: &Args) -> Result<SearchBudget, String> {
    let seconds: f64 = args
        .parse_or("seconds", 0.0, "a number of seconds")
        .map_err(|e| e.to_string())?;
    let iterations: u64 = args
        .parse_or("iterations", 0, "an iteration count")
        .map_err(|e| e.to_string())?;
    Ok(match (seconds > 0.0, iterations > 0) {
        (true, true) => SearchBudget::time_and_iterations(
            std::time::Duration::from_secs_f64(seconds),
            iterations,
        ),
        (false, true) => SearchBudget::iterations(iterations),
        // Default: 2 seconds.
        (true, false) => SearchBudget::seconds(seconds),
        (false, false) => SearchBudget::seconds(2.0),
    })
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let out = args.required("out").map_err(|e| e.to_string())?.to_string();
    let n: usize = args
        .parse_or("n", 10_000, "an object count")
        .map_err(|e| e.to_string())?;
    let density: f64 = args
        .parse_or("density", 0.05, "a density")
        .map_err(|e| e.to_string())?;
    let seed: u64 = args
        .parse_or("seed", 0, "a seed")
        .map_err(|e| e.to_string())?;
    let distribution = match args.value("distribution").unwrap_or("uniform") {
        "uniform" => Distribution::Uniform,
        "clustered" => Distribution::Clustered {
            clusters: 9,
            sigma: 0.03,
        },
        "skewed" => Distribution::Skewed { exponent: 2.0 },
        other => return Err(format!("unknown distribution '{other}'")),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let ds = DatasetSpec {
        cardinality: n,
        density,
        distribution,
        constant_extent: false,
    }
    .generate(&mut rng);
    ds.write_csv_file(&out).map_err(|e| e.to_string())?;
    println!("wrote {n} objects (density {density}) to {out}");
    Ok(())
}

fn cmd_info(args: &Args) -> Result<(), String> {
    for path in args.values("data") {
        let ds = Dataset::read_csv_file(path).map_err(|e| format!("{path}: {e}"))?;
        let bbox = ds
            .rects()
            .iter()
            .fold(mwsj_geom::Rect::EMPTY, |acc, r| acc.union(r));
        println!(
            "{path}: {} objects, realized density {:.4}, bbox {}",
            ds.len(),
            ds.realized_density(),
            bbox
        );
    }
    if args.values("data").is_empty() {
        return Err("at least one --data FILE is required".into());
    }
    Ok(())
}

fn cmd_solve(args: &Args) -> Result<(), String> {
    let datasets = load_datasets(args)?;
    let n_vars = datasets.len();
    let query = args.required("query").map_err(|e| e.to_string())?;
    let graph = query_spec::parse_query(query, n_vars).map_err(|e| e.to_string())?;
    let instance = Instance::new(graph, datasets).map_err(|e| e.to_string())?;
    let budget = budget_from(args)?;
    let seed: u64 = args
        .parse_or("seed", 42, "a seed")
        .map_err(|e| e.to_string())?;
    let top: usize = args
        .parse_or("top", 1, "a count")
        .map_err(|e| e.to_string())?;
    let restarts: usize = args
        .parse_or("restarts", 1, "a restart count")
        .map_err(|e| e.to_string())?;
    let threads: usize = args
        .parse_or("threads", 0, "a thread count")
        .map_err(|e| e.to_string())?;
    if restarts == 0 {
        return Err("--restarts must be at least 1".into());
    }
    let mut rng = StdRng::seed_from_u64(seed);

    let algo = args.value("algo").unwrap_or("ils");
    let portfolio = restarts > 1;
    let outcome: RunOutcome = match algo {
        "ils" if portfolio => run_portfolio(
            Ils::new(IlsConfig::default()),
            &instance,
            &budget,
            seed,
            restarts,
            threads,
        ),
        "gils" if portfolio => run_portfolio(
            Gils::new(GilsConfig::default()),
            &instance,
            &budget,
            seed,
            restarts,
            threads,
        ),
        "sea" if portfolio => run_portfolio(
            Sea::new(SeaConfig::default_for(&instance)),
            &instance,
            &budget,
            seed,
            restarts,
            threads,
        ),
        "sea-hybrid" if portfolio => run_portfolio(
            Sea::new(SeaConfig::default_for(&instance).with_ils_seeding()),
            &instance,
            &budget,
            seed,
            restarts,
            threads,
        ),
        "ils" => Ils::new(IlsConfig::default()).run(&instance, &budget, &mut rng),
        "gils" => Gils::new(GilsConfig::default()).run(&instance, &budget, &mut rng),
        "sea" => Sea::new(SeaConfig::default_for(&instance)).run(&instance, &budget, &mut rng),
        "sea-hybrid" => Sea::new(SeaConfig::default_for(&instance).with_ils_seeding())
            .run(&instance, &budget, &mut rng),
        "ibb" | "two-step" if portfolio => {
            return Err(format!(
                "--restarts applies to the anytime heuristics, not '{algo}'"
            ))
        }
        "ibb" => Ibb::new(IbbConfig::new()).run(&instance, &budget),
        "two-step" => {
            let heuristic_budget = SearchBudget::seconds(0.5);
            let two = TwoStep::new(TwoStepConfig::Ils(IlsConfig::default(), heuristic_budget));
            let out = two.run(&instance, &budget, &mut rng);
            out.best
        }
        other => return Err(format!("unknown algorithm '{other}'")),
    };

    println!(
        "best solution: {} (similarity {:.3}, {} of {} conditions violated{})",
        outcome.best,
        outcome.best_similarity,
        outcome.best_violations,
        instance.graph().edge_count(),
        if outcome.proven_optimal {
            ", proven optimal"
        } else {
            ""
        }
    );
    println!(
        "stats: {:?} elapsed, {} steps, {} node accesses, {} local maxima",
        outcome.stats.elapsed,
        outcome.stats.steps,
        outcome.stats.node_accesses,
        outcome.stats.local_maxima
    );
    if top > 1 {
        println!(
            "top {} distinct solutions:",
            top.min(outcome.top_solutions.len())
        );
        for (rank, (sol, violations)) in outcome.top_solutions.iter().take(top).enumerate() {
            println!("  {:>2}. {} ({} violations)", rank + 1, sol, violations);
        }
    }
    Ok(())
}

fn run_portfolio<A: AnytimeSearch>(
    algo: A,
    instance: &Instance,
    budget: &SearchBudget,
    master_seed: u64,
    restarts: usize,
    threads: usize,
) -> RunOutcome {
    let portfolio = ParallelPortfolio::new(algo, PortfolioConfig::new(restarts, threads));
    let outcome = portfolio.run(instance, budget, master_seed);
    println!(
        "portfolio: {} restarts on {} thread{} (per-restart best: {})",
        outcome.restarts.len(),
        outcome.threads_used,
        if outcome.threads_used == 1 { "" } else { "s" },
        outcome
            .restarts
            .iter()
            .map(|r| r.outcome.best_violations.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    outcome.merged
}

fn cmd_join(args: &Args) -> Result<(), String> {
    let datasets = load_datasets(args)?;
    let n_vars = datasets.len();
    let query = args.required("query").map_err(|e| e.to_string())?;
    let graph = query_spec::parse_query(query, n_vars).map_err(|e| e.to_string())?;
    let instance = Instance::new(graph, datasets).map_err(|e| e.to_string())?;
    let budget = match budget_from(args)? {
        // Exact joins default to a generous budget.
        b if b == SearchBudget::seconds(2.0) => SearchBudget::seconds(60.0),
        b => b,
    };
    let limit: usize = args
        .parse_or("limit", 100, "a solution limit")
        .map_err(|e| e.to_string())?;

    let algo = args.value("algo").unwrap_or("wr");
    let outcome = match algo {
        "wr" => WindowReduction::new().run(&instance, &budget, limit),
        "st" => SynchronousTraversal::new().run(&instance, &budget, limit),
        "pjm" => Pjm::default().run(&instance, &budget, limit),
        other => return Err(format!("unknown exact algorithm '{other}'")),
    };

    println!(
        "{} exact solutions{} in {:?} ({} node accesses)",
        outcome.solutions.len(),
        if outcome.complete { "" } else { " (truncated)" },
        outcome.stats.elapsed,
        outcome.stats.node_accesses
    );
    for sol in outcome.solutions.iter().take(limit) {
        println!("  {sol}");
    }
    Ok(())
}

fn cmd_hard_density(args: &Args) -> Result<(), String> {
    let shape = match args.required("shape").map_err(|e| e.to_string())? {
        "chain" => QueryShape::Chain,
        "clique" => QueryShape::Clique,
        "star" => QueryShape::Star,
        "cycle" => QueryShape::Cycle,
        other => return Err(format!("unknown shape '{other}'")),
    };
    let vars: usize = args
        .parse_or("vars", 5, "a variable count")
        .map_err(|e| e.to_string())?;
    let n: usize = args
        .parse_or("n", 100_000, "a cardinality")
        .map_err(|e| e.to_string())?;
    let target: f64 = args
        .parse_or("target", 1.0, "a solution count")
        .map_err(|e| e.to_string())?;
    let d = mwsj_datagen::hard_region_density(shape, vars, n, target);
    println!(
        "{} query over {vars} datasets of {n} objects: density {d:.6} gives E[solutions] = {target}",
        shape.name()
    );
    println!(
        "(average per-axis extent |r| = {:.6})",
        mwsj_datagen::extent_for_density(n, d)
    );
    Ok(())
}
