//! `mwsj` — command-line multiway spatial join processing.
//!
//! ```text
//! mwsj generate --out rivers.csv --n 10000 --density 0.05 [--distribution uniform|clustered|skewed|zipf] [--seed 1]
//! mwsj info     --data rivers.csv
//! mwsj solve    --data a.csv --data b.csv --data c.csv --query chain
//!               [--algo ils|gils|sea|sea-hybrid|ibb|two-step] [--seconds 2] [--iterations N]
//!               [--seed 42] [--top 5] [--restarts K] [--threads T]
//!               [--backend rtree|grid] [--grid-threads T]
//! mwsj join     --data a.csv --data b.csv --query 0-1 [--algo wr|st|pjm] [--limit 100]
//!               [--backend rtree|grid] [--grid-threads T]
//! mwsj explain  --data a.csv --data b.csv --query chain [--backend rtree|grid] [--metrics-out est.jsonl]
//! mwsj report   run.jsonl|BENCH_label.json
//! mwsj watch    run.jsonl [--poll-ms 50] [--timeout-secs 600] [--no-tty]
//! mwsj bench    snapshot [--tier base|large] [--label ci] [--reps 3] [--out FILE]
//! mwsj bench    compare BENCH_baseline.json BENCH_ci.json [--wall-tolerance 0.25] [--wall-slack-ms 5.0]
//! mwsj hard-density --shape chain|clique|star|cycle|random --vars 5 --n 100000 [--target 1]
//! ```
//!
//! Datasets are CSV files of `min_x,min_y,max_x,max_y` rows (see
//! `mwsj-datagen`); `generate` produces them synthetically. `solve` and
//! `join` accept `--metrics-out FILE` (structured JSONL run events, see
//! `DESIGN.md` "Observability") and `solve` additionally `--trace-out
//! FILE` (the convergence trace as `trace_point` lines), `--profile-out
//! FILE` (the per-phase wall-clock breakdown as folded stacks) and
//! `--flight-recorder-out FILE` (a byte-bounded ring of the most recent
//! run events, drained after the run — see `DESIGN.md` "Resource
//! observability"); `report` validates and summarises a JSONL file. `bench
//! snapshot` runs the pinned benchmark suite into a schema-validated
//! `BENCH_<label>.json` performance snapshot, and `bench compare` is the
//! noise-aware regression gate over two such snapshots.

mod args;
mod query_spec;
mod watch;

use args::Args;
use mwsj_core::obs::{
    compare, schema, to_folded, BenchSnapshot, CompareConfig, ExplainReport, Json, PhaseSnapshot,
    DEFAULT_WALL_SLACK_MS, DEFAULT_WALL_TOLERANCE,
};
use mwsj_core::{
    AnytimeSearch, BackendKind, EventSink, FanoutSink, FlightRecorder, FlushPolicy, Gils,
    GilsConfig, Ibb, IbbConfig, Ils, IlsConfig, Instance, JsonlSink, ObsHandle, ParallelPortfolio,
    Pjm, PortfolioConfig, RunEvent, RunOutcome, Sea, SeaConfig, SearchBudget, SearchContext,
    SynchronousTraversal, TelemetryConfig, TwoStep, TwoStepConfig, WindowReduction,
};
use mwsj_datagen::{Dataset, DatasetSpec, Distribution, QueryShape};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.command.as_deref() {
        Some("generate") => cmd_generate(&args),
        Some("info") => cmd_info(&args),
        Some("solve") => cmd_solve(&args),
        Some("explain") => cmd_explain(&args),
        Some("join") => cmd_join(&args),
        Some("report") => cmd_report(&args),
        Some("watch") => watch::cmd_watch(&args),
        Some("bench") => cmd_bench(&args),
        Some("hard-density") => cmd_hard_density(&args),
        Some("help") | None => {
            print!("{}", HELP);
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}' (try 'mwsj help')")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const HELP: &str = "\
mwsj — approximate multiway spatial join processing (EDBT 2002)

USAGE:
  mwsj generate --out FILE --n N --density D [--distribution uniform|clustered|skewed|zipf] [--seed S]
  mwsj info --data FILE
  mwsj solve --data FILE... --query SPEC [--algo ils|gils|sea|sea-hybrid|ibb|two-step]
             [--seconds S | --iterations I] [--seed S] [--top K]
             [--restarts K] [--threads T]   parallel portfolio of K seeded restarts
                                            (heuristics only; T=0 -> all cores)
             [--backend rtree|grid]         spatial index backend: R*-trees (default) or a
                                            PBSM-style uniform grid (identical results,
                                            different cost profile; see mwsj explain)
             [--grid-threads T]             fan grid queries over T threads (grid backend
                                            only; results are bit-identical for any T)
             [--metrics-out FILE]           structured JSONL run events + metrics
             [--trace-out FILE]             convergence trace as JSONL trace points
             [--profile-out FILE]           per-phase wall-clock profile (folded stacks,
                                            flamegraph-ready)
             [--flight-recorder-out FILE]   byte-bounded ring of the most recent run
                                            events, drained to JSONL after the run
             [--flight-recorder-bytes N]    ring byte budget (default 65536, min 4096)
             [--progress-every N]           emit a 'progress' heartbeat event every N
                                            steps (requires --metrics-out)
             [--stall-steps N | --stall-secs S]
                                            watchdog: emit 'stall_detected' after N steps
                                            (or S seconds) without improvement
             [--stall-abort]                stop a stalled run via the cutoff machinery
                                            (stop reason 'stall_aborted')
             [--follow]                     flush each event line immediately so the
                                            metrics file can be tailed live
  mwsj join --data FILE... --query SPEC [--algo wr|st|pjm] [--limit K] [--seconds S]
            [--backend rtree|grid] [--grid-threads T] [--metrics-out FILE]
  mwsj explain --data FILE... --query SPEC [--backend rtree|grid] [--metrics-out FILE]
                                            pre-run cost & selectivity report, no solving:
                                            per-edge selectivity estimates (with exact
                                            observed selectivities when the pair count is
                                            affordable), per-variable window hit rates,
                                            predicted node accesses per window query, and
                                            R*-tree structural quality per level (plus grid
                                            cell-occupancy stats and predicted scan cost
                                            with --backend grid); output is byte-stable
                                            for a fixed dataset. --metrics-out writes the
                                            same report as one schema-validated
                                            'explain_report' JSONL event
  mwsj report FILE                          validate + summarise a metrics JSONL file
                                            (or a BENCH_*.json bench snapshot)
  mwsj watch FILE [--poll-ms MS] [--timeout-secs S] [--no-tty]
                                            tail a live metrics JSONL file (written with
                                            solve --follow): in-place status view on a
                                            TTY, one line per update with --no-tty;
                                            exits when the run ends
  mwsj bench snapshot [--tier base|large] [--label L] [--reps N] [--out FILE]
                                            run a pinned suite tier (ILS/GILS/SEA/two-step)
                                            into BENCH_<L>.json: anytime curves, quality AUC,
                                            time-to-tau, counters, phase timings. base = n=4
                                            toy scale; large = paper scale (N>=10k, n<=10,
                                            all shapes, plus an ILS entry-layout A/B record)
  mwsj bench compare BASELINE CANDIDATE [--wall-tolerance T] [--wall-slack-ms S]
                                            regression gate: deterministic counters must match
                                            exactly, wall medians within tolerance (default +25%
                                            or +5ms absolute, whichever is larger)
  mwsj hard-density --shape chain|clique|star|cycle|random --vars N --n CARD [--target SOL]

QUERY SPECS:
  chain | clique | cycle | star            sized by the number of --data files
  \"0-1,1-2:contains,0-2:within:0.05\"       explicit edges with optional predicates
";

fn load_datasets(args: &Args) -> Result<Vec<Dataset>, String> {
    let paths = args.values("data");
    if paths.is_empty() {
        return Err("at least one --data FILE is required".into());
    }
    paths
        .iter()
        .map(|p| Dataset::read_csv_file(p).map_err(|e| format!("{p}: {e}")))
        .collect()
}

fn budget_from(args: &Args) -> Result<SearchBudget, String> {
    let seconds: f64 = args
        .parse_or("seconds", 0.0, "a number of seconds")
        .map_err(|e| e.to_string())?;
    let iterations: u64 = args
        .parse_or("iterations", 0, "an iteration count")
        .map_err(|e| e.to_string())?;
    Ok(match (seconds > 0.0, iterations > 0) {
        (true, true) => SearchBudget::time_and_iterations(
            std::time::Duration::from_secs_f64(seconds),
            iterations,
        ),
        (false, true) => SearchBudget::iterations(iterations),
        // Default: 2 seconds.
        (true, false) => SearchBudget::seconds(seconds),
        (false, false) => SearchBudget::seconds(2.0),
    })
}

/// Applies `--backend rtree|grid` and `--grid-threads N` to a freshly
/// built instance — shared by `solve`, `join` and `explain`.
fn apply_backend(args: &Args, instance: Instance) -> Result<Instance, String> {
    let backend = match args.value("backend") {
        None => BackendKind::RTree,
        Some(name) => BackendKind::parse(name)
            .ok_or_else(|| format!("unknown backend '{name}' (expected rtree|grid)"))?,
    };
    let grid_threads: usize = args
        .parse_or("grid-threads", 1, "a thread count")
        .map_err(|e| e.to_string())?;
    if args.value("grid-threads").is_some() && backend != BackendKind::Grid {
        return Err("--grid-threads needs --backend grid".into());
    }
    Ok(instance
        .with_backend(backend)
        .with_grid_threads(grid_threads))
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let out = args.required("out").map_err(|e| e.to_string())?.to_string();
    let n: usize = args
        .parse_or("n", 10_000, "an object count")
        .map_err(|e| e.to_string())?;
    let density: f64 = args
        .parse_or("density", 0.05, "a density")
        .map_err(|e| e.to_string())?;
    let seed: u64 = args
        .parse_or("seed", 0, "a seed")
        .map_err(|e| e.to_string())?;
    let distribution = match args.value("distribution").unwrap_or("uniform") {
        "uniform" => Distribution::Uniform,
        "clustered" => Distribution::Clustered {
            clusters: 9,
            sigma: 0.03,
        },
        "skewed" => Distribution::Skewed { exponent: 2.0 },
        "zipf" => Distribution::ZipfClustered {
            clusters: 16,
            sigma: 0.02,
            exponent: 1.1,
        },
        other => return Err(format!("unknown distribution '{other}'")),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let ds = DatasetSpec {
        cardinality: n,
        density,
        distribution,
        constant_extent: false,
    }
    .generate(&mut rng);
    ds.write_csv_file(&out).map_err(|e| e.to_string())?;
    println!("wrote {n} objects (density {density}) to {out}");
    Ok(())
}

fn cmd_info(args: &Args) -> Result<(), String> {
    for path in args.values("data") {
        let ds = Dataset::read_csv_file(path).map_err(|e| format!("{path}: {e}"))?;
        let bbox = ds
            .rects()
            .iter()
            .fold(mwsj_geom::Rect::EMPTY, |acc, r| acc.union(r));
        println!(
            "{path}: {} objects, realized density {:.4}, bbox {}",
            ds.len(),
            ds.realized_density(),
            bbox
        );
    }
    if args.values("data").is_empty() {
        return Err("at least one --data FILE is required".into());
    }
    Ok(())
}

fn cmd_solve(args: &Args) -> Result<(), String> {
    let datasets = load_datasets(args)?;
    let n_vars = datasets.len();
    let query = args.required("query").map_err(|e| e.to_string())?;
    let graph = query_spec::parse_query(query, n_vars).map_err(|e| e.to_string())?;
    let instance = apply_backend(
        args,
        Instance::new(graph, datasets).map_err(|e| e.to_string())?,
    )?;
    let budget = budget_from(args)?;
    let seed: u64 = args
        .parse_or("seed", 42, "a seed")
        .map_err(|e| e.to_string())?;
    let top: usize = args
        .parse_or("top", 1, "a count")
        .map_err(|e| e.to_string())?;
    let restarts: usize = args
        .parse_or("restarts", 1, "a restart count")
        .map_err(|e| e.to_string())?;
    let threads: usize = args
        .parse_or("threads", 0, "a thread count")
        .map_err(|e| e.to_string())?;
    if restarts == 0 {
        return Err("--restarts must be at least 1".into());
    }
    let mut rng = StdRng::seed_from_u64(seed);

    let algo = args.value("algo").unwrap_or("ils");
    let portfolio = restarts > 1;

    let metrics_path = args.value("metrics-out").map(str::to_string);
    let trace_path = args.value("trace-out").map(str::to_string);
    let profile_path = args.value("profile-out").map(str::to_string);
    let flight_path = args.value("flight-recorder-out").map(str::to_string);

    // Live telemetry: progress heartbeats and the stall watchdog.
    let progress_every: u64 = args
        .parse_or("progress-every", 0, "a step count")
        .map_err(|e| e.to_string())?;
    let stall_steps: u64 = args
        .parse_or("stall-steps", 0, "a step count")
        .map_err(|e| e.to_string())?;
    let stall_secs: f64 = args
        .parse_or("stall-secs", 0.0, "a number of seconds")
        .map_err(|e| e.to_string())?;
    let stall_abort = args.flag("stall-abort");
    if stall_abort && stall_steps == 0 && stall_secs <= 0.0 {
        return Err(
            "--stall-abort needs a stall window (--stall-steps N or --stall-secs S)".into(),
        );
    }
    let telemetry = TelemetryConfig {
        progress_every: (progress_every > 0).then_some(progress_every),
        stall_window_steps: (stall_steps > 0).then_some(stall_steps),
        stall_window_secs: (stall_secs > 0.0).then_some(stall_secs),
        stall_abort,
    };
    if telemetry.progress_every.is_some() && metrics_path.is_none() {
        return Err("--progress-every needs --metrics-out FILE to stream to".into());
    }
    // `--follow` streams each event line the moment it happens (per-event
    // flush) so `mwsj watch FILE` can tail the run live.
    let follow = args.flag("follow");
    if follow && metrics_path.is_none() {
        return Err("--follow needs --metrics-out FILE to stream to".into());
    }
    let flush_policy = if follow {
        FlushPolicy::PerEvent
    } else {
        FlushPolicy::Buffered
    };

    // The flight recorder rides alongside any JSONL sink (or alone): a
    // byte-bounded ring of the most recent run events, drained after the
    // run (see DESIGN.md "Resource observability").
    let recorder_bytes: u64 = args
        .parse_or(
            "flight-recorder-bytes",
            mwsj_core::DEFAULT_FLIGHT_RECORDER_BYTES as u64,
            "a byte budget",
        )
        .map_err(|e| e.to_string())?;
    if recorder_bytes < 4096 {
        return Err(format!(
            "--flight-recorder-bytes {recorder_bytes}: the ring needs at least 4096 bytes \
             to hold a useful event window"
        ));
    }
    if args.value("flight-recorder-bytes").is_some() && flight_path.is_none() {
        return Err("--flight-recorder-bytes needs --flight-recorder-out FILE".into());
    }
    let recorder = flight_path
        .as_ref()
        .map(|_| Arc::new(FlightRecorder::with_capacity_bytes(recorder_bytes as usize)));
    let obs = match (&metrics_path, &recorder) {
        (Some(path), recorder) => {
            let sink =
                JsonlSink::create_with(path, flush_policy).map_err(|e| format!("{path}: {e}"))?;
            match recorder {
                Some(rec) => ObsHandle::enabled()
                    .with_sink(Arc::new(FanoutSink::new(vec![Arc::new(sink), rec.clone()]))),
                None => ObsHandle::enabled().with_sink(Arc::new(sink)),
            }
        }
        (None, Some(rec)) => ObsHandle::enabled().with_sink(rec.clone()),
        // No event sink requested, but the profile still needs live phase
        // timers; a fully disabled handle records nothing.
        (None, None) if profile_path.is_some() => ObsHandle::timer_only(),
        (None, None) => ObsHandle::disabled(),
    };
    obs.emit(RunEvent::RunStart {
        algo: algo.to_string(),
        n_vars: n_vars as u64,
        edges: instance.graph().edge_count() as u64,
        restarts: restarts as u64,
        threads: threads as u64,
        seed,
        budget_steps: budget.max_steps,
        budget_secs: budget.time_limit.map(|d| d.as_secs_f64()),
    });
    let ctx = SearchContext::local(budget)
        .with_obs(obs.clone())
        .with_telemetry(telemetry);

    // Portfolio runs merge per-restart phase timers themselves; keep the
    // merged snapshot around for `--profile-out`.
    let mut portfolio_phases: Vec<PhaseSnapshot> = Vec::new();
    let outcome: RunOutcome = match algo {
        "ils" if portfolio => {
            let (merged, phases) = run_portfolio(
                Ils::new(IlsConfig::default()),
                &instance,
                &budget,
                seed,
                restarts,
                threads,
                telemetry,
                &obs,
            );
            portfolio_phases = phases;
            merged
        }
        "gils" if portfolio => {
            let (merged, phases) = run_portfolio(
                Gils::new(GilsConfig::default()),
                &instance,
                &budget,
                seed,
                restarts,
                threads,
                telemetry,
                &obs,
            );
            portfolio_phases = phases;
            merged
        }
        "sea" if portfolio => {
            let (merged, phases) = run_portfolio(
                Sea::new(SeaConfig::default_for(&instance)),
                &instance,
                &budget,
                seed,
                restarts,
                threads,
                telemetry,
                &obs,
            );
            portfolio_phases = phases;
            merged
        }
        "sea-hybrid" if portfolio => {
            let (merged, phases) = run_portfolio(
                Sea::new(SeaConfig::default_for(&instance).with_ils_seeding()),
                &instance,
                &budget,
                seed,
                restarts,
                threads,
                telemetry,
                &obs,
            );
            portfolio_phases = phases;
            merged
        }
        "ils" => Ils::new(IlsConfig::default()).search(&instance, &ctx, &mut rng),
        "gils" => Gils::new(GilsConfig::default()).search(&instance, &ctx, &mut rng),
        "sea" => Sea::new(SeaConfig::default_for(&instance)).search(&instance, &ctx, &mut rng),
        "sea-hybrid" => Sea::new(SeaConfig::default_for(&instance).with_ils_seeding())
            .search(&instance, &ctx, &mut rng),
        "ibb" | "two-step" if portfolio => {
            return Err(format!(
                "--restarts applies to the anytime heuristics, not '{algo}'"
            ))
        }
        "ibb" => Ibb::new(IbbConfig::new()).search(&instance, &ctx),
        "two-step" => {
            let heuristic_budget = SearchBudget::seconds(0.5);
            let two = TwoStep::new(TwoStepConfig::Ils(IlsConfig::default(), heuristic_budget))
                .with_telemetry(telemetry);
            let out = two.run_with_obs(&instance, &budget, &mut rng, &obs);
            out.best
        }
        other => return Err(format!("unknown algorithm '{other}'")),
    };

    if !portfolio {
        // Portfolio runs emit their seed-order merged snapshots inside
        // `run_portfolio`; single runs freeze the handle's own registry.
        obs.emit(RunEvent::Metrics {
            snapshot: obs.metrics.snapshot(),
        });
        obs.emit(RunEvent::Phases {
            phases: obs.timer.snapshot(),
        });
    }
    // `run_end` is emitted by the search itself: standalone algorithms via
    // the driver, the two-step pipeline and the portfolio as one combined
    // event each.
    if let Some(path) = &trace_path {
        let sink = JsonlSink::create(path).map_err(|e| format!("{path}: {e}"))?;
        for p in &outcome.trace {
            sink.emit(&RunEvent::TracePoint {
                step: p.step,
                similarity: p.similarity,
                elapsed_secs: p.elapsed.as_secs_f64(),
            });
        }
    }

    println!(
        "best solution: {} (similarity {:.3}, {} of {} conditions violated{})",
        outcome.best,
        outcome.best_similarity,
        outcome.best_violations,
        instance.graph().edge_count(),
        if outcome.proven_optimal {
            ", proven optimal"
        } else {
            ""
        }
    );
    println!(
        "stats: {:?} elapsed, {} steps, {} node accesses, {} local maxima",
        outcome.stats.elapsed,
        outcome.stats.steps,
        outcome.stats.node_accesses,
        outcome.stats.local_maxima
    );
    if top > 1 {
        println!(
            "top {} distinct solutions:",
            top.min(outcome.top_solutions.len())
        );
        for (rank, (sol, violations)) in outcome.top_solutions.iter().take(top).enumerate() {
            println!("  {:>2}. {} ({} violations)", rank + 1, sol, violations);
        }
    }
    if let Some(path) = &metrics_path {
        println!("wrote run events to {path} (inspect with 'mwsj report {path}')");
    }
    if let Some(path) = &trace_path {
        println!("wrote {} trace points to {path}", outcome.trace.len());
    }
    if let (Some(path), Some(rec)) = (&flight_path, &recorder) {
        let written = rec.write_jsonl(path).map_err(|e| format!("{path}: {e}"))?;
        println!(
            "wrote {written} recent run events to {path} (flight recorder, \
             {} byte budget)",
            rec.capacity_bytes()
        );
    }
    if let Some(path) = &profile_path {
        let phases = if portfolio {
            portfolio_phases
        } else {
            obs.timer.snapshot()
        };
        let folded = to_folded(&phases);
        std::fs::write(path, &folded).map_err(|e| format!("{path}: {e}"))?;
        println!(
            "wrote phase profile to {path} ({} folded stack lines, flamegraph-ready)",
            folded.lines().count()
        );
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)] // thin CLI plumbing over PortfolioConfig
fn run_portfolio<A: AnytimeSearch>(
    algo: A,
    instance: &Instance,
    budget: &SearchBudget,
    master_seed: u64,
    restarts: usize,
    threads: usize,
    telemetry: TelemetryConfig,
    obs: &ObsHandle,
) -> (RunOutcome, Vec<PhaseSnapshot>) {
    let mut config = PortfolioConfig::new(restarts, threads);
    config.telemetry = telemetry;
    let portfolio = ParallelPortfolio::new(algo, config);
    let outcome = portfolio.run_with_obs(instance, budget, master_seed, obs);
    obs.emit(RunEvent::Metrics {
        snapshot: outcome.metrics.clone(),
    });
    obs.emit(RunEvent::Phases {
        phases: outcome.phases.clone(),
    });
    println!(
        "portfolio: {} restarts on {} thread{} (per-restart best: {})",
        outcome.restarts.len(),
        outcome.threads_used,
        if outcome.threads_used == 1 { "" } else { "s" },
        outcome
            .restarts
            .iter()
            .map(|r| r.outcome.best_violations.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    (outcome.merged, outcome.phases)
}

/// `mwsj explain` — the pre-run side of the cost & selectivity audit:
/// builds the instance, prints the estimate report, and never solves.
/// Deterministic: repeated invocations on the same inputs are
/// byte-identical (the report is a pure function of the datasets).
fn cmd_explain(args: &Args) -> Result<(), String> {
    let datasets = load_datasets(args)?;
    let n_vars = datasets.len();
    let query = args.required("query").map_err(|e| e.to_string())?;
    let graph = query_spec::parse_query(query, n_vars).map_err(|e| e.to_string())?;
    let instance = apply_backend(
        args,
        Instance::new(graph, datasets).map_err(|e| e.to_string())?,
    )?;
    let report = mwsj_core::build_explain_report(&instance);
    print_explain(&report);
    if let Some(path) = args.value("metrics-out") {
        let sink = JsonlSink::create(path).map_err(|e| format!("{path}: {e}"))?;
        sink.emit(&RunEvent::ExplainReport {
            report: report.clone(),
        });
        println!("wrote explain report to {path} (inspect with 'mwsj report {path}')");
    }
    Ok(())
}

/// Renders an [`ExplainReport`] — shared by `mwsj explain` (estimates
/// only) and `mwsj report` (estimate vs actual when the run attached the
/// observed side).
fn print_explain(report: &ExplainReport) {
    println!(
        "explain: {} model, E[solutions] = {:.4}",
        report.model, report.expected_solutions
    );
    println!("edges (estimated vs observed selectivity):");
    println!(
        "  {:<6} {:<12} {:>13} {:>13} {:>10} {:>8}",
        "edge", "predicate", "estimated", "observed", "pairs", "error"
    );
    for e in &report.edges {
        let (obs, pairs, err) = match (e.observed_selectivity, e.observed_pairs) {
            (Some(sel), Some(pairs)) => (
                format!("{sel:.6e}"),
                pairs.to_string(),
                e.error_factor().map_or("-".into(), |f| format!("{f:.2}x")),
            ),
            _ => ("-".into(), "-".into(), "-".into()),
        };
        println!(
            "  {:<6} {:<12} {:>13} {:>13} {:>10} {:>8}",
            format!("{}-{}", e.a, e.b),
            e.predicate,
            format!("{:.6e}", e.estimated_selectivity),
            obs,
            pairs,
            err
        );
    }
    println!("variables (window cost model and R*-tree quality):");
    for v in &report.vars {
        println!(
            "  var{}: N={}, avg extent {:.6}, E[window hits] {:.4}, \
             predicted accesses/query {:.2}",
            v.var,
            v.cardinality,
            v.avg_extent,
            v.expected_window_hits,
            v.predicted_accesses_per_query
        );
        let t = &v.tree;
        println!(
            "    tree: height {}, {} nodes, avg fill {:.3}",
            t.height, t.nodes, t.avg_fill
        );
        let fmt3 = |xs: &[f64]| {
            xs.iter()
                .map(|x| format!("{x:.3}"))
                .collect::<Vec<_>>()
                .join(" ")
        };
        println!(
            "    per level (leaf->root): fill [{}], overlap [{}], dead space [{}], perimeter [{}]",
            fmt3(&t.fill_per_level),
            fmt3(&t.overlap_factor_per_level),
            fmt3(&t.dead_space_per_level),
            fmt3(&t.perimeter_per_level)
        );
        if let Some(g) = &v.grid {
            println!(
                "    grid: {} cells ({} occupied), replication {:.3}, occupancy avg {:.1} max {}, \
                 predicted cells/query {:.2}, predicted cost/query {:.2}",
                g.cells,
                g.occupied_cells,
                g.replication_factor,
                g.avg_occupancy,
                g.max_occupancy,
                g.predicted_cells_per_query,
                g.predicted_cost_per_query
            );
        }
    }
    if let Some(total) = report.observed_node_accesses {
        println!(
            "observed node accesses: {total} total, {} attributed per variable",
            report.attributed_accesses()
        );
        for v in &report.vars {
            let levels = v
                .accesses_per_level
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(", ");
            println!(
                "  var{}: {} accesses (per level, leaf->root: {levels})",
                v.var, v.observed_accesses
            );
        }
    }
}

fn cmd_join(args: &Args) -> Result<(), String> {
    let datasets = load_datasets(args)?;
    let n_vars = datasets.len();
    let query = args.required("query").map_err(|e| e.to_string())?;
    let graph = query_spec::parse_query(query, n_vars).map_err(|e| e.to_string())?;
    let instance = apply_backend(
        args,
        Instance::new(graph, datasets).map_err(|e| e.to_string())?,
    )?;
    let budget = match budget_from(args)? {
        // Exact joins default to a generous budget.
        b if b == SearchBudget::seconds(2.0) => SearchBudget::seconds(60.0),
        b => b,
    };
    let limit: usize = args
        .parse_or("limit", 100, "a solution limit")
        .map_err(|e| e.to_string())?;

    let algo = args.value("algo").unwrap_or("wr");
    let metrics_path = args.value("metrics-out").map(str::to_string);
    let obs = match &metrics_path {
        Some(path) => {
            let sink = JsonlSink::create(path).map_err(|e| format!("{path}: {e}"))?;
            ObsHandle::enabled().with_sink(Arc::new(sink))
        }
        None => ObsHandle::disabled(),
    };
    obs.emit(RunEvent::RunStart {
        algo: algo.to_string(),
        n_vars: n_vars as u64,
        edges: instance.graph().edge_count() as u64,
        restarts: 1,
        threads: 1,
        seed: 0, // exact joins are deterministic; no RNG is involved
        budget_steps: budget.max_steps,
        budget_secs: budget.time_limit.map(|d| d.as_secs_f64()),
    });
    let outcome = match algo {
        "wr" => WindowReduction::new().run_with_obs(&instance, &budget, limit, &obs),
        "st" => SynchronousTraversal::new().run_with_obs(&instance, &budget, limit, &obs),
        "pjm" => Pjm::default().run_with_obs(&instance, &budget, limit, &obs),
        other => return Err(format!("unknown exact algorithm '{other}'")),
    };
    obs.emit(RunEvent::Metrics {
        snapshot: obs.metrics.snapshot(),
    });
    obs.emit(RunEvent::Phases {
        phases: obs.timer.snapshot(),
    });
    let found = !outcome.solutions.is_empty();
    obs.emit(RunEvent::RunEnd {
        best_violations: if found {
            0
        } else {
            instance.graph().edge_count() as u64
        },
        best_similarity: if found { 1.0 } else { 0.0 },
        steps: outcome.stats.steps,
        node_accesses: outcome.stats.node_accesses,
        local_maxima: outcome.stats.local_maxima,
        improvements: outcome.stats.improvements,
        restarts: outcome.stats.restarts,
        elapsed_secs: outcome.stats.elapsed.as_secs_f64(),
        proven_optimal: outcome.complete,
    });

    println!(
        "{} exact solutions{} in {:?} ({} node accesses)",
        outcome.solutions.len(),
        if outcome.complete { "" } else { " (truncated)" },
        outcome.stats.elapsed,
        outcome.stats.node_accesses
    );
    for sol in outcome.solutions.iter().take(limit) {
        println!("  {sol}");
    }
    if let Some(path) = &metrics_path {
        println!("wrote run events to {path} (inspect with 'mwsj report {path}')");
    }
    Ok(())
}

/// Validates a metrics JSONL file against the documented schema and
/// renders a human-readable summary of its contents.
fn cmd_report(args: &Args) -> Result<(), String> {
    let path = args
        .arg()
        .ok_or("usage: mwsj report FILE (a --metrics-out JSONL file or a bench snapshot)")?;
    if let Some(extra) = args.positionals.get(1) {
        return Err(format!(
            "unexpected argument '{extra}' (mwsj report takes exactly one file)"
        ));
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    if text.trim().is_empty() {
        return Err(format!(
            "{path}: empty metrics file — the run wrote no events \
             (interrupted before the first event, or the wrong file?)"
        ));
    }
    // A bench snapshot is a single pretty-printed JSON object, not JSONL;
    // summarise it directly instead of failing schema validation.
    if let Ok(snapshot) = BenchSnapshot::parse(&text) {
        return report_snapshot(path, &snapshot);
    }
    let events = schema::validate_jsonl(&text).map_err(|(line, e)| {
        // A file cut off mid-write ends in a partial JSON line with no
        // trailing newline; point that out instead of a bare parse error.
        let last_line = text.trim_end().lines().count();
        if line == last_line && !text.ends_with('\n') {
            format!("{path}:{line}: {e} (the file ends mid-line and appears truncated)")
        } else {
            format!("{path}:{line}: {e}")
        }
    })?;
    println!("{path}: {events} events, schema OK");

    let mut improvements = 0usize;
    let mut restarts_seen = 0usize;
    let mut budget_exhausted = 0usize;
    let mut cutoffs = 0usize;
    let mut trace_points = 0usize;
    let mut progress_points = 0usize;
    let mut stalls_detected = 0usize;
    let mut stall_aborts = 0usize;
    let mut reseeds = 0usize;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let ev = Json::parse(line).map_err(|e| format!("{path}: {e}"))?;
        match ev.get("event").and_then(Json::as_str) {
            Some("run_start") => {
                let algo = ev.get("algo").and_then(Json::as_str).unwrap_or("?");
                let n_vars = ev.get("n_vars").and_then(Json::as_u64).unwrap_or(0);
                let edges = ev.get("edges").and_then(Json::as_u64).unwrap_or(0);
                let seed = ev.get("seed").and_then(Json::as_u64).unwrap_or(0);
                let restarts = ev.get("restarts").and_then(Json::as_u64).unwrap_or(1);
                print!("run: {algo} on {n_vars} variables / {edges} edges, seed {seed}");
                if restarts > 1 {
                    print!(", {restarts} portfolio restarts");
                }
                if let Some(steps) = ev.get("budget_steps").and_then(Json::as_u64) {
                    print!(", budget {steps} steps");
                }
                if let Some(secs) = ev.get("budget_secs").and_then(Json::as_f64) {
                    print!(", budget {secs}s");
                }
                println!();
            }
            Some("improvement") => improvements += 1,
            Some("restart_end") => restarts_seen += 1,
            Some("budget_exhausted") => budget_exhausted += 1,
            Some("cutoff_fired") => cutoffs += 1,
            Some("trace_point") => trace_points += 1,
            Some("progress") => progress_points += 1,
            Some("stall_detected") => stalls_detected += 1,
            Some("stagnation_reseed") => reseeds += 1,
            Some("stall_aborted") => {
                stall_aborts += 1;
                let steps = ev.get("steps").and_then(Json::as_u64).unwrap_or(0);
                let secs = ev.get("elapsed_secs").and_then(Json::as_f64).unwrap_or(0.0);
                println!(
                    "stall abort: run stopped after {steps} steps ({secs:.3}s) without improvement"
                );
            }
            Some("metrics") => {
                if let Some(counters) = ev.get("counters").and_then(Json::as_object) {
                    println!("counters:");
                    for (name, value) in counters {
                        println!("  {name:<24} {}", value.as_u64().unwrap_or(0));
                    }
                }
                if let Some(histograms) = ev.get("histograms").and_then(Json::as_object) {
                    for (name, h) in histograms {
                        let count = h.get("count").and_then(Json::as_u64).unwrap_or(0);
                        let min = h.get("min").and_then(Json::as_u64).unwrap_or(0);
                        let max = h.get("max").and_then(Json::as_u64).unwrap_or(0);
                        println!("histogram {name}: {count} samples in [{min}, {max}]");
                    }
                }
            }
            Some("explain_report") => {
                if let Some(report) = ExplainReport::from_json(&ev) {
                    print_explain(&report);
                }
            }
            Some("resource_report") => {
                let total = ev.get("total_bytes").and_then(Json::as_u64).unwrap_or(0);
                if let Some(components) = ev.get("components").and_then(Json::as_object) {
                    println!("memory:");
                    for (name, bytes) in components {
                        println!("  {name:<24} {:>12} bytes", bytes.as_u64().unwrap_or(0));
                    }
                    println!("  {:<24} {total:>12} bytes", "total");
                }
            }
            Some("phases") => {
                if let Some(phases) = ev.get("phases").and_then(Json::as_array) {
                    if !phases.is_empty() {
                        println!("phases:");
                    }
                    for p in phases {
                        let path = p.get("path").and_then(Json::as_str).unwrap_or("?");
                        let calls = p.get("calls").and_then(Json::as_u64).unwrap_or(0);
                        let steps = p.get("steps").and_then(Json::as_u64).unwrap_or(0);
                        let wall = p.get("wall_secs").and_then(Json::as_f64).unwrap_or(0.0);
                        println!("  {path:<28} {calls:>6} calls {steps:>10} steps {wall:>9.4}s");
                    }
                }
            }
            Some("run_end") => {
                let violations = ev
                    .get("best_violations")
                    .and_then(Json::as_u64)
                    .unwrap_or(0);
                let similarity = ev
                    .get("best_similarity")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0);
                let steps = ev.get("steps").and_then(Json::as_u64).unwrap_or(0);
                let accesses = ev.get("node_accesses").and_then(Json::as_u64).unwrap_or(0);
                let secs = ev.get("elapsed_secs").and_then(Json::as_f64).unwrap_or(0.0);
                let optimal = ev
                    .get("proven_optimal")
                    .and_then(Json::as_bool)
                    .unwrap_or(false);
                println!(
                    "result: similarity {similarity:.3} ({violations} violations{}), \
                     {steps} steps, {accesses} node accesses, {secs:.3}s",
                    if optimal { ", proven optimal" } else { "" }
                );
            }
            _ => {}
        }
    }
    let mut lifecycle = Vec::new();
    if improvements > 0 {
        lifecycle.push(format!("{improvements} improvements"));
    }
    if restarts_seen > 0 {
        lifecycle.push(format!("{restarts_seen} restarts finished"));
    }
    if budget_exhausted > 0 {
        lifecycle.push(format!("{budget_exhausted} budget exhaustions"));
    }
    if cutoffs > 0 {
        lifecycle.push(format!("{cutoffs} cutoff firings"));
    }
    if trace_points > 0 {
        lifecycle.push(format!("{trace_points} trace points"));
    }
    if progress_points > 0 {
        lifecycle.push(format!("{progress_points} progress heartbeats"));
    }
    if stalls_detected > 0 {
        lifecycle.push(format!("{stalls_detected} stalls detected"));
    }
    if stall_aborts > 0 {
        lifecycle.push(format!("{stall_aborts} stall aborts"));
    }
    if reseeds > 0 {
        lifecycle.push(format!("{reseeds} stagnation reseeds"));
    }
    if !lifecycle.is_empty() {
        println!("events: {}", lifecycle.join(", "));
    }
    Ok(())
}

/// Summarises a `BENCH_*.json` snapshot for `mwsj report`, ordered by
/// parsed suite key — numeric on the variable count, so `chain-n10-…`
/// sorts after `chain-n4-…` instead of between `n1` and `n2` as a naive
/// lexicographic (single-digit-assuming) ordering would.
fn report_snapshot(path: &str, snapshot: &BenchSnapshot) -> Result<(), String> {
    use mwsj_core::obs::SuiteKey;
    println!(
        "{path}: bench snapshot '{}', {} instances, {} reps",
        snapshot.label,
        snapshot.instances.len(),
        snapshot.reps
    );
    let mut order: Vec<usize> = (0..snapshot.instances.len()).collect();
    order.sort_by_key(|&i| {
        let inst = &snapshot.instances[i];
        match SuiteKey::parse(&inst.name) {
            Some(k) => (k.shape, k.n_vars, k.qualifier),
            // Unkeyed instances sort after keyed ones, by raw name.
            None => ("~".to_string(), u64::MAX, inst.name.clone()),
        }
    });
    for &i in &order {
        let inst = &snapshot.instances[i];
        if let Some(key) = SuiteKey::parse(&inst.name) {
            if key.n_vars != inst.n_vars || key.shape != inst.shape {
                println!(
                    "warning: {} — suite key ({} n={}) contradicts record metadata ({} n={})",
                    inst.name, key.shape, key.n_vars, inst.shape, inst.n_vars
                );
            }
        }
        println!(
            "  {} ({} n={} N={} seed={})",
            inst.name, inst.shape, inst.n_vars, inst.cardinality, inst.seed
        );
        for algo in &inst.algos {
            let steps = algo.counter("steps").unwrap_or(0);
            let accesses = algo.counter("node_accesses").unwrap_or(0);
            println!(
                "    {:<18} similarity {:.3}  {steps} steps  {accesses} node accesses  {:.2}ms",
                algo.algo, algo.best_similarity, algo.wall_ms_median
            );
        }
        for mem in snapshot.memory.iter().filter(|m| m.instance == inst.name) {
            println!("    memory: {} bytes resident", mem.total_bytes);
        }
        for cache in snapshot.cache.iter().filter(|c| c.instance == inst.name) {
            println!(
                "    {:<18} cache: {} hits, {} misses, {} reassign / {} penalty \
                 invalidations, {} bytes",
                cache.algo,
                cache.hits,
                cache.misses,
                cache.invalidations_reassign,
                cache.invalidations_penalty,
                cache.bytes
            );
        }
        for rec in snapshot.explain.iter().filter(|e| e.instance == inst.name) {
            let worst = rec
                .report
                .edges
                .iter()
                .filter_map(|e| e.error_factor())
                .fold(None::<f64>, |acc, f| Some(acc.map_or(f, |a| a.max(f))));
            println!(
                "    explain: {} model, E[solutions] {:.4}, worst edge estimate error {}",
                rec.report.model,
                rec.report.expected_solutions,
                worst.map_or("-".into(), |f| format!("{f:.2}x"))
            );
        }
    }
    Ok(())
}

/// Dispatches `mwsj bench <snapshot|compare>`.
fn cmd_bench(args: &Args) -> Result<(), String> {
    const USAGE: &str =
        "usage: mwsj bench snapshot [--tier base|large] [--label L] [--reps N] [--out FILE]\n   \
                         or: mwsj bench compare BASELINE.json CANDIDATE.json \
                         [--wall-tolerance T] [--wall-slack-ms S]";
    match args.arg() {
        Some("snapshot") => cmd_bench_snapshot(args),
        Some("compare") => cmd_bench_compare(args),
        Some(other) => Err(format!("unknown bench subcommand '{other}'\n{USAGE}")),
        None => Err(USAGE.into()),
    }
}

/// Runs the pinned benchmark suite and writes a `BENCH_<label>.json`
/// performance snapshot (see `DESIGN.md` "Benchmark snapshots").
fn cmd_bench_snapshot(args: &Args) -> Result<(), String> {
    if let Some(extra) = args.positionals.get(1) {
        return Err(format!(
            "unexpected argument '{extra}' (bench snapshot takes options only)"
        ));
    }
    let tier = match args.value("tier") {
        None => mwsj_bench::BenchTier::Base,
        Some(name) => mwsj_bench::BenchTier::parse(name)
            .ok_or_else(|| format!("unknown tier '{name}' (expected 'base' or 'large')"))?,
    };
    // The default label/output track the tier, so `--tier large` writes
    // BENCH_large.json next to the base tier's BENCH_baseline.json.
    let default_label = match tier {
        mwsj_bench::BenchTier::Base => "snapshot",
        mwsj_bench::BenchTier::Large => "large",
    };
    let label = args.value("label").unwrap_or(default_label);
    let reps: usize = args
        .parse_or("reps", mwsj_bench::DEFAULT_REPS, "a repetition count")
        .map_err(|e| e.to_string())?;
    if reps == 0 {
        return Err("--reps must be at least 1".into());
    }
    let out = args
        .value("out")
        .map(str::to_string)
        .unwrap_or_else(|| format!("BENCH_{label}.json"));
    let snapshot = mwsj_bench::run_suite(tier, label, reps, |case, algo| {
        eprintln!("bench: {case} / {algo}");
    })?;
    std::fs::write(&out, snapshot.to_string_pretty()).map_err(|e| format!("{out}: {e}"))?;
    let records: usize = snapshot.instances.iter().map(|i| i.algos.len()).sum();
    println!(
        "wrote benchmark snapshot '{label}' to {out} ({} instances, {records} algo records, {} reps)",
        snapshot.instances.len(),
        snapshot.reps,
    );
    println!("gate a change with 'mwsj bench compare BENCH_baseline.json {out}'");
    Ok(())
}

/// Compares two benchmark snapshots: deterministic work counters must
/// match exactly; wall-clock medians may drift up to the tolerance band.
fn cmd_bench_compare(args: &Args) -> Result<(), String> {
    let (baseline_path, candidate_path) = match &args.positionals[..] {
        [_, b, c] => (b.as_str(), c.as_str()),
        _ => {
            return Err("usage: mwsj bench compare BASELINE.json CANDIDATE.json \
                 [--wall-tolerance T] [--wall-slack-ms S]"
                .into())
        }
    };
    let tolerance: f64 = args
        .parse_or(
            "wall-tolerance",
            DEFAULT_WALL_TOLERANCE,
            "a fraction (e.g. 0.25 for +25%)",
        )
        .map_err(|e| e.to_string())?;
    if !tolerance.is_finite() || tolerance < 0.0 {
        return Err("--wall-tolerance must be a non-negative fraction".into());
    }
    let slack_ms: f64 = args
        .parse_or(
            "wall-slack-ms",
            DEFAULT_WALL_SLACK_MS,
            "a duration in milliseconds (e.g. 5.0)",
        )
        .map_err(|e| e.to_string())?;
    if !slack_ms.is_finite() || slack_ms < 0.0 {
        return Err("--wall-slack-ms must be a non-negative duration".into());
    }
    let load = |path: &str| -> Result<BenchSnapshot, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        BenchSnapshot::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let baseline = load(baseline_path)?;
    let candidate = load(candidate_path)?;
    println!(
        "comparing '{}' ({baseline_path}) -> '{}' ({candidate_path}), \
         wall tolerance +{:.0}% or +{:.1}ms",
        baseline.label,
        candidate.label,
        tolerance * 100.0,
        slack_ms
    );
    let report = compare(
        &baseline,
        &candidate,
        CompareConfig {
            wall_tolerance: tolerance,
            wall_slack_ms: slack_ms,
        },
    );
    print!("{}", report.render());
    if report.passed() {
        Ok(())
    } else {
        Err(format!(
            "{} regression check(s) failed (see report above)",
            report.failures()
        ))
    }
}

fn cmd_hard_density(args: &Args) -> Result<(), String> {
    let shape = match args.required("shape").map_err(|e| e.to_string())? {
        "chain" => QueryShape::Chain,
        "clique" => QueryShape::Clique,
        "star" => QueryShape::Star,
        "cycle" => QueryShape::Cycle,
        "random" => QueryShape::Random,
        other => return Err(format!("unknown shape '{other}'")),
    };
    let vars: usize = args
        .parse_or("vars", 5, "a variable count")
        .map_err(|e| e.to_string())?;
    let n: usize = args
        .parse_or("n", 100_000, "a cardinality")
        .map_err(|e| e.to_string())?;
    let target: f64 = args
        .parse_or("target", 1.0, "a solution count")
        .map_err(|e| e.to_string())?;
    let d = mwsj_datagen::hard_region_density(shape, vars, n, target);
    println!(
        "{} query over {vars} datasets of {n} objects: density {d:.6} gives E[solutions] = {target}",
        shape.name()
    );
    println!(
        "(average per-axis extent |r| = {:.6})",
        mwsj_datagen::extent_for_density(n, d)
    );
    Ok(())
}
