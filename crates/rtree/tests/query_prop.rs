//! Property-based tests: every query kind agrees with a linear scan on
//! arbitrary data, for both construction paths.

use mwsj_geom::{Point, Predicate, Rect};
use mwsj_rtree::{RTree, RTreeParams};
use proptest::prelude::*;

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0.0f64..1.0, 0.0f64..1.0, 0.0f64..0.2, 0.0f64..0.2)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

fn arb_pred() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        Just(Predicate::Intersects),
        Just(Predicate::Contains),
        Just(Predicate::Inside),
        Just(Predicate::NorthEast),
        Just(Predicate::SouthWest),
        (0.0f64..0.3).prop_map(Predicate::WithinDistance),
    ]
}

fn trees_of(rects: &[Rect]) -> Vec<RTree<usize>> {
    let items: Vec<(Rect, usize)> = rects.iter().copied().zip(0..).collect();
    let mut incremental = RTree::with_params(RTreeParams::new(4));
    for (r, v) in &items {
        incremental.insert(*r, *v);
    }
    vec![
        incremental,
        RTree::bulk_load_with_params(RTreeParams::new(4), items.clone()),
        RTree::bulk_load_hilbert_with_params(RTreeParams::new(4), items),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn window_query_agrees_with_scan(
        rects in prop::collection::vec(arb_rect(), 1..120),
        window in arb_rect(),
    ) {
        let expected: Vec<usize> = rects
            .iter()
            .enumerate()
            .filter(|(_, r)| r.intersects(&window))
            .map(|(i, _)| i)
            .collect();
        for tree in trees_of(&rects) {
            prop_assert!(tree.check_invariants().is_ok());
            let mut got: Vec<usize> = tree.window(&window).map(|(_, v)| *v).collect();
            got.sort_unstable();
            prop_assert_eq!(&got, &expected);
        }
    }

    #[test]
    fn predicate_query_agrees_with_scan(
        rects in prop::collection::vec(arb_rect(), 1..120),
        window in arb_rect(),
        pred in arb_pred(),
    ) {
        let expected: Vec<usize> = rects
            .iter()
            .enumerate()
            .filter(|(_, r)| pred.eval(r, &window))
            .map(|(i, _)| i)
            .collect();
        for tree in trees_of(&rects) {
            let mut got: Vec<usize> =
                tree.query_predicate(pred, &window).map(|(_, v)| *v).collect();
            got.sort_unstable();
            prop_assert_eq!(&got, &expected, "predicate {}", pred);
        }
    }

    #[test]
    fn knn_agrees_with_scan(
        rects in prop::collection::vec(arb_rect(), 1..120),
        qx in 0.0f64..1.0,
        qy in 0.0f64..1.0,
        k in 1usize..10,
    ) {
        let q = Point::new(qx, qy);
        let mut expected: Vec<f64> = rects
            .iter()
            .map(|r| r.min_distance_to_point(&q))
            .collect();
        expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
        expected.truncate(k);
        for tree in trees_of(&rects) {
            let got: Vec<f64> = tree
                .nearest_neighbors(&q, k)
                .iter()
                .map(|n| n.distance)
                .collect();
            prop_assert_eq!(got.len(), expected.len());
            for (g, e) in got.iter().zip(&expected) {
                prop_assert!((g - e).abs() < 1e-12, "distance {g} vs {e}");
            }
        }
    }

    /// Mixed insert/remove workloads keep invariants and query correctness.
    #[test]
    fn mixed_workload_stays_consistent(
        rects in prop::collection::vec(arb_rect(), 2..80),
        removals in prop::collection::vec(any::<prop::sample::Index>(), 0..40),
        window in arb_rect(),
    ) {
        let mut tree = RTree::with_params(RTreeParams::new(4));
        for (i, r) in rects.iter().enumerate() {
            tree.insert(*r, i);
        }
        let mut alive: Vec<bool> = vec![true; rects.len()];
        for idx in removals {
            let i = idx.index(rects.len());
            if alive[i] {
                prop_assert!(tree.remove(&rects[i], &i));
                alive[i] = false;
            }
        }
        prop_assert!(tree.check_invariants().is_ok());
        let expected: Vec<usize> = rects
            .iter()
            .enumerate()
            .filter(|(i, r)| alive[*i] && r.intersects(&window))
            .map(|(i, _)| i)
            .collect();
        let mut got: Vec<usize> = tree.window(&window).map(|(_, v)| *v).collect();
        got.sort_unstable();
        prop_assert_eq!(got, expected);
    }
}
