//! Bulk-load equivalence at paper scale: STR and Hilbert packing over the
//! same 100k-entry dataset must produce structurally valid trees holding
//! exactly the same entry set and answering window queries identically.
//! (The trees themselves differ — the packings order leaves differently —
//! but they index the same data.)

use mwsj_geom::Rect;
use mwsj_rtree::{RTree, RTreeParams};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const N: usize = 100_000;

fn dataset(seed: u64) -> Vec<(Rect, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..N as u32)
        .map(|i| {
            let x = rng.random_range(0.0..1.0);
            let y = rng.random_range(0.0..1.0);
            let w = rng.random_range(0.0..0.01);
            let h = rng.random_range(0.0..0.01);
            (Rect::new(x, y, x + w, y + h), i)
        })
        .collect()
}

/// Every entry of the tree, as `(id, rect)` sorted by id.
fn sorted_entries(tree: &RTree<u32>) -> Vec<(u32, Rect)> {
    let everything = Rect::new(
        f64::NEG_INFINITY,
        f64::NEG_INFINITY,
        f64::INFINITY,
        f64::INFINITY,
    );
    let mut out: Vec<(u32, Rect)> = tree.window(&everything).map(|(r, v)| (*v, *r)).collect();
    out.sort_unstable_by_key(|(v, _)| *v);
    out
}

#[test]
fn str_and_hilbert_index_the_same_hundred_thousand_entries() {
    let items = dataset(0xb01d);
    let str_tree = RTree::bulk_load_with_params(RTreeParams::new(32), items.clone());
    let hil_tree = RTree::bulk_load_hilbert_with_params(RTreeParams::new(32), items.clone());

    // Both packings must yield structurally valid R-trees.
    str_tree.check_invariants().expect("STR invariants");
    hil_tree.check_invariants().expect("Hilbert invariants");
    assert_eq!(str_tree.len(), N);
    assert_eq!(hil_tree.len(), N);

    // Same entry set, id for id, rect for rect.
    let str_entries = sorted_entries(&str_tree);
    let hil_entries = sorted_entries(&hil_tree);
    assert_eq!(str_entries.len(), N);
    assert_eq!(str_entries, hil_entries);
    for (i, (id, rect)) in str_entries.iter().enumerate() {
        assert_eq!(*id, i as u32, "ids must be dense 0..N");
        assert_eq!(*rect, items[i].0);
    }

    // Window queries agree across a sweep of sizes and positions.
    let mut rng = StdRng::seed_from_u64(0xcafe);
    for trial in 0..40 {
        let side = [0.001, 0.01, 0.05, 0.25][trial % 4];
        let x = rng.random_range(0.0..1.0 - side);
        let y = rng.random_range(0.0..1.0 - side);
        let window = Rect::new(x, y, x + side, y + side);
        let mut a: Vec<u32> = str_tree.window(&window).map(|(_, v)| *v).collect();
        let mut b: Vec<u32> = hil_tree.window(&window).map(|(_, v)| *v).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "window {window:?} diverges");
    }

    // The frozen flat snapshots mirror their trees entry-for-entry.
    assert_eq!(str_tree.flat_leaves().len(), N);
    assert_eq!(hil_tree.flat_leaves().len(), N);
}
