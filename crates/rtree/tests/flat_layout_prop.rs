//! Layout-equivalence properties (DESIGN.md §5f): the multi-window kernel
//! must be **bit-identical** — same best leaf, same score, same node-access
//! count — whether it scans the slab's entry vectors or the frozen flat
//! SoA snapshot. Randomized trees go up to 10k entries across all three
//! construction paths (incremental, STR, Hilbert), with and without
//! penalty-style scorers.

use mwsj_geom::{Predicate, Rect};
use mwsj_rtree::{multiwindow, RTree, RTreeParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0.0f64..1.0, 0.0f64..1.0, 0.0f64..0.2, 0.0f64..0.2)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

fn arb_pred() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        Just(Predicate::Intersects),
        Just(Predicate::Contains),
        Just(Predicate::Inside),
        Just(Predicate::NorthEast),
        Just(Predicate::SouthWest),
        (0.0f64..0.3).prop_map(Predicate::WithinDistance),
    ]
}

fn trees_of(rects: &[Rect]) -> Vec<RTree<u32>> {
    let items: Vec<(Rect, u32)> = rects.iter().copied().zip(0u32..).collect();
    let mut incremental = RTree::with_params(RTreeParams::new(4));
    for (r, v) in &items {
        incremental.insert(*r, *v);
    }
    vec![
        incremental,
        RTree::bulk_load_with_params(RTreeParams::new(4), items.clone()),
        RTree::bulk_load_hilbert_with_params(RTreeParams::new(4), items),
    ]
}

/// Runs both kernels over `tree` and asserts bit-identity of the result
/// and of the node-access counter.
fn assert_layouts_agree(
    tree: &RTree<u32>,
    windows: &[(Predicate, Rect)],
    penalty: Option<f64>,
) -> Result<(), TestCaseError> {
    let flat = tree.flat_leaves();
    // The scorer must be a pure function of (value, count) so both
    // traversals see the same numbers in the same order.
    let score = |v: &u32, c: u32| match penalty {
        Some(lambda) => c as f64 - lambda * (*v % 7) as f64,
        None => c as f64,
    };
    let mut acc_entry = 0u64;
    let entry = multiwindow::find_best_leaf(tree.root_node(), windows, score, &mut acc_entry);
    let mut acc_flat = 0u64;
    let flat_best =
        multiwindow::find_best_leaf_flat(tree.root_node(), &flat, windows, score, &mut acc_flat);
    prop_assert_eq!(acc_entry, acc_flat, "node accesses diverge between layouts");
    match (entry, flat_best) {
        (None, None) => {}
        (Some(e), Some(f)) => {
            prop_assert_eq!(e.value, f.value, "winning leaf value diverges");
            prop_assert_eq!(e.satisfied, f.satisfied, "satisfied count diverges");
            // Bit-identical, not approximately equal.
            prop_assert_eq!(
                e.score.to_bits(),
                f.score.to_bits(),
                "score bits diverge: {} vs {}",
                e.score,
                f.score
            );
        }
        (e, f) => prop_assert!(
            false,
            "one layout found a leaf, the other not: {e:?} vs {f:?}"
        ),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn flat_and_entry_layouts_are_bit_identical(
        rects in prop::collection::vec(arb_rect(), 1..600),
        windows in prop::collection::vec((arb_pred(), arb_rect()), 1..5),
        lambda in prop_oneof![Just(None), (0.01f64..0.5).prop_map(Some)],
    ) {
        for tree in trees_of(&rects) {
            assert_layouts_agree(&tree, &windows, lambda)?;
        }
    }
}

/// The proptest sizes stay small for case throughput; this fixed-seed test
/// drives both kernels over 10k-entry trees (the large-tier cardinality)
/// with many random multi-window queries, raw and penalised.
#[test]
fn layouts_agree_on_ten_thousand_entries() {
    let mut rng = StdRng::seed_from_u64(0x5f1a);
    let rand_rect = |rng: &mut StdRng| {
        let x = rng.random_range(0.0..1.0);
        let y = rng.random_range(0.0..1.0);
        let w = rng.random_range(0.0..0.05);
        let h = rng.random_range(0.0..0.05);
        Rect::new(x, y, x + w, y + h)
    };
    let rects: Vec<Rect> = (0..10_000).map(|_| rand_rect(&mut rng)).collect();
    let preds = [
        Predicate::Intersects,
        Predicate::Contains,
        Predicate::Inside,
        Predicate::NorthEast,
        Predicate::WithinDistance(0.1),
    ];
    for tree in trees_of(&rects) {
        for trial in 0..20 {
            let windows: Vec<(Predicate, Rect)> = (0..1 + trial % 4)
                .map(|i| (preds[(trial + i) % preds.len()], rand_rect(&mut rng)))
                .collect();
            let lambda = if trial % 2 == 0 { None } else { Some(0.125) };
            assert_layouts_agree(&tree, &windows, lambda).unwrap();
        }
    }
}
