//! Tuning parameters of the R*-tree.

/// Structural parameters of an [`crate::RTree`].
///
/// `max_entries` (the *M* of the R-tree literature) is the node capacity;
/// `min_entries` (*m*) is the minimum node occupancy after a split or
/// deletion; `reinsert_count` (*p*) is how many entries forced reinsertion
/// evicts on the first overflow of a level. BKSS90 recommends `m = 0.4·M`
/// and `p = 0.3·M`, which [`RTreeParams::new`] applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RTreeParams {
    /// Maximum number of entries per node (*M*). At least 4.
    pub max_entries: usize,
    /// Minimum number of entries per non-root node (*m*), `2 ≤ m ≤ M/2`.
    pub min_entries: usize,
    /// Number of entries evicted by forced reinsertion (*p*),
    /// `1 ≤ p ≤ M − m`. Zero disables forced reinsertion.
    pub reinsert_count: usize,
}

impl RTreeParams {
    /// Creates parameters with the BKSS90 recommendations
    /// (`m = 0.4·M`, `p = 0.3·M`) for a given node capacity.
    ///
    /// # Panics
    /// Panics if `max_entries < 4`.
    pub fn new(max_entries: usize) -> Self {
        assert!(max_entries >= 4, "R*-tree node capacity must be at least 4");
        let min_entries = ((max_entries as f64 * 0.4) as usize).max(2);
        let reinsert_count = ((max_entries as f64 * 0.3) as usize).max(1);
        RTreeParams {
            max_entries,
            min_entries,
            reinsert_count,
        }
    }

    /// Validates the parameter combination.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_entries < 4 {
            return Err(format!("max_entries {} < 4", self.max_entries));
        }
        if self.min_entries < 2 || self.min_entries > self.max_entries / 2 {
            return Err(format!(
                "min_entries {} outside [2, M/2 = {}]",
                self.min_entries,
                self.max_entries / 2
            ));
        }
        if self.reinsert_count > self.max_entries - self.min_entries {
            return Err(format!(
                "reinsert_count {} > M - m = {}",
                self.reinsert_count,
                self.max_entries - self.min_entries
            ));
        }
        Ok(())
    }
}

impl Default for RTreeParams {
    /// Capacity 32 — roughly a 1 KiB page of 2D f64 MBRs plus ids, a common
    /// experimental setting for in-memory R-trees.
    fn default() -> Self {
        RTreeParams::new(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_bkss90_ratios() {
        let p = RTreeParams::default();
        assert_eq!(p.max_entries, 32);
        assert_eq!(p.min_entries, 12); // 0.4 * 32
        assert_eq!(p.reinsert_count, 9); // 0.3 * 32
        assert!(p.validate().is_ok());
    }

    #[test]
    fn small_capacity_is_clamped_valid() {
        let p = RTreeParams::new(4);
        assert_eq!(p.min_entries, 2);
        assert!(p.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn rejects_tiny_capacity() {
        let _ = RTreeParams::new(3);
    }

    #[test]
    fn validate_rejects_bad_min() {
        let p = RTreeParams {
            max_entries: 10,
            min_entries: 6,
            reinsert_count: 1,
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_reinsert() {
        let p = RTreeParams {
            max_entries: 10,
            min_entries: 4,
            reinsert_count: 7,
        };
        assert!(p.validate().is_err());
    }
}
