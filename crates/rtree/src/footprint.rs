//! [`MemoryFootprint`] accounting for the index structures.
//!
//! Byte counts follow the trait's contract (`mwsj_obs::resource`):
//! length-based, never capacity-based, so the same logical tree always
//! reports the same bytes regardless of allocator growth or the `+1`
//! transient-overflow headroom nodes reserve. The numbers are the
//! regression-gated working-set cost of keeping an index resident, not an
//! allocator measurement.

use crate::flat::FlatLeaves;
use crate::node::{Entry, Node, NodeId};
use crate::tree::RTree;
use mwsj_obs::MemoryFootprint;
use std::mem::size_of;

impl<T> MemoryFootprint for RTree<T> {
    /// Heap bytes of the node arena: one node header per slab slot
    /// (free-listed slots keep their header resident), the stored entries
    /// counted by `len`, and the free list itself.
    fn memory_bytes(&self) -> u64 {
        let headers = self.nodes.len() as u64 * size_of::<Node<T>>() as u64;
        let entries: u64 = self
            .nodes
            .iter()
            .map(|node| node.entries.len() as u64)
            .sum::<u64>()
            * size_of::<Entry<T>>() as u64;
        let free = self.free.len() as u64 * size_of::<NodeId>() as u64;
        headers + entries + free
    }
}

impl<T> MemoryFootprint for FlatLeaves<T> {
    /// Delegates to [`FlatLeaves::memory_bytes`]: the SoA coordinate
    /// streams, the value array and the per-node span table.
    fn memory_bytes(&self) -> u64 {
        FlatLeaves::memory_bytes(self) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RTreeParams;
    use mwsj_geom::Rect;
    use proptest::prelude::*;

    fn items(seed: u64, n: usize) -> Vec<(Rect, u32)> {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let x = rng.random_range(0.0..1.0);
                let y = rng.random_range(0.0..1.0);
                (Rect::new(x, y, x + 0.03, y + 0.03), i as u32)
            })
            .collect()
    }

    proptest! {
        /// Deterministic accounting: building the same tree twice from the
        /// same items reports identical bytes, for the tree and for two
        /// independently frozen flat-leaf snapshots.
        #[test]
        fn footprint_is_deterministic_across_rebuilds(
            seed in 0u64..1_000,
            n in 1usize..400,
        ) {
            let data = items(seed, n);
            let a = RTree::bulk_load_with_params(RTreeParams::new(8), data.clone());
            let b = RTree::bulk_load_with_params(RTreeParams::new(8), data);
            prop_assert_eq!(
                MemoryFootprint::memory_bytes(&a),
                MemoryFootprint::memory_bytes(&b)
            );
            prop_assert_eq!(
                MemoryFootprint::memory_bytes(&a.flat_leaves()),
                MemoryFootprint::memory_bytes(&b.flat_leaves())
            );
        }

        /// `FlatLeaves` can never report less than its four coordinate
        /// streams: 4 × len × size_of::<f64>.
        #[test]
        fn flat_leaves_lower_bound_is_the_coordinate_streams(
            seed in 0u64..1_000,
            n in 0usize..400,
        ) {
            let tree = RTree::bulk_load_with_params(RTreeParams::new(8), items(seed, n));
            let flat = tree.flat_leaves();
            let streams = 4 * flat.len() as u64 * size_of::<f64>() as u64;
            prop_assert!(MemoryFootprint::memory_bytes(&flat) >= streams);
        }
    }

    /// Incremental mutation keeps the accounting length-based: inserting
    /// then deleting entries changes the byte count with the contents,
    /// and free-listed slots still charge their node header.
    #[test]
    fn tree_bytes_track_contents_not_capacity() {
        let mut tree = RTree::with_params(RTreeParams::new(4));
        let empty = MemoryFootprint::memory_bytes(&tree);
        for (r, v) in items(7, 200) {
            tree.insert(r, v);
        }
        let full = MemoryFootprint::memory_bytes(&tree);
        assert!(full > empty);
        for (r, v) in items(7, 200) {
            assert!(tree.remove(&r, &v));
        }
        let drained = MemoryFootprint::memory_bytes(&tree);
        assert!(drained < full, "deleting entries must shrink the count");
    }
}
