//! The shared node-access accounting hook.
//!
//! The paper reports index work as *node accesses* — in a disk-based
//! system every node visit is a potential page read. [`AccessCounter`] is
//! the one accounting primitive shared by **all** traversal paths of this
//! crate: window/point/predicate queries ([`crate::RTree::window_counted`]
//! and friends), k-NN ([`crate::RTree::nearest_neighbors_counted`]),
//! insertion ([`crate::RTree::insert_counted`]), STR bulk loading
//! ([`crate::RTree::bulk_load_with_params_counted`]) and the visit API
//! ([`crate::RTree::root_node_counted`]).
//!
//! The counter is a single relaxed [`AtomicU64`], so it is `Sync`: one
//! instance per caller (e.g. per portfolio restart) gives exact per-caller
//! attribution without locking, and a shared instance aggregates across
//! threads. Counting policy: **one increment per node whose entries are
//! read or written**, at the moment the node is first touched by the
//! operation.

use std::sync::atomic::{AtomicU64, Ordering};

/// A shared node-access counter (see the module docs for the policy).
#[derive(Debug, Default)]
pub struct AccessCounter(AtomicU64);

impl AccessCounter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        AccessCounter::default()
    }

    /// Records one node access.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` node accesses.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The number of accesses recorded so far.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero and returns the previous value.
    pub fn take(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_takes() {
        let c = AccessCounter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.take(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_is_sync() {
        let c = AccessCounter::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }
}
