//! Internal node representation: a slab of nodes addressed by compact ids.

use mwsj_geom::Rect;

/// Index of a node in the tree's slab.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct NodeId(pub u32);

impl NodeId {
    #[inline]
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// What an entry points at: a child node (internal levels) or a data payload
/// (leaf level).
#[derive(Debug, Clone)]
pub(crate) enum Payload<T> {
    Child(NodeId),
    Data(T),
}

/// One slot of a node: the MBR plus what it bounds.
#[derive(Debug, Clone)]
pub(crate) struct Entry<T> {
    pub mbr: Rect,
    pub payload: Payload<T>,
}

impl<T> Entry<T> {
    #[inline]
    pub(crate) fn child(mbr: Rect, id: NodeId) -> Self {
        Entry {
            mbr,
            payload: Payload::Child(id),
        }
    }

    #[inline]
    pub(crate) fn data(mbr: Rect, value: T) -> Self {
        Entry {
            mbr,
            payload: Payload::Data(value),
        }
    }

    #[inline]
    pub(crate) fn child_id(&self) -> NodeId {
        match self.payload {
            Payload::Child(id) => id,
            Payload::Data(_) => unreachable!("child_id on a data entry"),
        }
    }
}

/// A tree node. `level == 0` means leaf; the root sits at `height - 1`.
#[derive(Debug)]
pub(crate) struct Node<T> {
    pub level: u32,
    pub entries: Vec<Entry<T>>,
}

impl<T> Node<T> {
    pub(crate) fn new(level: u32, capacity: usize) -> Self {
        Node {
            level,
            // +1: nodes transiently hold M+1 entries before overflow handling.
            entries: Vec::with_capacity(capacity + 1),
        }
    }

    #[inline]
    pub(crate) fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Tight bounding box over all entries.
    pub(crate) fn mbr(&self) -> Rect {
        Rect::union_all(self.entries.iter().map(|e| &e.mbr))
    }
}
