//! Hilbert-curve bulk loading — the classic alternative to STR.
//!
//! Entries are sorted by the Hilbert index of their center on a `2¹⁶×2¹⁶`
//! grid over the data's bounding box and packed into evenly-sized nodes
//! (like [`crate::RTree::bulk_load`], even sizing keeps every node at least
//! half full, satisfying the occupancy invariants). The Hilbert curve's
//! locality gives compact leaves for clustered and skewed data, where STR's
//! axis-aligned slices can smear clusters across tiles; for uniform data
//! the two are comparable. The `rtree` Criterion bench and the bulk-quality
//! tests compare both.

use crate::bulk::even_chunks;
use crate::node::Entry;
use crate::params::RTreeParams;
use crate::tree::RTree;
use mwsj_geom::Rect;

/// Curve order: a 2¹⁶ × 2¹⁶ grid is far finer than any realistic dataset
/// cardinality, so collisions are rare and harmless (ties keep input order).
const HILBERT_ORDER: u32 = 16;

impl<T> RTree<T> {
    /// Builds a tree over `items` by Hilbert-sort packing with default
    /// parameters.
    pub fn bulk_load_hilbert(items: Vec<(Rect, T)>) -> Self {
        Self::bulk_load_hilbert_with_params(RTreeParams::default(), items)
    }

    /// Builds a tree over `items` by Hilbert-sort packing.
    pub fn bulk_load_hilbert_with_params(params: RTreeParams, items: Vec<(Rect, T)>) -> Self {
        let mut tree = RTree::with_params(params);
        if items.is_empty() {
            return tree;
        }
        tree.len = items.len();
        debug_assert!(items.iter().all(|(r, _)| r.is_finite()));

        // Normalise centers onto the Hilbert grid over the data's bounds.
        let bounds = Rect::union_all(items.iter().map(|(r, _)| r));
        let grid = (1u32 << HILBERT_ORDER) - 1;
        let to_grid = |value: f64, lo: f64, hi: f64| -> u32 {
            if hi <= lo {
                return 0;
            }
            ((((value - lo) / (hi - lo)) * grid as f64) as u32).min(grid)
        };

        let mut keyed: Vec<(u64, Entry<T>)> = items
            .into_iter()
            .map(|(mbr, v)| {
                let c = mbr.center();
                let x = to_grid(c.x, bounds.min.x, bounds.max.x);
                let y = to_grid(c.y, bounds.min.y, bounds.max.y);
                (hilbert_index(HILBERT_ORDER, x, y), Entry::data(mbr, v))
            })
            .collect();
        keyed.sort_by_key(|(h, _)| *h);
        let mut current: Vec<Entry<T>> = keyed.into_iter().map(|(_, e)| e).collect();

        // Pack level by level; upper levels inherit the curve order.
        let mut level = 0u32;
        loop {
            if current.len() <= params.max_entries {
                if tree.node(tree.root).entries.is_empty() {
                    let r = tree.root;
                    tree.dealloc(r);
                }
                let root = tree.alloc(level);
                tree.node_mut(root).entries = current;
                tree.root = root;
                tree.height = level + 1;
                return tree;
            }
            let group_count = current.len().div_ceil(params.max_entries);
            let groups = even_chunks(current, group_count);
            let mut parents: Vec<Entry<T>> = Vec::with_capacity(groups.len());
            for group in groups {
                let id = tree.alloc(level);
                tree.node_mut(id).entries = group;
                let mbr = tree.node(id).mbr();
                parents.push(Entry::child(mbr, id));
            }
            current = parents;
            level += 1;
        }
    }
}

/// Maps grid coordinates to their index on the Hilbert curve of the given
/// order (the standard bit-twiddling conversion; `x, y < 2^order`).
pub(crate) fn hilbert_index(order: u32, mut x: u32, mut y: u32) -> u64 {
    let n: u32 = 1 << order;
    debug_assert!(x < n && y < n);
    let mut d: u64 = 0;
    let mut s: u32 = n / 2;
    while s > 0 {
        let rx = u32::from((x & s) > 0);
        let ry = u32::from((y & s) > 0);
        d += (s as u64) * (s as u64) * ((3 * rx) ^ ry) as u64;
        // Rotate the quadrant.
        if ry == 0 {
            if rx == 1 {
                x = n - 1 - x;
                y = n - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RTreeParams;
    use mwsj_geom::Rect;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn hilbert_index_is_a_bijection_on_small_grids() {
        for order in [1u32, 2, 3, 4] {
            let n = 1u32 << order;
            let mut seen = vec![false; (n * n) as usize];
            for x in 0..n {
                for y in 0..n {
                    let d = hilbert_index(order, x, y) as usize;
                    assert!(d < seen.len(), "index {d} out of range at order {order}");
                    assert!(!seen[d], "duplicate index {d} at order {order}");
                    seen[d] = true;
                }
            }
            assert!(seen.iter().all(|&b| b));
        }
    }

    #[test]
    fn hilbert_curve_is_continuous() {
        // Consecutive indices must be grid neighbours (the defining
        // property of the curve).
        let order = 4u32;
        let n = 1u32 << order;
        let mut by_index = vec![(0u32, 0u32); (n * n) as usize];
        for x in 0..n {
            for y in 0..n {
                by_index[hilbert_index(order, x, y) as usize] = (x, y);
            }
        }
        for w in by_index.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            let dist = x0.abs_diff(x1) + y0.abs_diff(y1);
            assert_eq!(dist, 1, "jump between {:?} and {:?}", w[0], w[1]);
        }
    }

    fn random_items(n: usize, seed: u64) -> Vec<(Rect, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let x: f64 = rng.random_range(0.0..1.0);
                let y: f64 = rng.random_range(0.0..1.0);
                (Rect::new(x, y, x + 0.01, y + 0.01), i)
            })
            .collect()
    }

    #[test]
    fn hilbert_bulk_load_preserves_everything() {
        let items = random_items(5_000, 41);
        let tree = RTree::bulk_load_hilbert_with_params(RTreeParams::new(16), items);
        assert_eq!(tree.len(), 5_000);
        tree.check_invariants().unwrap();
        let mut ids: Vec<usize> = tree.iter().map(|(_, v)| *v).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..5_000).collect::<Vec<_>>());
    }

    #[test]
    fn hilbert_matches_str_query_results() {
        let items = random_items(2_000, 42);
        let hil = RTree::bulk_load_hilbert_with_params(RTreeParams::new(8), items.clone());
        let str_ = RTree::bulk_load_with_params(RTreeParams::new(8), items);
        let w = Rect::new(0.3, 0.3, 0.5, 0.5);
        let mut a: Vec<usize> = hil.window(&w).map(|(_, v)| *v).collect();
        let mut b: Vec<usize> = str_.window(&w).map(|(_, v)| *v).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn hilbert_bulk_load_edge_cases() {
        let empty: RTree<usize> = RTree::bulk_load_hilbert(Vec::new());
        assert!(empty.is_empty());
        empty.check_invariants().unwrap();

        let single = RTree::bulk_load_hilbert(vec![(Rect::new(0.0, 0.0, 1.0, 1.0), 7usize)]);
        assert_eq!(single.len(), 1);
        single.check_invariants().unwrap();

        // Identical centers: grid collision path.
        let dup = RTree::bulk_load_hilbert_with_params(
            RTreeParams::new(4),
            vec![(Rect::new(0.5, 0.5, 0.6, 0.6), 0usize); 50]
                .into_iter()
                .enumerate()
                .map(|(i, (r, _))| (r, i))
                .collect(),
        );
        assert_eq!(dup.len(), 50);
        dup.check_invariants().unwrap();
    }

    #[test]
    fn hilbert_packs_clustered_data_tightly() {
        // Clustered data: Hilbert leaves should not be (much) worse than
        // STR's in total area; typically they are comparable or better.
        let mut rng = StdRng::seed_from_u64(43);
        let mut items = Vec::new();
        for c in 0..4 {
            let cx = 0.2 + 0.6 * (c % 2) as f64;
            let cy = 0.2 + 0.6 * (c / 2) as f64;
            for i in 0..500 {
                let x = cx + rng.random_range(-0.05..0.05);
                let y = cy + rng.random_range(-0.05..0.05);
                items.push((Rect::new(x, y, x + 0.005, y + 0.005), c * 500 + i));
            }
        }
        let hil = RTree::bulk_load_hilbert_with_params(RTreeParams::new(16), items.clone());
        let str_ = RTree::bulk_load_with_params(RTreeParams::new(16), items);
        let hil_area = hil.stats().area_per_level[0];
        let str_area = str_.stats().area_per_level[0];
        assert!(
            hil_area <= str_area * 2.0,
            "hilbert leaf area {hil_area} vs STR {str_area}"
        );
    }
}
