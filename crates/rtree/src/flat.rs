//! Flat contiguous leaf-entry storage (structure-of-arrays).
//!
//! The slab layout of [`RTree`] stores leaf entries as
//! `Vec<Entry<T>>` per node — an array-of-structs whose 40-byte stride
//! (MBR + payload enum) and per-entry discriminant check make the
//! multi-window kernel's leaf scans branch-heavy and cache-unfriendly at
//! paper scale (10⁴–10⁵ objects per dataset). [`FlatLeaves`] is a frozen
//! side-car view of the same leaf level: four contiguous `f64` coordinate
//! arrays plus one value array, indexed per node by a `(start, len)` span,
//! so a leaf scan is a tight loop over adjacent memory with no enum
//! branches — the layout in-memory spatial join engines use for their
//! scan phases.
//!
//! A `FlatLeaves` is a **snapshot**: it is built from the current tree
//! contents ([`RTree::flat_leaves`]) and does not observe later inserts or
//! deletes. The intended use is bulk-load-once read-many workloads (all of
//! `mwsj-core`'s search instances); rebuild after mutating.
//!
//! The counter-compatibility contract (DESIGN.md §5f) requires scans over
//! this layout to be bit-identical to the entry layout: same coordinates,
//! same values, same entry order per node. [`FlatLeaves::new`] copies all
//! three verbatim, and the round-trip test below locks the guarantee.

use crate::node::{NodeId, Payload};
use crate::tree::RTree;
use mwsj_geom::{Point, Rect};

/// Frozen SoA copy of an [`RTree`]'s leaf level. See the module docs.
#[derive(Debug, Clone)]
pub struct FlatLeaves<T> {
    /// Lower-left x of every leaf entry, in (node, slot) order.
    lo_x: Vec<f64>,
    /// Lower-left y.
    lo_y: Vec<f64>,
    /// Upper-right x.
    hi_x: Vec<f64>,
    /// Upper-right y.
    hi_y: Vec<f64>,
    /// Leaf payloads, parallel to the coordinate arrays.
    values: Vec<T>,
    /// Per node-id `(start, len)` span into the arrays; `(0, 0)` for
    /// internal (and free-listed) nodes.
    spans: Vec<(u32, u32)>,
}

impl<T: Copy> FlatLeaves<T> {
    /// Builds the flat view by walking the tree from its root and copying
    /// every leaf node's entries in entry order.
    pub(crate) fn new(tree: &RTree<T>) -> Self {
        let mut flat = FlatLeaves {
            lo_x: Vec::with_capacity(tree.len()),
            lo_y: Vec::with_capacity(tree.len()),
            hi_x: Vec::with_capacity(tree.len()),
            hi_y: Vec::with_capacity(tree.len()),
            values: Vec::with_capacity(tree.len()),
            spans: vec![(0, 0); tree.node_count_slab()],
        };
        let mut stack = vec![tree.root_id()];
        while let Some(id) = stack.pop() {
            let node = tree.node(id);
            if node.is_leaf() {
                let start = flat.values.len() as u32;
                for entry in &node.entries {
                    let Payload::Data(v) = &entry.payload else {
                        unreachable!("leaf entry without data payload");
                    };
                    flat.lo_x.push(entry.mbr.min.x);
                    flat.lo_y.push(entry.mbr.min.y);
                    flat.hi_x.push(entry.mbr.max.x);
                    flat.hi_y.push(entry.mbr.max.y);
                    flat.values.push(*v);
                }
                flat.spans[id.index()] = (start, node.entries.len() as u32);
            } else {
                for entry in &node.entries {
                    stack.push(entry.child_id());
                }
            }
        }
        flat
    }
}

impl<T> FlatLeaves<T> {
    /// Total number of leaf entries captured by the snapshot.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the snapshot holds no leaf entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Bytes occupied by the SoA arrays (coordinates + values + spans) —
    /// the memory cost of keeping the fast path resident.
    pub fn memory_bytes(&self) -> usize {
        4 * self.lo_x.len() * std::mem::size_of::<f64>()
            + self.values.len() * std::mem::size_of::<T>()
            + self.spans.len() * std::mem::size_of::<(u32, u32)>()
    }

    /// The `(start, len)` span of leaf node `id`, as usizes.
    #[inline]
    pub(crate) fn span(&self, id: NodeId) -> (usize, usize) {
        let (start, len) = self.spans[id.index()];
        (start as usize, len as usize)
    }

    /// Reconstructs the MBR of flat entry `i`. Coordinates were stored
    /// normalised (`min ≤ max`), so this is branch-free.
    #[inline]
    pub(crate) fn rect(&self, i: usize) -> Rect {
        Rect {
            min: Point::new(self.lo_x[i], self.lo_y[i]),
            max: Point::new(self.hi_x[i], self.hi_y[i]),
        }
    }

    /// The value of flat entry `i`.
    #[inline]
    pub(crate) fn value(&self, i: usize) -> &T {
        &self.values[i]
    }
}

#[cfg(test)]
mod tests {
    use crate::{RTree, RTreeParams};
    use mwsj_geom::Rect;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_items(seed: u64, n: usize) -> Vec<(Rect, u32)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let x = rng.random_range(0.0..1.0);
                let y = rng.random_range(0.0..1.0);
                (Rect::new(x, y, x + 0.02, y + 0.02), i as u32)
            })
            .collect()
    }

    /// Every leaf node's span reproduces its entries verbatim, for both
    /// bulk-load flavours and an incremental build.
    #[test]
    fn flat_view_matches_entry_layout_per_node() {
        let items = random_items(3, 2_000);
        let mut incremental = RTree::with_params(RTreeParams::new(8));
        for (r, v) in &items {
            incremental.insert(*r, *v);
        }
        let trees = [
            RTree::bulk_load_with_params(RTreeParams::new(8), items.clone()),
            RTree::bulk_load_hilbert_with_params(RTreeParams::new(8), items.clone()),
            incremental,
        ];
        for tree in &trees {
            let flat = tree.flat_leaves();
            assert_eq!(flat.len(), tree.len());
            assert!(flat.memory_bytes() > 0);
            // Walk the tree; at each leaf, the span must mirror the node.
            let mut stack = vec![tree.root_id()];
            let mut seen = 0usize;
            while let Some(id) = stack.pop() {
                let node = tree.node(id);
                if node.is_leaf() {
                    let (start, len) = flat.span(id);
                    assert_eq!(len, node.entries.len());
                    for (slot, entry) in node.entries.iter().enumerate() {
                        assert_eq!(flat.rect(start + slot), entry.mbr);
                        match &entry.payload {
                            crate::node::Payload::Data(v) => {
                                assert_eq!(flat.value(start + slot), v)
                            }
                            _ => panic!("leaf entry without data"),
                        }
                        seen += 1;
                    }
                } else {
                    for entry in &node.entries {
                        stack.push(entry.child_id());
                    }
                }
            }
            assert_eq!(seen, tree.len());
        }
    }

    #[test]
    fn empty_tree_yields_empty_view() {
        let tree: RTree<u32> = RTree::new();
        let flat = tree.flat_leaves();
        assert!(flat.is_empty());
        assert_eq!(flat.len(), 0);
    }
}
