//! The `RTree` container: slab storage, construction, basic accessors.

use crate::node::{Entry, Node, NodeId, Payload};
use crate::params::RTreeParams;
use crate::visit::NodeRef;
use mwsj_geom::Rect;

/// An R*-tree over rectangles with payloads of type `T`.
///
/// In this project `T` is usually an object id (`u32`/`usize` index into a
/// dataset), but any type works; deletion additionally requires
/// `T: PartialEq` to identify the entry to remove.
///
/// ```
/// use mwsj_rtree::RTree;
/// use mwsj_geom::Rect;
///
/// let mut tree = RTree::new();
/// for i in 0..100u32 {
///     let x = (i % 10) as f64;
///     let y = (i / 10) as f64;
///     tree.insert(Rect::new(x, y, x + 0.5, y + 0.5), i);
/// }
/// assert_eq!(tree.len(), 100);
/// let window = Rect::new(0.0, 0.0, 1.0, 1.0);
/// let hits: Vec<_> = tree.window(&window).collect();
/// assert_eq!(hits.len(), 4); // (0,0), (1,0), (0,1), (1,1) — boundary touches count
/// ```
#[derive(Debug)]
pub struct RTree<T> {
    pub(crate) params: RTreeParams,
    pub(crate) nodes: Vec<Node<T>>,
    pub(crate) free: Vec<NodeId>,
    pub(crate) root: NodeId,
    /// Number of levels; the root node has `level == height - 1`.
    pub(crate) height: u32,
    pub(crate) len: usize,
}

impl<T> Default for RTree<T> {
    fn default() -> Self {
        RTree::new()
    }
}

impl<T> RTree<T> {
    /// Creates an empty tree with [`RTreeParams::default`].
    pub fn new() -> Self {
        RTree::with_params(RTreeParams::default())
    }

    /// Creates an empty tree with the given parameters.
    ///
    /// # Panics
    /// Panics if the parameters are invalid (see [`RTreeParams::validate`]).
    pub fn with_params(params: RTreeParams) -> Self {
        params
            .validate()
            .unwrap_or_else(|e| panic!("invalid R*-tree parameters: {e}"));
        let root_node = Node::new(0, params.max_entries);
        RTree {
            params,
            nodes: vec![root_node],
            free: Vec::new(),
            root: NodeId(0),
            height: 1,
            len: 0,
        }
    }

    /// Number of data entries stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the tree stores no data.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of levels (1 for a tree that is a single leaf).
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The structural parameters the tree was built with.
    #[inline]
    pub fn params(&self) -> &RTreeParams {
        &self.params
    }

    /// Number of live nodes (internal + leaf).
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Bounding box of the whole dataset ([`Rect::EMPTY`] when empty).
    pub fn bounding_box(&self) -> Rect {
        self.node(self.root).mbr()
    }

    /// Read-only view of the root node, entry point of the traversal API
    /// used by the join algorithms (`find best value`, ST, IBB).
    pub fn root_node(&self) -> NodeRef<'_, T> {
        NodeRef::new(self, self.root)
    }

    /// [`RTree::root_node`] with node accesses recorded into `counter`:
    /// the root counts immediately and every child materialised through
    /// [`EntryRef::child`](crate::EntryRef::child) below it counts once.
    pub fn root_node_counted<'a>(&'a self, counter: &'a crate::AccessCounter) -> NodeRef<'a, T> {
        NodeRef::counted(self, self.root, counter)
    }

    /// Builds a frozen structure-of-arrays snapshot of the leaf level for
    /// scan-heavy read paths (see [`FlatLeaves`](crate::FlatLeaves) and
    /// [`multiwindow::find_best_leaf_flat`](crate::find_best_leaf_flat)).
    /// The snapshot does not observe later mutations; rebuild after
    /// inserting or deleting.
    pub fn flat_leaves(&self) -> crate::FlatLeaves<T>
    where
        T: Copy,
    {
        crate::FlatLeaves::new(self)
    }

    /// Iterates over every stored `(mbr, payload)` pair, in tree order.
    pub fn iter(&self) -> impl Iterator<Item = (&Rect, &T)> + '_ {
        let mut stack = vec![self.root];
        let mut leaf_entries: Vec<(&Rect, &T)> = Vec::new();
        // Collect eagerly: trees here are static during iteration and this
        // keeps the iterator type simple.
        while let Some(id) = stack.pop() {
            let node = self.node(id);
            for e in &node.entries {
                match &e.payload {
                    Payload::Child(c) => stack.push(*c),
                    Payload::Data(v) => leaf_entries.push((&e.mbr, v)),
                }
            }
        }
        leaf_entries.into_iter()
    }

    // ------------------------------------------------------------------
    // Slab management (crate-internal)
    // ------------------------------------------------------------------

    #[inline]
    pub(crate) fn node(&self, id: NodeId) -> &Node<T> {
        &self.nodes[id.index()]
    }

    /// Id of the root node (for crate-internal traversals that need to
    /// address nodes, e.g. the flat-leaf snapshot).
    #[inline]
    pub(crate) fn root_id(&self) -> NodeId {
        self.root
    }

    /// Size of the node slab including free-listed slots — the bound for
    /// per-node side tables indexed by [`NodeId`].
    #[inline]
    pub(crate) fn node_count_slab(&self) -> usize {
        self.nodes.len()
    }

    #[inline]
    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut Node<T> {
        &mut self.nodes[id.index()]
    }

    pub(crate) fn alloc(&mut self, level: u32) -> NodeId {
        if let Some(id) = self.free.pop() {
            let cap = self.params.max_entries;
            let node = self.node_mut(id);
            node.level = level;
            node.entries.clear();
            node.entries.reserve(cap + 1);
            id
        } else {
            let id = NodeId(self.nodes.len() as u32);
            self.nodes.push(Node::new(level, self.params.max_entries));
            id
        }
    }

    pub(crate) fn dealloc(&mut self, id: NodeId) {
        self.node_mut(id).entries.clear();
        self.free.push(id);
    }

    /// Replaces the root with a fresh node one level higher whose children
    /// are the old root and `sibling` (used when the root splits).
    pub(crate) fn grow_root(&mut self, sibling: Entry<T>) {
        let old_root = self.root;
        let old_mbr = self.node(old_root).mbr();
        let new_level = self.node(old_root).level + 1;
        let new_root = self.alloc(new_level);
        let node = self.node_mut(new_root);
        node.entries.push(Entry::child(old_mbr, old_root));
        node.entries.push(sibling);
        self.root = new_root;
        self.height = new_level + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let tree: RTree<u32> = RTree::new();
        assert!(tree.is_empty());
        assert_eq!(tree.len(), 0);
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.node_count(), 1);
        assert!(tree.bounding_box().is_empty());
        assert_eq!(tree.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "invalid R*-tree parameters")]
    fn rejects_invalid_params() {
        let bad = RTreeParams {
            max_entries: 8,
            min_entries: 7,
            reinsert_count: 1,
        };
        let _: RTree<u32> = RTree::with_params(bad);
    }

    #[test]
    fn alloc_reuses_freed_nodes() {
        let mut tree: RTree<u32> = RTree::new();
        let a = tree.alloc(0);
        tree.dealloc(a);
        let b = tree.alloc(1);
        assert_eq!(a, b);
        assert_eq!(tree.node(b).level, 1);
    }
}
