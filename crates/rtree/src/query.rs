//! Window, point and predicate-based queries.
//!
//! All three query kinds run through one [`QueryIter`], which is also the
//! single place node accesses are counted: pass an
//! [`AccessCounter`](crate::AccessCounter) via the `*_counted` variants
//! and every visited node increments it exactly once (the root at query
//! start, every descendant when its subtree is entered).

use crate::access::AccessCounter;
use crate::node::{NodeId, Payload};
use crate::tree::RTree;
use mwsj_geom::{Point, Predicate, Rect};

/// Depth-first query iterator shared by all filter queries.
///
/// `node_filter` decides whether a subtree can contain results;
/// `leaf_filter` decides whether a data entry is a result. The iterator is
/// lazy: it visits nodes only as results are demanded.
pub struct QueryIter<'a, T, NF, LF>
where
    NF: Fn(&Rect) -> bool,
    LF: Fn(&Rect) -> bool,
{
    tree: &'a RTree<T>,
    /// Stack of (node, next-entry-index) cursors.
    stack: Vec<(NodeId, usize)>,
    node_filter: NF,
    leaf_filter: LF,
    /// Shared access-accounting hook; `None` disables counting.
    counter: Option<&'a AccessCounter>,
}

impl<'a, T, NF, LF> QueryIter<'a, T, NF, LF>
where
    NF: Fn(&Rect) -> bool,
    LF: Fn(&Rect) -> bool,
{
    fn new(
        tree: &'a RTree<T>,
        node_filter: NF,
        leaf_filter: LF,
        counter: Option<&'a AccessCounter>,
    ) -> Self {
        // The root is accessed as soon as the query starts.
        if let Some(c) = counter {
            c.inc();
        }
        QueryIter {
            tree,
            stack: vec![(tree.root, 0)],
            node_filter,
            leaf_filter,
            counter,
        }
    }
}

impl<'a, T, NF, LF> Iterator for QueryIter<'a, T, NF, LF>
where
    NF: Fn(&Rect) -> bool,
    LF: Fn(&Rect) -> bool,
{
    type Item = (&'a Rect, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some((node_id, cursor)) = self.stack.last_mut() {
            let node = self.tree.node(*node_id);
            if *cursor >= node.entries.len() {
                self.stack.pop();
                continue;
            }
            let entry = &node.entries[*cursor];
            *cursor += 1;
            match &entry.payload {
                Payload::Data(v) => {
                    if (self.leaf_filter)(&entry.mbr) {
                        return Some((&entry.mbr, v));
                    }
                }
                Payload::Child(child) => {
                    if (self.node_filter)(&entry.mbr) {
                        if let Some(c) = self.counter {
                            c.inc();
                        }
                        self.stack.push((*child, 0));
                    }
                }
            }
        }
        None
    }
}

impl<T> RTree<T> {
    /// All entries whose MBR intersects `window` (the classic window query).
    pub fn window<'a>(&'a self, window: &'a Rect) -> impl Iterator<Item = (&'a Rect, &'a T)> + 'a {
        QueryIter::new(
            self,
            move |node_mbr: &Rect| node_mbr.intersects(window),
            move |mbr: &Rect| mbr.intersects(window),
            None,
        )
    }

    /// [`RTree::window`] with node accesses recorded into `counter`.
    pub fn window_counted<'a>(
        &'a self,
        window: &'a Rect,
        counter: &'a AccessCounter,
    ) -> impl Iterator<Item = (&'a Rect, &'a T)> + 'a {
        QueryIter::new(
            self,
            move |node_mbr: &Rect| node_mbr.intersects(window),
            move |mbr: &Rect| mbr.intersects(window),
            Some(counter),
        )
    }

    /// All entries whose MBR contains `point`.
    pub fn point_query<'a>(
        &'a self,
        point: &'a Point,
    ) -> impl Iterator<Item = (&'a Rect, &'a T)> + 'a {
        QueryIter::new(
            self,
            move |node_mbr: &Rect| node_mbr.contains_point(point),
            move |mbr: &Rect| mbr.contains_point(point),
            None,
        )
    }

    /// [`RTree::point_query`] with node accesses recorded into `counter`.
    pub fn point_query_counted<'a>(
        &'a self,
        point: &'a Point,
        counter: &'a AccessCounter,
    ) -> impl Iterator<Item = (&'a Rect, &'a T)> + 'a {
        QueryIter::new(
            self,
            move |node_mbr: &Rect| node_mbr.contains_point(point),
            move |mbr: &Rect| mbr.contains_point(point),
            Some(counter),
        )
    }

    /// All entries `r` satisfying `r P window` for an arbitrary
    /// [`Predicate`], pruning subtrees with the predicate's node-level
    /// possibility test.
    ///
    /// For [`Predicate::Intersects`] this coincides with [`RTree::window`];
    /// the generalisation serves the extended predicates (inside,
    /// north-east, within-distance) the paper's Discussion mentions.
    pub fn query_predicate<'a>(
        &'a self,
        pred: Predicate,
        window: &'a Rect,
    ) -> impl Iterator<Item = (&'a Rect, &'a T)> + 'a {
        QueryIter::new(
            self,
            move |node_mbr: &Rect| pred.possible(node_mbr, window),
            move |mbr: &Rect| pred.eval(mbr, window),
            None,
        )
    }

    /// [`RTree::query_predicate`] with node accesses recorded into
    /// `counter`.
    pub fn query_predicate_counted<'a>(
        &'a self,
        pred: Predicate,
        window: &'a Rect,
        counter: &'a AccessCounter,
    ) -> impl Iterator<Item = (&'a Rect, &'a T)> + 'a {
        QueryIter::new(
            self,
            move |node_mbr: &Rect| pred.possible(node_mbr, window),
            move |mbr: &Rect| pred.eval(mbr, window),
            Some(counter),
        )
    }

    /// Counts entries intersecting `window` without materialising them.
    pub fn count_window(&self, window: &Rect) -> usize {
        self.window(window).count()
    }

    /// [`RTree::count_window`] with node accesses recorded into `counter`.
    pub fn count_window_counted(&self, window: &Rect, counter: &AccessCounter) -> usize {
        self.window_counted(window, counter).count()
    }
}

#[cfg(test)]
mod tests {
    use crate::{RTree, RTreeParams};
    use mwsj_geom::{Point, Predicate, Rect};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_tree(n: usize, seed: u64) -> (RTree<usize>, Vec<Rect>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rects: Vec<Rect> = (0..n)
            .map(|_| {
                let x: f64 = rng.random_range(0.0..1.0);
                let y: f64 = rng.random_range(0.0..1.0);
                let w: f64 = rng.random_range(0.0..0.08);
                let h: f64 = rng.random_range(0.0..0.08);
                Rect::new(x, y, x + w, y + h)
            })
            .collect();
        let tree = RTree::bulk_load_with_params(
            RTreeParams::new(8),
            rects.iter().copied().zip(0..n).collect(),
        );
        (tree, rects)
    }

    /// Window results must match a brute-force scan exactly.
    #[test]
    fn window_matches_linear_scan() {
        let (tree, rects) = random_tree(2_000, 11);
        let windows = [
            Rect::new(0.1, 0.1, 0.3, 0.3),
            Rect::new(0.0, 0.0, 1.0, 1.0),
            Rect::new(0.95, 0.95, 0.99, 0.99),
            Rect::new(2.0, 2.0, 3.0, 3.0), // off the workspace
        ];
        for w in &windows {
            let mut got: Vec<usize> = tree.window(w).map(|(_, v)| *v).collect();
            got.sort_unstable();
            let expected: Vec<usize> = rects
                .iter()
                .enumerate()
                .filter(|(_, r)| r.intersects(w))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(got, expected, "window {w}");
        }
    }

    #[test]
    fn point_query_matches_scan() {
        let (tree, rects) = random_tree(1_000, 12);
        let p = Point::new(0.5, 0.5);
        let mut got: Vec<usize> = tree.point_query(&p).map(|(_, v)| *v).collect();
        got.sort_unstable();
        let expected: Vec<usize> = rects
            .iter()
            .enumerate()
            .filter(|(_, r)| r.contains_point(&p))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn predicate_query_matches_scan_for_all_predicates() {
        let (tree, rects) = random_tree(1_500, 13);
        let window = Rect::new(0.4, 0.4, 0.6, 0.6);
        let preds = [
            Predicate::Intersects,
            Predicate::Inside,
            Predicate::Contains,
            Predicate::NorthEast,
            Predicate::SouthWest,
            Predicate::WithinDistance(0.1),
        ];
        for p in preds {
            let mut got: Vec<usize> = tree.query_predicate(p, &window).map(|(_, v)| *v).collect();
            got.sort_unstable();
            let expected: Vec<usize> = rects
                .iter()
                .enumerate()
                .filter(|(_, r)| p.eval(r, &window))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(got, expected, "predicate {p}");
        }
    }

    #[test]
    fn empty_tree_returns_nothing() {
        let tree: RTree<usize> = RTree::new();
        assert_eq!(tree.window(&Rect::new(0.0, 0.0, 1.0, 1.0)).count(), 0);
        assert_eq!(tree.point_query(&Point::new(0.0, 0.0)).count(), 0);
    }

    #[test]
    fn window_query_is_lazy() {
        let (tree, _) = random_tree(5_000, 14);
        // Taking only the first result must not traverse the whole tree —
        // smoke-tested by just taking one.
        let w = Rect::new(0.0, 0.0, 1.0, 1.0);
        let first = tree.window(&w).next();
        assert!(first.is_some());
    }

    #[test]
    fn count_window_equals_iterator_count() {
        let (tree, _) = random_tree(800, 15);
        let w = Rect::new(0.2, 0.2, 0.7, 0.7);
        assert_eq!(tree.count_window(&w), tree.window(&w).count());
    }

    #[test]
    fn counted_queries_record_accesses() {
        use crate::AccessCounter;
        let (tree, _) = random_tree(2_000, 16);
        let counter = AccessCounter::new();

        // Full-coverage window touches every node exactly once.
        let w = Rect::new(-1.0, -1.0, 2.0, 2.0);
        let n = tree.window_counted(&w, &counter).count();
        assert_eq!(n, 2_000);
        assert_eq!(counter.take(), tree.node_count() as u64);

        // A selective window touches at least the root and at most all
        // nodes, and returns the same results as the uncounted query.
        let w = Rect::new(0.4, 0.4, 0.5, 0.5);
        let counted: Vec<usize> = tree.window_counted(&w, &counter).map(|(_, v)| *v).collect();
        let plain: Vec<usize> = tree.window(&w).map(|(_, v)| *v).collect();
        assert_eq!(counted, plain);
        let accesses = counter.take();
        assert!(accesses >= 1 && accesses <= tree.node_count() as u64);

        // Predicate and point variants also count.
        let _ = tree
            .query_predicate_counted(Predicate::Intersects, &w, &counter)
            .count();
        assert!(counter.take() >= 1);
        let _ = tree
            .point_query_counted(&Point::new(0.5, 0.5), &counter)
            .count();
        assert!(counter.take() >= 1);
        assert_eq!(
            tree.count_window_counted(&w, &counter),
            tree.count_window(&w)
        );
        assert!(counter.get() >= 1);
    }

    #[test]
    fn counted_and_uncounted_visit_same_nodes() {
        use crate::AccessCounter;
        let (tree, _) = random_tree(500, 17);
        let w = Rect::new(0.1, 0.1, 0.9, 0.9);
        let counter = AccessCounter::new();
        // Counting must not change pruning decisions.
        assert_eq!(
            tree.window_counted(&w, &counter).count(),
            tree.window(&w).count()
        );
    }
}
