//! Window, point and predicate-based queries.

use crate::node::{NodeId, Payload};
use crate::tree::RTree;
use mwsj_geom::{Point, Predicate, Rect};

/// Depth-first query iterator shared by all filter queries.
///
/// `node_filter` decides whether a subtree can contain results;
/// `leaf_filter` decides whether a data entry is a result. The iterator is
/// lazy: it visits nodes only as results are demanded.
pub struct QueryIter<'a, T, NF, LF>
where
    NF: Fn(&Rect) -> bool,
    LF: Fn(&Rect) -> bool,
{
    tree: &'a RTree<T>,
    /// Stack of (node, next-entry-index) cursors.
    stack: Vec<(NodeId, usize)>,
    node_filter: NF,
    leaf_filter: LF,
}

impl<'a, T, NF, LF> Iterator for QueryIter<'a, T, NF, LF>
where
    NF: Fn(&Rect) -> bool,
    LF: Fn(&Rect) -> bool,
{
    type Item = (&'a Rect, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some((node_id, cursor)) = self.stack.last_mut() {
            let node = self.tree.node(*node_id);
            if *cursor >= node.entries.len() {
                self.stack.pop();
                continue;
            }
            let entry = &node.entries[*cursor];
            *cursor += 1;
            match &entry.payload {
                Payload::Data(v) => {
                    if (self.leaf_filter)(&entry.mbr) {
                        return Some((&entry.mbr, v));
                    }
                }
                Payload::Child(child) => {
                    if (self.node_filter)(&entry.mbr) {
                        self.stack.push((*child, 0));
                    }
                }
            }
        }
        None
    }
}

impl<T> RTree<T> {
    /// All entries whose MBR intersects `window` (the classic window query).
    pub fn window<'a>(&'a self, window: &'a Rect) -> impl Iterator<Item = (&'a Rect, &'a T)> + 'a {
        QueryIter {
            tree: self,
            stack: vec![(self.root, 0)],
            node_filter: move |node_mbr: &Rect| node_mbr.intersects(window),
            leaf_filter: move |mbr: &Rect| mbr.intersects(window),
        }
    }

    /// All entries whose MBR contains `point`.
    pub fn point_query<'a>(
        &'a self,
        point: &'a Point,
    ) -> impl Iterator<Item = (&'a Rect, &'a T)> + 'a {
        QueryIter {
            tree: self,
            stack: vec![(self.root, 0)],
            node_filter: move |node_mbr: &Rect| node_mbr.contains_point(point),
            leaf_filter: move |mbr: &Rect| mbr.contains_point(point),
        }
    }

    /// All entries `r` satisfying `r P window` for an arbitrary
    /// [`Predicate`], pruning subtrees with the predicate's node-level
    /// possibility test.
    ///
    /// For [`Predicate::Intersects`] this coincides with [`RTree::window`];
    /// the generalisation serves the extended predicates (inside,
    /// north-east, within-distance) the paper's Discussion mentions.
    pub fn query_predicate<'a>(
        &'a self,
        pred: Predicate,
        window: &'a Rect,
    ) -> impl Iterator<Item = (&'a Rect, &'a T)> + 'a {
        QueryIter {
            tree: self,
            stack: vec![(self.root, 0)],
            node_filter: move |node_mbr: &Rect| pred.possible(node_mbr, window),
            leaf_filter: move |mbr: &Rect| pred.eval(mbr, window),
        }
    }

    /// Counts entries intersecting `window` without materialising them.
    pub fn count_window(&self, window: &Rect) -> usize {
        self.window(window).count()
    }
}

#[cfg(test)]
mod tests {
    use crate::{RTree, RTreeParams};
    use mwsj_geom::{Point, Predicate, Rect};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_tree(n: usize, seed: u64) -> (RTree<usize>, Vec<Rect>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rects: Vec<Rect> = (0..n)
            .map(|_| {
                let x: f64 = rng.random_range(0.0..1.0);
                let y: f64 = rng.random_range(0.0..1.0);
                let w: f64 = rng.random_range(0.0..0.08);
                let h: f64 = rng.random_range(0.0..0.08);
                Rect::new(x, y, x + w, y + h)
            })
            .collect();
        let tree = RTree::bulk_load_with_params(
            RTreeParams::new(8),
            rects.iter().copied().zip(0..n).collect(),
        );
        (tree, rects)
    }

    /// Window results must match a brute-force scan exactly.
    #[test]
    fn window_matches_linear_scan() {
        let (tree, rects) = random_tree(2_000, 11);
        let windows = [
            Rect::new(0.1, 0.1, 0.3, 0.3),
            Rect::new(0.0, 0.0, 1.0, 1.0),
            Rect::new(0.95, 0.95, 0.99, 0.99),
            Rect::new(2.0, 2.0, 3.0, 3.0), // off the workspace
        ];
        for w in &windows {
            let mut got: Vec<usize> = tree.window(w).map(|(_, v)| *v).collect();
            got.sort_unstable();
            let expected: Vec<usize> = rects
                .iter()
                .enumerate()
                .filter(|(_, r)| r.intersects(w))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(got, expected, "window {w}");
        }
    }

    #[test]
    fn point_query_matches_scan() {
        let (tree, rects) = random_tree(1_000, 12);
        let p = Point::new(0.5, 0.5);
        let mut got: Vec<usize> = tree.point_query(&p).map(|(_, v)| *v).collect();
        got.sort_unstable();
        let expected: Vec<usize> = rects
            .iter()
            .enumerate()
            .filter(|(_, r)| r.contains_point(&p))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn predicate_query_matches_scan_for_all_predicates() {
        let (tree, rects) = random_tree(1_500, 13);
        let window = Rect::new(0.4, 0.4, 0.6, 0.6);
        let preds = [
            Predicate::Intersects,
            Predicate::Inside,
            Predicate::Contains,
            Predicate::NorthEast,
            Predicate::SouthWest,
            Predicate::WithinDistance(0.1),
        ];
        for p in preds {
            let mut got: Vec<usize> = tree.query_predicate(p, &window).map(|(_, v)| *v).collect();
            got.sort_unstable();
            let expected: Vec<usize> = rects
                .iter()
                .enumerate()
                .filter(|(_, r)| p.eval(r, &window))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(got, expected, "predicate {p}");
        }
    }

    #[test]
    fn empty_tree_returns_nothing() {
        let tree: RTree<usize> = RTree::new();
        assert_eq!(tree.window(&Rect::new(0.0, 0.0, 1.0, 1.0)).count(), 0);
        assert_eq!(tree.point_query(&Point::new(0.0, 0.0)).count(), 0);
    }

    #[test]
    fn window_query_is_lazy() {
        let (tree, _) = random_tree(5_000, 14);
        // Taking only the first result must not traverse the whole tree —
        // smoke-tested by just taking one.
        let w = Rect::new(0.0, 0.0, 1.0, 1.0);
        let first = tree.window(&w).next();
        assert!(first.is_some());
    }

    #[test]
    fn count_window_equals_iterator_count() {
        let (tree, _) = random_tree(800, 15);
        let w = Rect::new(0.2, 0.2, 0.7, 0.7);
        assert_eq!(tree.count_window(&w), tree.window(&w).count());
    }
}
