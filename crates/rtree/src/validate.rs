//! Structural invariant checking, used heavily by the test suite.

use crate::node::{NodeId, Payload};
use crate::tree::RTree;
use std::collections::HashSet;

impl<T> RTree<T> {
    /// Verifies every structural invariant of the tree:
    ///
    /// 1. node levels decrease by exactly one along child edges, leaves sit
    ///    at level 0 and the root at `height - 1`;
    /// 2. every internal entry's MBR equals (within fp tolerance) the tight
    ///    union of its child's entries;
    /// 3. occupancy: every node holds at most `M` entries and every
    ///    non-root node at least `m`; an internal root holds at least 2;
    /// 4. no node is reachable twice and no reachable node is on the free
    ///    list;
    /// 5. the recorded `len` equals the number of reachable data entries.
    ///
    /// Returns a description of the first violation found.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut seen: HashSet<u32> = HashSet::new();
        let free: HashSet<u32> = self.free.iter().map(|id| id.0).collect();
        let mut data_count = 0usize;

        let root = self.root;
        if self.node(root).level + 1 != self.height {
            return Err(format!(
                "root level {} inconsistent with height {}",
                self.node(root).level,
                self.height
            ));
        }

        let mut stack: Vec<NodeId> = vec![root];
        while let Some(id) = stack.pop() {
            if !seen.insert(id.0) {
                return Err(format!("node {} reachable twice", id.0));
            }
            if free.contains(&id.0) {
                return Err(format!("node {} is on the free list but reachable", id.0));
            }
            let node = self.node(id);

            // Occupancy.
            if node.entries.len() > self.params.max_entries {
                return Err(format!(
                    "node {} overflows: {} > M = {}",
                    id.0,
                    node.entries.len(),
                    self.params.max_entries
                ));
            }
            if id != root && node.entries.len() < self.params.min_entries {
                return Err(format!(
                    "node {} underflows: {} < m = {}",
                    id.0,
                    node.entries.len(),
                    self.params.min_entries
                ));
            }
            if id == root && !node.is_leaf() && node.entries.len() < 2 {
                return Err("internal root with fewer than 2 entries".into());
            }

            for (slot, e) in node.entries.iter().enumerate() {
                if !e.mbr.is_finite() && !e.mbr.is_empty() {
                    return Err(format!("node {} slot {slot}: non-finite MBR", id.0));
                }
                match &e.payload {
                    Payload::Data(_) => {
                        if !node.is_leaf() {
                            return Err(format!(
                                "data entry in internal node {} (level {})",
                                id.0, node.level
                            ));
                        }
                        data_count += 1;
                    }
                    Payload::Child(child_id) => {
                        if node.is_leaf() {
                            return Err(format!("child entry in leaf node {}", id.0));
                        }
                        let child = self.node(*child_id);
                        if child.level + 1 != node.level {
                            return Err(format!(
                                "child {} at level {} under parent {} at level {}",
                                child_id.0, child.level, id.0, node.level
                            ));
                        }
                        let tight = child.mbr();
                        if !rects_close(&e.mbr, &tight) {
                            return Err(format!(
                                "stale MBR for child {}: stored {} vs tight {}",
                                child_id.0, e.mbr, tight
                            ));
                        }
                        stack.push(*child_id);
                    }
                }
            }
        }

        if data_count != self.len {
            return Err(format!(
                "len mismatch: recorded {}, reachable {}",
                self.len, data_count
            ));
        }
        Ok(())
    }
}

/// Exact equality is expected — MBRs are recomputed as exact unions — but a
/// tiny tolerance guards against platform fp quirks in future refactors.
fn rects_close(a: &mwsj_geom::Rect, b: &mwsj_geom::Rect) -> bool {
    if a.is_empty() && b.is_empty() {
        return true;
    }
    const EPS: f64 = 1e-12;
    (a.min.x - b.min.x).abs() <= EPS
        && (a.min.y - b.min.y).abs() <= EPS
        && (a.max.x - b.max.x).abs() <= EPS
        && (a.max.y - b.max.y).abs() <= EPS
}

#[cfg(test)]
mod proptests {
    use crate::{RTree, RTreeParams};
    use mwsj_geom::Rect;
    use proptest::prelude::*;

    fn arb_rects(max: usize) -> impl Strategy<Value = Vec<Rect>> {
        prop::collection::vec(
            (0.0f64..1.0, 0.0f64..1.0, 0.0f64..0.1, 0.0f64..0.1)
                .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h)),
            1..max,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Inserting any sequence of rectangles keeps all invariants and
        /// makes every rectangle findable by a window query on itself.
        #[test]
        fn insert_preserves_invariants(rects in arb_rects(300)) {
            let mut tree = RTree::with_params(RTreeParams::new(4));
            for (i, r) in rects.iter().enumerate() {
                tree.insert(*r, i);
            }
            prop_assert!(tree.check_invariants().is_ok());
            for (i, r) in rects.iter().enumerate() {
                prop_assert!(
                    tree.window(r).any(|(_, v)| *v == i),
                    "rect {i} not found by self-window"
                );
            }
        }

        /// Bulk loading is equivalent to insertion w.r.t. query results.
        #[test]
        fn bulk_load_equivalent_to_inserts(rects in arb_rects(300)) {
            let bulk = RTree::bulk_load_with_params(
                RTreeParams::new(4),
                rects.iter().copied().zip(0usize..).collect(),
            );
            prop_assert!(bulk.check_invariants().is_ok());
            let mut incr = RTree::with_params(RTreeParams::new(4));
            for (i, r) in rects.iter().enumerate() {
                incr.insert(*r, i);
            }
            let w = Rect::new(0.25, 0.25, 0.75, 0.75);
            let mut a: Vec<usize> = bulk.window(&w).map(|(_, v)| *v).collect();
            let mut b: Vec<usize> = incr.window(&w).map(|(_, v)| *v).collect();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }

        /// Insert + delete round-trips to an empty tree with invariants held
        /// at every step boundary.
        #[test]
        fn insert_delete_roundtrip(rects in arb_rects(150)) {
            let mut tree = RTree::with_params(RTreeParams::new(4));
            for (i, r) in rects.iter().enumerate() {
                tree.insert(*r, i);
            }
            for (i, r) in rects.iter().enumerate() {
                prop_assert!(tree.remove(r, &i), "remove {i} failed");
            }
            prop_assert!(tree.is_empty());
            prop_assert!(tree.check_invariants().is_ok());
        }
    }
}
