//! An arena-based R*-tree.
//!
//! This crate implements the index substrate of the EDBT 2002 paper: the
//! R*-tree of Beckmann, Kriegel, Schneider and Seeger (SIGMOD 1990), the
//! structure the paper assumes over every input dataset ("for the rest of
//! the paper we consider that all datasets are indexed by R*-trees on
//! minimum bounding rectangles").
//!
//! Features:
//!
//! * **Dynamic insertion** with R* subtree choice (minimum overlap
//!   enlargement at the leaf level), topological split and forced
//!   reinsertion (30 % of the node on first overflow per level).
//! * **Deletion** with tree condensation and orphan re-insertion.
//! * **STR bulk loading** (Sort-Tile-Recursive) for building an index over a
//!   static dataset in one pass — used by the experiment harness, which
//!   builds trees over 10⁴–10⁵ objects per query variable.
//! * **Queries**: window (rectangle intersection), generic
//!   [`Predicate`](mwsj_geom::Predicate)-based candidate enumeration,
//!   point queries and best-first k-nearest-neighbour search.
//! * A **read-only traversal API** ([`NodeRef`]/[`EntryRef`]) that the join
//!   algorithms in `mwsj-core` use to drive custom branch-and-bound
//!   traversals (the paper's *find best value*, synchronous traversal and
//!   IBB) while counting node accesses themselves.
//! * A **multi-window branch-and-bound kernel** ([`find_best_leaf`]):
//!   the best-first, prune-by-potential traversal of the paper's *find
//!   best value* (Fig. 5) with a caller-supplied leaf scorer, shared by
//!   the raw (ILS/SEA/IBB) and λ-penalised (GILS) search paths.
//! * A shared **access-accounting hook** ([`AccessCounter`]): every
//!   traversal path — insertion, window/point/predicate queries, k-NN,
//!   bulk load and the visit API — has a `*_counted` variant that records
//!   one access per node touched into a caller-supplied counter.
//! * An **invariant checker** ([`RTree::check_invariants`]) used by the test
//!   suite and property tests.
//!
//! The tree stores nodes in a slab (`Vec`) addressed by compact ids — no
//! pointer chasing through boxes, no unsafe code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
mod bulk;
mod bulk_hilbert;
mod delete;
mod flat;
mod footprint;
pub mod grid;
mod insert;
mod knn;
pub mod multiwindow;
mod node;
mod params;
mod query;
mod split;
mod stats;
mod tree;
mod validate;
mod visit;

pub use access::AccessCounter;
pub use flat::FlatLeaves;
pub use grid::{GridStats, UniformGrid};
pub use knn::Neighbor;
pub use multiwindow::{
    find_best_leaf, find_best_leaf_flat, find_best_leaf_flat_leveled, find_best_leaf_leveled,
    BestLeaf,
};
pub use params::RTreeParams;
pub use stats::TreeStats;
pub use tree::RTree;
pub use visit::{EntryRef, NodeRef};
