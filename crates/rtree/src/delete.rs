//! Deletion with tree condensation (Guttman's CondenseTree adapted to the
//! arena layout): underfull nodes are dissolved and their entries
//! re-inserted at their original level.

use crate::node::{Entry, NodeId, Payload};
use crate::tree::RTree;
use mwsj_geom::Rect;

impl<T: PartialEq> RTree<T> {
    /// Removes one entry whose MBR equals `mbr` and whose payload equals
    /// `value`. Returns `true` if an entry was found and removed.
    ///
    /// If several identical entries exist, exactly one is removed.
    pub fn remove(&mut self, mbr: &Rect, value: &T) -> bool {
        let mut orphans: Vec<(Entry<T>, u32)> = Vec::new();
        let root = self.root;
        let found = self.remove_rec(root, mbr, value, &mut orphans);
        if !found {
            return false;
        }
        self.len -= 1;

        // Re-insert orphaned entries at their original levels.
        while let Some((entry, level)) = orphans.pop() {
            // `level` may exceed the current height if the tree shrank; the
            // shrink step below runs first in practice because orphans are
            // collected bottom-up, but clamp defensively.
            self.reinsert_orphan(entry, level, &mut orphans);
        }

        // Shrink the root while it is an internal node with a single child.
        while !self.node(self.root).is_leaf() && self.node(self.root).entries.len() == 1 {
            let child = self.node(self.root).entries[0].child_id();
            let old_root = self.root;
            self.dealloc(old_root);
            self.root = child;
            self.height = self.node(child).level + 1;
        }
        // An empty internal root can occur if everything was deleted.
        if self.len == 0 && !self.node(self.root).is_leaf() {
            let old_root = self.root;
            self.dealloc(old_root);
            let leaf = self.alloc(0);
            self.root = leaf;
            self.height = 1;
        }
        true
    }

    /// Depth-first search for the entry; on the way back up, condenses
    /// underfull children. Returns whether the entry was removed below.
    fn remove_rec(
        &mut self,
        node_id: NodeId,
        mbr: &Rect,
        value: &T,
        orphans: &mut Vec<(Entry<T>, u32)>,
    ) -> bool {
        if self.node(node_id).is_leaf() {
            let node = self.node_mut(node_id);
            if let Some(pos) = node
                .entries
                .iter()
                .position(|e| e.mbr == *mbr && matches!(&e.payload, Payload::Data(v) if v == value))
            {
                node.entries.swap_remove(pos);
                return true;
            }
            return false;
        }

        let slots = self.node(node_id).entries.len();
        for slot in 0..slots {
            let (child_mbr, child_id) = {
                let e = &self.node(node_id).entries[slot];
                (e.mbr, e.child_id())
            };
            // The MBR invariant guarantees the entry's MBR is fully
            // contained in every ancestor MBR, so non-covering children
            // cannot hold it.
            if !child_mbr.contains(mbr) {
                continue;
            }
            if self.remove_rec(child_id, mbr, value, orphans) {
                let child_len = self.node(child_id).entries.len();
                if child_len < self.params.min_entries {
                    // Dissolve the underfull child: orphan its entries.
                    let level = self.node(child_id).level;
                    let entries = std::mem::take(&mut self.node_mut(child_id).entries);
                    orphans.extend(entries.into_iter().map(|e| (e, level)));
                    self.dealloc(child_id);
                    self.node_mut(node_id).entries.swap_remove(slot);
                } else {
                    self.node_mut(node_id).entries[slot].mbr = self.node(child_id).mbr();
                }
                return true;
            }
        }
        false
    }

    /// Re-inserts an orphaned entry at its level, splitting as needed.
    /// Orphans skip forced reinsertion (they are already being reinserted).
    fn reinsert_orphan(
        &mut self,
        entry: Entry<T>,
        target_level: u32,
        _orphans: &mut [(Entry<T>, u32)],
    ) {
        // If the tree shrank below the orphan's level, splice the orphan's
        // subtree back by raising the root.
        if target_level >= self.height {
            // The orphan is a subtree as tall as (or taller than) the tree:
            // grow the root until it can hold the orphan.
            while target_level >= self.height {
                let old_root = self.root;
                let old_mbr = self.node(old_root).mbr();
                let lvl = self.node(old_root).level + 1;
                let new_root = self.alloc(lvl);
                self.node_mut(new_root)
                    .entries
                    .push(Entry::child(old_mbr, old_root));
                self.root = new_root;
                self.height = lvl + 1;
            }
        }

        let mbr = entry.mbr;
        let mut path: Vec<(NodeId, usize)> = Vec::new();
        let mut cur = self.root;
        while self.node(cur).level > target_level {
            let slot = self.choose_subtree(cur, &mbr);
            let child = self.node(cur).entries[slot].child_id();
            path.push((cur, slot));
            cur = child;
        }
        self.node_mut(cur).entries.push(entry);

        let mut split_sibling: Option<Entry<T>> = None;
        loop {
            if self.node(cur).entries.len() > self.params.max_entries {
                split_sibling = Some(self.split_node(cur));
            }
            match path.pop() {
                None => {
                    if let Some(sib) = split_sibling.take() {
                        self.grow_root(sib);
                    }
                    return;
                }
                Some((parent, slot)) => {
                    let child_mbr = self.node(cur).mbr();
                    let parent_node = self.node_mut(parent);
                    parent_node.entries[slot].mbr = child_mbr;
                    if let Some(sib) = split_sibling.take() {
                        parent_node.entries.push(sib);
                    }
                    cur = parent;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{RTree, RTreeParams};
    use mwsj_geom::Rect;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn rect_for(i: usize) -> Rect {
        let x = (i % 20) as f64;
        let y = (i / 20) as f64;
        Rect::new(x, y, x + 0.7, y + 0.7)
    }

    #[test]
    fn remove_missing_returns_false() {
        let mut tree: RTree<usize> = RTree::new();
        tree.insert(rect_for(0), 0);
        assert!(!tree.remove(&rect_for(1), &1));
        assert!(!tree.remove(&rect_for(0), &5)); // right rect, wrong payload
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn insert_then_remove_everything() {
        let mut tree: RTree<usize> = RTree::with_params(RTreeParams::new(4));
        let n = 300;
        for i in 0..n {
            tree.insert(rect_for(i), i);
        }
        tree.check_invariants().unwrap();
        for i in 0..n {
            assert!(tree.remove(&rect_for(i), &i), "entry {i} not found");
            if i % 37 == 0 {
                tree.check_invariants().unwrap();
            }
        }
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 1);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn remove_in_random_order() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut tree: RTree<usize> = RTree::with_params(RTreeParams::new(5));
        let n = 400;
        let mut rects = Vec::new();
        for i in 0..n {
            let x: f64 = rng.random_range(0.0..1.0);
            let y: f64 = rng.random_range(0.0..1.0);
            let r = Rect::new(x, y, x + 0.01, y + 0.01);
            rects.push(r);
            tree.insert(r, i);
        }
        // Shuffle removal order.
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        for (k, &i) in order.iter().enumerate() {
            assert!(tree.remove(&rects[i], &i));
            if k % 50 == 0 {
                tree.check_invariants().unwrap();
            }
        }
        assert!(tree.is_empty());
    }

    #[test]
    fn removed_entries_are_not_found_by_queries() {
        let mut tree: RTree<usize> = RTree::new();
        for i in 0..100 {
            tree.insert(rect_for(i), i);
        }
        for i in (0..100).step_by(2) {
            tree.remove(&rect_for(i), &i);
        }
        let all: Vec<usize> = tree.iter().map(|(_, v)| *v).collect();
        assert_eq!(all.len(), 50);
        assert!(all.iter().all(|v| v % 2 == 1));
        tree.check_invariants().unwrap();
    }

    #[test]
    fn duplicate_entries_removed_one_at_a_time() {
        let mut tree: RTree<u32> = RTree::new();
        let r = Rect::new(0.0, 0.0, 1.0, 1.0);
        tree.insert(r, 9);
        tree.insert(r, 9);
        assert!(tree.remove(&r, &9));
        assert_eq!(tree.len(), 1);
        assert!(tree.remove(&r, &9));
        assert!(tree.is_empty());
        assert!(!tree.remove(&r, &9));
    }
}
