//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! STR packs a static dataset into a fully-built tree in `O(N log N)`:
//! sort by x-center, cut into `⌈√P⌉` vertical slices (P = number of leaves),
//! sort each slice by y-center and pack runs of `M` entries into leaves;
//! repeat one level up until a single node remains. The experiment harness
//! uses this to build indexes over 10⁴–10⁵ objects per dataset in
//! milliseconds rather than running one R* insertion per object.

use crate::node::Entry;
use crate::params::RTreeParams;
use crate::tree::RTree;
use mwsj_geom::Rect;

impl<T> RTree<T> {
    /// Builds a tree over `items` using STR packing and default parameters.
    pub fn bulk_load(items: Vec<(Rect, T)>) -> Self {
        Self::bulk_load_with_params(RTreeParams::default(), items)
    }

    /// Builds a tree over `items` using STR packing.
    pub fn bulk_load_with_params(params: RTreeParams, items: Vec<(Rect, T)>) -> Self {
        Self::bulk_load_impl(params, items, None)
    }

    /// [`RTree::bulk_load_with_params`] with node accesses recorded into
    /// `counter`: one access per node written during packing.
    pub fn bulk_load_with_params_counted(
        params: RTreeParams,
        items: Vec<(Rect, T)>,
        counter: &crate::AccessCounter,
    ) -> Self {
        Self::bulk_load_impl(params, items, Some(counter))
    }

    fn bulk_load_impl(
        params: RTreeParams,
        items: Vec<(Rect, T)>,
        counter: Option<&crate::AccessCounter>,
    ) -> Self {
        let mut tree = RTree::with_params(params);
        if items.is_empty() {
            return tree;
        }
        tree.len = items.len();
        debug_assert!(items.iter().all(|(r, _)| r.is_finite()));

        let entries: Vec<Entry<T>> = items
            .into_iter()
            .map(|(mbr, v)| Entry::data(mbr, v))
            .collect();

        // Pack level by level until everything fits in one node.
        let mut level = 0u32;
        let mut current = entries;
        loop {
            if current.len() <= params.max_entries {
                // Root node at this level.
                tree.dealloc_initial_root_if_needed(level);
                let root = tree.alloc(level);
                tree.node_mut(root).entries = current;
                tree.root = root;
                tree.height = level + 1;
                if let Some(c) = counter {
                    c.inc();
                }
                return tree;
            }
            let groups = str_partition(current, params.max_entries);
            let mut parents: Vec<Entry<T>> = Vec::with_capacity(groups.len());
            for group in groups {
                let id = tree.alloc(level);
                tree.node_mut(id).entries = group;
                let mbr = tree.node(id).mbr();
                parents.push(Entry::child(mbr, id));
                if let Some(c) = counter {
                    c.inc();
                }
            }
            current = parents;
            level += 1;
        }
    }

    /// The constructor pre-allocates an empty leaf root; when bulk loading
    /// at leaf level we can reuse it via the free list.
    fn dealloc_initial_root_if_needed(&mut self, _level: u32) {
        if self.node(self.root).entries.is_empty() {
            let r = self.root;
            self.dealloc(r);
        }
    }
}

/// Partitions entries into groups of at most `cap` using the STR tiling.
///
/// Group sizes are distributed evenly (instead of filling nodes to `cap`
/// and leaving a short tail), which guarantees every group holds at least
/// `⌊cap/2⌋ ≥ min_entries` members, so bulk-loaded trees satisfy the same
/// occupancy invariants as dynamically built ones.
fn str_partition<T>(mut entries: Vec<Entry<T>>, cap: usize) -> Vec<Vec<Entry<T>>> {
    let n = entries.len();
    debug_assert!(n > cap);
    let group_count = n.div_ceil(cap);
    let slice_count = (group_count as f64).sqrt().ceil() as usize;

    // Vertical slices by x-center.
    entries.sort_by(|a, b| {
        a.mbr
            .center()
            .x
            .partial_cmp(&b.mbr.center().x)
            .expect("finite MBRs")
    });

    let mut groups = Vec::with_capacity(group_count);
    for mut slice in even_chunks(entries, slice_count) {
        // Within the slice, horizontal runs by y-center.
        slice.sort_by(|a, b| {
            a.mbr
                .center()
                .y
                .partial_cmp(&b.mbr.center().y)
                .expect("finite MBRs")
        });
        let slice_groups = slice.len().div_ceil(cap);
        groups.extend(even_chunks(slice, slice_groups));
    }
    groups
}

/// Splits `items` into `k` contiguous chunks whose sizes differ by at most 1.
pub(crate) fn even_chunks<T>(mut items: Vec<T>, k: usize) -> Vec<Vec<T>> {
    let n = items.len();
    let k = k.clamp(1, n.max(1));
    let base = n / k;
    let extra = n % k;
    let mut chunks = Vec::with_capacity(k);
    for i in 0..k {
        let take = base + usize::from(i < extra);
        chunks.push(items.drain(..take).collect());
    }
    debug_assert!(items.is_empty());
    chunks
}

#[cfg(test)]
mod tests {
    use crate::{RTree, RTreeParams};
    use mwsj_geom::Rect;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_items(n: usize, seed: u64) -> Vec<(Rect, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let x: f64 = rng.random_range(0.0..1.0);
                let y: f64 = rng.random_range(0.0..1.0);
                (Rect::new(x, y, x + 0.01, y + 0.01), i)
            })
            .collect()
    }

    #[test]
    fn bulk_load_empty() {
        let tree: RTree<usize> = RTree::bulk_load(Vec::new());
        assert!(tree.is_empty());
        tree.check_invariants().unwrap();
    }

    #[test]
    fn bulk_load_single_leaf() {
        let items = random_items(10, 1);
        let tree = RTree::bulk_load_with_params(RTreeParams::new(16), items);
        assert_eq!(tree.len(), 10);
        assert_eq!(tree.height(), 1);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn bulk_load_large_preserves_everything() {
        let items = random_items(10_000, 2);
        let tree = RTree::bulk_load_with_params(RTreeParams::new(32), items);
        assert_eq!(tree.len(), 10_000);
        tree.check_invariants().unwrap();
        let mut ids: Vec<usize> = tree.iter().map(|(_, v)| *v).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..10_000).collect::<Vec<_>>());
    }

    #[test]
    fn bulk_load_matches_incremental_queries() {
        let items = random_items(2_000, 3);
        let bulk = RTree::bulk_load_with_params(RTreeParams::new(16), items.clone());
        let mut incr = RTree::with_params(RTreeParams::new(16));
        for (r, v) in items {
            incr.insert(r, v);
        }
        let window = Rect::new(0.2, 0.2, 0.4, 0.4);
        let mut a: Vec<usize> = bulk.window(&window).map(|(_, v)| *v).collect();
        let mut b: Vec<usize> = incr.window(&window).map(|(_, v)| *v).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn bulk_load_exact_capacity_boundary() {
        // Exactly M entries => height 1; M+1 entries => height 2.
        let m = 16;
        let tree = RTree::bulk_load_with_params(RTreeParams::new(m), random_items(m, 4));
        assert_eq!(tree.height(), 1);
        let tree = RTree::bulk_load_with_params(RTreeParams::new(m), random_items(m + 1, 5));
        assert_eq!(tree.height(), 2);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn counted_bulk_load_records_one_access_per_node() {
        use crate::AccessCounter;
        let counter = AccessCounter::new();
        let tree = RTree::bulk_load_with_params_counted(
            RTreeParams::new(8),
            random_items(2_000, 7),
            &counter,
        );
        assert_eq!(counter.get(), tree.node_count() as u64);
    }

    #[test]
    fn bulk_loaded_tree_supports_further_inserts_and_removals() {
        let items = random_items(1_000, 6);
        let mut tree = RTree::bulk_load_with_params(RTreeParams::new(8), items.clone());
        tree.insert(Rect::new(0.5, 0.5, 0.6, 0.6), 99_999);
        assert_eq!(tree.len(), 1_001);
        tree.check_invariants().unwrap();
        let (r0, v0) = items[0];
        assert!(tree.remove(&r0, &v0));
        tree.check_invariants().unwrap();
        assert_eq!(tree.len(), 1_000);
    }
}
