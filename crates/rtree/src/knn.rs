//! Best-first k-nearest-neighbour search (Hjaltason & Samet style).

use crate::node::{NodeId, Payload};
use crate::tree::RTree;
use mwsj_geom::{Point, Rect};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A k-NN result: the entry plus its distance to the query point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor<'a, T> {
    /// MBR of the matching entry.
    pub mbr: &'a Rect,
    /// Payload of the matching entry.
    pub value: &'a T,
    /// Minimum distance from the query point to `mbr`.
    pub distance: f64,
}

/// Heap item ordered by ascending distance (min-heap via reversed `Ord`).
struct HeapItem {
    dist: f64,
    kind: ItemKind,
}

enum ItemKind {
    Node(NodeId),
    /// (node, entry index) of a data entry.
    Data(NodeId, usize),
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we need smallest distance first.
        other
            .dist
            .partial_cmp(&self.dist)
            .expect("distances are finite")
    }
}

impl<T> RTree<T> {
    /// The `k` entries nearest to `point` by minimum MBR distance, in
    /// ascending distance order. Returns fewer than `k` results if the tree
    /// holds fewer entries.
    pub fn nearest_neighbors(&self, point: &Point, k: usize) -> Vec<Neighbor<'_, T>> {
        self.knn_impl(point, k, None)
    }

    /// [`RTree::nearest_neighbors`] with node accesses recorded into
    /// `counter` (one access per node whose entries are expanded from the
    /// best-first heap).
    pub fn nearest_neighbors_counted(
        &self,
        point: &Point,
        k: usize,
        counter: &crate::AccessCounter,
    ) -> Vec<Neighbor<'_, T>> {
        self.knn_impl(point, k, Some(counter))
    }

    fn knn_impl(
        &self,
        point: &Point,
        k: usize,
        counter: Option<&crate::AccessCounter>,
    ) -> Vec<Neighbor<'_, T>> {
        let mut result = Vec::with_capacity(k.min(self.len));
        if k == 0 || self.is_empty() {
            return result;
        }
        let query = Rect::from_point(*point);
        let mut heap = BinaryHeap::new();
        heap.push(HeapItem {
            dist: self.node(self.root).mbr().min_distance(&query),
            kind: ItemKind::Node(self.root),
        });
        while let Some(item) = heap.pop() {
            match item.kind {
                ItemKind::Node(id) => {
                    if let Some(c) = counter {
                        c.inc();
                    }
                    let node = self.node(id);
                    for (i, e) in node.entries.iter().enumerate() {
                        let dist = e.mbr.min_distance(&query);
                        let kind = match &e.payload {
                            Payload::Child(c) => ItemKind::Node(*c),
                            Payload::Data(_) => ItemKind::Data(id, i),
                        };
                        heap.push(HeapItem { dist, kind });
                    }
                }
                ItemKind::Data(id, i) => {
                    let e = &self.node(id).entries[i];
                    let value = match &e.payload {
                        Payload::Data(v) => v,
                        Payload::Child(_) => unreachable!(),
                    };
                    result.push(Neighbor {
                        mbr: &e.mbr,
                        value,
                        distance: item.dist,
                    });
                    if result.len() == k {
                        break;
                    }
                }
            }
        }
        result
    }

    /// Convenience wrapper for the single nearest neighbour.
    pub fn nearest_neighbor(&self, point: &Point) -> Option<Neighbor<'_, T>> {
        self.nearest_neighbors(point, 1).into_iter().next()
    }
}

#[cfg(test)]
mod tests {
    use crate::{RTree, RTreeParams};
    use mwsj_geom::{Point, Rect};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_tree(n: usize, seed: u64) -> (RTree<usize>, Vec<Rect>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rects: Vec<Rect> = (0..n)
            .map(|_| {
                let x: f64 = rng.random_range(0.0..1.0);
                let y: f64 = rng.random_range(0.0..1.0);
                Rect::new(x, y, x + 0.02, y + 0.02)
            })
            .collect();
        let tree = RTree::bulk_load_with_params(
            RTreeParams::new(8),
            rects.iter().copied().zip(0..n).collect(),
        );
        (tree, rects)
    }

    #[test]
    fn knn_matches_linear_scan() {
        let (tree, rects) = random_tree(1_000, 21);
        let q = Point::new(0.5, 0.5);
        let got = tree.nearest_neighbors(&q, 10);
        assert_eq!(got.len(), 10);

        let mut expected: Vec<(f64, usize)> = rects
            .iter()
            .enumerate()
            .map(|(i, r)| (r.min_distance_to_point(&q), i))
            .collect();
        expected.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());

        for (n, (d, _)) in got.iter().zip(expected.iter()) {
            assert!((n.distance - d).abs() < 1e-12);
        }
        // Distances are non-decreasing.
        for w in got.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn knn_k_larger_than_len() {
        let (tree, _) = random_tree(5, 22);
        assert_eq!(tree.nearest_neighbors(&Point::new(0.0, 0.0), 100).len(), 5);
    }

    #[test]
    fn knn_zero_k_and_empty_tree() {
        let (tree, _) = random_tree(10, 23);
        assert!(tree.nearest_neighbors(&Point::new(0.0, 0.0), 0).is_empty());
        let empty: RTree<usize> = RTree::new();
        assert!(empty.nearest_neighbor(&Point::new(0.0, 0.0)).is_none());
    }

    #[test]
    fn counted_knn_matches_and_records_accesses() {
        use crate::AccessCounter;
        let (tree, _) = random_tree(1_000, 24);
        let q = Point::new(0.3, 0.7);
        let counter = AccessCounter::new();
        let counted = tree.nearest_neighbors_counted(&q, 5, &counter);
        let plain = tree.nearest_neighbors(&q, 5);
        assert_eq!(counted.len(), plain.len());
        for (a, b) in counted.iter().zip(plain.iter()) {
            assert_eq!(a.value, b.value);
        }
        // Best-first search expands at least the root, at most every node.
        let accesses = counter.get();
        assert!(accesses >= 1 && accesses <= tree.node_count() as u64);
    }

    #[test]
    fn nn_inside_a_rect_has_zero_distance() {
        let mut tree: RTree<u32> = RTree::new();
        tree.insert(Rect::new(0.0, 0.0, 1.0, 1.0), 1);
        tree.insert(Rect::new(5.0, 5.0, 6.0, 6.0), 2);
        let n = tree.nearest_neighbor(&Point::new(0.5, 0.5)).unwrap();
        assert_eq!(*n.value, 1);
        assert_eq!(n.distance, 0.0);
    }
}
