//! Read-only traversal API.
//!
//! The join algorithms of `mwsj-core` implement their own branch-and-bound
//! traversals over the index (the paper's *find best value*, synchronous
//! traversal and IBB all sort and prune node entries with query-specific
//! logic). [`NodeRef`] and [`EntryRef`] expose the tree structure immutably
//! without this crate leaking mutable internals.
//!
//! Node accesses along a visit-API traversal can be accounted through the
//! shared [`AccessCounter`](crate::AccessCounter) hook: start from
//! [`RTree::root_node_counted`] and every [`EntryRef::child`]
//! materialisation below it increments the counter (one access per node
//! entered, the same policy as the query paths). `mwsj-core`'s
//! branch-and-bound traversals keep their own per-run counters on the hot
//! path and flush them into the metrics registry when a run finishes.

use crate::access::AccessCounter;
use crate::node::{NodeId, Payload};
use crate::tree::RTree;
use mwsj_geom::Rect;

/// Immutable view of one tree node.
#[derive(Debug)]
pub struct NodeRef<'a, T> {
    tree: &'a RTree<T>,
    id: NodeId,
    /// Shared access-accounting hook; `None` disables counting.
    counter: Option<&'a AccessCounter>,
}

impl<T> Clone for NodeRef<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for NodeRef<'_, T> {}

impl<'a, T> NodeRef<'a, T> {
    pub(crate) fn new(tree: &'a RTree<T>, id: NodeId) -> Self {
        NodeRef {
            tree,
            id,
            counter: None,
        }
    }

    pub(crate) fn counted(tree: &'a RTree<T>, id: NodeId, counter: &'a AccessCounter) -> Self {
        counter.inc();
        NodeRef {
            tree,
            id,
            counter: Some(counter),
        }
    }

    /// Slab id of the node (crate-internal: keys per-node side tables
    /// such as the flat-leaf spans).
    #[inline]
    pub(crate) fn id(&self) -> NodeId {
        self.id
    }

    /// Level of this node (0 = leaf).
    #[inline]
    pub fn level(&self) -> u32 {
        self.tree.node(self.id).level
    }

    /// Returns `true` if this node's entries carry data payloads.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.tree.node(self.id).is_leaf()
    }

    /// Number of entries in the node.
    #[inline]
    pub fn len(&self) -> usize {
        self.tree.node(self.id).entries.len()
    }

    /// Returns `true` if the node holds no entries (only the root of an
    /// empty tree can be in this state).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tight bounding box over the node's entries.
    pub fn mbr(&self) -> Rect {
        self.tree.node(self.id).mbr()
    }

    /// The `i`-th entry of the node.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn entry(&self, i: usize) -> EntryRef<'a, T> {
        EntryRef {
            tree: self.tree,
            node: self.id,
            slot: i,
            counter: self.counter,
        }
    }

    /// Iterates over the node's entries.
    pub fn entries(&self) -> impl Iterator<Item = EntryRef<'a, T>> + '_ {
        let tree = self.tree;
        let node = self.id;
        let counter = self.counter;
        (0..self.len()).map(move |slot| EntryRef {
            tree,
            node,
            slot,
            counter,
        })
    }
}

/// Immutable view of one entry (MBR + child pointer or data payload).
#[derive(Debug)]
pub struct EntryRef<'a, T> {
    tree: &'a RTree<T>,
    node: NodeId,
    slot: usize,
    /// Inherited from the originating [`NodeRef`]; counted traversals
    /// propagate it to children.
    counter: Option<&'a AccessCounter>,
}

impl<T> Clone for EntryRef<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for EntryRef<'_, T> {}

impl<'a, T> EntryRef<'a, T> {
    /// The entry's bounding rectangle.
    #[inline]
    pub fn mbr(&self) -> &'a Rect {
        &self.tree.node(self.node).entries[self.slot].mbr
    }

    /// The child node, if this is an internal entry. On a counted
    /// traversal (see [`RTree::root_node_counted`]) materialising a child
    /// records one node access.
    #[inline]
    pub fn child(&self) -> Option<NodeRef<'a, T>> {
        match self.tree.node(self.node).entries[self.slot].payload {
            Payload::Child(id) => Some(match self.counter {
                Some(counter) => NodeRef::counted(self.tree, id, counter),
                None => NodeRef::new(self.tree, id),
            }),
            Payload::Data(_) => None,
        }
    }

    /// The data payload, if this is a leaf entry.
    #[inline]
    pub fn value(&self) -> Option<&'a T> {
        match &self.tree.node(self.node).entries[self.slot].payload {
            Payload::Data(v) => Some(v),
            Payload::Child(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{RTree, RTreeParams};
    use mwsj_geom::Rect;

    fn sample_tree() -> RTree<usize> {
        let items: Vec<(Rect, usize)> = (0..200)
            .map(|i| {
                let x = (i % 20) as f64;
                let y = (i / 20) as f64;
                (Rect::new(x, y, x + 0.5, y + 0.5), i)
            })
            .collect();
        RTree::bulk_load_with_params(RTreeParams::new(8), items)
    }

    #[test]
    fn traversal_reaches_every_data_entry() {
        let tree = sample_tree();
        let mut count = 0usize;
        let mut stack = vec![tree.root_node()];
        while let Some(node) = stack.pop() {
            for e in node.entries() {
                match e.child() {
                    Some(child) => {
                        assert_eq!(child.level() + 1, node.level());
                        stack.push(child);
                    }
                    None => {
                        assert!(node.is_leaf());
                        assert!(e.value().is_some());
                        count += 1;
                    }
                }
            }
        }
        assert_eq!(count, tree.len());
    }

    #[test]
    fn entry_mbrs_are_contained_in_node_mbr() {
        let tree = sample_tree();
        let root = tree.root_node();
        let root_mbr = root.mbr();
        for e in root.entries() {
            assert!(root_mbr.contains(e.mbr()));
        }
    }

    #[test]
    fn leaf_entries_have_values_not_children() {
        let tree = sample_tree();
        let mut node = tree.root_node();
        while !node.is_leaf() {
            node = node.entry(0).child().unwrap();
        }
        for e in node.entries() {
            assert!(e.value().is_some());
            assert!(e.child().is_none());
        }
    }

    #[test]
    fn counted_traversal_records_one_access_per_node() {
        use crate::AccessCounter;
        let tree = sample_tree();
        let counter = AccessCounter::new();
        let mut stack = vec![tree.root_node_counted(&counter)];
        while let Some(node) = stack.pop() {
            for e in node.entries() {
                if let Some(child) = e.child() {
                    stack.push(child);
                }
            }
        }
        assert_eq!(counter.get(), tree.node_count() as u64);
    }

    #[test]
    fn root_of_empty_tree_is_empty_leaf() {
        let tree: RTree<usize> = RTree::new();
        let root = tree.root_node();
        assert!(root.is_leaf());
        assert!(root.is_empty());
        assert_eq!(root.entries().count(), 0);
    }
}
