//! PBSM-style uniform grid backend (Patel & DeWitt's *Partition Based
//! Spatial-Merge*, adapted to in-memory evaluation in the spirit of
//! Tsitsigkos & Mamoulis, *Parallel In-Memory Evaluation of Spatial
//! Joins*).
//!
//! The workspace bounding box is split into `nx × ny` uniform cells; every
//! MBR is **replicated** into each cell its rectangle overlaps, stored in
//! per-cell contiguous SoA coordinate arrays (the same layout trick as
//! [`FlatLeaves`](crate::FlatLeaves)). Queries scan only candidate cells
//! and deduplicate replicated hits with a **reference-point rule**: every
//! entry is *processed* in exactly one deterministic cell — the row-major
//! smallest cell where the entry's cell span meets a query's candidate
//! cell range — so each result is reported exactly once without any hash
//! set.
//!
//! Determinism contract (mirrors the portfolio's): candidate cells are
//! enumerated in ascending row-major order, in-cell entries in build
//! order; the parallel paths fan whole cells across scoped worker threads
//! and merge by `(cell, slot)` rank, so merged results and every
//! counter-class metric (`cell accesses`) are bit-identical across thread
//! counts, including the sequential path.
//!
//! Access accounting: one *access* per candidate cell scanned (the grid
//! analogue of one R*-tree node visit). The candidate cell set is a pure
//! function of the query windows, so the count is thread-invariant by
//! construction.

use crate::multiwindow::BestLeaf;
use mwsj_geom::{Predicate, Rect};
use mwsj_obs::MemoryFootprint;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Default target number of (replicated) entries per occupied cell; the
/// grid resolution is chosen as `ceil(sqrt(n / target))` cells per axis.
pub const DEFAULT_TARGET_OCCUPANCY: f64 = 16.0;

/// Inclusive rectangle of grid cells `[x0..=x1] × [y0..=y1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CellRange {
    x0: usize,
    y0: usize,
    x1: usize,
    y1: usize,
}

/// A uniform grid over 2-D MBRs with cell-replicated entries.
///
/// Build once ([`UniformGrid::build`]), query many times. Entries carry a
/// `Copy` payload (object ids in this codebase).
#[derive(Debug, Clone)]
pub struct UniformGrid<T> {
    bbox: Rect,
    nx: usize,
    ny: usize,
    cell_w: f64,
    cell_h: f64,
    /// Per-cell spans into the SoA arrays: cell `c` owns `starts[c]..starts[c+1]`.
    starts: Vec<usize>,
    lo_x: Vec<f64>,
    lo_y: Vec<f64>,
    hi_x: Vec<f64>,
    hi_y: Vec<f64>,
    values: Vec<T>,
    /// Union MBR of the **full** (unclipped) rectangles replicated into
    /// each cell; [`Rect::EMPTY`] for empty cells.
    cell_mbr: Vec<Rect>,
    /// Number of unique indexed rectangles (before replication).
    unique: usize,
}

/// Structural statistics of a [`UniformGrid`] (cell-occupancy telemetry).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridStats {
    /// Cells per axis (x).
    pub nx: u64,
    /// Cells per axis (y).
    pub ny: u64,
    /// Total number of cells (`nx · ny`).
    pub cells: u64,
    /// Cells holding at least one entry.
    pub occupied_cells: u64,
    /// Stored entries *including* replication.
    pub entries: u64,
    /// Unique indexed rectangles.
    pub unique: u64,
    /// `entries / unique` (1.0 when nothing straddles a cell boundary).
    pub replication_factor: f64,
    /// `entries / occupied_cells` (0.0 for an empty grid).
    pub avg_occupancy: f64,
    /// Largest per-cell entry count.
    pub max_occupancy: u64,
}

impl<T: Copy> UniformGrid<T> {
    /// Builds a grid over `items` at the default target occupancy.
    pub fn build(items: &[(Rect, T)]) -> Self {
        Self::with_target_occupancy(items, DEFAULT_TARGET_OCCUPANCY)
    }

    /// Builds a grid sized for roughly `target` entries per cell.
    pub fn with_target_occupancy(items: &[(Rect, T)], target: f64) -> Self {
        let bbox = if items.is_empty() {
            Rect::new(0.0, 0.0, 1.0, 1.0)
        } else {
            Rect::union_all(items.iter().map(|(r, _)| r))
        };
        let side = if items.is_empty() {
            1
        } else {
            ((items.len() as f64 / target.max(1.0)).sqrt().ceil() as usize).max(1)
        };
        let (nx, ny) = (side, side);
        let cell_w = positive_step(bbox.width(), nx);
        let cell_h = positive_step(bbox.height(), ny);
        let mut grid = UniformGrid {
            bbox,
            nx,
            ny,
            cell_w,
            cell_h,
            starts: Vec::new(),
            lo_x: Vec::new(),
            lo_y: Vec::new(),
            hi_x: Vec::new(),
            hi_y: Vec::new(),
            values: Vec::new(),
            cell_mbr: vec![Rect::EMPTY; nx * ny],
            unique: items.len(),
        };

        // Pass 1: per-cell replica counts.
        let mut counts = vec![0usize; nx * ny];
        for (r, _) in items {
            let s = grid.span_of(r);
            for cy in s.y0..=s.y1 {
                for cx in s.x0..=s.x1 {
                    counts[cy * nx + cx] += 1;
                }
            }
        }
        let mut starts = Vec::with_capacity(nx * ny + 1);
        let mut acc = 0usize;
        starts.push(0);
        for &c in &counts {
            acc += c;
            starts.push(acc);
        }
        grid.lo_x = vec![0.0; acc];
        grid.lo_y = vec![0.0; acc];
        grid.hi_x = vec![0.0; acc];
        grid.hi_y = vec![0.0; acc];
        grid.values = Vec::with_capacity(acc);
        // Fill values with placeholders so we can write by index.
        if let Some(&(_, v0)) = items.first() {
            grid.values.resize(acc, v0);
        }

        // Pass 2: fill each cell in item order (within-cell order therefore
        // equals the original item order — the canonical tie-break order).
        let mut cursor: Vec<usize> = starts[..nx * ny].to_vec();
        for (r, v) in items {
            let s = grid.span_of(r);
            for cy in s.y0..=s.y1 {
                for cx in s.x0..=s.x1 {
                    let cell = cy * nx + cx;
                    let at = cursor[cell];
                    cursor[cell] += 1;
                    grid.lo_x[at] = r.min.x;
                    grid.lo_y[at] = r.min.y;
                    grid.hi_x[at] = r.max.x;
                    grid.hi_y[at] = r.max.y;
                    grid.values[at] = *v;
                    grid.cell_mbr[cell] = grid.cell_mbr[cell].union(r);
                }
            }
        }
        grid.starts = starts;
        grid
    }
}

impl<T> UniformGrid<T> {
    /// Number of unique indexed rectangles.
    #[inline]
    pub fn len(&self) -> usize {
        self.unique
    }

    /// Returns `true` if the grid indexes no rectangles.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.unique == 0
    }

    /// Total number of cells.
    #[inline]
    pub fn cells(&self) -> usize {
        self.nx * self.ny
    }

    /// The workspace bounding box the grid covers.
    #[inline]
    pub fn bbox(&self) -> Rect {
        self.bbox
    }

    /// Union MBR of the full rectangles replicated into cell `c`
    /// ([`Rect::EMPTY`] for empty cells).
    #[inline]
    pub fn cell_mbr(&self, c: usize) -> Rect {
        self.cell_mbr[c]
    }

    /// Entry slots of cell `c` (indices into the SoA arrays).
    #[inline]
    fn cell_slots(&self, c: usize) -> std::ops::Range<usize> {
        self.starts[c]..self.starts[c + 1]
    }

    /// Number of entries replicated into cell `c`.
    #[inline]
    pub fn cell_len(&self, c: usize) -> usize {
        self.starts[c + 1] - self.starts[c]
    }

    /// Iterates the `(value, full_rect)` entries replicated into cell `c`,
    /// in build order (= original item order within the cell). Boundary
    /// straddlers appear under every overlapping cell; filter on
    /// [`UniformGrid::home_cell`] for exactly-once enumeration.
    pub fn cell_entries(&self, c: usize) -> impl Iterator<Item = (T, Rect)> + '_
    where
        T: Copy,
    {
        self.cell_slots(c)
            .map(move |i| (self.values[i], self.rect_at(i)))
    }

    /// The full rectangle stored at SoA slot `i`.
    #[inline]
    fn rect_at(&self, i: usize) -> Rect {
        Rect {
            min: mwsj_geom::Point::new(self.lo_x[i], self.lo_y[i]),
            max: mwsj_geom::Point::new(self.hi_x[i], self.hi_y[i]),
        }
    }

    /// Structural cell-occupancy statistics.
    pub fn stats(&self) -> GridStats {
        let cells = self.cells();
        let entries = self.values.len() as u64;
        let mut occupied = 0u64;
        let mut max_occ = 0u64;
        for c in 0..cells {
            let n = self.cell_len(c) as u64;
            if n > 0 {
                occupied += 1;
            }
            max_occ = max_occ.max(n);
        }
        GridStats {
            nx: self.nx as u64,
            ny: self.ny as u64,
            cells: cells as u64,
            occupied_cells: occupied,
            entries,
            unique: self.unique as u64,
            replication_factor: if self.unique == 0 {
                1.0
            } else {
                entries as f64 / self.unique as f64
            },
            avg_occupancy: if occupied == 0 {
                0.0
            } else {
                entries as f64 / occupied as f64
            },
            max_occupancy: max_occ,
        }
    }

    #[inline]
    fn cell_x(&self, x: f64) -> usize {
        let i = ((x - self.bbox.min.x) / self.cell_w).floor();
        (i.max(0.0) as usize).min(self.nx - 1)
    }

    #[inline]
    fn cell_y(&self, y: f64) -> usize {
        let i = ((y - self.bbox.min.y) / self.cell_h).floor();
        (i.max(0.0) as usize).min(self.ny - 1)
    }

    /// Cell span of a rectangle (clamped to the grid).
    #[inline]
    fn span_of(&self, r: &Rect) -> CellRange {
        CellRange {
            x0: self.cell_x(r.min.x),
            y0: self.cell_y(r.min.y),
            x1: self.cell_x(r.max.x),
            y1: self.cell_y(r.max.y),
        }
    }

    /// The *home cell* of a rectangle: the row-major smallest cell of its
    /// span (its min corner's cell, clamped into the grid). Every indexed
    /// rectangle is replicated into its home cell, so accepting entries
    /// only at `home_cell(r) == c` enumerates each exactly once.
    #[inline]
    pub fn home_cell(&self, r: &Rect) -> usize {
        self.cell_y(r.min.y) * self.nx + self.cell_x(r.min.x)
    }

    /// Candidate cell range for `pred` against window `w`: a conservative
    /// cover — `pred.eval(r, w)` implies `r` intersects the region, which
    /// the range covers. `None` when no indexed rectangle can qualify.
    fn candidate_range(&self, pred: Predicate, w: &Rect) -> Option<CellRange> {
        let region = match pred {
            // r must share a point with w (also necessary for Contains /
            // Inside: containment in either direction implies overlap).
            Predicate::Intersects | Predicate::Contains | Predicate::Inside => *w,
            // r.min ≥ w.max on both axes ⇒ r meets the quadrant NE of w.max.
            Predicate::NorthEast => Rect {
                min: w.max,
                max: mwsj_geom::Point::new(f64::INFINITY, f64::INFINITY),
            },
            Predicate::SouthWest => Rect {
                min: mwsj_geom::Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
                max: w.min,
            },
            Predicate::WithinDistance(eps) => w.inflate(eps.max(0.0)),
        };
        let clamped = region.intersection(&self.bbox);
        if clamped.is_empty() {
            return None;
        }
        Some(self.span_of(&clamped))
    }

    /// Reference-point deduplication: the unique cell in which an entry
    /// with rectangle `r` is processed for a query with candidate cell
    /// `ranges` — the row-major smallest cell where `r`'s span meets any
    /// range. `None` when the spans are disjoint from every range (the
    /// entry can satisfy no window and is never scanned).
    #[inline]
    fn dedup_cell(&self, r: &Rect, ranges: &[CellRange]) -> Option<usize> {
        let s = self.span_of(r);
        let mut best: Option<usize> = None;
        for g in ranges {
            let x0 = s.x0.max(g.x0);
            let y0 = s.y0.max(g.y0);
            if x0 > s.x1.min(g.x1) || y0 > s.y1.min(g.y1) {
                continue;
            }
            let idx = y0 * self.nx + x0;
            if best.is_none_or(|b| idx < b) {
                best = Some(idx);
            }
        }
        best
    }

    /// Sorted (ascending row-major) union of the candidate cell ranges.
    fn union_cells(&self, ranges: &[CellRange]) -> Vec<usize> {
        let mut cells = Vec::new();
        for g in ranges {
            for cy in g.y0..=g.y1 {
                for cx in g.x0..=g.x1 {
                    cells.push(cy * self.nx + cx);
                }
            }
        }
        cells.sort_unstable();
        cells.dedup();
        cells
    }

    fn ranges_for(&self, windows: &[(Predicate, Rect)]) -> Vec<CellRange> {
        windows
            .iter()
            .filter_map(|(p, w)| self.candidate_range(*p, w))
            .collect()
    }
}

/// Charges `cells` accesses to the shared counter and to the leaf row of
/// the per-level attribution slice (the grid is a flat, one-level
/// structure: every access is a "leaf" access).
#[inline]
fn charge(cells: u64, cell_accesses: &mut u64, level_accesses: &mut [u64]) {
    *cell_accesses += cells;
    if let Some(slot) = level_accesses.get_mut(0) {
        *slot += cells;
    }
}

/// Best-scoring entry of one cell: `(score, slot, value, satisfied)` with
/// `slot` the global SoA index (in-cell order ⊂ ascending slot order).
struct CellBest<T> {
    score: f64,
    cell_pos: usize,
    slot: usize,
    value: T,
    satisfied: u32,
}

/// Multi-window best-entry query over the grid — the grid analogue of the
/// R*-tree [`find_best_leaf`](crate::find_best_leaf) kernel.
///
/// Scans the union of the windows' candidate cell ranges in ascending
/// row-major order; each entry is evaluated exactly once (reference-point
/// rule) against **all** windows with the exact [`Predicate::eval`] test,
/// scored by `score(&value, satisfied_count)` and offered with a strict
/// `>` comparison, ties keeping the earliest `(cell, slot)` — the grid's
/// canonical order. Entries satisfying zero windows are skipped.
///
/// `threads > 1` fans whole cells across scoped worker threads; the merge
/// picks the maximum score with the smallest `(cell, slot)` rank on ties,
/// reproducing the sequential result bit-for-bit. `cell_accesses` (and
/// `level_accesses[0]`, when present) are bumped once per candidate cell —
/// an exact, thread-invariant count.
pub fn find_best_in_windows<T: Copy + Send + Sync>(
    grid: &UniformGrid<T>,
    windows: &[(Predicate, Rect)],
    score: impl Fn(&T, u32) -> f64 + Sync,
    threads: usize,
    cell_accesses: &mut u64,
    level_accesses: &mut [u64],
) -> Option<BestLeaf<T>> {
    let ranges = grid.ranges_for(windows);
    if ranges.is_empty() {
        return None;
    }
    let cells = grid.union_cells(&ranges);
    charge(cells.len() as u64, cell_accesses, level_accesses);

    let scan_cell = |pos: usize, best: &mut Option<CellBest<T>>| {
        let c = cells[pos];
        for slot in grid.cell_slots(c) {
            let r = grid.rect_at(slot);
            if grid.dedup_cell(&r, &ranges) != Some(c) {
                continue;
            }
            let satisfied = windows.iter().filter(|(p, w)| p.eval(&r, w)).count() as u32;
            if satisfied == 0 {
                continue;
            }
            let value = grid.values[slot];
            let s = score(&value, satisfied);
            let better = match best {
                None => true,
                Some(b) => s > b.score,
            };
            if better {
                *best = Some(CellBest {
                    score: s,
                    cell_pos: pos,
                    slot,
                    value,
                    satisfied,
                });
            }
        }
    };

    let winner = if threads <= 1 || cells.len() < 2 {
        let mut best: Option<CellBest<T>> = None;
        for pos in 0..cells.len() {
            scan_cell(pos, &mut best);
        }
        best
    } else {
        let workers = threads.min(cells.len());
        let next = AtomicUsize::new(0);
        let collected: Mutex<Vec<CellBest<T>>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut best: Option<CellBest<T>> = None;
                    loop {
                        let pos = next.fetch_add(1, Ordering::Relaxed);
                        if pos >= cells.len() {
                            break;
                        }
                        scan_cell(pos, &mut best);
                    }
                    if let Some(b) = best {
                        collected.lock().unwrap().push(b);
                    }
                });
            }
        });
        // Deterministic merge: max score, ties to the smallest (cell, slot)
        // rank — exactly the sequential first-wins order.
        collected.into_inner().unwrap().into_iter().reduce(|a, b| {
            if b.score > a.score
                || (b.score == a.score && (b.cell_pos, b.slot) < (a.cell_pos, a.slot))
            {
                b
            } else {
                a
            }
        })
    };
    winner.map(|b| BestLeaf {
        value: b.value,
        satisfied: b.satisfied,
        score: b.score,
    })
}

/// Single-predicate window query: all values whose rectangle satisfies
/// `pred` against `window`, each reported exactly once, in the grid's
/// canonical `(cell, slot)` order.
///
/// `threads > 1` fans cells across scoped workers; per-cell result chunks
/// are merged in cell order, so the output is bit-identical at any thread
/// count. One access is charged per candidate cell.
pub fn query_predicate<T: Copy + Send + Sync>(
    grid: &UniformGrid<T>,
    pred: Predicate,
    window: &Rect,
    threads: usize,
    cell_accesses: &mut u64,
) -> Vec<T> {
    let ranges = match grid.candidate_range(pred, window) {
        Some(r) => vec![r],
        None => return Vec::new(),
    };
    let cells = grid.union_cells(&ranges);
    charge(cells.len() as u64, cell_accesses, &mut []);

    let scan_cell = |pos: usize, out: &mut Vec<T>| {
        let c = cells[pos];
        for slot in grid.cell_slots(c) {
            let r = grid.rect_at(slot);
            if grid.dedup_cell(&r, &ranges) != Some(c) {
                continue;
            }
            if pred.eval(&r, window) {
                out.push(grid.values[slot]);
            }
        }
    };

    if threads <= 1 || cells.len() < 2 {
        let mut out = Vec::new();
        for pos in 0..cells.len() {
            scan_cell(pos, &mut out);
        }
        out
    } else {
        let workers = threads.min(cells.len());
        let next = AtomicUsize::new(0);
        let chunks: Mutex<Vec<(usize, Vec<T>)>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let pos = next.fetch_add(1, Ordering::Relaxed);
                    if pos >= cells.len() {
                        break;
                    }
                    let mut out = Vec::new();
                    scan_cell(pos, &mut out);
                    if !out.is_empty() {
                        chunks.lock().unwrap().push((pos, out));
                    }
                });
            }
        });
        let mut chunks = chunks.into_inner().unwrap();
        chunks.sort_unstable_by_key(|(pos, _)| *pos);
        chunks.into_iter().flat_map(|(_, v)| v).collect()
    }
}

/// Multi-window candidate enumeration — the grid analogue of the
/// conjunctive/disjunctive R*-tree candidate walk used by WR, PJM and IBB:
/// every `(value, satisfied_count)` with `satisfied_count ≥ min_count`,
/// each value exactly once, in canonical `(cell, slot)` order.
///
/// The scan covers the **union** of the windows' candidate ranges even for
/// conjunctive queries (`min_count == windows.len()`): an entry may
/// satisfy two windows whose candidate ranges are disjoint, so the range
/// intersection would not be a sound filter.
pub fn candidates_with_counts<T: Copy>(
    grid: &UniformGrid<T>,
    windows: &[(Predicate, Rect)],
    min_count: u32,
    cell_accesses: &mut u64,
    level_accesses: &mut [u64],
) -> Vec<(T, u32)> {
    debug_assert!(min_count >= 1);
    let ranges = grid.ranges_for(windows);
    if ranges.is_empty() {
        return Vec::new();
    }
    let cells = grid.union_cells(&ranges);
    charge(cells.len() as u64, cell_accesses, level_accesses);
    let mut out = Vec::new();
    for &c in &cells {
        for slot in grid.cell_slots(c) {
            let r = grid.rect_at(slot);
            if grid.dedup_cell(&r, &ranges) != Some(c) {
                continue;
            }
            let count = windows.iter().filter(|(p, w)| p.eval(&r, w)).count() as u32;
            if count >= min_count {
                out.push((grid.values[slot], count));
            }
        }
    }
    out
}

/// Cell width/height that is strictly positive even for degenerate
/// bounding boxes (all data on one point or line).
#[inline]
fn positive_step(extent: f64, n: usize) -> f64 {
    let step = extent / n as f64;
    if step > 0.0 {
        step
    } else {
        1.0
    }
}

impl<T> MemoryFootprint for UniformGrid<T> {
    /// Length-based resident bytes: the four SoA coordinate streams, the
    /// value array, the per-cell span table and the cell union-MBRs.
    fn memory_bytes(&self) -> u64 {
        let coords = (self.lo_x.len() * 4 * std::mem::size_of::<f64>()) as u64;
        let values = (self.values.len() * std::mem::size_of::<T>()) as u64;
        let starts = (self.starts.len() * std::mem::size_of::<usize>()) as u64;
        let mbrs = (self.cell_mbr.len() * std::mem::size_of::<Rect>()) as u64;
        coords + values + starts + mbrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_items(seed: u64, n: usize, extent: f64) -> Vec<(Rect, u32)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let x = rng.random_range(0.0..1.0);
                let y = rng.random_range(0.0..1.0);
                let w = rng.random_range(0.0..extent);
                let h = rng.random_range(0.0..extent);
                (Rect::new(x, y, x + w, y + h), i as u32)
            })
            .collect()
    }

    const ALL_PREDS: [Predicate; 6] = [
        Predicate::Intersects,
        Predicate::Contains,
        Predicate::Inside,
        Predicate::NorthEast,
        Predicate::SouthWest,
        Predicate::WithinDistance(0.2),
    ];

    #[test]
    fn query_matches_brute_force_for_every_predicate() {
        let items = random_items(11, 600, 0.2);
        let grid = UniformGrid::build(&items);
        let windows = [
            Rect::new(0.2, 0.2, 0.5, 0.5),
            Rect::new(0.0, 0.0, 0.05, 0.05),
            Rect::new(0.9, 0.9, 1.4, 1.4),
        ];
        for pred in ALL_PREDS {
            for w in &windows {
                let mut acc = 0;
                let mut got = query_predicate(&grid, pred, w, 1, &mut acc);
                got.sort_unstable();
                let mut expected: Vec<u32> = items
                    .iter()
                    .filter(|(r, _)| pred.eval(r, w))
                    .map(|&(_, v)| v)
                    .collect();
                expected.sort_unstable();
                assert_eq!(got, expected, "{pred} on {w}");
                assert!(acc > 0 || got.is_empty());
            }
        }
    }

    #[test]
    fn query_reports_each_boundary_straddler_exactly_once() {
        // Large rects spanning many cells plus duplicate-coordinate rects.
        let mut items = random_items(12, 300, 0.6);
        items.push((Rect::new(0.1, 0.1, 0.9, 0.9), 300));
        items.push((Rect::new(0.1, 0.1, 0.9, 0.9), 301));
        items.push((Rect::new(0.1, 0.1, 0.9, 0.9), 302));
        let grid = UniformGrid::with_target_occupancy(&items, 4.0);
        let w = Rect::new(0.0, 0.0, 1.0, 1.0);
        let got = query_predicate(&grid, Predicate::Intersects, &w, 1, &mut 0);
        let mut sorted = got.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), got.len(), "replicated entries reported twice");
        assert_eq!(got.len(), items.len());
    }

    #[test]
    fn find_best_matches_brute_force() {
        let items = random_items(13, 500, 0.15);
        let grid = UniformGrid::build(&items);
        let windows = vec![
            (Predicate::Intersects, Rect::new(0.1, 0.1, 0.4, 0.4)),
            (Predicate::Intersects, Rect::new(0.3, 0.3, 0.6, 0.6)),
            (
                Predicate::WithinDistance(0.05),
                Rect::new(0.7, 0.7, 0.8, 0.8),
            ),
        ];
        let best = find_best_in_windows(&grid, &windows, |_, c| c as f64, 1, &mut 0, &mut [])
            .expect("some entry satisfies a window");
        let brute = items
            .iter()
            .map(|(r, v)| {
                let c = windows.iter().filter(|(p, w)| p.eval(r, w)).count() as u32;
                (c, *v)
            })
            .max_by_key(|&(c, _)| c)
            .unwrap();
        assert_eq!(best.satisfied, brute.0);
        assert_eq!(best.score, brute.0 as f64);
    }

    #[test]
    fn find_best_is_thread_invariant() {
        let items = random_items(14, 2_000, 0.1);
        let grid = UniformGrid::build(&items);
        let windows = vec![
            (Predicate::Intersects, Rect::new(0.2, 0.2, 0.7, 0.7)),
            (Predicate::Inside, Rect::new(0.0, 0.0, 0.9, 0.9)),
        ];
        // A payload-dependent score forces tie-breaks to matter.
        let score = |v: &u32, c: u32| c as f64 + (*v % 7) as f64 * 1e-9;
        let mut acc1 = 0;
        let seq = find_best_in_windows(&grid, &windows, score, 1, &mut acc1, &mut []);
        for threads in [2, 4, 8] {
            let mut acc = 0;
            let par = find_best_in_windows(&grid, &windows, score, threads, &mut acc, &mut []);
            assert_eq!(
                seq.as_ref().map(|b| (b.value, b.satisfied, b.score)),
                par.as_ref().map(|b| (b.value, b.satisfied, b.score)),
                "threads {threads}"
            );
            assert_eq!(acc, acc1, "accesses must be thread-invariant");
        }
    }

    #[test]
    fn parallel_query_equals_sequential() {
        let items = random_items(15, 1_500, 0.2);
        let grid = UniformGrid::build(&items);
        let w = Rect::new(0.1, 0.1, 0.8, 0.8);
        let mut acc1 = 0;
        let seq = query_predicate(&grid, Predicate::Intersects, &w, 1, &mut acc1);
        for threads in [2, 4] {
            let mut acc = 0;
            let par = query_predicate(&grid, Predicate::Intersects, &w, threads, &mut acc);
            assert_eq!(seq, par, "threads {threads}");
            assert_eq!(acc, acc1);
        }
    }

    #[test]
    fn candidates_match_brute_force_at_every_threshold() {
        let items = random_items(16, 700, 0.25);
        let grid = UniformGrid::build(&items);
        let windows = vec![
            (Predicate::Intersects, Rect::new(0.1, 0.1, 0.4, 0.4)),
            (Predicate::Intersects, Rect::new(0.3, 0.3, 0.6, 0.6)),
            (Predicate::NorthEast, Rect::new(0.1, 0.1, 0.2, 0.2)),
        ];
        for min in 1..=3 {
            let mut got = candidates_with_counts(&grid, &windows, min, &mut 0, &mut []);
            got.sort_unstable();
            let mut expected: Vec<(u32, u32)> = items
                .iter()
                .filter_map(|(r, v)| {
                    let c = windows.iter().filter(|(p, w)| p.eval(r, w)).count() as u32;
                    (c >= min).then_some((*v, c))
                })
                .collect();
            expected.sort_unstable();
            assert_eq!(got, expected, "min_count {min}");
        }
    }

    #[test]
    fn conjunctive_query_survives_disjoint_candidate_ranges() {
        // One big rect touching two far-apart windows: the windows' cell
        // ranges are disjoint, yet the entry satisfies both.
        let mut items = vec![(Rect::new(0.05, 0.05, 0.95, 0.95), 0u32)];
        for i in 1..200u32 {
            let t = i as f64 / 200.0;
            items.push((Rect::new(t, t, t + 0.002, t + 0.002), i));
        }
        let grid = UniformGrid::with_target_occupancy(&items, 2.0);
        let windows = vec![
            (Predicate::Intersects, Rect::new(0.0, 0.0, 0.1, 0.1)),
            (Predicate::Intersects, Rect::new(0.9, 0.9, 1.0, 1.0)),
        ];
        let got = candidates_with_counts(&grid, &windows, 2, &mut 0, &mut []);
        assert_eq!(got, vec![(0, 2)]);
    }

    #[test]
    fn stats_and_footprint_are_consistent() {
        let items = random_items(17, 400, 0.3);
        let grid = UniformGrid::build(&items);
        let stats = grid.stats();
        assert_eq!(stats.unique, 400);
        assert_eq!(stats.cells, stats.nx * stats.ny);
        assert!(stats.entries >= stats.unique, "replication only adds");
        assert!(stats.replication_factor >= 1.0);
        assert!(stats.occupied_cells <= stats.cells);
        assert!(stats.max_occupancy as f64 >= stats.avg_occupancy);
        assert!(grid.memory_bytes() > 0);
        // Same logical grid, same bytes.
        let again = UniformGrid::build(&items);
        assert_eq!(grid.memory_bytes(), again.memory_bytes());
    }

    #[test]
    fn home_cell_is_within_span_and_unique() {
        let items = random_items(18, 300, 0.4);
        let grid = UniformGrid::with_target_occupancy(&items, 4.0);
        let mut seen = vec![0u32; items.len()];
        for c in 0..grid.cells() {
            for slot in grid.cell_slots(c) {
                let r = grid.rect_at(slot);
                if grid.home_cell(&r) == c {
                    seen[grid.values[slot] as usize] += 1;
                }
            }
        }
        assert!(
            seen.iter().all(|&n| n == 1),
            "home-cell rule not exactly-once"
        );
    }

    #[test]
    fn degenerate_and_empty_inputs() {
        // All items on a single point: degenerate bbox.
        let items: Vec<(Rect, u32)> = (0..10)
            .map(|i| (Rect::new(0.5, 0.5, 0.5, 0.5), i))
            .collect();
        let grid = UniformGrid::build(&items);
        let got = query_predicate(
            &grid,
            Predicate::Intersects,
            &Rect::new(0.0, 0.0, 1.0, 1.0),
            1,
            &mut 0,
        );
        assert_eq!(got.len(), 10);

        let empty: Vec<(Rect, u32)> = Vec::new();
        let grid = UniformGrid::build(&empty);
        assert!(grid.is_empty());
        assert!(query_predicate(
            &grid,
            Predicate::Intersects,
            &Rect::new(0.0, 0.0, 1.0, 1.0),
            1,
            &mut 0
        )
        .is_empty());
    }
}
