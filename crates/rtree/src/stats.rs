//! Structural statistics, useful for diagnosing index quality in the
//! experiment harness (node occupancy, per-level area/overlap).

use crate::node::Payload;
use crate::tree::RTree;

/// Summary statistics of an R*-tree's structure.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeStats {
    /// Number of data entries.
    pub len: usize,
    /// Number of levels.
    pub height: u32,
    /// Total number of nodes.
    pub nodes: usize,
    /// Number of leaf nodes.
    pub leaves: usize,
    /// Mean node occupancy as a fraction of capacity (0..=1).
    pub avg_fill: f64,
    /// Sum of node MBR areas per level, `[0] = leaf level`. Lower is better
    /// index quality for uniform data.
    pub area_per_level: Vec<f64>,
    /// Sum of pairwise sibling overlap areas per level, `[0] = leaf level`.
    pub overlap_per_level: Vec<f64>,
    /// Number of nodes per level, `[0] = leaf level`.
    pub nodes_per_level: Vec<usize>,
    /// Number of entries per level, `[0] = leaf level` (data entries at
    /// level 0, child pointers above).
    pub entries_per_level: Vec<usize>,
    /// Mean node occupancy per level as a fraction of capacity (0..=1),
    /// `[0] = leaf level`.
    pub fill_per_level: Vec<f64>,
    /// Sibling overlap factor per level: the summed pairwise sibling
    /// overlap area divided by the summed node MBR area of the level
    /// (`0.0` when the level covers no area). Lower is better; high values
    /// mean window queries must descend several subtrees.
    pub overlap_factor_per_level: Vec<f64>,
    /// Dead-space fraction per level: the share of node MBR area not
    /// covered by the node's entries, estimated per node by two-term
    /// inclusion–exclusion (`area − Σ entry areas + Σ pairwise entry
    /// overlaps`, clamped to ≥ 0) and normalised by the level's node area.
    /// In (0..=1); high values mean queries visit nodes whose interior
    /// cannot contain matches.
    pub dead_space_per_level: Vec<f64>,
    /// Sum of node MBR margins (width + height, the BKSS90 half-perimeter)
    /// per level, `[0] = leaf level`. Lower margins mean squarer, better
    /// clustered nodes.
    pub perimeter_per_level: Vec<f64>,
}

impl<T> RTree<T> {
    /// Computes structural statistics in one traversal (plus an O(M²) pass
    /// per node for sibling overlap).
    pub fn stats(&self) -> TreeStats {
        let height = self.height as usize;
        let mut nodes = 0usize;
        let mut leaves = 0usize;
        let mut fill_sum = 0.0f64;
        let mut area_per_level = vec![0.0; height];
        let mut overlap_per_level = vec![0.0; height];
        let mut nodes_per_level = vec![0usize; height];
        let mut entries_per_level = vec![0usize; height];
        let mut fill_per_level = vec![0.0f64; height];
        let mut dead_area_per_level = vec![0.0f64; height];
        let mut perimeter_per_level = vec![0.0f64; height];

        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = self.node(id);
            nodes += 1;
            if node.is_leaf() {
                leaves += 1;
            }
            fill_sum += node.entries.len() as f64 / self.params.max_entries as f64;
            let lvl = node.level as usize;
            nodes_per_level[lvl] += 1;
            entries_per_level[lvl] += node.entries.len();
            let node_area = node.mbr().area();
            area_per_level[lvl] += node_area;
            perimeter_per_level[lvl] += node.mbr().margin();
            let mut entry_area = 0.0f64;
            let mut entry_overlap = 0.0f64;
            for (i, a) in node.entries.iter().enumerate() {
                entry_area += a.mbr.area();
                for b in node.entries.iter().skip(i + 1) {
                    entry_overlap += a.mbr.overlap_area(&b.mbr);
                }
                if let Payload::Child(c) = a.payload {
                    stack.push(c);
                }
            }
            overlap_per_level[lvl] += entry_overlap;
            // Two-term inclusion–exclusion estimate of the covered area;
            // clamp per node since triple-overlaps can overshoot it.
            dead_area_per_level[lvl] += (node_area - (entry_area - entry_overlap)).max(0.0);
        }

        for lvl in 0..height {
            fill_per_level[lvl] = entries_per_level[lvl] as f64
                / (nodes_per_level[lvl] as f64 * self.params.max_entries as f64);
        }
        let ratio_or_zero = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
        let overlap_factor_per_level: Vec<f64> = (0..height)
            .map(|l| ratio_or_zero(overlap_per_level[l], area_per_level[l]))
            .collect();
        let dead_space_per_level: Vec<f64> = (0..height)
            .map(|l| ratio_or_zero(dead_area_per_level[l], area_per_level[l]).min(1.0))
            .collect();

        TreeStats {
            len: self.len,
            height: self.height,
            nodes,
            leaves,
            avg_fill: fill_sum / nodes as f64,
            area_per_level,
            overlap_per_level,
            nodes_per_level,
            entries_per_level,
            fill_per_level,
            overlap_factor_per_level,
            dead_space_per_level,
            perimeter_per_level,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{RTree, RTreeParams};
    use mwsj_geom::Rect;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_items(n: usize, seed: u64) -> Vec<(Rect, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let x: f64 = rng.random_range(0.0..1.0);
                let y: f64 = rng.random_range(0.0..1.0);
                (Rect::new(x, y, x + 0.01, y + 0.01), i)
            })
            .collect()
    }

    #[test]
    fn stats_counts_are_consistent() {
        let tree = RTree::bulk_load_with_params(RTreeParams::new(16), random_items(3_000, 31));
        let s = tree.stats();
        assert_eq!(s.len, 3_000);
        assert_eq!(s.height, tree.height());
        assert_eq!(s.nodes, tree.node_count());
        assert!(s.leaves <= s.nodes);
        assert!(s.avg_fill > 0.0 && s.avg_fill <= 1.0);
        assert_eq!(s.area_per_level.len(), tree.height() as usize);
    }

    #[test]
    fn per_level_breakdowns_are_consistent() {
        let tree = RTree::bulk_load_with_params(RTreeParams::new(16), random_items(3_000, 34));
        let s = tree.stats();
        let h = tree.height() as usize;
        assert_eq!(s.nodes_per_level.len(), h);
        assert_eq!(s.entries_per_level.len(), h);
        // Per-level node counts sum to the node total; leaves are level 0;
        // the root level holds exactly one node.
        assert_eq!(s.nodes_per_level.iter().sum::<usize>(), s.nodes);
        assert_eq!(s.nodes_per_level[0], s.leaves);
        assert_eq!(s.nodes_per_level[h - 1], 1);
        // Level-0 entries are the data entries; entries at level k+1 are
        // child pointers to the nodes of level k.
        assert_eq!(s.entries_per_level[0], s.len);
        for lvl in 1..h {
            assert_eq!(s.entries_per_level[lvl], s.nodes_per_level[lvl - 1]);
        }
    }

    #[test]
    fn str_packing_fills_nodes_well() {
        let tree = RTree::bulk_load_with_params(RTreeParams::new(16), random_items(5_000, 32));
        // Even distribution guarantees at least 50% fill; STR typically
        // achieves much more.
        assert!(
            tree.stats().avg_fill >= 0.5,
            "fill {}",
            tree.stats().avg_fill
        );
    }

    /// The quality metrics must be finite and sane for both bulk loaders
    /// at paper scale, and the structural invariants must be unaffected by
    /// the new per-level columns.
    #[test]
    fn str_and_hilbert_quality_metrics_are_sane_at_100k() {
        let items = random_items(100_000, 35);
        let loaded = [
            (
                "str",
                RTree::bulk_load_with_params(RTreeParams::new(16), items.clone()),
            ),
            (
                "hilbert",
                RTree::bulk_load_hilbert_with_params(RTreeParams::new(16), items),
            ),
        ];
        for (name, tree) in &loaded {
            let s = tree.stats();
            let h = tree.height() as usize;
            assert_eq!(s.len, 100_000, "{name}");
            assert_eq!(s.fill_per_level.len(), h, "{name}");
            assert_eq!(s.overlap_factor_per_level.len(), h, "{name}");
            assert_eq!(s.dead_space_per_level.len(), h, "{name}");
            assert_eq!(s.perimeter_per_level.len(), h, "{name}");
            for lvl in 0..h {
                let fill = s.fill_per_level[lvl];
                assert!(
                    fill.is_finite() && fill > 0.0 && fill <= 1.0,
                    "{name} level {lvl} fill {fill}"
                );
                let ov = s.overlap_factor_per_level[lvl];
                assert!(
                    ov.is_finite() && ov >= 0.0,
                    "{name} level {lvl} overlap {ov}"
                );
                let dead = s.dead_space_per_level[lvl];
                assert!(
                    dead.is_finite() && (0.0..=1.0).contains(&dead),
                    "{name} level {lvl} dead space {dead}"
                );
                let per = s.perimeter_per_level[lvl];
                assert!(
                    per.is_finite() && per > 0.0,
                    "{name} level {lvl} perimeter {per}"
                );
            }
            // The whole-tree fill is the node-weighted mean of the
            // per-level fills.
            let weighted: f64 = (0..h)
                .map(|l| s.fill_per_level[l] * s.nodes_per_level[l] as f64)
                .sum::<f64>()
                / s.nodes as f64;
            assert!((weighted - s.avg_fill).abs() < 1e-9, "{name}");
            // Invariants unchanged by the new columns.
            assert_eq!(s.nodes_per_level.iter().sum::<usize>(), s.nodes, "{name}");
            assert_eq!(s.entries_per_level[0], s.len, "{name}");
            // Loose packing bound: at this density data rects overlap
            // heavily by construction, but a bulk-loaded tree must not
            // degenerate into near-total sibling overlap.
            for lvl in 0..h {
                assert!(
                    s.overlap_factor_per_level[lvl] < 50.0,
                    "{name} level {lvl} overlap factor {}",
                    s.overlap_factor_per_level[lvl]
                );
            }
        }
        // The two loaders land in the same quality regime on uniform data:
        // neither should beat the other by an order of magnitude on
        // sibling overlap at the level above the leaves.
        let (str_s, hil_s) = (loaded[0].1.stats(), loaded[1].1.stats());
        let (a, b) = (
            str_s.overlap_factor_per_level[1],
            hil_s.overlap_factor_per_level[1],
        );
        assert!(
            a < 10.0 * b && b < 10.0 * a,
            "STR vs Hilbert overlap factors diverge: {a} vs {b}"
        );
    }

    #[test]
    fn rstar_insertion_keeps_overlap_moderate() {
        // Sanity check that the R* heuristics produce a usable index: leaf
        // level overlap should be a small fraction of leaf level area for
        // uniform data.
        let items = random_items(4_000, 33);
        let mut tree = RTree::with_params(RTreeParams::new(16));
        for (r, v) in items {
            tree.insert(r, v);
        }
        let s = tree.stats();
        let leaf_area: f64 = s.area_per_level[0];
        let leaf_overlap: f64 = s.overlap_per_level[0];
        assert!(
            leaf_overlap < leaf_area * 0.5,
            "excessive leaf overlap: {leaf_overlap} vs area {leaf_area}"
        );
    }
}
