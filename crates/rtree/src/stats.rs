//! Structural statistics, useful for diagnosing index quality in the
//! experiment harness (node occupancy, per-level area/overlap).

use crate::node::Payload;
use crate::tree::RTree;

/// Summary statistics of an R*-tree's structure.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeStats {
    /// Number of data entries.
    pub len: usize,
    /// Number of levels.
    pub height: u32,
    /// Total number of nodes.
    pub nodes: usize,
    /// Number of leaf nodes.
    pub leaves: usize,
    /// Mean node occupancy as a fraction of capacity (0..=1).
    pub avg_fill: f64,
    /// Sum of node MBR areas per level, `[0] = leaf level`. Lower is better
    /// index quality for uniform data.
    pub area_per_level: Vec<f64>,
    /// Sum of pairwise sibling overlap areas per level, `[0] = leaf level`.
    pub overlap_per_level: Vec<f64>,
    /// Number of nodes per level, `[0] = leaf level`.
    pub nodes_per_level: Vec<usize>,
    /// Number of entries per level, `[0] = leaf level` (data entries at
    /// level 0, child pointers above).
    pub entries_per_level: Vec<usize>,
}

impl<T> RTree<T> {
    /// Computes structural statistics in one traversal (plus an O(M²) pass
    /// per node for sibling overlap).
    pub fn stats(&self) -> TreeStats {
        let height = self.height as usize;
        let mut nodes = 0usize;
        let mut leaves = 0usize;
        let mut fill_sum = 0.0f64;
        let mut area_per_level = vec![0.0; height];
        let mut overlap_per_level = vec![0.0; height];
        let mut nodes_per_level = vec![0usize; height];
        let mut entries_per_level = vec![0usize; height];

        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = self.node(id);
            nodes += 1;
            if node.is_leaf() {
                leaves += 1;
            }
            fill_sum += node.entries.len() as f64 / self.params.max_entries as f64;
            let lvl = node.level as usize;
            nodes_per_level[lvl] += 1;
            entries_per_level[lvl] += node.entries.len();
            area_per_level[lvl] += node.mbr().area();
            for (i, a) in node.entries.iter().enumerate() {
                for b in node.entries.iter().skip(i + 1) {
                    overlap_per_level[lvl] += a.mbr.overlap_area(&b.mbr);
                }
                if let Payload::Child(c) = a.payload {
                    stack.push(c);
                }
            }
        }

        TreeStats {
            len: self.len,
            height: self.height,
            nodes,
            leaves,
            avg_fill: fill_sum / nodes as f64,
            area_per_level,
            overlap_per_level,
            nodes_per_level,
            entries_per_level,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{RTree, RTreeParams};
    use mwsj_geom::Rect;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_items(n: usize, seed: u64) -> Vec<(Rect, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let x: f64 = rng.random_range(0.0..1.0);
                let y: f64 = rng.random_range(0.0..1.0);
                (Rect::new(x, y, x + 0.01, y + 0.01), i)
            })
            .collect()
    }

    #[test]
    fn stats_counts_are_consistent() {
        let tree = RTree::bulk_load_with_params(RTreeParams::new(16), random_items(3_000, 31));
        let s = tree.stats();
        assert_eq!(s.len, 3_000);
        assert_eq!(s.height, tree.height());
        assert_eq!(s.nodes, tree.node_count());
        assert!(s.leaves <= s.nodes);
        assert!(s.avg_fill > 0.0 && s.avg_fill <= 1.0);
        assert_eq!(s.area_per_level.len(), tree.height() as usize);
    }

    #[test]
    fn per_level_breakdowns_are_consistent() {
        let tree = RTree::bulk_load_with_params(RTreeParams::new(16), random_items(3_000, 34));
        let s = tree.stats();
        let h = tree.height() as usize;
        assert_eq!(s.nodes_per_level.len(), h);
        assert_eq!(s.entries_per_level.len(), h);
        // Per-level node counts sum to the node total; leaves are level 0;
        // the root level holds exactly one node.
        assert_eq!(s.nodes_per_level.iter().sum::<usize>(), s.nodes);
        assert_eq!(s.nodes_per_level[0], s.leaves);
        assert_eq!(s.nodes_per_level[h - 1], 1);
        // Level-0 entries are the data entries; entries at level k+1 are
        // child pointers to the nodes of level k.
        assert_eq!(s.entries_per_level[0], s.len);
        for lvl in 1..h {
            assert_eq!(s.entries_per_level[lvl], s.nodes_per_level[lvl - 1]);
        }
    }

    #[test]
    fn str_packing_fills_nodes_well() {
        let tree = RTree::bulk_load_with_params(RTreeParams::new(16), random_items(5_000, 32));
        // Even distribution guarantees at least 50% fill; STR typically
        // achieves much more.
        assert!(
            tree.stats().avg_fill >= 0.5,
            "fill {}",
            tree.stats().avg_fill
        );
    }

    #[test]
    fn rstar_insertion_keeps_overlap_moderate() {
        // Sanity check that the R* heuristics produce a usable index: leaf
        // level overlap should be a small fraction of leaf level area for
        // uniform data.
        let items = random_items(4_000, 33);
        let mut tree = RTree::with_params(RTreeParams::new(16));
        for (r, v) in items {
            tree.insert(r, v);
        }
        let s = tree.stats();
        let leaf_area: f64 = s.area_per_level[0];
        let leaf_overlap: f64 = s.overlap_per_level[0];
        assert!(
            leaf_overlap < leaf_area * 0.5,
            "excessive leaf overlap: {leaf_overlap} vs area {leaf_area}"
        );
    }
}
