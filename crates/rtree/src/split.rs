//! The R* topological split (BKSS90 §4.2).
//!
//! Split axis: the axis whose distributions have the minimum total margin.
//! Split index: among the chosen axis's distributions, minimum overlap
//! between the two groups, ties broken by minimum combined area.

use crate::node::Entry;
use mwsj_geom::Rect;

/// Sort key for candidate distributions: entries sorted by lower or by upper
/// MBR coordinate on an axis (BKSS90 considers both).
#[derive(Clone, Copy)]
enum SortBy {
    Lower,
    Upper,
}

/// Splits `entries` (length `M + 1`) into two groups, each with at least
/// `min_entries` members, per the R* topological split.
pub(crate) fn rstar_split<T>(
    mut entries: Vec<Entry<T>>,
    min_entries: usize,
) -> (Vec<Entry<T>>, Vec<Entry<T>>) {
    let total = entries.len();
    debug_assert!(total >= 2 * min_entries, "not enough entries to split");

    // Pick the split axis by minimum total margin.
    let margin_x = axis_margin_sum(&mut entries, Axis::X, min_entries);
    let margin_y = axis_margin_sum(&mut entries, Axis::Y, min_entries);
    let axis = if margin_x <= margin_y {
        Axis::X
    } else {
        Axis::Y
    };

    // Pick the distribution on that axis: min overlap, ties min area.
    let mut best: Option<(f64, f64, SortBy, usize)> = None;
    for sort_by in [SortBy::Lower, SortBy::Upper] {
        sort_entries(&mut entries, axis, sort_by);
        let (prefix, suffix) = boundary_boxes(&entries);
        for split_at in splits(total, min_entries) {
            let left = prefix[split_at - 1];
            let right = suffix[split_at];
            let overlap = left.overlap_area(&right);
            let area = left.area() + right.area();
            let candidate = (overlap, area, sort_by, split_at);
            let better = match &best {
                None => true,
                Some((bo, ba, _, _)) => (overlap, area) < (*bo, *ba),
            };
            if better {
                best = Some(candidate);
            }
        }
    }

    let (_, _, sort_by, split_at) = best.expect("at least one distribution exists");
    sort_entries(&mut entries, axis, sort_by);
    let right = entries.split_off(split_at);
    (entries, right)
}

#[derive(Clone, Copy, PartialEq)]
enum Axis {
    X,
    Y,
}

#[inline]
fn key<T>(e: &Entry<T>, axis: Axis, sort_by: SortBy) -> f64 {
    match (axis, sort_by) {
        (Axis::X, SortBy::Lower) => e.mbr.min.x,
        (Axis::X, SortBy::Upper) => e.mbr.max.x,
        (Axis::Y, SortBy::Lower) => e.mbr.min.y,
        (Axis::Y, SortBy::Upper) => e.mbr.max.y,
    }
}

fn sort_entries<T>(entries: &mut [Entry<T>], axis: Axis, sort_by: SortBy) {
    entries.sort_by(|a, b| {
        key(a, axis, sort_by)
            .partial_cmp(&key(b, axis, sort_by))
            .expect("finite MBRs")
    });
}

/// Candidate split positions: the first group takes `m - 1 + k` entries for
/// `k = 1 ..= M - 2m + 2`.
fn splits(total: usize, min_entries: usize) -> impl Iterator<Item = usize> {
    min_entries..=(total - min_entries)
}

/// `prefix[i]` bounds entries `0..=i`; `suffix[i]` bounds entries `i..`.
fn boundary_boxes<T>(entries: &[Entry<T>]) -> (Vec<Rect>, Vec<Rect>) {
    let n = entries.len();
    let mut prefix = Vec::with_capacity(n);
    let mut acc = Rect::EMPTY;
    for e in entries {
        acc = acc.union(&e.mbr);
        prefix.push(acc);
    }
    let mut suffix = vec![Rect::EMPTY; n];
    let mut acc = Rect::EMPTY;
    for i in (0..n).rev() {
        acc = acc.union(&entries[i].mbr);
        suffix[i] = acc;
    }
    (prefix, suffix)
}

/// Total margin over all candidate distributions of one axis (both sorts).
fn axis_margin_sum<T>(entries: &mut [Entry<T>], axis: Axis, min_entries: usize) -> f64 {
    let total = entries.len();
    let mut sum = 0.0;
    for sort_by in [SortBy::Lower, SortBy::Upper] {
        sort_entries(entries, axis, sort_by);
        let (prefix, suffix) = boundary_boxes(entries);
        for split_at in splits(total, min_entries) {
            sum += prefix[split_at - 1].margin() + suffix[split_at].margin();
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Entry;

    fn data_entries(rects: &[Rect]) -> Vec<Entry<u32>> {
        rects
            .iter()
            .enumerate()
            .map(|(i, r)| Entry::data(*r, i as u32))
            .collect()
    }

    #[test]
    fn split_respects_minimum_occupancy() {
        let rects: Vec<Rect> = (0..9)
            .map(|i| Rect::new(i as f64, 0.0, i as f64 + 0.5, 1.0))
            .collect();
        let (l, r) = rstar_split(data_entries(&rects), 3);
        assert!(l.len() >= 3 && r.len() >= 3);
        assert_eq!(l.len() + r.len(), 9);
    }

    #[test]
    fn split_separates_two_clusters() {
        // Two well-separated clusters along x: the topological split must
        // not mix them.
        let mut rects = Vec::new();
        for i in 0..5 {
            rects.push(Rect::new(i as f64 * 0.1, 0.0, i as f64 * 0.1 + 0.05, 0.1));
        }
        for i in 0..4 {
            rects.push(Rect::new(
                10.0 + i as f64 * 0.1,
                0.0,
                10.0 + i as f64 * 0.1 + 0.05,
                0.1,
            ));
        }
        let (l, r) = rstar_split(data_entries(&rects), 3);
        let lbb = Rect::union_all(l.iter().map(|e| &e.mbr));
        let rbb = Rect::union_all(r.iter().map(|e| &e.mbr));
        assert!(!lbb.intersects(&rbb), "clusters were mixed: {lbb} vs {rbb}");
    }

    #[test]
    fn split_picks_axis_with_smaller_margin() {
        // Entries form a tall thin column: splitting on y gives much smaller
        // margins than splitting on x.
        let rects: Vec<Rect> = (0..9)
            .map(|i| Rect::new(0.0, i as f64, 1.0, i as f64 + 0.5))
            .collect();
        let (l, r) = rstar_split(data_entries(&rects), 3);
        let lbb = Rect::union_all(l.iter().map(|e| &e.mbr));
        let rbb = Rect::union_all(r.iter().map(|e| &e.mbr));
        // Groups must be stacked vertically, not side by side.
        assert!(lbb.max.y <= rbb.min.y || rbb.max.y <= lbb.min.y);
    }

    #[test]
    fn split_of_identical_rects_is_balancedish() {
        let rects = vec![Rect::new(0.0, 0.0, 1.0, 1.0); 9];
        let (l, r) = rstar_split(data_entries(&rects), 3);
        assert!(l.len() >= 3 && r.len() >= 3);
    }
}
