//! R* insertion: choose-subtree, overflow treatment with forced reinsertion.

use crate::node::{Entry, NodeId};
use crate::split::rstar_split;
use crate::tree::RTree;
use mwsj_geom::Rect;

impl<T> RTree<T> {
    /// Inserts a rectangle with its payload.
    pub fn insert(&mut self, mbr: Rect, value: T) {
        self.insert_impl(mbr, value, None);
    }

    /// [`RTree::insert`] with node accesses recorded into `counter`: one
    /// access per node visited on each insertion descent (the unwind
    /// re-touches the same nodes and is not counted again).
    pub fn insert_counted(&mut self, mbr: Rect, value: T, counter: &crate::AccessCounter) {
        self.insert_impl(mbr, value, Some(counter));
    }

    fn insert_impl(&mut self, mbr: Rect, value: T, counter: Option<&crate::AccessCounter>) {
        debug_assert!(mbr.is_finite(), "inserted MBR must be finite");
        self.len += 1;
        // Pending (entry, target_level) queue: forced reinsertion evicts
        // entries mid-insert; they re-enter from the root after the current
        // descent finishes, exactly as BKSS90 prescribes.
        let mut pending: Vec<(Entry<T>, u32)> = vec![(Entry::data(mbr, value), 0)];
        // One forced-reinsert opportunity per level per insert operation.
        let mut reinserted = vec![false; self.height as usize + 1];
        while let Some((entry, level)) = pending.pop() {
            if reinserted.len() <= self.height as usize {
                reinserted.resize(self.height as usize + 1, false);
            }
            self.insert_one(entry, level, &mut reinserted, &mut pending, counter);
        }
    }

    /// Inserts one entry at `target_level`, handling overflow on the way up.
    fn insert_one(
        &mut self,
        entry: Entry<T>,
        target_level: u32,
        reinserted: &mut [bool],
        pending: &mut Vec<(Entry<T>, u32)>,
        counter: Option<&crate::AccessCounter>,
    ) {
        // Descend, recording the path as (parent, child-slot) pairs.
        let mbr = entry.mbr;
        let mut path: Vec<(NodeId, usize)> = Vec::with_capacity(self.height as usize);
        let mut cur = self.root;
        if let Some(c) = counter {
            c.inc();
        }
        while self.node(cur).level > target_level {
            let slot = self.choose_subtree(cur, &mbr);
            let child = self.node(cur).entries[slot].child_id();
            path.push((cur, slot));
            cur = child;
            if let Some(c) = counter {
                c.inc();
            }
        }
        self.node_mut(cur).entries.push(entry);

        // Unwind: overflow treatment + MBR maintenance.
        let mut split_sibling: Option<Entry<T>> = None;
        loop {
            let level = self.node(cur).level as usize;
            if self.node(cur).entries.len() > self.params.max_entries {
                let can_reinsert =
                    cur != self.root && self.params.reinsert_count > 0 && !reinserted[level];
                if can_reinsert {
                    reinserted[level] = true;
                    self.forced_reinsert(cur, pending);
                } else {
                    split_sibling = Some(self.split_node(cur));
                }
            }
            match path.pop() {
                None => {
                    // `cur` is the root.
                    if let Some(sib) = split_sibling.take() {
                        self.grow_root(sib);
                    }
                    return;
                }
                Some((parent, slot)) => {
                    let child_mbr = self.node(cur).mbr();
                    let parent_node = self.node_mut(parent);
                    parent_node.entries[slot].mbr = child_mbr;
                    if let Some(sib) = split_sibling.take() {
                        parent_node.entries.push(sib);
                    }
                    cur = parent;
                }
            }
        }
    }

    /// R* choose-subtree: among the children of `node_id`, pick the slot for
    /// a rectangle `mbr` descending towards the leaves.
    ///
    /// When the children are leaves the criterion is minimum **overlap**
    /// enlargement (ties: minimum area enlargement, then minimum area);
    /// higher up it is minimum area enlargement (ties: minimum area).
    pub(crate) fn choose_subtree(&self, node_id: NodeId, mbr: &Rect) -> usize {
        let node = self.node(node_id);
        debug_assert!(!node.is_leaf());
        let children_are_leaves = node.level == 1;
        let entries = &node.entries;
        debug_assert!(!entries.is_empty());

        let mut best = 0usize;
        let mut best_overlap_delta = f64::INFINITY;
        let mut best_area_delta = f64::INFINITY;
        let mut best_area = f64::INFINITY;

        for (i, e) in entries.iter().enumerate() {
            let enlarged = e.mbr.union(mbr);
            let area = e.mbr.area();
            let area_delta = enlarged.area() - area;
            let overlap_delta = if children_are_leaves {
                // Overlap of this child with its siblings, before vs. after
                // enlargement. O(M²) total, as in BKSS90.
                let mut delta = 0.0;
                for (j, other) in entries.iter().enumerate() {
                    if i != j {
                        delta += enlarged.overlap_area(&other.mbr) - e.mbr.overlap_area(&other.mbr);
                    }
                }
                delta
            } else {
                0.0
            };

            let better = (overlap_delta, area_delta, area)
                < (best_overlap_delta, best_area_delta, best_area);
            if better {
                best = i;
                best_overlap_delta = overlap_delta;
                best_area_delta = area_delta;
                best_area = area;
            }
        }
        best
    }

    /// Forced reinsertion: evicts the `p` entries whose centers lie farthest
    /// from the center of the node's MBR and queues them for re-insertion,
    /// closest first (*close reinsert*).
    fn forced_reinsert(&mut self, node_id: NodeId, pending: &mut Vec<(Entry<T>, u32)>) {
        let p = self.params.reinsert_count;
        let level = self.node(node_id).level;
        let center = self.node(node_id).mbr().center();

        // Sort slots by center distance, descending.
        let node = self.node_mut(node_id);
        node.entries.sort_by(|a, b| {
            let da = a.mbr.center().distance_sq(&center);
            let db = b.mbr.center().distance_sq(&center);
            db.partial_cmp(&da).expect("finite MBR centers")
        });
        // The first `p` entries are the farthest. Draining them in order
        // pushes farthest first, so the LIFO `pending` queue pops the
        // closest first — BKSS90's close-reinsert variant.
        let evicted: Vec<Entry<T>> = node.entries.drain(..p).collect();
        pending.extend(evicted.into_iter().map(|e| (e, level)));
    }

    /// Splits an overflowing node; returns the parent entry for the new
    /// sibling.
    pub(crate) fn split_node(&mut self, node_id: NodeId) -> Entry<T> {
        let level = self.node(node_id).level;
        let entries = std::mem::take(&mut self.node_mut(node_id).entries);
        let (left, right) = rstar_split(entries, self.params.min_entries);
        self.node_mut(node_id).entries = left;
        let sibling = self.alloc(level);
        self.node_mut(sibling).entries = right;
        let sib_mbr = self.node(sibling).mbr();
        Entry::child(sib_mbr, sibling)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwsj_geom::Rect;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn grid_tree(n: usize) -> RTree<usize> {
        let mut tree = RTree::with_params(crate::RTreeParams::new(8));
        let side = (n as f64).sqrt().ceil() as usize;
        for i in 0..n {
            let x = (i % side) as f64;
            let y = (i / side) as f64;
            tree.insert(Rect::new(x, y, x + 0.8, y + 0.8), i);
        }
        tree
    }

    #[test]
    fn insert_grows_len_and_height() {
        let tree = grid_tree(200);
        assert_eq!(tree.len(), 200);
        assert!(tree.height() > 1);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn all_inserted_entries_are_reachable() {
        let tree = grid_tree(500);
        let mut seen: Vec<usize> = tree.iter().map(|(_, v)| *v).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn random_inserts_preserve_invariants() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut tree = RTree::with_params(crate::RTreeParams::new(6));
        for i in 0..1000usize {
            let x: f64 = rng.random_range(0.0..1.0);
            let y: f64 = rng.random_range(0.0..1.0);
            let w: f64 = rng.random_range(0.0..0.05);
            let h: f64 = rng.random_range(0.0..0.05);
            tree.insert(Rect::new(x, y, x + w, y + h), i);
            if i % 100 == 0 {
                tree.check_invariants().unwrap();
            }
        }
        tree.check_invariants().unwrap();
        assert_eq!(tree.len(), 1000);
    }

    #[test]
    fn counted_insert_records_descent_accesses() {
        use crate::AccessCounter;
        let counter = AccessCounter::new();
        let mut tree: RTree<usize> = RTree::with_params(crate::RTreeParams::new(8));
        for i in 0..300usize {
            let x = (i % 20) as f64;
            let y = (i / 20) as f64;
            tree.insert_counted(Rect::new(x, y, x + 0.8, y + 0.8), i, &counter);
        }
        tree.check_invariants().unwrap();
        // Every insert descends at least to a leaf (>= 1 node per insert).
        assert!(counter.get() >= 300);
        // Counting must not change the resulting structure.
        let mut plain: RTree<usize> = RTree::with_params(crate::RTreeParams::new(8));
        for i in 0..300usize {
            let x = (i % 20) as f64;
            let y = (i / 20) as f64;
            plain.insert(Rect::new(x, y, x + 0.8, y + 0.8), i);
        }
        assert_eq!(tree.node_count(), plain.node_count());
        assert_eq!(tree.height(), plain.height());
    }

    #[test]
    fn duplicate_rectangles_are_allowed() {
        let mut tree: RTree<u32> = RTree::with_params(crate::RTreeParams::new(4));
        let r = Rect::new(0.0, 0.0, 1.0, 1.0);
        for i in 0..50 {
            tree.insert(r, i);
        }
        assert_eq!(tree.len(), 50);
        tree.check_invariants().unwrap();
        assert_eq!(tree.window(&r).count(), 50);
    }

    #[test]
    fn degenerate_point_rectangles() {
        let mut tree: RTree<u32> = RTree::new();
        for i in 0..100 {
            let p = i as f64 / 100.0;
            tree.insert(Rect::new(p, p, p, p), i);
        }
        tree.check_invariants().unwrap();
        assert_eq!(tree.window(&Rect::new(0.0, 0.0, 0.5, 0.5)).count(), 51);
    }
}
