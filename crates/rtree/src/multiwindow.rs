//! Multi-window best-first branch-and-bound kernel.
//!
//! This is the traversal at the heart of the paper's *find best value*
//! routine (Fig. 5), lifted into the index crate so every search layer
//! shares one implementation: given a set of query windows (predicate +
//! rectangle pairs), find the leaf payload that maximises a caller-supplied
//! score of its window-satisfaction count.
//!
//! The kernel knows nothing about solutions, penalties or budgets — the
//! caller injects the leaf scoring rule:
//!
//! - a **raw** scorer (`count as f64`) reproduces the paper's Fig. 5
//!   comparison exactly, because `u32` counts convert to `f64` losslessly
//!   (so `score_a > score_b ⇔ count_a > count_b`);
//! - a **λ-penalised** scorer (`count − λ·penalty(value)`) yields the GILS
//!   variant of §4.
//!
//! Pruning uses the entry's *potential* count (how many windows the entry
//! MBR could still satisfy) as an admissible bound on any leaf score below
//! it: scorers must never score a leaf above `count as f64` (penalties only
//! subtract), so a subtree whose potential count does not exceed the best
//! score found so far cannot contain a better leaf.

use crate::flat::FlatLeaves;
use crate::visit::NodeRef;
use mwsj_geom::{Predicate, Rect};

/// The winning leaf of a [`find_best_leaf`] traversal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BestLeaf<T> {
    /// The leaf payload.
    pub value: T,
    /// Number of windows the leaf's MBR satisfies.
    pub satisfied: u32,
    /// The caller-supplied score the leaf won with.
    pub score: f64,
}

/// Best-first branch-and-bound search for the leaf entry maximising
/// `score(value, satisfied_window_count)` (paper Fig. 5).
///
/// Entries of each visited node are scored by the number of windows they
/// satisfy (leaf level, `Predicate::eval`) or could satisfy (internal
/// level, `Predicate::possible`), entries with zero count are dropped, and
/// the rest are visited in descending count order. A subtree is pruned
/// when its potential count, as an `f64`, does not exceed the best score
/// found so far — admissible as long as `score(v, c) <= c as f64` for
/// every leaf, which both the raw and the penalised scorer guarantee.
///
/// Returns `None` when no leaf satisfies any window. `node_accesses` is
/// incremented once per node visited.
///
/// # Determinism
///
/// For a fixed tree and window list the traversal is deterministic: equal
/// counts are visited in the node's entry order after a stable-for-equal-
/// inputs unstable sort, and ties on score keep the first winner.
pub fn find_best_leaf<T: Copy>(
    root: NodeRef<'_, T>,
    windows: &[(Predicate, Rect)],
    mut score: impl FnMut(&T, u32) -> f64,
    node_accesses: &mut u64,
) -> Option<BestLeaf<T>> {
    if windows.is_empty() {
        return None;
    }
    let mut best: Option<BestLeaf<T>> = None;
    descend(root, None, windows, &mut score, &mut best, &mut |_| {
        *node_accesses += 1
    });
    best
}

/// [`find_best_leaf`] with **per-level access attribution**: identical
/// traversal and result, but each visited node additionally increments
/// `level_accesses[node.level()]` (`[0]` = leaf level). Levels beyond the
/// slice length are counted only in `node_accesses`, so callers sizing the
/// slice from [`crate::RTree::height`] lose nothing. The attribution
/// invariant — `level_accesses` deltas summing exactly to the
/// `node_accesses` delta — is locked by property tests.
pub fn find_best_leaf_leveled<T: Copy>(
    root: NodeRef<'_, T>,
    windows: &[(Predicate, Rect)],
    mut score: impl FnMut(&T, u32) -> f64,
    node_accesses: &mut u64,
    level_accesses: &mut [u64],
) -> Option<BestLeaf<T>> {
    if windows.is_empty() {
        return None;
    }
    let mut best: Option<BestLeaf<T>> = None;
    descend(root, None, windows, &mut score, &mut best, &mut |lvl| {
        *node_accesses += 1;
        if let Some(slot) = level_accesses.get_mut(lvl as usize) {
            *slot += 1;
        }
    });
    best
}

/// [`find_best_leaf`] over the flat leaf layout (see
/// [`FlatLeaves`]): internal-node traversal, ordering and pruning are
/// byte-for-byte the same, but leaf nodes are scanned through the frozen
/// SoA coordinate arrays instead of the per-node entry vectors. Results
/// (winner, satisfied count, score) and the `node_accesses` total are
/// bit-identical to the entry-layout kernel — the counter-compatibility
/// contract of DESIGN.md §5f, locked by property tests.
///
/// `flat` must be a snapshot of the tree `root` belongs to, taken after
/// its last mutation; spans of a stale snapshot address the wrong data.
pub fn find_best_leaf_flat<T: Copy>(
    root: NodeRef<'_, T>,
    flat: &FlatLeaves<T>,
    windows: &[(Predicate, Rect)],
    mut score: impl FnMut(&T, u32) -> f64,
    node_accesses: &mut u64,
) -> Option<BestLeaf<T>> {
    if windows.is_empty() {
        return None;
    }
    let mut best: Option<BestLeaf<T>> = None;
    descend(
        root,
        Some(flat),
        windows,
        &mut score,
        &mut best,
        &mut |_| *node_accesses += 1,
    );
    best
}

/// [`find_best_leaf_flat`] with per-level access attribution; see
/// [`find_best_leaf_leveled`] for the attribution contract.
pub fn find_best_leaf_flat_leveled<T: Copy>(
    root: NodeRef<'_, T>,
    flat: &FlatLeaves<T>,
    windows: &[(Predicate, Rect)],
    mut score: impl FnMut(&T, u32) -> f64,
    node_accesses: &mut u64,
    level_accesses: &mut [u64],
) -> Option<BestLeaf<T>> {
    if windows.is_empty() {
        return None;
    }
    let mut best: Option<BestLeaf<T>> = None;
    descend(
        root,
        Some(flat),
        windows,
        &mut score,
        &mut best,
        &mut |lvl| {
            *node_accesses += 1;
            if let Some(slot) = level_accesses.get_mut(lvl as usize) {
                *slot += 1;
            }
        },
    );
    best
}

/// Recursive worker shared by every entry point. `tally` is invoked once
/// per node whose entries are read, with the node's level (0 = leaf) —
/// the entry points reduce it to a plain counter bump or a counter bump
/// plus per-level attribution, so the traversal itself stays single-copy
/// and the non-attributing paths monomorphise to the pre-attribution code.
fn descend<T: Copy>(
    node: NodeRef<'_, T>,
    flat: Option<&FlatLeaves<T>>,
    windows: &[(Predicate, Rect)],
    score: &mut impl FnMut(&T, u32) -> f64,
    best: &mut Option<BestLeaf<T>>,
    tally: &mut impl FnMut(u32),
) {
    tally(node.level());

    if node.is_leaf() {
        match flat {
            Some(flat) => scan_leaf_flat(node, flat, windows, score, best),
            None => scan_leaf_entries(node, windows, score, best),
        }
        return;
    }

    // Count potentially satisfied windows per entry; keep only entries
    // with a positive count, sorted descending (Fig. 5).
    let mut scored: Vec<(u32, usize)> = Vec::with_capacity(node.len());
    for (i, entry) in node.entries().enumerate() {
        let mbr = entry.mbr();
        let count = windows
            .iter()
            .filter(|(pred, w)| pred.possible(mbr, w))
            .count() as u32;
        if count > 0 {
            scored.push((count, i));
        }
    }
    scored.sort_unstable_by_key(|&(count, _)| std::cmp::Reverse(count));

    for (count, i) in scored {
        // The potential count bounds every leaf score below this entry
        // (scorers never exceed the raw count), so a subtree that
        // cannot beat the incumbent score is pruned.
        if let Some(b) = best {
            if (count as f64) <= b.score {
                continue;
            }
        }
        let child = node.entry(i).child().expect("internal entry");
        descend(child, flat, windows, score, best, tally);
    }
}

/// Leaf scan over the slab entry layout: count satisfied windows per
/// entry, drop zero counts, visit in descending count order, keep the
/// first strict score improvement.
fn scan_leaf_entries<T: Copy>(
    node: NodeRef<'_, T>,
    windows: &[(Predicate, Rect)],
    score: &mut impl FnMut(&T, u32) -> f64,
    best: &mut Option<BestLeaf<T>>,
) {
    let mut scored: Vec<(u32, usize)> = Vec::with_capacity(node.len());
    for (i, entry) in node.entries().enumerate() {
        let mbr = entry.mbr();
        let count = windows.iter().filter(|(pred, w)| pred.eval(mbr, w)).count() as u32;
        if count > 0 {
            scored.push((count, i));
        }
    }
    scored.sort_unstable_by_key(|&(count, _)| std::cmp::Reverse(count));
    for (count, i) in scored {
        let value = *node.entry(i).value().expect("leaf entry");
        offer(best, value, count, score);
    }
}

/// Leaf scan over the flat SoA layout: the same count/sort/offer sequence
/// as [`scan_leaf_entries`] — identical inputs through an identical sort
/// give identical visit order, hence bit-identical winners — but the
/// counting loop reads four contiguous coordinate arrays with no payload
/// branch, which is what makes large-tier leaf scans cheap.
fn scan_leaf_flat<T: Copy>(
    node: NodeRef<'_, T>,
    flat: &FlatLeaves<T>,
    windows: &[(Predicate, Rect)],
    score: &mut impl FnMut(&T, u32) -> f64,
    best: &mut Option<BestLeaf<T>>,
) {
    let (start, len) = flat.span(node.id());
    debug_assert_eq!(len, node.len(), "stale flat-leaf snapshot");
    let mut scored: Vec<(u32, usize)> = Vec::with_capacity(len);
    for i in 0..len {
        let mbr = flat.rect(start + i);
        let count = windows
            .iter()
            .filter(|(pred, w)| pred.eval(&mbr, w))
            .count() as u32;
        if count > 0 {
            scored.push((count, i));
        }
    }
    scored.sort_unstable_by_key(|&(count, _)| std::cmp::Reverse(count));
    for (count, i) in scored {
        let value = *flat.value(start + i);
        offer(best, value, count, score);
    }
}

/// Offers one leaf candidate to the incumbent: strictly greater score
/// wins, ties keep the earlier visit.
#[inline]
fn offer<T: Copy>(
    best: &mut Option<BestLeaf<T>>,
    value: T,
    count: u32,
    score: &mut impl FnMut(&T, u32) -> f64,
) {
    let leaf_score = score(&value, count);
    let better = match best {
        None => true,
        Some(b) => leaf_score > b.score,
    };
    if better {
        *best = Some(BestLeaf {
            value,
            satisfied: count,
            score: leaf_score,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RTree, RTreeParams};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_rect(rng: &mut StdRng, extent: f64) -> Rect {
        let x = rng.random_range(0.0..1.0);
        let y = rng.random_range(0.0..1.0);
        let w = rng.random_range(0.0..extent);
        let h = rng.random_range(0.0..extent);
        Rect::new(x, y, x + w, y + h)
    }

    fn sample_tree(seed: u64, n: usize) -> (RTree<u32>, Vec<Rect>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rects: Vec<Rect> = (0..n).map(|_| random_rect(&mut rng, 0.1)).collect();
        let items: Vec<(Rect, u32)> = rects
            .iter()
            .enumerate()
            .map(|(i, r)| (*r, i as u32))
            .collect();
        (
            RTree::bulk_load_with_params(RTreeParams::new(8), items),
            rects,
        )
    }

    fn scan_best_score(
        rects: &[Rect],
        windows: &[(Predicate, Rect)],
        score: impl Fn(&u32, u32) -> f64,
    ) -> Option<f64> {
        rects
            .iter()
            .enumerate()
            .filter_map(|(i, r)| {
                let count = windows.iter().filter(|(pred, w)| pred.eval(r, w)).count() as u32;
                (count > 0).then(|| score(&(i as u32), count))
            })
            .max_by(|a, b| a.partial_cmp(b).expect("finite scores"))
    }

    #[test]
    fn raw_scorer_matches_exhaustive_scan() {
        let (tree, rects) = sample_tree(7, 500);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..40 {
            let windows: Vec<(Predicate, Rect)> = (0..3)
                .map(|_| (Predicate::Intersects, random_rect(&mut rng, 0.3)))
                .collect();
            let mut acc = 0;
            let fast = find_best_leaf(tree.root_node(), &windows, |_, c| c as f64, &mut acc);
            let slow = scan_best_score(&rects, &windows, |_, c| c as f64);
            assert_eq!(fast.map(|b| b.score), slow);
            if let Some(b) = fast {
                // The winner's reported count must be its true count.
                let true_count = windows
                    .iter()
                    .filter(|(pred, w)| pred.eval(&rects[b.value as usize], w))
                    .count() as u32;
                assert_eq!(b.satisfied, true_count);
            }
            assert!(acc > 0, "must at least visit the root");
        }
    }

    #[test]
    fn penalised_scorer_matches_exhaustive_scan() {
        let (tree, rects) = sample_tree(9, 400);
        let mut rng = StdRng::seed_from_u64(10);
        let penalties: Vec<u32> = (0..400).map(|_| rng.random_range(0..4)).collect();
        let lambda = 0.05;
        let score = |v: &u32, c: u32| c as f64 - lambda * penalties[*v as usize] as f64;
        for _ in 0..40 {
            let windows: Vec<(Predicate, Rect)> = (0..3)
                .map(|_| (Predicate::Intersects, random_rect(&mut rng, 0.3)))
                .collect();
            let mut acc = 0;
            let fast = find_best_leaf(tree.root_node(), &windows, score, &mut acc);
            let slow = scan_best_score(&rects, &windows, score);
            assert_eq!(fast.map(|b| b.score), slow);
        }
    }

    #[test]
    fn empty_windows_return_none_without_visiting() {
        let (tree, _) = sample_tree(11, 50);
        let mut acc = 0;
        assert_eq!(
            find_best_leaf(tree.root_node(), &[], |_: &u32, c| c as f64, &mut acc),
            None
        );
        assert_eq!(acc, 0);
    }

    #[test]
    fn leveled_kernel_matches_plain_kernel_and_attributes_every_access() {
        let (tree, _) = sample_tree(15, 2_000);
        let flat = tree.flat_leaves();
        let mut rng = StdRng::seed_from_u64(16);
        for _ in 0..30 {
            let windows: Vec<(Predicate, Rect)> = (0..3)
                .map(|_| (Predicate::Intersects, random_rect(&mut rng, 0.25)))
                .collect();
            let mut plain_acc = 0u64;
            let plain = find_best_leaf(tree.root_node(), &windows, |_, c| c as f64, &mut plain_acc);
            let mut acc = 0u64;
            let mut levels = vec![0u64; tree.height() as usize];
            let leveled = find_best_leaf_leveled(
                tree.root_node(),
                &windows,
                |_, c| c as f64,
                &mut acc,
                &mut levels,
            );
            assert_eq!(plain, leveled);
            assert_eq!(plain_acc, acc);
            assert_eq!(levels.iter().sum::<u64>(), acc, "levels {levels:?}");
            let mut flat_acc = 0u64;
            let mut flat_levels = vec![0u64; tree.height() as usize];
            let flat_best = find_best_leaf_flat_leveled(
                tree.root_node(),
                &flat,
                &windows,
                |_, c| c as f64,
                &mut flat_acc,
                &mut flat_levels,
            );
            assert_eq!(plain, flat_best);
            assert_eq!(flat_levels, levels);
        }
    }

    #[test]
    fn pruning_skips_subtrees_that_cannot_win() {
        let (tree, _) = sample_tree(13, 5_000);
        let mut rng = StdRng::seed_from_u64(14);
        let windows: Vec<(Predicate, Rect)> = (0..2)
            .map(|_| (Predicate::Intersects, random_rect(&mut rng, 0.2)))
            .collect();
        let mut acc = 0;
        let _ = find_best_leaf(tree.root_node(), &windows, |_, c| c as f64, &mut acc);
        assert!(
            acc < tree.node_count() as u64,
            "visited {acc} of {} nodes — pruning ineffective",
            tree.node_count()
        );
    }
}
