//! Query graphs, solutions and similarity for multiway spatial joins.
//!
//! A multiway spatial join over datasets `D₁ … Dₙ` is specified by a *query
//! graph* whose nodes are the datasets (problem variables) and whose edges
//! carry binary spatial predicates — equivalently, a binary *constraint
//! network* (the paper's §2). This crate provides:
//!
//! * [`QueryGraph`] — the constraint network, with constructors for the
//!   paper's query topologies (chains, cliques, cycles, stars, random
//!   connected graphs) and a fluent [`QueryGraphBuilder`];
//! * [`Solution`] — a full assignment of one object per variable;
//! * inconsistency-degree / similarity evaluation
//!   (`similarity = 1 − #violated / #total`, §6);
//! * [`ConflictState`] — incremental per-variable conflict bookkeeping used
//!   by the local-search algorithms to find the *worst variable* in O(1)
//!   amortised per move;
//! * [`PenaltyTable`] — the sparse assignment-penalty memory of guided
//!   indexed local search (§4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blocks;
mod builder;
mod conflicts;
mod graph;
mod penalty;
mod solution;

pub use blocks::Block;
pub use builder::QueryGraphBuilder;
pub use conflicts::ConflictState;
pub use graph::{Edge, GraphError, QueryGraph};
pub use penalty::PenaltyTable;
pub use solution::Solution;

/// Index of a query variable (dataset) in `0..n`.
pub type VarId = usize;
