//! Biconnected-component decomposition of query graphs.
//!
//! The paper's selectivity formulas (§6) are exact for acyclic queries and
//! for cliques, and it notes they "are applicable for queries that can be
//! decomposed to acyclic and clique graphs". The decomposition in question
//! is into *biconnected components* (blocks): blocks share only cut
//! vertices, so their join-satisfaction events are independent and
//! selectivities multiply. This module computes the blocks
//! (Hopcroft–Tarjan) and classifies them; `mwsj-datagen` builds the
//! composite estimator on top.

use crate::{QueryGraph, VarId};

/// One biconnected component of a query graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Indices into [`QueryGraph::edges`] of the block's edges.
    pub edges: Vec<usize>,
    /// The variables touched by those edges, ascending.
    pub vars: Vec<VarId>,
}

impl Block {
    /// Returns `true` if the block is a single edge (a bridge).
    pub fn is_bridge(&self) -> bool {
        self.edges.len() == 1
    }

    /// Returns `true` if the block's variables are completely joined.
    pub fn is_clique(&self) -> bool {
        let k = self.vars.len();
        self.edges.len() == k * (k - 1) / 2
    }
}

impl QueryGraph {
    /// Decomposes the graph into biconnected components (blocks) via an
    /// iterative Hopcroft–Tarjan DFS. Every edge appears in exactly one
    /// block; a bridge forms a block of its own. Blocks are returned in
    /// DFS completion order.
    pub fn blocks(&self) -> Vec<Block> {
        let n = self.n_vars();
        let mut disc = vec![0usize; n]; // 0 = unvisited, else discovery time
        let mut low = vec![0usize; n];
        let mut time = 0usize;
        let mut edge_stack: Vec<usize> = Vec::new();
        let mut blocks = Vec::new();

        // Iterative DFS frame: (vertex, incoming edge, adjacency cursor).
        for root in 0..n {
            if disc[root] != 0 {
                continue;
            }
            time += 1;
            disc[root] = time;
            low[root] = time;
            let mut stack: Vec<(VarId, Option<usize>, usize)> = vec![(root, None, 0)];
            while let Some(&mut (u, parent_edge, ref mut cursor)) = stack.last_mut() {
                let neighbors = self.neighbors(u);
                if *cursor < neighbors.len() {
                    let (v, _) = neighbors[*cursor];
                    *cursor += 1;
                    let edge_idx = self.edge_index(u, v).expect("adjacent edge");
                    if Some(edge_idx) == parent_edge {
                        continue;
                    }
                    if disc[v] == 0 {
                        edge_stack.push(edge_idx);
                        time += 1;
                        disc[v] = time;
                        low[v] = time;
                        stack.push((v, Some(edge_idx), 0));
                    } else if disc[v] < disc[u] {
                        // Back edge.
                        edge_stack.push(edge_idx);
                        low[u] = low[u].min(disc[v]);
                    }
                } else {
                    // Finished u: propagate low to parent, maybe emit block.
                    stack.pop();
                    if let Some(&mut (p, _, _)) = stack.last_mut() {
                        low[p] = low[p].min(low[u]);
                        if low[u] >= disc[p] {
                            // p is an articulation point (or the root):
                            // everything above the tree edge (p, u) is one
                            // block.
                            let tree_edge = self.edge_index(p, u).expect("tree edge exists");
                            let mut block_edges = Vec::new();
                            while let Some(e) = edge_stack.pop() {
                                block_edges.push(e);
                                if e == tree_edge {
                                    break;
                                }
                            }
                            blocks.push(self.make_block(block_edges));
                        }
                    }
                }
            }
        }
        blocks
    }

    fn make_block(&self, mut edge_indices: Vec<usize>) -> Block {
        edge_indices.sort_unstable();
        edge_indices.dedup();
        let mut vars: Vec<VarId> = edge_indices
            .iter()
            .flat_map(|&i| {
                let e = &self.edges()[i];
                [e.a, e.b]
            })
            .collect();
        vars.sort_unstable();
        vars.dedup();
        Block {
            edges: edge_indices,
            vars,
        }
    }

    /// Returns `true` if every block is a bridge or a clique — the class
    /// of queries for which the composite selectivity estimate
    /// (`mwsj-datagen`) is exact under the uniform model.
    pub fn is_clique_decomposable(&self) -> bool {
        self.blocks().iter().all(|b| b.is_bridge() || b.is_clique())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueryGraphBuilder;

    #[test]
    fn chain_blocks_are_all_bridges() {
        let g = QueryGraph::chain(5);
        let blocks = g.blocks();
        assert_eq!(blocks.len(), 4);
        assert!(blocks.iter().all(Block::is_bridge));
        assert!(g.is_clique_decomposable());
        // Every edge appears exactly once.
        let mut all: Vec<usize> = blocks.iter().flat_map(|b| b.edges.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..4).collect::<Vec<_>>());
    }

    #[test]
    fn clique_is_one_block() {
        let g = QueryGraph::clique(5);
        let blocks = g.blocks();
        assert_eq!(blocks.len(), 1);
        assert!(blocks[0].is_clique());
        assert_eq!(blocks[0].vars, vec![0, 1, 2, 3, 4]);
        assert_eq!(blocks[0].edges.len(), 10);
        assert!(g.is_clique_decomposable());
    }

    #[test]
    fn cycle_is_one_non_clique_block() {
        let g = QueryGraph::cycle(4);
        let blocks = g.blocks();
        assert_eq!(blocks.len(), 1);
        assert!(!blocks[0].is_clique());
        assert!(!blocks[0].is_bridge());
        assert!(!g.is_clique_decomposable());
    }

    #[test]
    fn barbell_decomposes_into_two_triangles_and_a_bridge() {
        // Triangle 0-1-2, bridge 2-3, triangle 3-4-5.
        let g = QueryGraphBuilder::new(6)
            .edge(0, 1)
            .edge(1, 2)
            .edge(0, 2)
            .edge(2, 3)
            .edge(3, 4)
            .edge(4, 5)
            .edge(3, 5)
            .build()
            .unwrap();
        let blocks = g.blocks();
        assert_eq!(blocks.len(), 3);
        let cliques = blocks
            .iter()
            .filter(|b| b.is_clique() && !b.is_bridge())
            .count();
        let bridges = blocks.iter().filter(|b| b.is_bridge()).count();
        assert_eq!(cliques, 2);
        assert_eq!(bridges, 1);
        assert!(g.is_clique_decomposable());
        // All 7 edges covered exactly once.
        let mut all: Vec<usize> = blocks.iter().flat_map(|b| b.edges.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn star_blocks_are_its_edges() {
        let g = QueryGraph::star(6);
        let blocks = g.blocks();
        assert_eq!(blocks.len(), 5);
        assert!(blocks.iter().all(Block::is_bridge));
    }

    #[test]
    fn disconnected_graph_blocks_cover_all_components() {
        let g = QueryGraphBuilder::new(5)
            .edge(0, 1)
            .edge(2, 3)
            .edge(3, 4)
            .edge(2, 4)
            .build()
            .unwrap();
        let blocks = g.blocks();
        assert_eq!(blocks.len(), 2);
        let mut all: Vec<usize> = blocks.iter().flat_map(|b| b.edges.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..4).collect::<Vec<_>>());
    }

    #[test]
    fn random_graphs_blocks_partition_edges() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..20 {
            let g = QueryGraph::random_connected(8, 0.3, &mut rng);
            let blocks = g.blocks();
            let mut all: Vec<usize> = blocks.iter().flat_map(|b| b.edges.clone()).collect();
            all.sort_unstable();
            let expected: Vec<usize> = (0..g.edge_count()).collect();
            assert_eq!(all, expected, "edges not partitioned");
        }
    }
}
