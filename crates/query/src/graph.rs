//! The query graph / constraint network.

use crate::VarId;
use mwsj_geom::Predicate;
use std::fmt;

/// One join condition: `var a` related to `var b` by `pred` (oriented
/// `a → b`, i.e. the edge holds when `pred.eval(rect_a, rect_b)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// First endpoint.
    pub a: VarId,
    /// Second endpoint.
    pub b: VarId,
    /// Spatial predicate, oriented from `a` to `b`.
    pub pred: Predicate,
}

/// Errors raised when constructing a [`QueryGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A graph needs at least two variables.
    TooFewVariables(usize),
    /// Edge endpoints must differ (self-joins are expressed by aliasing a
    /// dataset under two variables, not by self-loops).
    SelfLoop(VarId),
    /// An endpoint is outside `0..n`.
    OutOfRange(VarId, usize),
    /// The same variable pair appears twice.
    DuplicateEdge(VarId, VarId),
    /// A query graph must have at least one join condition.
    NoEdges,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::TooFewVariables(n) => {
                write!(f, "a multiway join needs at least 2 variables, got {n}")
            }
            GraphError::SelfLoop(v) => write!(f, "self-loop on variable {v}"),
            GraphError::OutOfRange(v, n) => {
                write!(f, "variable {v} out of range for {n} variables")
            }
            GraphError::DuplicateEdge(a, b) => write!(f, "duplicate edge ({a}, {b})"),
            GraphError::NoEdges => write!(f, "query graph has no join conditions"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A multiway spatial join query: `n` variables plus predicate-labelled
/// edges between them.
///
/// ```
/// use mwsj_query::QueryGraph;
///
/// // "cities crossed by a river which crosses an industrial area"
/// let chain = QueryGraph::chain(3);
/// assert_eq!(chain.edge_count(), 2);
/// // "... where the industrial area also intersects the city"
/// let clique = QueryGraph::clique(3);
/// assert_eq!(clique.edge_count(), 3);
/// assert!(clique.is_clique());
/// ```
#[derive(Debug, Clone)]
pub struct QueryGraph {
    n: usize,
    edges: Vec<Edge>,
    /// Adjacency lists; predicates oriented *from* the list owner.
    adj: Vec<Vec<(VarId, Predicate)>>,
    /// Edge index by unordered pair: `pair_index[a][b] = Some(edge idx)`.
    pair_index: Vec<Vec<Option<usize>>>,
}

impl QueryGraph {
    /// Builds a graph from an explicit edge list.
    pub fn from_edges(n: usize, edges: Vec<Edge>) -> Result<Self, GraphError> {
        if n < 2 {
            return Err(GraphError::TooFewVariables(n));
        }
        if edges.is_empty() {
            return Err(GraphError::NoEdges);
        }
        let mut adj: Vec<Vec<(VarId, Predicate)>> = vec![Vec::new(); n];
        let mut pair_index: Vec<Vec<Option<usize>>> = vec![vec![None; n]; n];
        for (idx, e) in edges.iter().enumerate() {
            if e.a == e.b {
                return Err(GraphError::SelfLoop(e.a));
            }
            for v in [e.a, e.b] {
                if v >= n {
                    return Err(GraphError::OutOfRange(v, n));
                }
            }
            if pair_index[e.a][e.b].is_some() {
                return Err(GraphError::DuplicateEdge(e.a, e.b));
            }
            pair_index[e.a][e.b] = Some(idx);
            pair_index[e.b][e.a] = Some(idx);
            adj[e.a].push((e.b, e.pred));
            adj[e.b].push((e.a, e.pred.transpose()));
        }
        Ok(QueryGraph {
            n,
            edges,
            adj,
            pair_index,
        })
    }

    /// Chain query `v₀ — v₁ — … — vₙ₋₁` with the *overlap* predicate: the
    /// most under-constrained connected topology (paper §6, footnote 2).
    pub fn chain(n: usize) -> Self {
        Self::chain_with(n, Predicate::Intersects)
    }

    /// Chain query with an arbitrary predicate on every edge.
    pub fn chain_with(n: usize, pred: Predicate) -> Self {
        let edges = (0..n.saturating_sub(1))
            .map(|i| Edge {
                a: i,
                b: i + 1,
                pred,
            })
            .collect();
        Self::from_edges(n, edges).expect("chain construction is valid for n >= 2")
    }

    /// Clique query (every pair joined) with the *overlap* predicate: the
    /// most over-constrained topology (paper §6, footnote 2).
    pub fn clique(n: usize) -> Self {
        Self::clique_with(n, Predicate::Intersects)
    }

    /// Clique query with an arbitrary (symmetric) predicate on every edge.
    pub fn clique_with(n: usize, pred: Predicate) -> Self {
        let mut edges = Vec::with_capacity(n * (n - 1) / 2);
        for a in 0..n {
            for b in (a + 1)..n {
                edges.push(Edge { a, b, pred });
            }
        }
        Self::from_edges(n, edges).expect("clique construction is valid for n >= 2")
    }

    /// Cycle query `v₀ — v₁ — … — vₙ₋₁ — v₀`.
    pub fn cycle(n: usize) -> Self {
        assert!(n >= 3, "a cycle needs at least 3 variables");
        let mut edges: Vec<Edge> = (0..n - 1)
            .map(|i| Edge {
                a: i,
                b: i + 1,
                pred: Predicate::Intersects,
            })
            .collect();
        edges.push(Edge {
            a: n - 1,
            b: 0,
            pred: Predicate::Intersects,
        });
        Self::from_edges(n, edges).expect("cycle construction is valid for n >= 3")
    }

    /// Star query: `v₀` joined with every other variable.
    pub fn star(n: usize) -> Self {
        let edges = (1..n)
            .map(|i| Edge {
                a: 0,
                b: i,
                pred: Predicate::Intersects,
            })
            .collect();
        Self::from_edges(n, edges).expect("star construction is valid for n >= 2")
    }

    /// Number of variables.
    #[inline]
    pub fn n_vars(&self) -> usize {
        self.n
    }

    /// Number of join conditions.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The join conditions, in construction order.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Neighbours of `v` with the predicate oriented from `v`.
    #[inline]
    pub fn neighbors(&self, v: VarId) -> &[(VarId, Predicate)] {
        &self.adj[v]
    }

    /// Number of join conditions incident to `v`.
    #[inline]
    pub fn degree(&self, v: VarId) -> usize {
        self.adj[v].len()
    }

    /// The predicate between `a` and `b`, oriented `a → b`, if an edge
    /// exists.
    pub fn predicate_between(&self, a: VarId, b: VarId) -> Option<Predicate> {
        let idx = self.pair_index[a][b]?;
        let e = &self.edges[idx];
        Some(if e.a == a { e.pred } else { e.pred.transpose() })
    }

    /// Index into [`QueryGraph::edges`] of the edge between `a` and `b`.
    pub fn edge_index(&self, a: VarId, b: VarId) -> Option<usize> {
        self.pair_index[a][b]
    }

    /// Returns `true` if every variable is reachable from variable 0.
    pub fn is_connected(&self) -> bool {
        let mut seen = vec![false; self.n];
        let mut stack = vec![0];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &(u, _) in &self.adj[v] {
                if !seen[u] {
                    seen[u] = true;
                    count += 1;
                    stack.push(u);
                }
            }
        }
        count == self.n
    }

    /// Returns `true` if the graph is a tree (connected and acyclic) —
    /// the class the paper's acyclic selectivity formula covers.
    pub fn is_acyclic(&self) -> bool {
        self.edges.len() == self.n - 1 && self.is_connected()
    }

    /// Returns `true` if every pair of variables is joined.
    pub fn is_clique(&self) -> bool {
        self.edges.len() == self.n * (self.n - 1) / 2
    }

    /// Problem size `s = log₂ ∏ Nᵢ` — the number of bits needed to express
    /// all possible solutions \[CFG+98\], used by the paper to scale SEA's
    /// parameters (§5). `cards[i]` is the cardinality of dataset `i`.
    pub fn problem_size_bits(&self, cards: &[usize]) -> f64 {
        assert_eq!(cards.len(), self.n);
        cards.iter().map(|&c| (c.max(1) as f64).log2()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_structure() {
        let g = QueryGraph::chain(5);
        assert_eq!(g.n_vars(), 5);
        assert_eq!(g.edge_count(), 4);
        assert!(g.is_connected());
        assert!(g.is_acyclic());
        assert!(!g.is_clique());
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
    }

    #[test]
    fn clique_structure() {
        let g = QueryGraph::clique(5);
        assert_eq!(g.edge_count(), 10);
        assert!(g.is_clique());
        assert!(g.is_connected());
        assert!(!g.is_acyclic());
        for v in 0..5 {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn two_var_clique_equals_chain() {
        let g = QueryGraph::clique(2);
        assert_eq!(g.edge_count(), 1);
        assert!(g.is_clique());
        assert!(g.is_acyclic());
    }

    #[test]
    fn cycle_structure() {
        let g = QueryGraph::cycle(4);
        assert_eq!(g.edge_count(), 4);
        assert!(g.is_connected());
        assert!(!g.is_acyclic());
        for v in 0..4 {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn star_structure() {
        let g = QueryGraph::star(6);
        assert_eq!(g.edge_count(), 5);
        assert!(g.is_acyclic());
        assert_eq!(g.degree(0), 5);
        assert_eq!(g.degree(3), 1);
    }

    #[test]
    fn predicate_between_orientation() {
        let g = QueryGraph::from_edges(
            2,
            vec![Edge {
                a: 0,
                b: 1,
                pred: Predicate::Contains,
            }],
        )
        .unwrap();
        assert_eq!(g.predicate_between(0, 1), Some(Predicate::Contains));
        assert_eq!(g.predicate_between(1, 0), Some(Predicate::Inside));
        assert_eq!(g.predicate_between(0, 0), None);
    }

    #[test]
    fn neighbors_carry_transposed_predicates() {
        let g = QueryGraph::from_edges(
            3,
            vec![
                Edge {
                    a: 0,
                    b: 1,
                    pred: Predicate::NorthEast,
                },
                Edge {
                    a: 1,
                    b: 2,
                    pred: Predicate::Intersects,
                },
            ],
        )
        .unwrap();
        let n1: Vec<_> = g.neighbors(1).to_vec();
        assert!(n1.contains(&(0, Predicate::SouthWest)));
        assert!(n1.contains(&(2, Predicate::Intersects)));
    }

    #[test]
    fn rejects_invalid_graphs() {
        assert_eq!(
            QueryGraph::from_edges(1, vec![]).unwrap_err(),
            GraphError::TooFewVariables(1)
        );
        assert_eq!(
            QueryGraph::from_edges(3, vec![]).unwrap_err(),
            GraphError::NoEdges
        );
        let self_loop = Edge {
            a: 1,
            b: 1,
            pred: Predicate::Intersects,
        };
        assert_eq!(
            QueryGraph::from_edges(3, vec![self_loop]).unwrap_err(),
            GraphError::SelfLoop(1)
        );
        let oob = Edge {
            a: 0,
            b: 7,
            pred: Predicate::Intersects,
        };
        assert_eq!(
            QueryGraph::from_edges(3, vec![oob]).unwrap_err(),
            GraphError::OutOfRange(7, 3)
        );
        let e = Edge {
            a: 0,
            b: 1,
            pred: Predicate::Intersects,
        };
        let rev = Edge {
            a: 1,
            b: 0,
            pred: Predicate::Intersects,
        };
        assert_eq!(
            QueryGraph::from_edges(3, vec![e, rev]).unwrap_err(),
            GraphError::DuplicateEdge(1, 0)
        );
    }

    #[test]
    fn disconnected_graph_is_detected() {
        let g = QueryGraph::from_edges(
            4,
            vec![
                Edge {
                    a: 0,
                    b: 1,
                    pred: Predicate::Intersects,
                },
                Edge {
                    a: 2,
                    b: 3,
                    pred: Predicate::Intersects,
                },
            ],
        )
        .unwrap();
        assert!(!g.is_connected());
        assert!(!g.is_acyclic()); // acyclic requires connectivity here
    }

    #[test]
    fn problem_size_bits_matches_formula() {
        let g = QueryGraph::chain(3);
        // s = log2(1000^3) = 3 * log2(1000)
        let s = g.problem_size_bits(&[1000, 1000, 1000]);
        assert!((s - 3.0 * 1000f64.log2()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn cycle_needs_three() {
        let _ = QueryGraph::cycle(2);
    }
}
