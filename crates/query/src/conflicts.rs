//! Incremental conflict bookkeeping for local search.
//!
//! The local-search algorithms (ILS/GILS, and SEA's mutation) repeatedly
//! need the *worst variable* — the one whose current instantiation violates
//! the most join conditions, ties broken by the smallest number of satisfied
//! conditions (paper §3). Recomputing all violations after every move costs
//! O(E); [`ConflictState`] maintains per-edge and per-variable counters so a
//! single re-instantiation costs only O(degree).

use crate::{QueryGraph, Solution, VarId};
use mwsj_geom::Rect;

/// Violation state of one solution under one query graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictState {
    /// Per-edge violation flags, indexed like [`QueryGraph::edges`].
    violated: Vec<bool>,
    /// Per-variable count of violated incident edges.
    conflicts: Vec<u32>,
    /// Total number of violated edges.
    total: usize,
}

impl ConflictState {
    /// Evaluates `sol` from scratch in O(E).
    pub fn evaluate<F>(graph: &QueryGraph, sol: &Solution, rect_of: F) -> Self
    where
        F: Fn(VarId, usize) -> Rect,
    {
        assert_eq!(sol.len(), graph.n_vars());
        let mut violated = vec![false; graph.edge_count()];
        let mut conflicts = vec![0u32; graph.n_vars()];
        let mut total = 0usize;
        for (i, e) in graph.edges().iter().enumerate() {
            let ra = rect_of(e.a, sol.get(e.a));
            let rb = rect_of(e.b, sol.get(e.b));
            if !e.pred.eval(&ra, &rb) {
                violated[i] = true;
                conflicts[e.a] += 1;
                conflicts[e.b] += 1;
                total += 1;
            }
        }
        ConflictState {
            violated,
            conflicts,
            total,
        }
    }

    /// Total number of violated join conditions (the inconsistency degree).
    #[inline]
    pub fn total_violations(&self) -> usize {
        self.total
    }

    /// Similarity under `graph`: `1 − violations / edges`.
    #[inline]
    pub fn similarity(&self, graph: &QueryGraph) -> f64 {
        graph.similarity_of_violations(self.total)
    }

    /// Number of violated edges incident to `v`.
    #[inline]
    pub fn conflicts_of(&self, v: VarId) -> u32 {
        self.conflicts[v]
    }

    /// Number of satisfied edges incident to `v`.
    #[inline]
    pub fn satisfied_of(&self, graph: &QueryGraph, v: VarId) -> u32 {
        graph.degree(v) as u32 - self.conflicts[v]
    }

    /// Whether edge `i` (index into [`QueryGraph::edges`]) is violated.
    #[inline]
    pub fn is_edge_violated(&self, i: usize) -> bool {
        self.violated[i]
    }

    /// Re-instantiates `v ← new_obj` in `sol`, updating counters in
    /// O(degree(v)).
    pub fn reassign<F>(
        &mut self,
        graph: &QueryGraph,
        sol: &mut Solution,
        v: VarId,
        new_obj: usize,
        rect_of: F,
    ) where
        F: Fn(VarId, usize) -> Rect,
    {
        sol.set(v, new_obj);
        let rv = rect_of(v, new_obj);
        for &(u, pred) in graph.neighbors(v) {
            let idx = graph
                .edge_index(v, u)
                .expect("neighbor implies edge exists");
            let ru = rect_of(u, sol.get(u));
            let now_violated = !pred.eval(&rv, &ru);
            let was_violated = self.violated[idx];
            if now_violated != was_violated {
                self.violated[idx] = now_violated;
                if now_violated {
                    self.conflicts[v] += 1;
                    self.conflicts[u] += 1;
                    self.total += 1;
                } else {
                    self.conflicts[v] -= 1;
                    self.conflicts[u] -= 1;
                    self.total -= 1;
                }
            }
        }
    }

    /// Variables ordered worst-first: most conflicts, ties broken by fewest
    /// satisfied conditions (paper §3), then by index for determinism.
    pub fn vars_by_badness(&self, graph: &QueryGraph) -> Vec<VarId> {
        let mut vars: Vec<VarId> = (0..graph.n_vars()).collect();
        vars.sort_by_key(|&v| {
            (
                std::cmp::Reverse(self.conflicts[v]),
                self.satisfied_of(graph, v),
                v,
            )
        });
        vars
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueryGraph;
    use mwsj_geom::Rect;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn rect_of(data: &[Vec<Rect>]) -> impl Fn(VarId, usize) -> Rect + '_ {
        move |v, o| data[v][o]
    }

    /// Paper Fig. 4b: a 4-variable query with edges Q12, Q14, Q23, Q34
    /// where Q14, Q23 and Q34 are violated. v3 and v4 have two violations
    /// each; v3 has one satisfied condition, v4 none → v4 is worst.
    #[test]
    fn worst_variable_matches_paper_example() {
        // Rect layout engineered to violate exactly Q14, Q23, Q34.
        let data = vec![
            vec![Rect::new(0.0, 0.0, 1.0, 1.0)], // v1
            vec![Rect::new(0.5, 0.5, 1.5, 1.5)], // v2 (meets v1)
            vec![Rect::new(5.0, 5.0, 6.0, 6.0)], // v3 (meets nothing yet)
            vec![Rect::new(9.0, 9.0, 9.9, 9.9)], // v4 (meets nothing)
        ];
        // Edges: (0,1), (0,3), (1,2), (2,3) — i.e. Q12, Q14, Q23, Q34.
        let g = crate::QueryGraphBuilder::new(4)
            .edge(0, 1)
            .edge(0, 3)
            .edge(1, 2)
            .edge(2, 3)
            .build()
            .unwrap();
        // Give v3 one satisfied condition by pointing Q23's rects together:
        // instead adjust data: v3 overlaps v2? The paper example has v3 with
        // one satisfied condition (Q13 in the figure). Here we emulate the
        // *tie-break* only: v3 conflicts=2 (Q23, Q34), v4 conflicts=2
        // (Q14, Q34); satisfied: v3 → 0, v4 → 0. Adjust v3 to meet v2:
        let mut data = data;
        data[2][0] = Rect::new(1.0, 1.0, 1.2, 1.2); // v3 now meets v2 (and v1 isn't joined to v3)
        let sol = Solution::new(vec![0, 0, 0, 0]);
        let cs = ConflictState::evaluate(&g, &sol, rect_of(&data));
        // Violations: Q14 (v1 far from v4), Q34 (v3 far from v4). Q23 now ok.
        assert_eq!(cs.total_violations(), 2);
        assert_eq!(cs.conflicts_of(3), 2);
        assert_eq!(cs.conflicts_of(2), 1);
        let order = cs.vars_by_badness(&g);
        assert_eq!(order[0], 3, "v4 (index 3) must be worst");
    }

    #[test]
    fn incremental_matches_full_reevaluation() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 6;
        let objs = 30;
        let data: Vec<Vec<Rect>> = (0..n)
            .map(|_| {
                (0..objs)
                    .map(|_| {
                        let x: f64 = rng.random_range(0.0..1.0);
                        let y: f64 = rng.random_range(0.0..1.0);
                        Rect::new(x, y, x + 0.2, y + 0.2)
                    })
                    .collect()
            })
            .collect();
        let g = QueryGraph::random_connected(n, 0.5, &mut rng);
        let mut sol = Solution::new(vec![0; n]);
        let mut cs = ConflictState::evaluate(&g, &sol, rect_of(&data));
        for _ in 0..500 {
            let v = rng.random_range(0..n);
            let o = rng.random_range(0..objs);
            cs.reassign(&g, &mut sol, v, o, rect_of(&data));
            let fresh = ConflictState::evaluate(&g, &sol, rect_of(&data));
            assert_eq!(cs, fresh, "incremental state diverged");
        }
    }

    #[test]
    fn reassign_to_same_object_is_noop() {
        let data = vec![
            vec![Rect::new(0.0, 0.0, 1.0, 1.0)],
            vec![Rect::new(2.0, 2.0, 3.0, 3.0)],
        ];
        let g = QueryGraph::chain(2);
        let mut sol = Solution::new(vec![0, 0]);
        let mut cs = ConflictState::evaluate(&g, &sol, rect_of(&data));
        let before = cs.clone();
        cs.reassign(&g, &mut sol, 0, 0, rect_of(&data));
        assert_eq!(cs, before);
        assert_eq!(cs.total_violations(), 1);
    }

    #[test]
    fn similarity_tracks_total() {
        let data = vec![
            vec![Rect::new(0.0, 0.0, 1.0, 1.0)],
            vec![Rect::new(0.5, 0.5, 1.5, 1.5)],
            vec![Rect::new(9.0, 9.0, 9.5, 9.5)],
        ];
        let g = QueryGraph::clique(3);
        let sol = Solution::new(vec![0, 0, 0]);
        let cs = ConflictState::evaluate(&g, &sol, rect_of(&data));
        assert_eq!(cs.total_violations(), 2); // v3 misses both others
        assert!((cs.similarity(&g) - 1.0 / 3.0).abs() < 1e-12);
    }
}
