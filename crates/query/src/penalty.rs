//! The sparse penalty memory of guided indexed local search (paper §4).
//!
//! GILS penalises variable *assignments* (`vᵢ ← r`) found at local maxima.
//! The effective inconsistency degree of a solution adds
//! `λ · Σᵢ penalty(vᵢ ← rᵢ)` to its violation count. The paper notes the
//! penalty array is very sparse and suggests a hash table for large
//! problems — which is what this is.

use crate::{Solution, VarId};
use std::collections::HashMap;

/// Sparse table of assignment penalties.
#[derive(Debug, Clone, Default)]
pub struct PenaltyTable {
    penalties: HashMap<(VarId, usize), u32>,
    version: u64,
}

impl PenaltyTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Penalty of the assignment `v ← obj` (0 if never penalised).
    #[inline]
    pub fn get(&self, v: VarId, obj: usize) -> u32 {
        self.penalties.get(&(v, obj)).copied().unwrap_or(0)
    }

    /// Increments the penalty of `v ← obj`.
    pub fn penalize(&mut self, v: VarId, obj: usize) {
        *self.penalties.entry((v, obj)).or_insert(0) += 1;
        self.version += 1;
    }

    /// Monotone change counter: bumped on every [`penalize`] call.
    /// Caches keyed on penalty state (e.g. the search layer's window
    /// cache) compare versions instead of hashing the table.
    ///
    /// [`penalize`]: PenaltyTable::penalize
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Sum of penalties over all assignments of `sol`.
    pub fn total_for(&self, sol: &Solution) -> u64 {
        sol.as_slice()
            .iter()
            .enumerate()
            .map(|(v, &obj)| self.get(v, obj) as u64)
            .sum()
    }

    /// Effective inconsistency degree: violations plus λ-weighted penalties
    /// (paper §4).
    pub fn effective_inconsistency(&self, violations: usize, sol: &Solution, lambda: f64) -> f64 {
        violations as f64 + lambda * self.total_for(sol) as f64
    }

    /// The GILS punishment step: among the assignments of the current local
    /// maximum, penalise those with the **minimum** penalty so far (avoiding
    /// over-punishing assignments already penalised at earlier maxima).
    /// Returns the penalised variables.
    pub fn penalize_local_maximum(&mut self, sol: &Solution) -> Vec<VarId> {
        let min = sol
            .as_slice()
            .iter()
            .enumerate()
            .map(|(v, &obj)| self.get(v, obj))
            .min()
            .expect("solution has at least one variable");
        let chosen: Vec<VarId> = (0..sol.len())
            .filter(|&v| self.get(v, sol.get(v)) == min)
            .collect();
        for &v in &chosen {
            self.penalize(v, sol.get(v));
        }
        chosen
    }

    /// Number of distinct assignments holding a positive penalty.
    pub fn len(&self) -> usize {
        self.penalties.len()
    }

    /// Returns `true` if no assignment has been penalised yet.
    pub fn is_empty(&self) -> bool {
        self.penalties.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_defaults_to_zero() {
        let t = PenaltyTable::new();
        assert_eq!(t.get(0, 42), 0);
        assert!(t.is_empty());
    }

    #[test]
    fn penalize_accumulates() {
        let mut t = PenaltyTable::new();
        t.penalize(1, 7);
        t.penalize(1, 7);
        t.penalize(2, 7);
        assert_eq!(t.get(1, 7), 2);
        assert_eq!(t.get(2, 7), 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn total_for_sums_assignments() {
        let mut t = PenaltyTable::new();
        t.penalize(0, 5);
        t.penalize(0, 5);
        t.penalize(2, 1);
        let sol = Solution::new(vec![5, 9, 1]);
        assert_eq!(t.total_for(&sol), 3); // 2 (v0←5) + 0 (v1←9) + 1 (v2←1)
    }

    #[test]
    fn effective_inconsistency_applies_lambda() {
        let mut t = PenaltyTable::new();
        let sol = Solution::new(vec![0, 0]);
        t.penalize(0, 0);
        let eff = t.effective_inconsistency(3, &sol, 0.5);
        assert!((eff - 3.5).abs() < 1e-12);
    }

    #[test]
    fn local_maximum_punishes_min_penalty_assignments_only() {
        let mut t = PenaltyTable::new();
        let sol = Solution::new(vec![10, 20, 30]);
        // First maximum: all assignments have penalty 0 → all punished.
        let p1 = t.penalize_local_maximum(&sol);
        assert_eq!(p1, vec![0, 1, 2]);
        // Manually bump v0's assignment.
        t.penalize(0, 10);
        // Same maximum again: v0←10 has penalty 2, v1/v2 have 1 → only v1, v2.
        let p2 = t.penalize_local_maximum(&sol);
        assert_eq!(p2, vec![1, 2]);
        assert_eq!(t.get(0, 10), 2);
        assert_eq!(t.get(1, 20), 2);
        assert_eq!(t.get(2, 30), 2);
    }

    #[test]
    fn version_bumps_on_every_punishment() {
        let mut t = PenaltyTable::new();
        assert_eq!(t.version(), 0);
        t.penalize(0, 1);
        assert_eq!(t.version(), 1);
        let sol = Solution::new(vec![1, 2]);
        let punished = t.penalize_local_maximum(&sol);
        assert_eq!(t.version(), 1 + punished.len() as u64);
        // Reads do not bump the version.
        let _ = t.get(0, 1);
        let _ = t.total_for(&sol);
        assert_eq!(t.version(), 1 + punished.len() as u64);
    }

    #[test]
    fn punishment_distinguishes_same_object_in_different_vars() {
        let mut t = PenaltyTable::new();
        t.penalize(0, 3);
        assert_eq!(t.get(0, 3), 1);
        assert_eq!(t.get(1, 3), 0);
    }
}
