//! Fluent and random construction of query graphs.

use crate::{Edge, GraphError, QueryGraph, VarId};
use mwsj_geom::Predicate;
use rand::{Rng, RngExt};

/// Fluent builder for [`QueryGraph`]:
///
/// ```
/// use mwsj_query::QueryGraphBuilder;
/// use mwsj_geom::Predicate;
///
/// // A "T" shaped query: 0—1—2 with 3 hanging off 1 by containment.
/// let g = QueryGraphBuilder::new(4)
///     .edge(0, 1)
///     .edge(1, 2)
///     .edge_with(1, 3, Predicate::Contains)
///     .build()
///     .unwrap();
/// assert_eq!(g.edge_count(), 3);
/// assert!(g.is_acyclic());
/// ```
#[derive(Debug, Clone)]
pub struct QueryGraphBuilder {
    n: usize,
    edges: Vec<Edge>,
}

impl QueryGraphBuilder {
    /// Starts a builder for `n` variables.
    pub fn new(n: usize) -> Self {
        QueryGraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Adds an *overlap* join condition between `a` and `b`.
    pub fn edge(self, a: VarId, b: VarId) -> Self {
        self.edge_with(a, b, Predicate::Intersects)
    }

    /// Adds a join condition with an explicit predicate (oriented `a → b`).
    pub fn edge_with(mut self, a: VarId, b: VarId, pred: Predicate) -> Self {
        self.edges.push(Edge { a, b, pred });
        self
    }

    /// Validates and builds the graph.
    pub fn build(self) -> Result<QueryGraph, GraphError> {
        QueryGraph::from_edges(self.n, self.edges)
    }
}

impl QueryGraph {
    /// Generates a random connected query graph: a random spanning tree
    /// (guaranteeing connectivity) plus each remaining pair joined
    /// independently with probability `extra_edge_prob` (0 → random tree,
    /// 1 → clique). Used by the test suite and the ablation benches to
    /// cover topologies between the paper's two extremes.
    #[allow(clippy::needless_range_loop)] // `present` is a 2D adjacency matrix
    pub fn random_connected<R: Rng>(n: usize, extra_edge_prob: f64, rng: &mut R) -> Self {
        assert!(n >= 2, "a multiway join needs at least 2 variables");
        assert!(
            (0.0..=1.0).contains(&extra_edge_prob),
            "probability out of range"
        );
        let mut edges = Vec::new();
        let mut present = vec![vec![false; n]; n];
        // Random spanning tree: attach each new variable to a uniformly
        // chosen earlier one.
        for v in 1..n {
            let u = rng.random_range(0..v);
            edges.push(Edge {
                a: u,
                b: v,
                pred: Predicate::Intersects,
            });
            present[u][v] = true;
            present[v][u] = true;
        }
        for a in 0..n {
            for b in (a + 1)..n {
                if !present[a][b] && rng.random_bool(extra_edge_prob) {
                    edges.push(Edge {
                        a,
                        b,
                        pred: Predicate::Intersects,
                    });
                    present[a][b] = true;
                    present[b][a] = true;
                }
            }
        }
        QueryGraph::from_edges(n, edges).expect("random construction is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn builder_happy_path() {
        let g = QueryGraphBuilder::new(3)
            .edge(0, 1)
            .edge(1, 2)
            .build()
            .unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn builder_propagates_errors() {
        assert!(QueryGraphBuilder::new(3).edge(0, 0).build().is_err());
        assert!(QueryGraphBuilder::new(3)
            .edge(0, 1)
            .edge(0, 1)
            .build()
            .is_err());
    }

    #[test]
    fn random_graph_is_connected() {
        let mut rng = StdRng::seed_from_u64(5);
        for n in [2, 3, 5, 10, 20] {
            for p in [0.0, 0.3, 1.0] {
                let g = QueryGraph::random_connected(n, p, &mut rng);
                assert!(g.is_connected(), "n={n} p={p}");
                assert!(g.edge_count() >= n - 1);
            }
        }
    }

    #[test]
    fn random_graph_extremes() {
        let mut rng = StdRng::seed_from_u64(6);
        let tree = QueryGraph::random_connected(10, 0.0, &mut rng);
        assert!(tree.is_acyclic());
        let clique = QueryGraph::random_connected(10, 1.0, &mut rng);
        assert!(clique.is_clique());
    }
}
