//! Solutions: full assignments of objects to query variables.

use crate::{QueryGraph, VarId};
use mwsj_geom::Rect;
use std::fmt;

/// A solution assigns one object (identified by its index within its
/// dataset) to every query variable — the paper's tuple
/// `(r_{1,w}, …, r_{n,z})`.
///
/// A solution is *exact* when it violates no join condition and
/// *approximate* otherwise; see [`QueryGraph`]-based evaluation below.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Solution {
    assignment: Vec<usize>,
}

impl Solution {
    /// Wraps an assignment vector (`assignment[v]` = object index for
    /// variable `v`).
    pub fn new(assignment: Vec<usize>) -> Self {
        Solution { assignment }
    }

    /// Number of variables.
    #[inline]
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// Returns `true` for the (degenerate) zero-variable solution.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Object assigned to variable `v`.
    #[inline]
    pub fn get(&self, v: VarId) -> usize {
        self.assignment[v]
    }

    /// Re-instantiates variable `v` to object `obj`.
    #[inline]
    pub fn set(&mut self, v: VarId, obj: usize) {
        self.assignment[v] = obj;
    }

    /// The raw assignment slice.
    #[inline]
    pub fn as_slice(&self) -> &[usize] {
        &self.assignment
    }
}

impl fmt::Display for Solution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.assignment.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "r{},{}", i + 1, a)?;
        }
        write!(f, ")")
    }
}

impl From<Vec<usize>> for Solution {
    fn from(v: Vec<usize>) -> Self {
        Solution::new(v)
    }
}

impl QueryGraph {
    /// Inconsistency degree of `sol`: the number of violated join
    /// conditions. `rect_of(v, obj)` resolves an assignment to its MBR.
    pub fn violations<F>(&self, sol: &Solution, rect_of: F) -> usize
    where
        F: Fn(VarId, usize) -> Rect,
    {
        debug_assert_eq!(sol.len(), self.n_vars());
        self.edges()
            .iter()
            .filter(|e| {
                let ra = rect_of(e.a, sol.get(e.a));
                let rb = rect_of(e.b, sol.get(e.b));
                !e.pred.eval(&ra, &rb)
            })
            .count()
    }

    /// Similarity of `sol`: `1 − #violated / #total` (paper §6), in
    /// `[0, 1]`; 1 means an exact solution.
    pub fn similarity<F>(&self, sol: &Solution, rect_of: F) -> f64
    where
        F: Fn(VarId, usize) -> Rect,
    {
        1.0 - self.violations(sol, rect_of) as f64 / self.edge_count() as f64
    }

    /// Converts a violation count to a similarity value.
    #[inline]
    pub fn similarity_of_violations(&self, violations: usize) -> f64 {
        1.0 - violations as f64 / self.edge_count() as f64
    }

    /// Returns `true` if `sol` satisfies every join condition.
    pub fn is_exact<F>(&self, sol: &Solution, rect_of: F) -> bool
    where
        F: Fn(VarId, usize) -> Rect,
    {
        self.violations(sol, rect_of) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueryGraphBuilder;
    use mwsj_geom::{Predicate, Rect};

    /// Three tiny datasets: variable v's object o has rect datasets[v][o].
    fn fixture() -> Vec<Vec<Rect>> {
        vec![
            vec![Rect::new(0.0, 0.0, 1.0, 1.0), Rect::new(5.0, 5.0, 6.0, 6.0)],
            vec![Rect::new(0.5, 0.5, 1.5, 1.5), Rect::new(9.0, 9.0, 9.5, 9.5)],
            vec![Rect::new(1.2, 1.2, 2.0, 2.0), Rect::new(0.6, 0.6, 0.7, 0.7)],
        ]
    }

    fn rect_of(data: &[Vec<Rect>]) -> impl Fn(VarId, usize) -> Rect + '_ {
        move |v, o| data[v][o]
    }

    #[test]
    fn exact_solution_has_similarity_one() {
        let data = fixture();
        let g = QueryGraph::chain(3);
        // 0:0 (0..1) ∩ 1:0 (0.5..1.5) ∩ 2:0 (1.2..2.0) — chain satisfied.
        let sol = Solution::new(vec![0, 0, 0]);
        assert_eq!(g.violations(&sol, rect_of(&data)), 0);
        assert_eq!(g.similarity(&sol, rect_of(&data)), 1.0);
        assert!(g.is_exact(&sol, rect_of(&data)));
    }

    #[test]
    fn violations_are_counted_per_edge() {
        let data = fixture();
        let g = QueryGraph::clique(3);
        // With clique: 0:0 ∩ 1:0 ok; 1:0 ∩ 2:0 ok; 0:0 ∩ 2:0 — rects
        // (0..1) and (1.2..2) are disjoint → 1 violation.
        let sol = Solution::new(vec![0, 0, 0]);
        assert_eq!(g.violations(&sol, rect_of(&data)), 1);
        assert!((g.similarity(&sol, rect_of(&data)) - 2.0 / 3.0).abs() < 1e-12);
        assert!(!g.is_exact(&sol, rect_of(&data)));
    }

    #[test]
    fn totally_inconsistent_solution() {
        let data = fixture();
        let g = QueryGraph::chain(3);
        // 0:1 is far from everything; 1:1 far from 2:0.
        let sol = Solution::new(vec![1, 1, 0]);
        assert_eq!(g.violations(&sol, rect_of(&data)), 2);
        assert_eq!(g.similarity(&sol, rect_of(&data)), 0.0);
    }

    #[test]
    fn asymmetric_predicates_respect_orientation() {
        let data = vec![
            vec![Rect::new(0.0, 0.0, 10.0, 10.0)], // big
            vec![Rect::new(1.0, 1.0, 2.0, 2.0)],   // small
        ];
        let g = QueryGraphBuilder::new(2)
            .edge_with(0, 1, Predicate::Contains)
            .build()
            .unwrap();
        let sol = Solution::new(vec![0, 0]);
        assert_eq!(g.violations(&sol, rect_of(&data)), 0);

        let g_rev = QueryGraphBuilder::new(2)
            .edge_with(1, 0, Predicate::Contains) // small contains big: false
            .build()
            .unwrap();
        assert_eq!(g_rev.violations(&sol, rect_of(&data)), 1);
    }

    #[test]
    fn solution_accessors() {
        let mut s = Solution::new(vec![3, 1, 4]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(2), 4);
        s.set(2, 9);
        assert_eq!(s.get(2), 9);
        assert_eq!(s.as_slice(), &[3, 1, 9]);
        assert_eq!(s.to_string(), "(r1,3, r2,1, r3,9)");
    }

    #[test]
    fn similarity_of_violations_roundtrip() {
        let g = QueryGraph::clique(4); // 6 edges
        assert_eq!(g.similarity_of_violations(0), 1.0);
        assert_eq!(g.similarity_of_violations(6), 0.0);
        assert!((g.similarity_of_violations(3) - 0.5).abs() < 1e-12);
    }
}
