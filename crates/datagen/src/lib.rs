//! Synthetic spatial datasets and the analytic models that calibrate them.
//!
//! The paper evaluates its algorithms on synthetic uniform datasets whose
//! **density** is solved so that the expected number of exact solutions
//! lands in the *hard region* (≈ 1–10 solutions, §6). This crate implements
//! that entire apparatus:
//!
//! * [`Dataset`] — a set of object MBRs covering the unit workspace, with
//!   uniform, clustered and skewed generators ([`Distribution`]);
//! * the selectivity model of \[TSS98\] and the clique estimate of \[PMT99\]
//!   ([`selectivity`] module): expected output size of a multiway join;
//! * [`hard_region_density`] — the closed-form density that yields a target
//!   number of expected solutions for chains (acyclic), cliques and, via an
//!   independence approximation, arbitrary connected graphs;
//! * planted-solution tooling ([`plant_solution`],
//!   [`count_exact_solutions`]) used by Fig. 11 (exactly one exact
//!   solution) and by the correctness tests;
//! * [`WorkloadSpec`]/[`Workload`] — reproducible query + data bundles used
//!   by every experiment harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod density;
pub mod estimator;
mod io;
mod planted;
pub mod selectivity;
mod workload;

pub use dataset::{Dataset, DatasetSpec, Distribution};
pub use density::{
    expected_solutions, extent_for_density, hard_region_density, hard_region_density_graph,
    QueryShape,
};
pub use estimator::{estimate_workload, EstimateModel, WorkloadEstimate};
pub use io::CsvError;
pub use planted::{count_exact_solutions, plant_solution};
pub use workload::{Workload, WorkloadSpec};
