//! Selectivity / expected-output-size models for multiway spatial joins.
//!
//! Implements the cost-model formulas the paper builds on:
//!
//! * pairwise join selectivity of two uniform unit-workspace datasets:
//!   `(|rᵢ| + |rⱼ|)²` \[TSS98\];
//! * acyclic queries: selectivity is the product of the pairwise edge
//!   selectivities (edge events are independent on trees);
//! * cliques: `(Σᵢ Πⱼ≠ᵢ |rⱼ|)²` \[PMT99\] — mutually overlapping rectangles
//!   must share a common point.
//!
//! These support heterogeneous cardinalities/extents; the
//! [`crate::hard_region_density`] helpers specialise them to the paper's
//! same-`N`, same-`d` setting.

use mwsj_query::QueryGraph;

/// Pairwise intersection-join selectivity of two uniform datasets with
/// average extents `ri`, `rj` on a unit workspace \[TSS98\].
#[inline]
pub fn pairwise_selectivity(ri: f64, rj: f64) -> f64 {
    (ri + rj).powi(2)
}

/// Expected output size of an **acyclic** query: `Π Nᵢ · Π (|rᵢ|+|rⱼ|)²`
/// over the join edges.
///
/// # Panics
/// Panics if the graph is not a tree or the slices have wrong lengths.
pub fn acyclic_solutions(graph: &QueryGraph, cards: &[usize], extents: &[f64]) -> f64 {
    assert!(graph.is_acyclic(), "formula requires an acyclic query");
    assert_eq!(cards.len(), graph.n_vars());
    assert_eq!(extents.len(), graph.n_vars());
    let tuples: f64 = cards.iter().map(|&c| c as f64).product();
    let selectivity: f64 = graph
        .edges()
        .iter()
        .map(|e| pairwise_selectivity(extents[e.a], extents[e.b]))
        .product();
    tuples * selectivity
}

/// Expected output size of a **clique** query: `Π Nᵢ · (Σᵢ Πⱼ≠ᵢ |rⱼ|)²`
/// \[PMT99\].
///
/// # Panics
/// Panics if the graph is not a clique or the slices have wrong lengths.
pub fn clique_solutions(graph: &QueryGraph, cards: &[usize], extents: &[f64]) -> f64 {
    assert!(graph.is_clique(), "formula requires a clique query");
    assert_eq!(cards.len(), graph.n_vars());
    assert_eq!(extents.len(), graph.n_vars());
    let n = graph.n_vars();
    let tuples: f64 = cards.iter().map(|&c| c as f64).product();
    let mut sum = 0.0;
    for i in 0..n {
        let mut prod = 1.0;
        for (j, &e) in extents.iter().enumerate() {
            if j != i {
                prod *= e;
            }
        }
        sum += prod;
    }
    tuples * sum * sum
}

/// Expected output size via **biconnected-block decomposition** — the
/// paper's "queries that can be decomposed to acyclic and clique graphs".
///
/// Blocks share only cut vertices, so their satisfaction events are
/// independent and block selectivities multiply: a bridge contributes the
/// pairwise factor `(|rᵢ|+|rⱼ|)²`, a clique block on `k` variables the
/// \[PMT99\] factor `(Σᵢ Πⱼ≠ᵢ |rⱼ|)²`. Returns `None` when some block is
/// neither (e.g. a bare cycle), where no exact formula is known.
pub fn decomposed_solutions(graph: &QueryGraph, cards: &[usize], extents: &[f64]) -> Option<f64> {
    assert_eq!(cards.len(), graph.n_vars());
    assert_eq!(extents.len(), graph.n_vars());
    let tuples: f64 = cards.iter().map(|&c| c as f64).product();
    let mut selectivity = 1.0;
    for block in graph.blocks() {
        if block.is_bridge() {
            let e = &graph.edges()[block.edges[0]];
            selectivity *= pairwise_selectivity(extents[e.a], extents[e.b]);
        } else if block.is_clique() {
            // (Σᵢ Πⱼ≠ᵢ |rⱼ|)² over the block's variables.
            let ext: Vec<f64> = block.vars.iter().map(|&v| extents[v]).collect();
            let k = ext.len();
            let mut sum = 0.0;
            for i in 0..k {
                let mut prod = 1.0;
                for (j, &e) in ext.iter().enumerate() {
                    if j != i {
                        prod *= e;
                    }
                }
                sum += prod;
            }
            selectivity *= sum * sum;
        } else {
            return None;
        }
    }
    Some(tuples * selectivity)
}

/// Expected output size for any connected query: the exact
/// block-decomposition estimate when available
/// ([`decomposed_solutions`]), otherwise the independence approximation
/// `Π Nᵢ · Π_edges (|rᵢ|+|rⱼ|)²` (an overestimate for cyclic constraints,
/// which are positively correlated).
pub fn estimated_solutions(graph: &QueryGraph, cards: &[usize], extents: &[f64]) -> f64 {
    if let Some(sol) = decomposed_solutions(graph, cards, extents) {
        return sol;
    }
    let tuples: f64 = cards.iter().map(|&c| c as f64).product();
    let selectivity: f64 = graph
        .edges()
        .iter()
        .map(|e| pairwise_selectivity(extents[e.a], extents[e.b]))
        .product();
    tuples * selectivity
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{expected_solutions, extent_for_density, QueryShape};
    use mwsj_query::QueryGraph;

    #[test]
    fn acyclic_matches_uniform_specialisation() {
        let n = 7;
        let big_n = 50_000;
        let d = 0.01;
        let r = extent_for_density(big_n, d);
        let graph = QueryGraph::chain(n);
        let general = acyclic_solutions(&graph, &vec![big_n; n], &vec![r; n]);
        let special = expected_solutions(QueryShape::Chain, n, big_n, d);
        assert!((general / special - 1.0).abs() < 1e-9);
    }

    #[test]
    fn clique_matches_uniform_specialisation() {
        let n = 6;
        let big_n = 20_000;
        let d = 0.05;
        let r = extent_for_density(big_n, d);
        let graph = QueryGraph::clique(n);
        let general = clique_solutions(&graph, &vec![big_n; n], &vec![r; n]);
        let special = expected_solutions(QueryShape::Clique, n, big_n, d);
        assert!((general / special - 1.0).abs() < 1e-9);
    }

    #[test]
    fn decomposition_matches_acyclic_formula_on_trees() {
        let graph = QueryGraph::chain(6);
        let cards = vec![500usize; 6];
        let extents = vec![0.02f64; 6];
        let dec = decomposed_solutions(&graph, &cards, &extents).unwrap();
        let direct = acyclic_solutions(&graph, &cards, &extents);
        assert!((dec / direct - 1.0).abs() < 1e-12);
    }

    #[test]
    fn decomposition_matches_clique_formula_on_cliques() {
        let graph = QueryGraph::clique(5);
        let cards = vec![300usize; 5];
        let extents = vec![0.05f64; 5];
        let dec = decomposed_solutions(&graph, &cards, &extents).unwrap();
        let direct = clique_solutions(&graph, &cards, &extents);
        assert!((dec / direct - 1.0).abs() < 1e-12);
    }

    #[test]
    fn decomposition_handles_mixed_graphs() {
        // Triangle 0-1-2 plus pendant edge 2-3: one clique block, one
        // bridge.
        let graph = mwsj_query::QueryGraphBuilder::new(4)
            .edge(0, 1)
            .edge(1, 2)
            .edge(0, 2)
            .edge(2, 3)
            .build()
            .unwrap();
        let cards = vec![100usize; 4];
        let extents = vec![0.1f64; 4];
        let dec = decomposed_solutions(&graph, &cards, &extents).unwrap();
        // Manual: N⁴ · (3·|r|²)² · (2|r|)².
        let r: f64 = 0.1;
        let manual = 100f64.powi(4) * (3.0 * r * r).powi(2) * (2.0 * r).powi(2);
        assert!(
            (dec / manual - 1.0).abs() < 1e-12,
            "dec {dec} manual {manual}"
        );
    }

    #[test]
    fn decomposition_rejects_bare_cycles() {
        let graph = QueryGraph::cycle(4);
        assert!(decomposed_solutions(&graph, &[10; 4], &[0.1; 4]).is_none());
    }

    /// Monte-Carlo check of the mixed-graph decomposition estimate.
    #[test]
    fn decomposition_matches_simulation_on_mixed_graph() {
        use crate::Dataset;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(22);
        let graph = mwsj_query::QueryGraphBuilder::new(4)
            .edge(0, 1)
            .edge(1, 2)
            .edge(0, 2)
            .edge(2, 3)
            .build()
            .unwrap();
        let n = 120;
        let d = 0.25;
        let ds: Vec<Dataset> = (0..4).map(|_| Dataset::uniform(n, d, &mut rng)).collect();
        let hits = crate::count_exact_solutions(&ds, &graph, u64::MAX);
        let r = crate::extent_for_density(n, d);
        let expected = decomposed_solutions(&graph, &[n; 4], &[r; 4]).unwrap();
        let ratio = hits as f64 / expected;
        assert!(
            (0.5..2.0).contains(&ratio),
            "simulated {hits} vs model {expected} (ratio {ratio})"
        );
    }

    #[test]
    fn star_uses_acyclic_formula() {
        let n = 5;
        let graph = QueryGraph::star(n);
        let est = estimated_solutions(&graph, &vec![1000; n], &vec![0.01; n]);
        let direct = acyclic_solutions(&graph, &vec![1000; n], &vec![0.01; n]);
        assert_eq!(est, direct);
    }

    #[test]
    fn heterogeneous_extents_are_supported() {
        let graph = QueryGraph::chain(3);
        let sol = acyclic_solutions(&graph, &[100, 200, 300], &[0.1, 0.2, 0.3]);
        let expected = (100.0 * 200.0 * 300.0)
            * pairwise_selectivity(0.1, 0.2)
            * pairwise_selectivity(0.2, 0.3);
        assert!((sol - expected).abs() < 1e-9);
    }

    #[test]
    fn cycle_approximation_is_product_of_pairwise() {
        let graph = QueryGraph::cycle(4);
        let est = estimated_solutions(&graph, &[10; 4], &[0.1; 4]);
        let expected = 1e4 * pairwise_selectivity(0.1, 0.1).powi(4);
        assert!((est - expected).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "requires an acyclic query")]
    fn acyclic_formula_rejects_cliques() {
        let graph = QueryGraph::clique(4);
        let _ = acyclic_solutions(&graph, &[10; 4], &[0.1; 4]);
    }

    #[test]
    #[should_panic(expected = "requires a clique query")]
    fn clique_formula_rejects_chains() {
        let graph = QueryGraph::chain(4);
        let _ = clique_solutions(&graph, &[10; 4], &[0.1; 4]);
    }

    /// Monte-Carlo validation of the clique model for n = 3 at moderate N:
    /// count real triples of mutually intersecting rects.
    #[test]
    fn clique_model_matches_simulation() {
        use crate::Dataset;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(21);
        let n = 300;
        let d = 0.15;
        let ds: Vec<Dataset> = (0..3).map(|_| Dataset::uniform(n, d, &mut rng)).collect();
        let mut hits = 0u64;
        for a in ds[0].rects() {
            for b in ds[1].rects() {
                if !a.intersects(b) {
                    continue;
                }
                for c in ds[2].rects() {
                    if a.intersects(c) && b.intersects(c) {
                        hits += 1;
                    }
                }
            }
        }
        let expected = expected_solutions(QueryShape::Clique, 3, n, d);
        let ratio = hits as f64 / expected;
        assert!(
            (0.6..1.6).contains(&ratio),
            "simulated {hits} vs model {expected} (ratio {ratio})"
        );
    }
}
