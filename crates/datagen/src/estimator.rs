//! Workload-level cost estimator: the public face of the \[TSS98\] /
//! \[PMT99\] selectivity formulas in [`crate::selectivity`].
//!
//! The [`selectivity`](crate::selectivity) module exposes the raw
//! closed-form output-size formulas; this module packages them into one
//! per-workload estimate ([`WorkloadEstimate`]) that names the model it
//! used, lists the per-edge selectivities and the per-variable expected
//! window hit counts — exactly the numbers the `mwsj explain` cost/audit
//! layer reports and the estimate-vs-actual gate checks.
//!
//! All quantities assume the paper's setting: rectangles with average
//! per-axis extent `|rᵥ|` uniformly placed on a unit workspace. Inputs are
//! per-variable, so heterogeneous cardinalities and extents are supported.

use crate::selectivity::{
    acyclic_solutions, clique_solutions, decomposed_solutions, pairwise_selectivity,
};
use mwsj_query::QueryGraph;

/// Which closed-form model produced a [`WorkloadEstimate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimateModel {
    /// Tree query: `Π Nᵢ · Π (|rᵢ|+|rⱼ|)²` \[TSS98\].
    Acyclic,
    /// Clique query: `Π Nᵢ · (Σᵢ Πⱼ≠ᵢ |rⱼ|)²` \[PMT99\].
    Clique,
    /// Biconnected-block decomposition into bridges and clique blocks.
    Decomposed,
    /// Independence approximation `Π Nᵢ · Π_edges (|rᵢ|+|rⱼ|)²`; an
    /// overestimate for cyclic constraints, which are positively
    /// correlated.
    Independence,
}

impl EstimateModel {
    /// Stable lower-case name, used in reports and snapshots.
    pub fn name(&self) -> &'static str {
        match self {
            EstimateModel::Acyclic => "acyclic",
            EstimateModel::Clique => "clique",
            EstimateModel::Decomposed => "decomposed",
            EstimateModel::Independence => "independence",
        }
    }
}

/// The analytic cost estimate of one query workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadEstimate {
    /// Pairwise selectivity `(|rᵢ|+|rⱼ|)²` of each edge, in
    /// [`QueryGraph::edges`] order.
    pub edge_selectivities: Vec<f64>,
    /// Per variable `v`: the expected number of objects of `v` satisfying
    /// all neighbour windows at once, `Nᵥ · Π_{u ∈ nbr(v)} (|rᵤ|+|rᵥ|)²`
    /// (independence across the conjunctive windows). This is the expected
    /// candidate count of one `find best value` query on `v`.
    pub window_hit_rates: Vec<f64>,
    /// Expected number of exact solutions of the whole query.
    pub expected_solutions: f64,
    /// The model that produced [`WorkloadEstimate::expected_solutions`].
    pub model: EstimateModel,
}

/// Estimates the cost profile of `graph` over datasets with the given
/// cardinalities and average per-axis extents.
///
/// Picks the strongest applicable model: the exact \[TSS98\] acyclic or
/// \[PMT99\] clique formula, else their block-decomposition composition,
/// else the independence approximation over edges.
///
/// # Panics
/// Panics when `cards` or `extents` do not have one entry per variable.
pub fn estimate_workload(graph: &QueryGraph, cards: &[usize], extents: &[f64]) -> WorkloadEstimate {
    assert_eq!(cards.len(), graph.n_vars(), "one cardinality per variable");
    assert_eq!(extents.len(), graph.n_vars(), "one extent per variable");
    let edge_selectivities: Vec<f64> = graph
        .edges()
        .iter()
        .map(|e| pairwise_selectivity(extents[e.a], extents[e.b]))
        .collect();
    let window_hit_rates: Vec<f64> = (0..graph.n_vars())
        .map(|v| {
            cards[v] as f64
                * graph
                    .neighbors(v)
                    .iter()
                    .map(|&(u, _)| pairwise_selectivity(extents[u], extents[v]))
                    .product::<f64>()
        })
        .collect();
    let (expected_solutions, model) = if graph.is_acyclic() {
        (
            acyclic_solutions(graph, cards, extents),
            EstimateModel::Acyclic,
        )
    } else if graph.is_clique() {
        (
            clique_solutions(graph, cards, extents),
            EstimateModel::Clique,
        )
    } else if let Some(sol) = decomposed_solutions(graph, cards, extents) {
        (sol, EstimateModel::Decomposed)
    } else {
        let tuples: f64 = cards.iter().map(|&c| c as f64).product();
        (
            tuples * edge_selectivities.iter().product::<f64>(),
            EstimateModel::Independence,
        )
    };
    WorkloadEstimate {
        edge_selectivities,
        window_hit_rates,
        expected_solutions,
        model,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{extent_for_density, hard_region_density, QueryShape};

    /// Paper setting: n = 4, N = 200, density solved for E[solutions] = 1.
    fn paper_case(shape: QueryShape, n: usize, cardinality: usize) -> (QueryGraph, Vec<f64>) {
        let d = hard_region_density(shape, n, cardinality, 1.0);
        let r = extent_for_density(cardinality, d);
        (shape.graph(n), vec![r; n])
    }

    #[test]
    fn chain_estimate_pins_closed_form() {
        let (graph, extents) = paper_case(QueryShape::Chain, 4, 200);
        let est = estimate_workload(&graph, &[200; 4], &extents);
        assert_eq!(est.model, EstimateModel::Acyclic);
        assert_eq!(est.edge_selectivities.len(), 3);
        // Every edge has the same selectivity s = (2|r|)²; N⁴·s³ = 1 by
        // construction of the hard-region density.
        let s = (2.0 * extents[0]).powi(2);
        for &e in &est.edge_selectivities {
            assert!((e / s - 1.0).abs() < 1e-12);
        }
        assert!(
            (est.expected_solutions - 1.0).abs() < 1e-6,
            "hard-region density must pin E[solutions] = 1, got {}",
            est.expected_solutions
        );
        // Ends of the chain have one window, the middle two have two.
        let one = 200.0 * s;
        let two = 200.0 * s * s;
        assert!((est.window_hit_rates[0] / one - 1.0).abs() < 1e-12);
        assert!((est.window_hit_rates[1] / two - 1.0).abs() < 1e-12);
        assert!((est.window_hit_rates[2] / two - 1.0).abs() < 1e-12);
        assert!((est.window_hit_rates[3] / one - 1.0).abs() < 1e-12);
    }

    #[test]
    fn star_estimate_pins_closed_form() {
        let (graph, extents) = paper_case(QueryShape::Star, 5, 300);
        let est = estimate_workload(&graph, &[300; 5], &extents);
        assert_eq!(est.model, EstimateModel::Acyclic);
        assert_eq!(est.edge_selectivities.len(), 4);
        assert!((est.expected_solutions - 1.0).abs() < 1e-6);
        // The hub (variable 0) sees all four windows, the leaves one each.
        let s = (2.0 * extents[0]).powi(2);
        assert!((est.window_hit_rates[0] / (300.0 * s.powi(4)) - 1.0).abs() < 1e-9);
        for v in 1..5 {
            assert!((est.window_hit_rates[v] / (300.0 * s) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn clique_estimate_pins_closed_form() {
        let (graph, extents) = paper_case(QueryShape::Clique, 4, 200);
        let est = estimate_workload(&graph, &[200; 4], &extents);
        assert_eq!(est.model, EstimateModel::Clique);
        assert_eq!(est.edge_selectivities.len(), 6);
        // [PMT99]: N⁴ · (Σᵢ Πⱼ≠ᵢ |rⱼ|)² = N⁴ · (4|r|³)² = 1 at the
        // hard-region density.
        let r = extents[0];
        let manual = 200f64.powi(4) * (4.0 * r.powi(3)).powi(2);
        assert!((est.expected_solutions / manual - 1.0).abs() < 1e-12);
        assert!((est.expected_solutions - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cycle_falls_back_to_independence() {
        let graph = QueryGraph::cycle(4);
        let est = estimate_workload(&graph, &[10; 4], &[0.1; 4]);
        assert_eq!(est.model, EstimateModel::Independence);
        let expected = 1e4 * pairwise_selectivity(0.1, 0.1).powi(4);
        assert!((est.expected_solutions - expected).abs() < 1e-9);
    }

    #[test]
    fn mixed_graph_uses_decomposition() {
        // Triangle 0-1-2 plus pendant edge 2-3.
        let graph = mwsj_query::QueryGraphBuilder::new(4)
            .edge(0, 1)
            .edge(1, 2)
            .edge(0, 2)
            .edge(2, 3)
            .build()
            .unwrap();
        let est = estimate_workload(&graph, &[100; 4], &[0.1; 4]);
        assert_eq!(est.model, EstimateModel::Decomposed);
        let manual = 100f64.powi(4) * (3.0 * 0.01f64).powi(2) * (0.2f64).powi(2);
        assert!((est.expected_solutions / manual - 1.0).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_inputs_are_supported() {
        let graph = QueryGraph::chain(3);
        let est = estimate_workload(&graph, &[100, 200, 300], &[0.1, 0.2, 0.3]);
        assert!((est.edge_selectivities[0] - 0.09).abs() < 1e-12);
        assert!((est.edge_selectivities[1] - 0.25).abs() < 1e-12);
        // Middle variable: both windows apply.
        assert!((est.window_hit_rates[1] - 200.0 * 0.09 * 0.25).abs() < 1e-9);
    }
}
