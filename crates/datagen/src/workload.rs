//! Reproducible experiment workloads (query graph + datasets).

use crate::{hard_region_density, plant_solution, Dataset, DatasetSpec, Distribution, QueryShape};
use mwsj_query::{QueryGraph, Solution};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Declarative description of one experiment workload, mirroring the
/// paper's setup: `n` uniform datasets of equal cardinality whose density
/// is solved for a target expected number of solutions.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Query topology.
    pub shape: QueryShape,
    /// Number of variables/datasets `n`.
    pub n_vars: usize,
    /// Objects per dataset `N`.
    pub cardinality: usize,
    /// Target expected number of exact solutions (1 = hard region center).
    pub target_solutions: f64,
    /// If `true`, additionally plant one guaranteed exact solution
    /// (Fig. 11's "the actual number of exact solutions is 1" setup).
    pub plant: bool,
    /// Spatial distribution of object centers. [`Distribution::Uniform`]
    /// (the paper's setting) reproduces the exact RNG stream of earlier
    /// releases, keeping pinned workloads byte-identical.
    pub distribution: Distribution,
    /// RNG seed; a spec generates identical data on every call.
    pub seed: u64,
}

impl WorkloadSpec {
    /// The paper's default configuration for a shape/size: `N` objects per
    /// dataset, hard-region density (`Sol = 1`), no planting.
    pub fn hard_region(shape: QueryShape, n_vars: usize, cardinality: usize, seed: u64) -> Self {
        WorkloadSpec {
            shape,
            n_vars,
            cardinality,
            target_solutions: 1.0,
            plant: false,
            distribution: Distribution::Uniform,
            seed,
        }
    }

    /// Materialises the workload.
    ///
    /// The query topology is derived from the spec seed
    /// ([`QueryShape::graph_seeded`]) — only [`QueryShape::Random`]
    /// actually consumes it, and it uses a dedicated `StdRng` stream, so
    /// the datasets of the fixed shapes are byte-identical to earlier
    /// (unseeded-topology) releases.
    pub fn generate(&self) -> Workload {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let density = hard_region_density(
            self.shape,
            self.n_vars,
            self.cardinality,
            self.target_solutions,
        );
        let graph = self.shape.graph_seeded(self.n_vars, self.seed);
        let dataset_spec = DatasetSpec {
            cardinality: self.cardinality,
            density,
            distribution: self.distribution,
            constant_extent: true,
        };
        let mut datasets: Vec<Dataset> = (0..self.n_vars)
            .map(|_| dataset_spec.generate(&mut rng))
            .collect();
        let planted = self
            .plant
            .then(|| plant_solution(&mut datasets, &graph, &mut rng));
        Workload {
            graph,
            datasets,
            density,
            planted,
        }
    }
}

/// A materialised workload: the query, the datasets and the density they
/// were generated with.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The query graph.
    pub graph: QueryGraph,
    /// One dataset per query variable.
    pub datasets: Vec<Dataset>,
    /// The density the datasets were generated with.
    pub density: f64,
    /// The planted exact solution, when the spec requested planting.
    pub planted: Option<Solution>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_generation_is_reproducible() {
        let spec = WorkloadSpec::hard_region(QueryShape::Chain, 4, 500, 42);
        let a = spec.generate();
        let b = spec.generate();
        for (da, db) in a.datasets.iter().zip(&b.datasets) {
            assert_eq!(da.rects(), db.rects());
        }
        assert_eq!(a.density, b.density);
    }

    #[test]
    fn workload_matches_spec() {
        let spec = WorkloadSpec::hard_region(QueryShape::Clique, 5, 300, 7);
        let w = spec.generate();
        assert_eq!(w.graph.n_vars(), 5);
        assert!(w.graph.is_clique());
        assert_eq!(w.datasets.len(), 5);
        assert_eq!(w.datasets[0].len(), 300);
        assert!(w.planted.is_none());
        let expected_d = hard_region_density(QueryShape::Clique, 5, 300, 1.0);
        assert_eq!(w.density, expected_d);
    }

    #[test]
    fn planted_workload_has_exact_solution() {
        let mut spec = WorkloadSpec::hard_region(QueryShape::Clique, 4, 200, 9);
        spec.plant = true;
        let w = spec.generate();
        let sol = w.planted.expect("planted solution present");
        let rect_of = |v: usize, o: usize| w.datasets[v].rect(o);
        assert!(w.graph.is_exact(&sol, rect_of));
    }
}
