//! Hard-region density solvers (paper §6).
//!
//! The paper controls problem difficulty through the dataset density `d`
//! (the average number of rectangles covering a workspace point,
//! `d = N·|r|²` \[TSS98\]). Solving the expected-output formulas for `d`
//! yields datasets with a prescribed expected number of exact solutions:
//!
//! * acyclic queries: `Sol = N · 2^{2(n−1)} · d^{n−1}`,
//! * cliques:         `Sol = N · n² · d^{n−1}`,
//! * arbitrary connected graphs with `E` edges (independence
//!   approximation): `Sol = Nⁿ · (4d/N)^E`.
//!
//! Setting `Sol = 1` puts the instance at the phase transition where both
//! systematic and heuristic search are hardest [CA93, CFG+98].

use mwsj_query::QueryGraph;

/// The query topologies with closed-form hard-region densities. `Chain` and
/// `Clique` are the paper's two extremes of constrainedness (§6 fn. 2);
/// `Star` and `Cycle` round out the common shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryShape {
    /// Path `v₀ — v₁ — … — vₙ₋₁` (acyclic, most under-constrained).
    Chain,
    /// Every pair joined (most over-constrained).
    Clique,
    /// Hub variable joined to all others (acyclic).
    Star,
    /// Closed chain.
    Cycle,
}

impl QueryShape {
    /// Builds the corresponding [`QueryGraph`] with *overlap* predicates.
    pub fn graph(&self, n: usize) -> QueryGraph {
        match self {
            QueryShape::Chain => QueryGraph::chain(n),
            QueryShape::Clique => QueryGraph::clique(n),
            QueryShape::Star => QueryGraph::star(n),
            QueryShape::Cycle => QueryGraph::cycle(n),
        }
    }

    /// Number of join conditions for `n` variables.
    pub fn edge_count(&self, n: usize) -> usize {
        match self {
            QueryShape::Chain | QueryShape::Star => n - 1,
            QueryShape::Clique => n * (n - 1) / 2,
            QueryShape::Cycle => n,
        }
    }

    /// Short name used by the experiment harness output.
    pub fn name(&self) -> &'static str {
        match self {
            QueryShape::Chain => "chain",
            QueryShape::Clique => "clique",
            QueryShape::Star => "star",
            QueryShape::Cycle => "cycle",
        }
    }
}

/// Average per-axis extent `|r|` for cardinality `N` and density `d`
/// (`d = N·|r|²` ⇒ `|r| = √(d/N)`).
#[inline]
pub fn extent_for_density(cardinality: usize, density: f64) -> f64 {
    (density / cardinality as f64).sqrt()
}

/// Expected number of exact solutions for `n` same-cardinality (`N`)
/// same-density (`d`) datasets under the given query shape.
pub fn expected_solutions(shape: QueryShape, n: usize, cardinality: usize, density: f64) -> f64 {
    assert!(n >= 2);
    let big_n = cardinality as f64;
    match shape {
        // Acyclic: Sol = N · 2^{2(n−1)} · d^{n−1}.
        QueryShape::Chain | QueryShape::Star => {
            big_n * 4f64.powi(n as i32 - 1) * density.powi(n as i32 - 1)
        }
        // Clique [PMT99]: Sol = N · n² · d^{n−1}.
        QueryShape::Clique => big_n * (n as f64).powi(2) * density.powi(n as i32 - 1),
        // Cycle: independence approximation over E = n edges.
        QueryShape::Cycle => {
            let e = n as i32;
            big_n.powi(n as i32) * (4.0 * density / big_n).powi(e)
        }
    }
}

/// The density that puts `n` datasets of cardinality `N` at an expected
/// `target` exact solutions — the *hard region* is `target ∈ [1, 10]`.
///
/// Closed forms (paper §6): acyclic `d = (Sol / (N·4^{n−1}))^{1/(n−1)}`
/// (for `Sol = 1`, `d = 1/(4·ⁿ⁻¹√N)`), clique `d = (Sol/(N·n²))^{1/(n−1)}`.
pub fn hard_region_density(shape: QueryShape, n: usize, cardinality: usize, target: f64) -> f64 {
    assert!(n >= 2);
    assert!(target > 0.0);
    let big_n = cardinality as f64;
    let inv = 1.0 / (n as f64 - 1.0);
    match shape {
        QueryShape::Chain | QueryShape::Star => {
            (target / (big_n * 4f64.powi(n as i32 - 1))).powf(inv)
        }
        QueryShape::Clique => (target / (big_n * (n as f64).powi(2))).powf(inv),
        QueryShape::Cycle => {
            // Solve N^n (4d/N)^n = target for d.
            let e = n as f64;
            (target.powf(1.0 / e) / big_n.powf(n as f64 / e)) * big_n / 4.0
        }
    }
}

/// Hard-region density for an arbitrary connected query graph: exact for
/// trees and cliques, independence approximation otherwise.
pub fn hard_region_density_graph(graph: &QueryGraph, cardinality: usize, target: f64) -> f64 {
    let n = graph.n_vars();
    let big_n = cardinality as f64;
    if graph.is_clique() && n > 2 {
        hard_region_density(QueryShape::Clique, n, cardinality, target)
    } else if graph.is_acyclic() {
        hard_region_density(QueryShape::Chain, n, cardinality, target)
    } else {
        // General connected graph, E edges: Sol ≈ N^n (4d/N)^E.
        let e = graph.edge_count() as f64;
        (target / big_n.powi(n as i32)).powf(1.0 / e) * big_n / 4.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_closed_form_for_chains() {
        // d = 1/(4·ⁿ⁻¹√N) for Sol = 1.
        for (n, big_n) in [(5usize, 100_000usize), (15, 100_000), (3, 1_000)] {
            let d = hard_region_density(QueryShape::Chain, n, big_n, 1.0);
            let expected = 1.0 / (4.0 * (big_n as f64).powf(1.0 / (n as f64 - 1.0)));
            assert!((d - expected).abs() < 1e-12, "n={n}");
        }
    }

    #[test]
    fn paper_closed_form_for_cliques() {
        // d = 1/ⁿ⁻¹√(N·n²) for Sol = 1.
        for (n, big_n) in [(5usize, 100_000usize), (25, 100_000)] {
            let d = hard_region_density(QueryShape::Clique, n, big_n, 1.0);
            let expected = 1.0 / ((big_n as f64) * (n as f64).powi(2)).powf(1.0 / (n as f64 - 1.0));
            assert!((d - expected).abs() < 1e-12, "n={n}");
        }
    }

    #[test]
    fn density_solvers_invert_expected_solutions() {
        for shape in [
            QueryShape::Chain,
            QueryShape::Clique,
            QueryShape::Star,
            QueryShape::Cycle,
        ] {
            for target in [1.0, 10.0, 1e4] {
                let d = hard_region_density(shape, 8, 50_000, target);
                let sol = expected_solutions(shape, 8, 50_000, d);
                assert!(
                    (sol / target - 1.0).abs() < 1e-9,
                    "{shape:?} target {target}: got {sol}"
                );
            }
        }
    }

    #[test]
    fn graph_solver_matches_shape_solver() {
        let n = 6;
        let big_n = 10_000;
        let chain = QueryGraph::chain(n);
        assert!(
            (hard_region_density_graph(&chain, big_n, 1.0)
                - hard_region_density(QueryShape::Chain, n, big_n, 1.0))
            .abs()
                < 1e-15
        );
        let clique = QueryGraph::clique(n);
        assert!(
            (hard_region_density_graph(&clique, big_n, 1.0)
                - hard_region_density(QueryShape::Clique, n, big_n, 1.0))
            .abs()
                < 1e-15
        );
        // Star is acyclic → same closed form as chains.
        let star = QueryGraph::star(n);
        assert!(
            (hard_region_density_graph(&star, big_n, 1.0)
                - hard_region_density(QueryShape::Chain, n, big_n, 1.0))
            .abs()
                < 1e-15
        );
    }

    #[test]
    fn density_grows_with_target() {
        let d1 = hard_region_density(QueryShape::Clique, 15, 100_000, 1.0);
        let d2 = hard_region_density(QueryShape::Clique, 15, 100_000, 100.0);
        assert!(d2 > d1);
    }

    #[test]
    fn more_constraints_need_higher_density() {
        // For the same n/N/target, cliques need denser data than chains
        // (more conditions to satisfy).
        let dc = hard_region_density(QueryShape::Chain, 10, 100_000, 1.0);
        let dk = hard_region_density(QueryShape::Clique, 10, 100_000, 1.0);
        assert!(dk > dc);
    }

    #[test]
    fn extent_matches_density_definition() {
        let n = 100_000;
        let d = 0.04;
        let r = extent_for_density(n, d);
        assert!((n as f64 * r * r - d).abs() < 1e-12);
    }

    /// Monte-Carlo check of the analytic model: generate pairs of uniform
    /// datasets and compare the realised number of intersecting pairs with
    /// the pairwise selectivity formula N²·(2|r|)² = 4·N·d.
    #[test]
    fn pairwise_model_matches_simulation() {
        use crate::Dataset;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(12);
        let n = 2_000;
        let d = 0.02;
        let a = Dataset::uniform(n, d, &mut rng);
        let b = Dataset::uniform(n, d, &mut rng);
        let mut hits = 0u64;
        for ra in a.rects() {
            for rb in b.rects() {
                if ra.intersects(rb) {
                    hits += 1;
                }
            }
        }
        let expected = 4.0 * n as f64 * d; // N²·(|r|+|r|)² with |r|=√(d/N)
        let ratio = hits as f64 / expected;
        assert!(
            (0.8..1.2).contains(&ratio),
            "simulated {hits} vs expected {expected} (ratio {ratio})"
        );
    }
}
