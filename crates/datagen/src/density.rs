//! Hard-region density solvers (paper §6).
//!
//! The paper controls problem difficulty through the dataset density `d`
//! (the average number of rectangles covering a workspace point,
//! `d = N·|r|²` \[TSS98\]). Solving the expected-output formulas for `d`
//! yields datasets with a prescribed expected number of exact solutions:
//!
//! * acyclic queries: `Sol = N · 2^{2(n−1)} · d^{n−1}`,
//! * cliques:         `Sol = N · n² · d^{n−1}`,
//! * arbitrary connected graphs with `E` edges (independence
//!   approximation): `Sol = Nⁿ · (4d/N)^E`.
//!
//! Setting `Sol = 1` puts the instance at the phase transition where both
//! systematic and heuristic search are hardest [CA93, CFG+98].

use mwsj_geom::Predicate;
use mwsj_query::{Edge, QueryGraph};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The query topologies with closed-form hard-region densities. `Chain` and
/// `Clique` are the paper's two extremes of constrainedness (§6 fn. 2);
/// `Star` and `Cycle` round out the common shapes, and `Random` covers the
/// paper's random-graph workloads (a seeded random connected graph between
/// the tree and clique extremes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryShape {
    /// Path `v₀ — v₁ — … — vₙ₋₁` (acyclic, most under-constrained).
    Chain,
    /// Every pair joined (most over-constrained).
    Clique,
    /// Hub variable joined to all others (acyclic).
    Star,
    /// Closed chain.
    Cycle,
    /// Seeded random connected graph with `min(2(n−1), n(n−1)/2)` edges:
    /// a random spanning tree plus random extra edges. The topology is a
    /// pure function of `(n, seed)` (see [`QueryShape::graph_seeded`]).
    Random,
}

impl QueryShape {
    /// Builds the corresponding [`QueryGraph`] with *overlap* predicates.
    /// [`QueryShape::Random`] uses seed 0; prefer
    /// [`QueryShape::graph_seeded`] when the workload carries a seed.
    pub fn graph(&self, n: usize) -> QueryGraph {
        self.graph_seeded(n, 0)
    }

    /// [`QueryShape::graph`] with an explicit topology seed. The fixed
    /// shapes ignore the seed; `Random` derives its edge set from it, so a
    /// given `(n, seed)` pair always names the same graph.
    pub fn graph_seeded(&self, n: usize, seed: u64) -> QueryGraph {
        match self {
            QueryShape::Chain => QueryGraph::chain(n),
            QueryShape::Clique => QueryGraph::clique(n),
            QueryShape::Star => QueryGraph::star(n),
            QueryShape::Cycle => QueryGraph::cycle(n),
            QueryShape::Random => random_connected_graph(n, seed),
        }
    }

    /// Number of join conditions for `n` variables.
    pub fn edge_count(&self, n: usize) -> usize {
        match self {
            QueryShape::Chain | QueryShape::Star => n - 1,
            QueryShape::Clique => n * (n - 1) / 2,
            QueryShape::Cycle => n,
            QueryShape::Random => (2 * (n - 1)).min(n * (n - 1) / 2),
        }
    }

    /// Short name used by the experiment harness output.
    pub fn name(&self) -> &'static str {
        match self {
            QueryShape::Chain => "chain",
            QueryShape::Clique => "clique",
            QueryShape::Star => "star",
            QueryShape::Cycle => "cycle",
            QueryShape::Random => "random",
        }
    }
}

/// Builds the seeded random connected graph behind [`QueryShape::Random`]:
/// a uniform random spanning tree (each vertex `i > 0` attaches to a
/// random earlier vertex) topped up with distinct random extra edges until
/// [`QueryShape::edge_count`] edges exist, all with *overlap* predicates.
fn random_connected_graph(n: usize, seed: u64) -> QueryGraph {
    assert!(n >= 2, "a join needs at least two variables");
    let mut rng = StdRng::seed_from_u64(seed);
    let target = QueryShape::Random.edge_count(n);
    let mut present = vec![false; n * n];
    let mut edges: Vec<Edge> = Vec::with_capacity(target);
    let add = |a: usize, b: usize, present: &mut Vec<bool>, edges: &mut Vec<Edge>| {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        if lo == hi || present[lo * n + hi] {
            return false;
        }
        present[lo * n + hi] = true;
        edges.push(Edge {
            a: lo,
            b: hi,
            pred: Predicate::Intersects,
        });
        true
    };
    for i in 1..n {
        let parent = rng.random_range(0..i);
        add(parent, i, &mut present, &mut edges);
    }
    while edges.len() < target {
        let a = rng.random_range(0..n);
        let b = rng.random_range(0..n);
        add(a, b, &mut present, &mut edges);
    }
    QueryGraph::from_edges(n, edges).expect("spanning tree keeps the graph connected")
}

/// Average per-axis extent `|r|` for cardinality `N` and density `d`
/// (`d = N·|r|²` ⇒ `|r| = √(d/N)`).
#[inline]
pub fn extent_for_density(cardinality: usize, density: f64) -> f64 {
    (density / cardinality as f64).sqrt()
}

/// Expected number of exact solutions for `n` same-cardinality (`N`)
/// same-density (`d`) datasets under the given query shape.
pub fn expected_solutions(shape: QueryShape, n: usize, cardinality: usize, density: f64) -> f64 {
    assert!(n >= 2);
    let big_n = cardinality as f64;
    match shape {
        // Acyclic: Sol = N · 2^{2(n−1)} · d^{n−1}.
        QueryShape::Chain | QueryShape::Star => {
            big_n * 4f64.powi(n as i32 - 1) * density.powi(n as i32 - 1)
        }
        // Clique [PMT99]: Sol = N · n² · d^{n−1}.
        QueryShape::Clique => big_n * (n as f64).powi(2) * density.powi(n as i32 - 1),
        // Cycle / random: independence approximation over the shape's E
        // edges (E = n for cycles).
        QueryShape::Cycle | QueryShape::Random => {
            let e = shape.edge_count(n) as i32;
            big_n.powi(n as i32) * (4.0 * density / big_n).powi(e)
        }
    }
}

/// The density that puts `n` datasets of cardinality `N` at an expected
/// `target` exact solutions — the *hard region* is `target ∈ [1, 10]`.
///
/// Closed forms (paper §6): acyclic `d = (Sol / (N·4^{n−1}))^{1/(n−1)}`
/// (for `Sol = 1`, `d = 1/(4·ⁿ⁻¹√N)`), clique `d = (Sol/(N·n²))^{1/(n−1)}`.
pub fn hard_region_density(shape: QueryShape, n: usize, cardinality: usize, target: f64) -> f64 {
    assert!(n >= 2);
    assert!(target > 0.0);
    let big_n = cardinality as f64;
    let inv = 1.0 / (n as f64 - 1.0);
    match shape {
        QueryShape::Chain | QueryShape::Star => {
            (target / (big_n * 4f64.powi(n as i32 - 1))).powf(inv)
        }
        QueryShape::Clique => (target / (big_n * (n as f64).powi(2))).powf(inv),
        QueryShape::Cycle | QueryShape::Random => {
            // Solve N^n (4d/N)^E = target for d (E = n for cycles).
            let e = shape.edge_count(n) as f64;
            (target.powf(1.0 / e) / big_n.powf(n as f64 / e)) * big_n / 4.0
        }
    }
}

/// Hard-region density for an arbitrary connected query graph: exact for
/// trees and cliques, independence approximation otherwise.
pub fn hard_region_density_graph(graph: &QueryGraph, cardinality: usize, target: f64) -> f64 {
    let n = graph.n_vars();
    let big_n = cardinality as f64;
    if graph.is_clique() && n > 2 {
        hard_region_density(QueryShape::Clique, n, cardinality, target)
    } else if graph.is_acyclic() {
        hard_region_density(QueryShape::Chain, n, cardinality, target)
    } else {
        // General connected graph, E edges: Sol ≈ N^n (4d/N)^E.
        let e = graph.edge_count() as f64;
        (target / big_n.powi(n as i32)).powf(1.0 / e) * big_n / 4.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_closed_form_for_chains() {
        // d = 1/(4·ⁿ⁻¹√N) for Sol = 1.
        for (n, big_n) in [(5usize, 100_000usize), (15, 100_000), (3, 1_000)] {
            let d = hard_region_density(QueryShape::Chain, n, big_n, 1.0);
            let expected = 1.0 / (4.0 * (big_n as f64).powf(1.0 / (n as f64 - 1.0)));
            assert!((d - expected).abs() < 1e-12, "n={n}");
        }
    }

    #[test]
    fn paper_closed_form_for_cliques() {
        // d = 1/ⁿ⁻¹√(N·n²) for Sol = 1.
        for (n, big_n) in [(5usize, 100_000usize), (25, 100_000)] {
            let d = hard_region_density(QueryShape::Clique, n, big_n, 1.0);
            let expected = 1.0 / ((big_n as f64) * (n as f64).powi(2)).powf(1.0 / (n as f64 - 1.0));
            assert!((d - expected).abs() < 1e-12, "n={n}");
        }
    }

    #[test]
    fn density_solvers_invert_expected_solutions() {
        for shape in [
            QueryShape::Chain,
            QueryShape::Clique,
            QueryShape::Star,
            QueryShape::Cycle,
            QueryShape::Random,
        ] {
            for target in [1.0, 10.0, 1e4] {
                let d = hard_region_density(shape, 8, 50_000, target);
                let sol = expected_solutions(shape, 8, 50_000, d);
                assert!(
                    (sol / target - 1.0).abs() < 1e-9,
                    "{shape:?} target {target}: got {sol}"
                );
            }
        }
    }

    #[test]
    fn graph_solver_matches_shape_solver() {
        let n = 6;
        let big_n = 10_000;
        let chain = QueryGraph::chain(n);
        assert!(
            (hard_region_density_graph(&chain, big_n, 1.0)
                - hard_region_density(QueryShape::Chain, n, big_n, 1.0))
            .abs()
                < 1e-15
        );
        let clique = QueryGraph::clique(n);
        assert!(
            (hard_region_density_graph(&clique, big_n, 1.0)
                - hard_region_density(QueryShape::Clique, n, big_n, 1.0))
            .abs()
                < 1e-15
        );
        // Star is acyclic → same closed form as chains.
        let star = QueryGraph::star(n);
        assert!(
            (hard_region_density_graph(&star, big_n, 1.0)
                - hard_region_density(QueryShape::Chain, n, big_n, 1.0))
            .abs()
                < 1e-15
        );
    }

    #[test]
    fn density_grows_with_target() {
        let d1 = hard_region_density(QueryShape::Clique, 15, 100_000, 1.0);
        let d2 = hard_region_density(QueryShape::Clique, 15, 100_000, 100.0);
        assert!(d2 > d1);
    }

    #[test]
    fn more_constraints_need_higher_density() {
        // For the same n/N/target, cliques need denser data than chains
        // (more conditions to satisfy).
        let dc = hard_region_density(QueryShape::Chain, 10, 100_000, 1.0);
        let dk = hard_region_density(QueryShape::Clique, 10, 100_000, 1.0);
        assert!(dk > dc);
    }

    #[test]
    fn extent_matches_density_definition() {
        let n = 100_000;
        let d = 0.04;
        let r = extent_for_density(n, d);
        assert!((n as f64 * r * r - d).abs() < 1e-12);
    }

    #[test]
    fn random_graph_is_a_pure_function_of_n_and_seed() {
        for n in [2usize, 3, 5, 8, 10] {
            for seed in [0u64, 1, 7, 0xfeed] {
                let a = QueryShape::Random.graph_seeded(n, seed);
                let b = QueryShape::Random.graph_seeded(n, seed);
                assert_eq!(a.edges(), b.edges(), "n={n} seed={seed}");
            }
        }
        // Different seeds must be able to produce different topologies
        // (otherwise the seed is dead weight).
        let base = QueryShape::Random.graph_seeded(8, 0);
        assert!(
            (1..10).any(|s| QueryShape::Random.graph_seeded(8, s).edges() != base.edges()),
            "every seed produced the same random graph"
        );
    }

    #[test]
    fn random_graph_is_connected_with_pinned_edge_count() {
        for n in 2usize..=10 {
            let want = (2 * (n - 1)).min(n * (n - 1) / 2);
            assert_eq!(QueryShape::Random.edge_count(n), want);
            for seed in 0u64..6 {
                // `QueryGraph::from_edges` rejects disconnected graphs, so
                // construction succeeding is the connectivity proof.
                let g = QueryShape::Random.graph_seeded(n, seed);
                assert_eq!(g.n_vars(), n, "n={n} seed={seed}");
                assert_eq!(g.edge_count(), want, "n={n} seed={seed}");
                // Edges are canonical: a < b, no duplicates.
                let mut seen = std::collections::HashSet::new();
                for e in g.edges() {
                    assert!(e.a < e.b, "edge not canonicalised");
                    assert!(seen.insert((e.a, e.b)), "duplicate edge");
                }
            }
        }
    }

    #[test]
    fn random_density_agrees_with_the_general_graph_solver() {
        // The shape solver and the arbitrary-graph solver use the same
        // independence approximation `Sol = Nⁿ·(4d/N)^E`; for a concrete
        // random graph (neither tree nor clique) they must agree.
        let (n, big_n) = (8usize, 10_000usize);
        let graph = QueryShape::Random.graph_seeded(n, 3);
        assert!(!graph.is_acyclic() && !graph.is_clique());
        for target in [1.0, 10.0] {
            let by_shape = hard_region_density(QueryShape::Random, n, big_n, target);
            let by_graph = hard_region_density_graph(&graph, big_n, target);
            assert!(
                (by_shape / by_graph - 1.0).abs() < 1e-12,
                "target {target}: {by_shape} vs {by_graph}"
            );
        }
        // More edges mean more constraints: the E = 2(n−1) random shape
        // needs denser data than the E = n−1 chain.
        let d_tree = hard_region_density(QueryShape::Chain, n, big_n, 1.0);
        let d_rand = hard_region_density(QueryShape::Random, n, big_n, 1.0);
        assert!(d_tree < d_rand, "expected {d_tree} < {d_rand}");
    }

    /// Monte-Carlo check of the analytic model: generate pairs of uniform
    /// datasets and compare the realised number of intersecting pairs with
    /// the pairwise selectivity formula N²·(2|r|)² = 4·N·d.
    #[test]
    fn pairwise_model_matches_simulation() {
        use crate::Dataset;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(12);
        let n = 2_000;
        let d = 0.02;
        let a = Dataset::uniform(n, d, &mut rng);
        let b = Dataset::uniform(n, d, &mut rng);
        let mut hits = 0u64;
        for ra in a.rects() {
            for rb in b.rects() {
                if ra.intersects(rb) {
                    hits += 1;
                }
            }
        }
        let expected = 4.0 * n as f64 * d; // N²·(|r|+|r|)² with |r|=√(d/N)
        let ratio = hits as f64 / expected;
        assert!(
            (0.8..1.2).contains(&ratio),
            "simulated {hits} vs expected {expected} (ratio {ratio})"
        );
    }
}
