//! Dataset generation over the unit workspace.

use mwsj_geom::Rect;
use rand::{Rng, RngExt};

/// Spatial distribution of object centers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Centers uniform over the workspace — the paper's setting.
    Uniform,
    /// Centers drawn from `clusters` Gaussian blobs with the given standard
    /// deviation; models city-like agglomerations.
    Clustered {
        /// Number of Gaussian blobs.
        clusters: usize,
        /// Standard deviation of each blob.
        sigma: f64,
    },
    /// Centers concentrated towards the origin: each coordinate is
    /// `u^exponent` for uniform `u` — a simple power-law skew.
    Skewed {
        /// Skew exponent (> 1 concentrates mass near the origin).
        exponent: f64,
    },
    /// Centers drawn from `clusters` Gaussian blobs whose masses follow a
    /// Zipf law — blob `k` receives weight `1/(k+1)^exponent` — a few
    /// dense hot-spots plus a long tail. The worst case for uniform
    /// space partitioning (most objects land in a handful of cells) and
    /// the standard skewed-join stress distribution.
    ZipfClustered {
        /// Number of Gaussian blobs.
        clusters: usize,
        /// Standard deviation of each blob.
        sigma: f64,
        /// Zipf exponent (> 0; larger concentrates mass in the top blobs).
        exponent: f64,
    },
}

/// Declarative description of a dataset, used to make experiment configs
/// reproducible and printable.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Number of objects `N`.
    pub cardinality: usize,
    /// Target density `d = N · |r|²` (average rectangles covering a point).
    pub density: f64,
    /// Spatial distribution of centers.
    pub distribution: Distribution,
    /// If `true`, every object has exactly the average extent; otherwise
    /// extents vary uniformly in `[0.5, 1.5] · |r|` (same mean).
    pub constant_extent: bool,
}

impl DatasetSpec {
    /// Uniform dataset with constant extents — the analytic model of §6.
    pub fn uniform(cardinality: usize, density: f64) -> Self {
        DatasetSpec {
            cardinality,
            density,
            distribution: Distribution::Uniform,
            constant_extent: true,
        }
    }

    /// Generates the dataset.
    pub fn generate<R: Rng>(&self, rng: &mut R) -> Dataset {
        Dataset::generate(self, rng)
    }
}

/// A dataset: object MBRs covering the unit workspace `[0,1]²`.
///
/// Object `i` of the dataset is identified by its index; the join
/// algorithms' [`Solution`](mwsj_query::Solution)s store these indices.
#[derive(Debug, Clone)]
pub struct Dataset {
    rects: Vec<Rect>,
    density: f64,
}

impl Dataset {
    /// Generates a uniform dataset of `n` objects with the given density
    /// (constant extents) — the paper's synthetic data model.
    pub fn uniform<R: Rng>(n: usize, density: f64, rng: &mut R) -> Self {
        DatasetSpec::uniform(n, density).generate(rng)
    }

    /// Generates a dataset from a full spec.
    pub fn generate<R: Rng>(spec: &DatasetSpec, rng: &mut R) -> Self {
        assert!(spec.cardinality > 0, "dataset must not be empty");
        assert!(
            spec.density > 0.0 && spec.density.is_finite(),
            "density must be positive"
        );
        let avg_extent = crate::extent_for_density(spec.cardinality, spec.density);
        let mut rects = Vec::with_capacity(spec.cardinality);
        for _ in 0..spec.cardinality {
            let extent_x;
            let extent_y;
            if spec.constant_extent {
                extent_x = avg_extent;
                extent_y = avg_extent;
            } else {
                extent_x = avg_extent * rng.random_range(0.5..1.5);
                extent_y = avg_extent * rng.random_range(0.5..1.5);
            }
            let (cx, cy) = sample_center(&spec.distribution, rng);
            // Keep the rectangle inside the unit workspace so the realised
            // density matches the analytic model at the borders.
            let x = (cx - extent_x / 2.0).clamp(0.0, 1.0 - extent_x);
            let y = (cy - extent_y / 2.0).clamp(0.0, 1.0 - extent_y);
            rects.push(Rect::new(x, y, x + extent_x, y + extent_y));
        }
        Dataset {
            rects,
            density: spec.density,
        }
    }

    /// Wraps externally produced rectangles (e.g. real data) as a dataset.
    pub fn from_rects(rects: Vec<Rect>) -> Self {
        assert!(!rects.is_empty(), "dataset must not be empty");
        let density = rects.iter().map(|r| r.area()).sum::<f64>();
        Dataset { rects, density }
    }

    /// Number of objects `N`.
    #[inline]
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// Datasets are never empty; provided for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// MBR of object `obj`.
    #[inline]
    pub fn rect(&self, obj: usize) -> Rect {
        self.rects[obj]
    }

    /// All object MBRs, indexed by object id.
    #[inline]
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// The nominal density the dataset was generated with (for generated
    /// data) or the realised density (for wrapped data).
    #[inline]
    pub fn density(&self) -> f64 {
        self.density
    }

    /// Realised density: total rectangle area over the unit workspace —
    /// should match [`Dataset::density`] closely for generated data.
    pub fn realized_density(&self) -> f64 {
        self.rects.iter().map(|r| r.area()).sum()
    }

    /// Replaces object `obj`'s MBR (used by solution planting).
    pub(crate) fn replace(&mut self, obj: usize, rect: Rect) {
        self.rects[obj] = rect;
    }
}

/// Lets `mwsj-core`'s `Instance` consume datasets directly.
impl AsRef<[Rect]> for Dataset {
    fn as_ref(&self) -> &[Rect] {
        &self.rects
    }
}

fn sample_center<R: Rng>(dist: &Distribution, rng: &mut R) -> (f64, f64) {
    match *dist {
        Distribution::Uniform => (rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)),
        Distribution::Clustered { clusters, sigma } => {
            debug_assert!(clusters > 0);
            // Blob centers are derived deterministically from the blob index
            // on a coarse grid, so one spec always describes one layout
            // family; jitter comes from the Gaussian draw.
            let c = rng.random_range(0..clusters);
            let side = (clusters as f64).sqrt().ceil() as usize;
            let bx = (c % side) as f64 / side as f64 + 0.5 / side as f64;
            let by = (c / side) as f64 / side as f64 + 0.5 / side as f64;
            let (gx, gy) = gaussian_pair(rng);
            (
                (bx + sigma * gx).clamp(0.0, 1.0),
                (by + sigma * gy).clamp(0.0, 1.0),
            )
        }
        Distribution::Skewed { exponent } => {
            let u: f64 = rng.random_range(0.0..1.0);
            let v: f64 = rng.random_range(0.0..1.0);
            (u.powf(exponent), v.powf(exponent))
        }
        Distribution::ZipfClustered {
            clusters,
            sigma,
            exponent,
        } => {
            debug_assert!(clusters > 0);
            // Inverse-CDF pick of the blob under Zipf weights
            // `1/(k+1)^exponent`; blob centers use the same deterministic
            // coarse-grid layout as `Clustered`.
            let total: f64 = (0..clusters)
                .map(|k| ((k + 1) as f64).powf(-exponent))
                .sum();
            let mut u = rng.random_range(0.0..1.0) * total;
            let mut c = clusters - 1;
            for k in 0..clusters {
                u -= ((k + 1) as f64).powf(-exponent);
                if u <= 0.0 {
                    c = k;
                    break;
                }
            }
            let side = (clusters as f64).sqrt().ceil() as usize;
            let bx = (c % side) as f64 / side as f64 + 0.5 / side as f64;
            let by = (c / side) as f64 / side as f64 + 0.5 / side as f64;
            let (gx, gy) = gaussian_pair(rng);
            (
                (bx + sigma * gx).clamp(0.0, 1.0),
                (by + sigma * gy).clamp(0.0, 1.0),
            )
        }
    }
}

/// Box–Muller transform: two independent standard normal samples.
fn gaussian_pair<R: Rng>(rng: &mut R) -> (f64, f64) {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_dataset_matches_density_model() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Dataset::uniform(10_000, 0.05, &mut rng);
        assert_eq!(d.len(), 10_000);
        // Constant extents: realised density equals nominal density exactly
        // (up to fp rounding).
        assert!((d.realized_density() - 0.05).abs() < 1e-9);
        // All rects inside the workspace.
        for r in d.rects() {
            assert!(r.min.x >= 0.0 && r.max.x <= 1.0 + 1e-12);
            assert!(r.min.y >= 0.0 && r.max.y <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn variable_extents_keep_density_close() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec = DatasetSpec {
            cardinality: 20_000,
            density: 0.1,
            distribution: Distribution::Uniform,
            constant_extent: false,
        };
        let d = spec.generate(&mut rng);
        // E[w·h] = E[w]E[h] = |r|² · (E[u])² with u ~ U(0.5,1.5) ⇒ E[u] = 1.
        // Monte-Carlo tolerance of a few percent.
        assert!(
            (d.realized_density() - 0.1).abs() < 0.01,
            "density {}",
            d.realized_density()
        );
    }

    #[test]
    fn clustered_dataset_is_clustered() {
        let mut rng = StdRng::seed_from_u64(3);
        let spec = DatasetSpec {
            cardinality: 5_000,
            density: 0.01,
            distribution: Distribution::Clustered {
                clusters: 4,
                sigma: 0.02,
            },
            constant_extent: true,
        };
        let d = spec.generate(&mut rng);
        // Compare spatial variance against a uniform set: clustered centers
        // concentrate around 4 blob centers, so the mean nearest-blob
        // distance is tiny.
        let blobs = [(0.25, 0.25), (0.75, 0.25), (0.25, 0.75), (0.75, 0.75)];
        let mean_dist: f64 = d
            .rects()
            .iter()
            .map(|r| {
                let c = r.center();
                blobs
                    .iter()
                    .map(|(bx, by)| ((c.x - bx).powi(2) + (c.y - by).powi(2)).sqrt())
                    .fold(f64::INFINITY, f64::min)
            })
            .sum::<f64>()
            / d.len() as f64;
        assert!(mean_dist < 0.05, "mean nearest-blob distance {mean_dist}");
    }

    #[test]
    fn skewed_dataset_concentrates_near_origin() {
        let mut rng = StdRng::seed_from_u64(4);
        let spec = DatasetSpec {
            cardinality: 5_000,
            density: 0.01,
            distribution: Distribution::Skewed { exponent: 3.0 },
            constant_extent: true,
        };
        let d = spec.generate(&mut rng);
        let mean_x: f64 = d.rects().iter().map(|r| r.center().x).sum::<f64>() / d.len() as f64;
        // E[u³] = 0.25 for u ~ U(0,1).
        assert!((mean_x - 0.25).abs() < 0.05, "mean x {mean_x}");
    }

    #[test]
    fn zipf_clustered_mass_is_top_heavy_and_deterministic() {
        let spec = DatasetSpec {
            cardinality: 8_000,
            density: 0.01,
            distribution: Distribution::ZipfClustered {
                clusters: 8,
                sigma: 0.01,
                exponent: 1.2,
            },
            constant_extent: true,
        };
        let d = spec.generate(&mut StdRng::seed_from_u64(6));
        // Blob 0 sits at the coarse-grid cell (0,0) center (side = 3 for 8
        // blobs): count objects within 5σ of it and compare to the Zipf
        // weight 1/1^1.2 over H(8, 1.2) ≈ 0.35 — far above uniform 1/8.
        let (bx, by) = (0.5 / 3.0, 0.5 / 3.0);
        let near = d
            .rects()
            .iter()
            .filter(|r| {
                let c = r.center();
                ((c.x - bx).powi(2) + (c.y - by).powi(2)).sqrt() < 0.05
            })
            .count() as f64
            / d.len() as f64;
        let h: f64 = (1..=8).map(|k| (k as f64).powf(-1.2)).sum();
        let expected = 1.0 / h;
        assert!(
            (near - expected).abs() < 0.05,
            "top-blob share {near}, expected ≈ {expected}"
        );
        let again = spec.generate(&mut StdRng::seed_from_u64(6));
        assert_eq!(d.rects(), again.rects());
    }

    #[test]
    fn from_rects_computes_density() {
        let d = Dataset::from_rects(vec![
            Rect::new(0.0, 0.0, 0.5, 0.5),
            Rect::new(0.5, 0.5, 1.0, 1.0),
        ]);
        assert_eq!(d.len(), 2);
        assert!((d.density() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_dataset_rejected() {
        let _ = Dataset::from_rects(vec![]);
    }

    #[test]
    #[should_panic(expected = "density must be positive")]
    fn negative_density_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = Dataset::uniform(10, -0.1, &mut rng);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = Dataset::uniform(100, 0.05, &mut StdRng::seed_from_u64(7));
        let b = Dataset::uniform(100, 0.05, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.rects(), b.rects());
        let c = Dataset::uniform(100, 0.05, &mut StdRng::seed_from_u64(8));
        assert_ne!(a.rects(), c.rects());
    }
}
