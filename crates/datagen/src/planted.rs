//! Planting exact solutions and brute-force counting.
//!
//! Fig. 11 of the paper requires datasets containing **exactly one** exact
//! solution, so that the time until systematic search retrieves it can be
//! measured. [`plant_solution`] overwrites one object per dataset with a
//! configuration that satisfies every *overlap* constraint;
//! [`count_exact_solutions`] verifies solution counts by backtracking and
//! anchors the correctness tests of every search algorithm.

use crate::Dataset;
use mwsj_geom::Rect;
use mwsj_query::{QueryGraph, Solution};
use rand::{Rng, RngExt};

/// Overwrites one randomly chosen object per dataset with a rectangle
/// containing a common random point, producing an exact solution for any
/// query graph whose predicates are all *overlap* (rectangles sharing a
/// point pairwise intersect). Returns the planted assignment.
///
/// Each planted rectangle keeps its dataset's average extent, so the
/// dataset's density model is essentially unchanged.
///
/// # Panics
/// Panics if `datasets` is empty or if the graph uses a predicate other
/// than [overlap](mwsj_geom::Predicate::Intersects).
pub fn plant_solution<R: Rng>(
    datasets: &mut [Dataset],
    graph: &QueryGraph,
    rng: &mut R,
) -> Solution {
    assert_eq!(datasets.len(), graph.n_vars());
    assert!(
        graph
            .edges()
            .iter()
            .all(|e| e.pred == mwsj_geom::Predicate::Intersects),
        "plant_solution supports overlap queries only"
    );

    // A common point away from workspace borders.
    let px: f64 = rng.random_range(0.2..0.8);
    let py: f64 = rng.random_range(0.2..0.8);

    let mut assignment = Vec::with_capacity(datasets.len());
    for ds in datasets.iter_mut() {
        let extent = crate::extent_for_density(ds.len(), ds.density());
        // Offset so the common point falls at a random position inside the
        // rectangle — planted objects are not all co-centred.
        let off_x: f64 = rng.random_range(0.0..extent);
        let off_y: f64 = rng.random_range(0.0..extent);
        let x = (px - off_x).clamp(0.0, 1.0 - extent);
        let y = (py - off_y).clamp(0.0, 1.0 - extent);
        let rect = Rect::new(x, y, x + extent, y + extent);
        debug_assert!(rect.contains_point(&mwsj_geom::Point::new(px, py)));
        let obj = rng.random_range(0..ds.len());
        ds.replace(obj, rect);
        assignment.push(obj);
    }
    Solution::new(assignment)
}

/// Counts the exact solutions of a multiway join by depth-first
/// backtracking over the datasets (checking each new assignment against all
/// already-assigned neighbours).
///
/// Exponential in the worst case — intended for the moderate instances used
/// in tests and for verifying planted datasets, not for production joins
/// (that is what `mwsj-core`'s algorithms are for). `limit` caps the count:
/// counting stops once `limit` solutions have been found (pass `u64::MAX`
/// for an exact count).
pub fn count_exact_solutions(datasets: &[Dataset], graph: &QueryGraph, limit: u64) -> u64 {
    assert_eq!(datasets.len(), graph.n_vars());
    let n = graph.n_vars();
    let mut assignment = vec![usize::MAX; n];
    let mut count = 0u64;
    count_rec(datasets, graph, 0, &mut assignment, &mut count, limit);
    count
}

fn count_rec(
    datasets: &[Dataset],
    graph: &QueryGraph,
    var: usize,
    assignment: &mut [usize],
    count: &mut u64,
    limit: u64,
) {
    if *count >= limit {
        return;
    }
    if var == graph.n_vars() {
        *count += 1;
        return;
    }
    'candidates: for obj in 0..datasets[var].len() {
        let r = datasets[var].rect(obj);
        for &(u, pred) in graph.neighbors(var) {
            if u < var {
                let ru = datasets[u].rect(assignment[u]);
                if !pred.eval(&r, &ru) {
                    continue 'candidates;
                }
            }
        }
        assignment[var] = obj;
        count_rec(datasets, graph, var + 1, assignment, count, limit);
        if *count >= limit {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hard_region_density, QueryShape};
    use mwsj_query::ConflictState;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn planted_solution_is_exact() {
        let mut rng = StdRng::seed_from_u64(31);
        for shape in [QueryShape::Chain, QueryShape::Clique, QueryShape::Cycle] {
            let n = 5;
            let big_n = 500;
            let d = hard_region_density(shape, n, big_n, 1.0);
            let mut datasets: Vec<Dataset> = (0..n)
                .map(|_| Dataset::uniform(big_n, d, &mut rng))
                .collect();
            let graph = shape.graph(n);
            let planted = plant_solution(&mut datasets, &graph, &mut rng);
            let rect_of = |v: usize, o: usize| datasets[v].rect(o);
            assert!(
                graph.is_exact(&planted, rect_of),
                "{} planted solution violates constraints",
                shape.name()
            );
        }
    }

    #[test]
    fn planting_creates_at_least_one_solution() {
        let mut rng = StdRng::seed_from_u64(32);
        let n = 4;
        let big_n = 200;
        // Far below the hard region: without planting there would almost
        // surely be zero solutions.
        let d = hard_region_density(QueryShape::Clique, n, big_n, 1.0) / 100.0;
        let mut datasets: Vec<Dataset> = (0..n)
            .map(|_| Dataset::uniform(big_n, d, &mut rng))
            .collect();
        let graph = QueryGraph::clique(n);
        assert_eq!(count_exact_solutions(&datasets, &graph, u64::MAX), 0);
        plant_solution(&mut datasets, &graph, &mut rng);
        assert_eq!(count_exact_solutions(&datasets, &graph, u64::MAX), 1);
    }

    #[test]
    fn count_limit_short_circuits() {
        let mut rng = StdRng::seed_from_u64(33);
        // Dense data: plenty of solutions.
        let datasets: Vec<Dataset> = (0..3)
            .map(|_| Dataset::uniform(50, 2.0, &mut rng))
            .collect();
        let graph = QueryGraph::chain(3);
        let capped = count_exact_solutions(&datasets, &graph, 10);
        assert_eq!(capped, 10);
        assert!(count_exact_solutions(&datasets, &graph, u64::MAX) >= 10);
    }

    #[test]
    fn brute_force_count_agrees_with_conflict_state() {
        // Every counted solution must evaluate to zero violations.
        let mut rng = StdRng::seed_from_u64(34);
        let datasets: Vec<Dataset> = (0..3)
            .map(|_| Dataset::uniform(30, 0.8, &mut rng))
            .collect();
        let graph = QueryGraph::cycle(3);
        let rect_of = |v: usize, o: usize| datasets[v].rect(o);
        let mut brute = 0u64;
        for a in 0..30 {
            for b in 0..30 {
                for c in 0..30 {
                    let sol = Solution::new(vec![a, b, c]);
                    let cs = ConflictState::evaluate(&graph, &sol, rect_of);
                    if cs.total_violations() == 0 {
                        brute += 1;
                    }
                }
            }
        }
        assert_eq!(count_exact_solutions(&datasets, &graph, u64::MAX), brute);
    }

    #[test]
    #[should_panic(expected = "overlap queries only")]
    fn planting_rejects_non_overlap_predicates() {
        let mut rng = StdRng::seed_from_u64(35);
        let mut datasets = vec![
            Dataset::uniform(10, 0.1, &mut rng),
            Dataset::uniform(10, 0.1, &mut rng),
        ];
        let graph = mwsj_query::QueryGraphBuilder::new(2)
            .edge_with(0, 1, mwsj_geom::Predicate::Contains)
            .build()
            .unwrap();
        let _ = plant_solution(&mut datasets, &graph, &mut rng);
    }
}
