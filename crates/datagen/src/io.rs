//! Dataset import/export as plain CSV (`min_x,min_y,max_x,max_y` rows).
//!
//! The paper's evaluation is synthetic, but the library is meant for real
//! layers (roads, rivers, parcels…). This module round-trips datasets
//! through a dependency-free CSV format so users can bring their own MBRs.

use crate::Dataset;
use mwsj_geom::Rect;
use std::fmt;
use std::fs;
use std::path::Path;

/// Errors raised when parsing a dataset from CSV.
#[derive(Debug, Clone, PartialEq)]
pub enum CsvError {
    /// A row had the wrong number of fields.
    WrongFieldCount {
        /// 1-based line number.
        line: usize,
        /// Fields found.
        got: usize,
    },
    /// A field failed to parse as a finite number.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// The offending field text.
        field: String,
    },
    /// The file contained no rectangles.
    Empty,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::WrongFieldCount { line, got } => {
                write!(f, "line {line}: expected 4 fields, got {got}")
            }
            CsvError::BadNumber { line, field } => {
                write!(f, "line {line}: '{field}' is not a finite number")
            }
            CsvError::Empty => write!(f, "no rectangles in input"),
        }
    }
}

impl std::error::Error for CsvError {}

impl Dataset {
    /// Serialises the dataset as CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.len() * 40 + 32);
        out.push_str("min_x,min_y,max_x,max_y\n");
        for r in self.rects() {
            out.push_str(&format!(
                "{},{},{},{}\n",
                r.min.x, r.min.y, r.max.x, r.max.y
            ));
        }
        out
    }

    /// Parses a dataset from CSV. A header row (any row whose first field
    /// is not a number) is skipped; blank lines are ignored.
    pub fn from_csv(text: &str) -> Result<Dataset, CsvError> {
        let mut rects = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() {
                continue;
            }
            let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
            // Header detection: first field not numeric on the first
            // non-empty row.
            if rects.is_empty() && fields[0].parse::<f64>().is_err() && i == 0 {
                continue;
            }
            if fields.len() != 4 {
                return Err(CsvError::WrongFieldCount {
                    line,
                    got: fields.len(),
                });
            }
            let mut nums = [0f64; 4];
            for (k, f) in fields.iter().enumerate() {
                nums[k] = f.parse::<f64>().map_err(|_| CsvError::BadNumber {
                    line,
                    field: (*f).to_string(),
                })?;
                if !nums[k].is_finite() {
                    return Err(CsvError::BadNumber {
                        line,
                        field: (*f).to_string(),
                    });
                }
            }
            rects.push(Rect::new(nums[0], nums[1], nums[2], nums[3]));
        }
        if rects.is_empty() {
            return Err(CsvError::Empty);
        }
        Ok(Dataset::from_rects(rects))
    }

    /// Writes the dataset to a CSV file.
    pub fn write_csv_file<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        fs::write(path, self.to_csv())
    }

    /// Reads a dataset from a CSV file.
    pub fn read_csv_file<P: AsRef<Path>>(path: P) -> Result<Dataset, Box<dyn std::error::Error>> {
        let text = fs::read_to_string(path)?;
        Ok(Dataset::from_csv(&text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_preserves_rectangles() {
        let mut rng = StdRng::seed_from_u64(51);
        let original = Dataset::uniform(500, 0.1, &mut rng);
        let parsed = Dataset::from_csv(&original.to_csv()).unwrap();
        assert_eq!(original.rects(), parsed.rects());
    }

    #[test]
    fn parses_without_header() {
        let d = Dataset::from_csv("0,0,1,1\n2,2,3,3\n").unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.rect(1), Rect::new(2.0, 2.0, 3.0, 3.0));
    }

    #[test]
    fn skips_blank_lines_and_whitespace() {
        let d = Dataset::from_csv("min_x,min_y,max_x,max_y\n\n 0 , 0 , 1 , 1 \n\n").unwrap();
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn rejects_bad_rows() {
        assert_eq!(
            Dataset::from_csv("0,0,1\n").unwrap_err(),
            CsvError::WrongFieldCount { line: 1, got: 3 }
        );
        assert!(matches!(
            Dataset::from_csv("0,0,1,x\n"),
            Err(CsvError::BadNumber { line: 1, .. })
        ));
        assert!(matches!(
            Dataset::from_csv("0,0,1,inf\n"),
            Err(CsvError::BadNumber { .. })
        ));
        assert_eq!(
            Dataset::from_csv("min_x,min_y,max_x,max_y\n").unwrap_err(),
            CsvError::Empty
        );
        assert_eq!(Dataset::from_csv("").unwrap_err(), CsvError::Empty);
    }

    #[test]
    fn file_roundtrip() {
        let mut rng = StdRng::seed_from_u64(52);
        let original = Dataset::uniform(50, 0.2, &mut rng);
        let dir = std::env::temp_dir().join("mwsj_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.csv");
        original.write_csv_file(&path).unwrap();
        let loaded = Dataset::read_csv_file(&path).unwrap();
        assert_eq!(original.rects(), loaded.rects());
        let _ = std::fs::remove_file(&path);
    }
}
