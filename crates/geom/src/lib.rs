//! Geometry primitives and spatial predicates for multiway spatial joins.
//!
//! This crate provides the 2D building blocks used throughout the
//! reproduction of *Papadias & Arkoumanis, "Approximate Processing of
//! Multiway Spatial Joins in Very Large Databases" (EDBT 2002)*:
//!
//! * [`Point`] — a 2D point,
//! * [`Interval`] — a closed 1D interval,
//! * [`Rect`] — an axis-aligned minimum bounding rectangle (MBR),
//! * [`Predicate`] — the binary spatial predicates that label query-graph
//!   edges (the paper's default is [`Predicate::Intersects`]; the Discussion
//!   section notes the methods extend to directional and distance predicates,
//!   which are implemented here as well).
//!
//! All coordinates are `f64`. The paper normalises datasets to a unit
//! workspace `[0,1]²`; nothing in this crate requires that, but the helpers
//! in `mwsj-datagen` produce unit-workspace data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod interval;
mod point;
mod predicate;
mod rect;

pub use interval::Interval;
pub use point::Point;
pub use predicate::Predicate;
pub use rect::Rect;

/// The workspace rectangle `[0,1] × [0,1]` that synthetic datasets cover.
pub const UNIT_WORKSPACE: Rect = Rect {
    min: Point { x: 0.0, y: 0.0 },
    max: Point { x: 1.0, y: 1.0 },
};
