//! Closed 1D intervals, used per-axis by [`crate::Rect`] and by the STR
//! bulk-loading code in `mwsj-rtree`.

use std::fmt;

/// A closed interval `[lo, hi]` on one axis.
///
/// Intervals with `lo > hi` are considered *empty*; [`Interval::EMPTY`] is
/// the canonical empty interval and behaves as the identity of
/// [`Interval::union`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
}

impl Interval {
    /// The canonical empty interval (`[+∞, −∞]`).
    pub const EMPTY: Interval = Interval {
        lo: f64::INFINITY,
        hi: f64::NEG_INFINITY,
    };

    /// Creates the interval `[lo, hi]`.
    #[inline]
    pub const fn new(lo: f64, hi: f64) -> Self {
        Interval { lo, hi }
    }

    /// Length of the interval (0 for empty intervals).
    #[inline]
    pub fn length(&self) -> f64 {
        (self.hi - self.lo).max(0.0)
    }

    /// Returns `true` if the interval contains no point.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    /// Returns `true` if `x` lies inside the closed interval.
    #[inline]
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Returns `true` if the closed intervals share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Returns `true` if `other` lies entirely inside `self`.
    #[inline]
    pub fn contains_interval(&self, other: &Interval) -> bool {
        !other.is_empty() && self.lo <= other.lo && other.hi <= self.hi
    }

    /// Smallest interval covering both operands.
    #[inline]
    pub fn union(&self, other: &Interval) -> Interval {
        Interval::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// Largest interval contained in both operands (empty if disjoint).
    #[inline]
    pub fn intersection(&self, other: &Interval) -> Interval {
        Interval::new(self.lo.max(other.lo), self.hi.min(other.hi))
    }

    /// Length of the overlap with `other` (0 if disjoint).
    #[inline]
    pub fn overlap_length(&self, other: &Interval) -> f64 {
        self.intersection(other).length()
    }

    /// Distance between the intervals (0 if they intersect).
    #[inline]
    pub fn distance(&self, other: &Interval) -> f64 {
        if self.intersects(other) {
            0.0
        } else if self.hi < other.lo {
            other.lo - self.hi
        } else {
            self.lo - other.hi
        }
    }

    /// Midpoint of the interval.
    #[inline]
    pub fn center(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_interval_properties() {
        assert!(Interval::EMPTY.is_empty());
        assert_eq!(Interval::EMPTY.length(), 0.0);
        assert!(!Interval::EMPTY.contains(0.0));
    }

    #[test]
    fn empty_is_union_identity() {
        let i = Interval::new(2.0, 5.0);
        assert_eq!(Interval::EMPTY.union(&i), i);
        assert_eq!(i.union(&Interval::EMPTY), i);
    }

    #[test]
    fn intersection_of_disjoint_is_empty() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(2.0, 3.0);
        assert!(a.intersection(&b).is_empty());
        assert!(!a.intersects(&b));
        assert_eq!(a.overlap_length(&b), 0.0);
    }

    #[test]
    fn touching_intervals_intersect() {
        // Closed-interval semantics: sharing a single endpoint counts.
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(1.0, 2.0);
        assert!(a.intersects(&b));
        assert_eq!(a.overlap_length(&b), 0.0);
    }

    #[test]
    fn containment() {
        let outer = Interval::new(0.0, 10.0);
        let inner = Interval::new(2.0, 3.0);
        assert!(outer.contains_interval(&inner));
        assert!(!inner.contains_interval(&outer));
        assert!(outer.contains_interval(&outer));
        assert!(!outer.contains_interval(&Interval::EMPTY));
    }

    #[test]
    fn distance_between_intervals() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 2.0);
        assert_eq!(b.distance(&a), 2.0);
        assert_eq!(a.distance(&Interval::new(0.5, 2.0)), 0.0);
    }

    #[test]
    fn center_and_length() {
        let i = Interval::new(1.0, 4.0);
        assert_eq!(i.center(), 2.5);
        assert_eq!(i.length(), 3.0);
    }
}
