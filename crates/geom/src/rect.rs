//! Axis-aligned minimum bounding rectangles (MBRs).

use crate::{Interval, Point};
use std::fmt;

/// An axis-aligned rectangle, the MBR representation used by R-trees.
///
/// A rectangle is defined by its lower-left (`min`) and upper-right (`max`)
/// corners. Rectangles are *closed*: two rectangles sharing only a boundary
/// point are considered intersecting, matching the usual spatial-database
/// convention for the *overlap* (non-disjoint) predicate.
///
/// Degenerate rectangles (zero width and/or height) are valid and represent
/// line segments or points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Rect {
    /// The empty rectangle: identity of [`Rect::union`], intersects nothing.
    pub const EMPTY: Rect = Rect {
        min: Point {
            x: f64::INFINITY,
            y: f64::INFINITY,
        },
        max: Point {
            x: f64::NEG_INFINITY,
            y: f64::NEG_INFINITY,
        },
    };

    /// Creates a rectangle from corner coordinates `(x1, y1)`–`(x2, y2)`.
    ///
    /// The corners may be given in any order; they are normalised so that
    /// `min` is the component-wise minimum.
    #[inline]
    pub fn new(x1: f64, y1: f64, x2: f64, y2: f64) -> Self {
        Rect {
            min: Point::new(x1.min(x2), y1.min(y2)),
            max: Point::new(x1.max(x2), y1.max(y2)),
        }
    }

    /// Creates a rectangle from two corner points (any order).
    #[inline]
    pub fn from_corners(a: Point, b: Point) -> Self {
        Rect {
            min: a.min(&b),
            max: a.max(&b),
        }
    }

    /// Creates a rectangle from its center point and side extents.
    #[inline]
    pub fn from_center(center: Point, width: f64, height: f64) -> Self {
        Rect {
            min: Point::new(center.x - width / 2.0, center.y - height / 2.0),
            max: Point::new(center.x + width / 2.0, center.y + height / 2.0),
        }
    }

    /// A degenerate rectangle covering a single point.
    #[inline]
    pub fn from_point(p: Point) -> Self {
        Rect { min: p, max: p }
    }

    /// The projection of the rectangle onto the x axis.
    #[inline]
    pub fn x_interval(&self) -> Interval {
        Interval::new(self.min.x, self.max.x)
    }

    /// The projection of the rectangle onto the y axis.
    #[inline]
    pub fn y_interval(&self) -> Interval {
        Interval::new(self.min.y, self.max.y)
    }

    /// Width of the rectangle (0 for empty rectangles).
    #[inline]
    pub fn width(&self) -> f64 {
        self.x_interval().length()
    }

    /// Height of the rectangle (0 for empty rectangles).
    #[inline]
    pub fn height(&self) -> f64 {
        self.y_interval().length()
    }

    /// Area of the rectangle (0 for empty or degenerate rectangles).
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half-perimeter (the *margin* of BKSS90 divided by two). The R* split
    /// uses margins to pick the split axis; the factor of two is irrelevant
    /// for comparisons.
    #[inline]
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// Center point of the rectangle.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(self.x_interval().center(), self.y_interval().center())
    }

    /// Returns `true` if the rectangle contains no point.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Returns `true` if all four coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.min.is_finite() && self.max.is_finite()
    }

    /// Returns `true` if the closed rectangles share at least one point
    /// (the paper's default *overlap* join predicate).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// Returns `true` if `p` lies inside the closed rectangle.
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        self.min.x <= p.x && p.x <= self.max.x && self.min.y <= p.y && p.y <= self.max.y
    }

    /// Returns `true` if `other` lies entirely inside `self`.
    #[inline]
    pub fn contains(&self, other: &Rect) -> bool {
        !other.is_empty()
            && self.min.x <= other.min.x
            && self.min.y <= other.min.y
            && other.max.x <= self.max.x
            && other.max.y <= self.max.y
    }

    /// Smallest rectangle covering both operands.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: self.min.min(&other.min),
            max: self.max.max(&other.max),
        }
    }

    /// Largest rectangle contained in both operands (empty if disjoint).
    #[inline]
    pub fn intersection(&self, other: &Rect) -> Rect {
        Rect {
            min: self.min.max(&other.min),
            max: self.max.min(&other.max),
        }
    }

    /// Area of the overlap with `other` (0 if disjoint).
    #[inline]
    pub fn overlap_area(&self, other: &Rect) -> f64 {
        let ix = self.x_interval().overlap_length(&other.x_interval());
        let iy = self.y_interval().overlap_length(&other.y_interval());
        ix * iy
    }

    /// Area increase needed for `self` to cover `other`
    /// (the *enlargement* criterion of R-tree subtree choice).
    #[inline]
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Minimum Euclidean distance between the rectangles (0 if they
    /// intersect). Used by distance predicates and k-NN search.
    #[inline]
    pub fn min_distance(&self, other: &Rect) -> f64 {
        self.min_distance_sq(other).sqrt()
    }

    /// Squared minimum distance between the rectangles.
    #[inline]
    pub fn min_distance_sq(&self, other: &Rect) -> f64 {
        let dx = self.x_interval().distance(&other.x_interval());
        let dy = self.y_interval().distance(&other.y_interval());
        dx * dx + dy * dy
    }

    /// Minimum distance from a point to the rectangle (0 if inside).
    #[inline]
    pub fn min_distance_to_point(&self, p: &Point) -> f64 {
        self.min_distance(&Rect::from_point(*p))
    }

    /// Grows the rectangle by `delta` on every side.
    #[inline]
    pub fn inflate(&self, delta: f64) -> Rect {
        Rect {
            min: Point::new(self.min.x - delta, self.min.y - delta),
            max: Point::new(self.max.x + delta, self.max.y + delta),
        }
    }

    /// Smallest rectangle covering all rectangles in `iter`
    /// ([`Rect::EMPTY`] if the iterator is empty).
    pub fn union_all<'a, I: IntoIterator<Item = &'a Rect>>(iter: I) -> Rect {
        iter.into_iter().fold(Rect::EMPTY, |acc, r| acc.union(r))
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}, {}]x[{}, {}]",
            self.min.x, self.max.x, self.min.y, self.max.y
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x1: f64, y1: f64, x2: f64, y2: f64) -> Rect {
        Rect::new(x1, y1, x2, y2)
    }

    #[test]
    fn new_normalises_corners() {
        let a = Rect::new(2.0, 3.0, 0.0, 1.0);
        assert_eq!(a.min, Point::new(0.0, 1.0));
        assert_eq!(a.max, Point::new(2.0, 3.0));
    }

    #[test]
    fn area_and_margin() {
        let a = r(0.0, 0.0, 2.0, 3.0);
        assert_eq!(a.area(), 6.0);
        assert_eq!(a.margin(), 5.0);
        assert_eq!(a.width(), 2.0);
        assert_eq!(a.height(), 3.0);
    }

    #[test]
    fn empty_rect_properties() {
        assert!(Rect::EMPTY.is_empty());
        assert_eq!(Rect::EMPTY.area(), 0.0);
        assert!(!Rect::EMPTY.intersects(&r(0.0, 0.0, 1.0, 1.0)));
        assert!(!r(0.0, 0.0, 1.0, 1.0).intersects(&Rect::EMPTY));
    }

    #[test]
    fn empty_is_union_identity() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        assert_eq!(Rect::EMPTY.union(&a), a);
        assert_eq!(a.union(&Rect::EMPTY), a);
    }

    #[test]
    fn intersection_tests() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let b = r(1.0, 1.0, 3.0, 3.0);
        let c = r(5.0, 5.0, 6.0, 6.0);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        assert_eq!(a.intersection(&b), r(1.0, 1.0, 2.0, 2.0));
        assert!(a.intersection(&c).is_empty());
        assert_eq!(a.overlap_area(&b), 1.0);
        assert_eq!(a.overlap_area(&c), 0.0);
    }

    #[test]
    fn boundary_touching_rectangles_intersect() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let edge = r(1.0, 0.0, 2.0, 1.0);
        let corner = r(1.0, 1.0, 2.0, 2.0);
        assert!(a.intersects(&edge));
        assert!(a.intersects(&corner));
        assert_eq!(a.overlap_area(&edge), 0.0);
    }

    #[test]
    fn containment() {
        let outer = r(0.0, 0.0, 10.0, 10.0);
        let inner = r(1.0, 1.0, 2.0, 2.0);
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert!(outer.contains(&outer));
        assert!(!outer.contains(&Rect::EMPTY));
        assert!(outer.contains_point(&Point::new(0.0, 0.0)));
        assert!(!outer.contains_point(&Point::new(-0.1, 5.0)));
    }

    #[test]
    fn enlargement_zero_when_contained() {
        let outer = r(0.0, 0.0, 10.0, 10.0);
        let inner = r(1.0, 1.0, 2.0, 2.0);
        assert_eq!(outer.enlargement(&inner), 0.0);
        // Growing a 1x1 rect to also cover a far unit square.
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(2.0, 0.0, 3.0, 1.0);
        assert_eq!(a.enlargement(&b), 3.0 - 1.0);
    }

    #[test]
    fn min_distance_between_rects() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(4.0, 5.0, 6.0, 7.0);
        // dx = 3, dy = 4 => distance 5.
        assert_eq!(a.min_distance(&b), 5.0);
        assert_eq!(a.min_distance(&r(0.5, 0.5, 2.0, 2.0)), 0.0);
    }

    #[test]
    fn from_center_roundtrip() {
        let c = Point::new(0.5, 0.5);
        let a = Rect::from_center(c, 0.2, 0.4);
        assert!((a.center().x - 0.5).abs() < 1e-12);
        assert!((a.center().y - 0.5).abs() < 1e-12);
        assert!((a.width() - 0.2).abs() < 1e-12);
        assert!((a.height() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn union_all_covers_everything() {
        let rects = vec![
            r(0.0, 0.0, 1.0, 1.0),
            r(5.0, 5.0, 6.0, 6.0),
            r(-1.0, 2.0, 0.0, 3.0),
        ];
        let u = Rect::union_all(&rects);
        for rect in &rects {
            assert!(u.contains(rect));
        }
        assert_eq!(Rect::union_all(std::iter::empty()), Rect::EMPTY);
    }

    #[test]
    fn inflate_grows_all_sides() {
        let a = r(0.0, 0.0, 1.0, 1.0).inflate(0.5);
        assert_eq!(a, r(-0.5, -0.5, 1.5, 1.5));
    }

    #[test]
    fn point_rect_distance() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        assert_eq!(a.min_distance_to_point(&Point::new(0.5, 0.5)), 0.0);
        assert_eq!(a.min_distance_to_point(&Point::new(4.0, 5.0)), 5.0);
    }
}
