//! Binary spatial predicates for query-graph edges.
//!
//! The paper's standard join condition is *overlap* ([`Predicate::Intersects`]).
//! Its Discussion section notes that the algorithms "are easily extensible to
//! other spatial predicates, such as northeast, inside, near etc." — those
//! predicates are implemented here so every search algorithm works unchanged
//! with them.
//!
//! Each predicate provides two tests:
//!
//! * [`Predicate::eval`] — the exact object-level test between two MBRs, and
//! * [`Predicate::possible`] — the node-level *pruning* test: given the MBR of
//!   an R-tree node, can **any** rectangle enclosed in it satisfy the
//!   predicate against the window `b`? This is what `find best value`
//!   (Fig. 5 of the paper) and the systematic algorithms use to decide
//!   whether to descend into a subtree.
//!
//! `possible` must never produce false negatives (it is an *admissible*
//! filter); false positives merely cost extra node visits. This soundness
//! property is checked by property-based tests.

use crate::Rect;
use std::fmt;

/// A binary spatial predicate `a P b` between two MBRs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Predicate {
    /// `a` and `b` share at least one point (overlap / non-disjoint); the
    /// paper's default join condition.
    Intersects,
    /// `a` entirely contains `b`.
    Contains,
    /// `a` lies entirely inside `b`.
    Inside,
    /// `a` lies strictly to the north-east of `b`: every point of `a`
    /// dominates every point of `b` in both coordinates.
    NorthEast,
    /// `a` lies strictly to the south-west of `b` (transpose of
    /// [`Predicate::NorthEast`]).
    SouthWest,
    /// The minimum distance between `a` and `b` is at most the given ε
    /// (the paper's *near* predicate).
    WithinDistance(f64),
}

impl Predicate {
    /// Evaluates the predicate between two object MBRs.
    #[inline]
    pub fn eval(&self, a: &Rect, b: &Rect) -> bool {
        match *self {
            Predicate::Intersects => a.intersects(b),
            Predicate::Contains => a.contains(b),
            Predicate::Inside => b.contains(a),
            Predicate::NorthEast => a.min.x >= b.max.x && a.min.y >= b.max.y,
            Predicate::SouthWest => a.max.x <= b.min.x && a.max.y <= b.min.y,
            Predicate::WithinDistance(eps) => a.min_distance_sq(b) <= eps * eps,
        }
    }

    /// Node-level pruning test: returns `true` if some rectangle enclosed in
    /// `node` **could** satisfy `self` against the window `b`.
    ///
    /// Admissibility: for every `r` with `node.contains(&r)`, if
    /// `self.eval(&r, b)` then `self.possible(node, b)`.
    #[inline]
    pub fn possible(&self, node: &Rect, b: &Rect) -> bool {
        match *self {
            Predicate::Intersects => node.intersects(b),
            // A candidate containing b must itself be covered by the node MBR,
            // so the node MBR must cover b.
            Predicate::Contains => node.contains(b),
            // A candidate inside b is also inside the node MBR, so the two
            // must share at least a point.
            Predicate::Inside => node.intersects(b),
            // Some sub-rectangle of the node can sit NE of b iff the node
            // reaches at least as far NE as b's upper-right corner.
            Predicate::NorthEast => node.max.x >= b.max.x && node.max.y >= b.max.y,
            Predicate::SouthWest => node.min.x <= b.min.x && node.min.y <= b.min.y,
            Predicate::WithinDistance(eps) => node.min_distance_sq(b) <= eps * eps,
        }
    }

    /// The predicate as seen from the other operand: `a P b  ⇔  b P' a`.
    ///
    /// Query graphs store each edge once; when an algorithm evaluates the
    /// edge from the opposite endpoint it uses the transposed predicate.
    #[inline]
    pub fn transpose(&self) -> Predicate {
        match *self {
            Predicate::Intersects => Predicate::Intersects,
            Predicate::Contains => Predicate::Inside,
            Predicate::Inside => Predicate::Contains,
            Predicate::NorthEast => Predicate::SouthWest,
            Predicate::SouthWest => Predicate::NorthEast,
            Predicate::WithinDistance(eps) => Predicate::WithinDistance(eps),
        }
    }

    /// Returns `true` if the predicate is symmetric (`transpose == self`).
    #[inline]
    pub fn is_symmetric(&self) -> bool {
        matches!(self, Predicate::Intersects | Predicate::WithinDistance(_))
    }
}

impl Default for Predicate {
    /// The paper's standard join condition.
    fn default() -> Self {
        Predicate::Intersects
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Predicate::Intersects => write!(f, "intersects"),
            Predicate::Contains => write!(f, "contains"),
            Predicate::Inside => write!(f, "inside"),
            Predicate::NorthEast => write!(f, "northeast"),
            Predicate::SouthWest => write!(f, "southwest"),
            Predicate::WithinDistance(eps) => write!(f, "within({eps})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x1: f64, y1: f64, x2: f64, y2: f64) -> Rect {
        Rect::new(x1, y1, x2, y2)
    }

    const ALL: [Predicate; 6] = [
        Predicate::Intersects,
        Predicate::Contains,
        Predicate::Inside,
        Predicate::NorthEast,
        Predicate::SouthWest,
        Predicate::WithinDistance(0.3),
    ];

    #[test]
    fn intersects_matches_rect_test() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(0.5, 0.5, 2.0, 2.0);
        let c = r(3.0, 3.0, 4.0, 4.0);
        assert!(Predicate::Intersects.eval(&a, &b));
        assert!(!Predicate::Intersects.eval(&a, &c));
    }

    #[test]
    fn contains_and_inside_are_transposes() {
        let big = r(0.0, 0.0, 10.0, 10.0);
        let small = r(1.0, 1.0, 2.0, 2.0);
        assert!(Predicate::Contains.eval(&big, &small));
        assert!(!Predicate::Contains.eval(&small, &big));
        assert!(Predicate::Inside.eval(&small, &big));
        assert!(!Predicate::Inside.eval(&big, &small));
    }

    #[test]
    fn northeast_semantics() {
        let b = r(0.0, 0.0, 1.0, 1.0);
        let ne = r(2.0, 2.0, 3.0, 3.0);
        let touching = r(1.0, 1.0, 2.0, 2.0);
        let east_only = r(2.0, 0.0, 3.0, 1.0);
        assert!(Predicate::NorthEast.eval(&ne, &b));
        assert!(Predicate::NorthEast.eval(&touching, &b));
        assert!(!Predicate::NorthEast.eval(&east_only, &b));
        assert!(Predicate::SouthWest.eval(&b, &ne));
    }

    #[test]
    fn within_distance_semantics() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(2.0, 1.0, 3.0, 2.0); // gap of 1.0 in x
        assert!(Predicate::WithinDistance(1.0).eval(&a, &b));
        assert!(!Predicate::WithinDistance(0.5).eval(&a, &b));
        // Intersecting rects are within any non-negative distance.
        assert!(Predicate::WithinDistance(0.0).eval(&a, &r(0.5, 0.5, 2.0, 2.0)));
    }

    #[test]
    fn transpose_is_involutive() {
        for p in ALL {
            assert_eq!(p.transpose().transpose(), p);
        }
    }

    #[test]
    fn transpose_swaps_operands() {
        let pairs = [
            (r(0.0, 0.0, 4.0, 4.0), r(1.0, 1.0, 2.0, 2.0)),
            (r(2.0, 2.0, 3.0, 3.0), r(0.0, 0.0, 1.0, 1.0)),
            (r(0.0, 0.0, 1.0, 1.0), r(0.5, 0.5, 1.5, 1.5)),
            (r(5.0, 5.0, 6.0, 6.0), r(0.0, 0.0, 1.0, 1.0)),
        ];
        for p in ALL {
            for (a, b) in &pairs {
                assert_eq!(
                    p.eval(a, b),
                    p.transpose().eval(b, a),
                    "predicate {p} on {a} / {b}"
                );
            }
        }
    }

    #[test]
    fn symmetric_predicates() {
        assert!(Predicate::Intersects.is_symmetric());
        assert!(Predicate::WithinDistance(1.0).is_symmetric());
        assert!(!Predicate::Contains.is_symmetric());
        assert!(!Predicate::NorthEast.is_symmetric());
    }

    #[test]
    fn possible_is_weaker_than_eval_on_self() {
        // If the object itself satisfies the predicate, a node MBR equal to
        // the object must pass the pruning test.
        let windows = [r(0.0, 0.0, 1.0, 1.0), r(2.0, 2.0, 3.0, 3.0)];
        let objs = [
            r(0.5, 0.5, 2.5, 2.5),
            r(1.5, 1.5, 1.75, 1.75),
            r(3.0, 3.0, 4.0, 4.0),
        ];
        for p in ALL {
            for w in &windows {
                for o in &objs {
                    if p.eval(o, w) {
                        assert!(p.possible(o, w), "{p}: eval true but possible false");
                    }
                }
            }
        }
    }

    #[test]
    fn default_is_intersects() {
        assert_eq!(Predicate::default(), Predicate::Intersects);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_rect() -> impl Strategy<Value = Rect> {
        (0.0f64..1.0, 0.0f64..1.0, 0.0f64..0.5, 0.0f64..0.5)
            .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
    }

    fn arb_pred() -> impl Strategy<Value = Predicate> {
        prop_oneof![
            Just(Predicate::Intersects),
            Just(Predicate::Contains),
            Just(Predicate::Inside),
            Just(Predicate::NorthEast),
            Just(Predicate::SouthWest),
            (0.0f64..0.5).prop_map(Predicate::WithinDistance),
        ]
    }

    proptest! {
        /// Admissibility of the pruning test: any object inside a node that
        /// satisfies the predicate forces `possible(node, b)` to hold.
        #[test]
        fn possible_is_admissible(
            p in arb_pred(),
            obj in arb_rect(),
            window in arb_rect(),
            grow in 0.0f64..0.3,
        ) {
            let node = obj.inflate(grow); // any node MBR enclosing obj
            if p.eval(&obj, &window) {
                prop_assert!(p.possible(&node, &window));
            }
        }

        /// `a P b` iff `b P' a` for random rectangles.
        #[test]
        fn transpose_consistency(p in arb_pred(), a in arb_rect(), b in arb_rect()) {
            prop_assert_eq!(p.eval(&a, &b), p.transpose().eval(&b, &a));
        }

        /// Intersection is symmetric and agrees with overlap area.
        #[test]
        fn intersects_agrees_with_overlap_area(a in arb_rect(), b in arb_rect()) {
            prop_assert_eq!(a.intersects(&b), b.intersects(&a));
            if a.overlap_area(&b) > 0.0 {
                prop_assert!(a.intersects(&b));
            }
        }

        /// Union contains both operands; intersection is contained in both.
        #[test]
        fn union_intersection_lattice(a in arb_rect(), b in arb_rect()) {
            let u = a.union(&b);
            prop_assert!(u.contains(&a) && u.contains(&b));
            let i = a.intersection(&b);
            if !i.is_empty() {
                prop_assert!(a.contains(&i) && b.contains(&i));
            }
        }
    }
}
