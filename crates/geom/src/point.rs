//! 2D points.

use std::fmt;

/// A point in the 2D workspace.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (avoids the square root when
    /// only comparisons are needed, e.g. in k-NN search).
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Component-wise minimum of two points.
    #[inline]
    pub fn min(&self, other: &Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum of two points.
    #[inline]
    pub fn max(&self, other: &Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Returns `true` if both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.5, -2.0);
        let b = Point::new(-0.5, 7.25);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn min_max_are_componentwise() {
        let a = Point::new(1.0, 5.0);
        let b = Point::new(2.0, 3.0);
        assert_eq!(a.min(&b), Point::new(1.0, 3.0));
        assert_eq!(a.max(&b), Point::new(2.0, 5.0));
    }

    #[test]
    fn from_tuple() {
        let p: Point = (0.25, 0.75).into();
        assert_eq!(p, Point::new(0.25, 0.75));
    }

    #[test]
    fn finite_check() {
        assert!(Point::new(0.0, 1.0).is_finite());
        assert!(!Point::new(f64::NAN, 1.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn display_formats_coordinates() {
        assert_eq!(Point::new(0.5, 1.0).to_string(), "(0.5, 1)");
    }
}
