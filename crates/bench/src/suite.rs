//! The pinned benchmark suite behind `mwsj bench snapshot`.
//!
//! A fixed set of seeded workloads (chain and clique queries at two
//! densities) is run through ILS, GILS, SEA and the two-step pipeline
//! under **step budgets**, so every work counter — steps, node accesses,
//! restarts, improvements — is bit-identical across machines and runs.
//! Each algorithm is repeated `reps` times to estimate wall-clock noise;
//! the repetitions must agree on every deterministic counter (the runner
//! fails otherwise, since that would mean the algorithms themselves are
//! non-deterministic) and the anytime curve of the median-wall repetition
//! is recorded together with per-phase timer breakdowns.
//!
//! The result is a [`BenchSnapshot`] — the schema-validated
//! `BENCH_<label>.json` format that `mwsj bench compare` gates CI with.

use crate::Algo;
use mwsj_core::{
    BackendKind, CacheStats, IlsConfig, Instance, LeafLayout, RunStats, SearchBudget,
    SearchContext, TracePoint, TwoStep, TwoStepConfig,
};
use mwsj_datagen::{Distribution, QueryShape, WorkloadSpec};
use mwsj_obs::snapshot::AlgoRecord;
use mwsj_obs::{
    AnytimeCurve, BenchSnapshot, CacheRecord, ExplainRecord, InstanceRecord, MemoryRecord,
    ObsHandle, PhaseSnapshot, ResourceReport,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Default number of wall-clock repetitions per algorithm.
pub const DEFAULT_REPS: usize = 3;

/// Step budget for ILS/GILS (one step = one `find best value` call).
const LOCAL_SEARCH_STEPS: u64 = 3_000;
/// Step budget for SEA (one step = one generation).
const SEA_STEPS: u64 = 120;
/// Step budget of the two-step pipeline's ILS heuristic.
const TWO_STEP_HEURISTIC_STEPS: u64 = 1_000;
/// Step budget of the two-step pipeline's systematic IBB phase.
const TWO_STEP_IBB_STEPS: u64 = 2_000;
/// RNG seed every suite run uses (fixed: the suite measures code, not
/// seeds).
const RUN_SEED: u64 = 7;

/// Large-tier step budget for ILS/GILS: scaled up so the planted optimum
/// stays reachable at N = 10⁴–10⁵ objects per variable.
const LARGE_LOCAL_SEARCH_STEPS: u64 = 8_000;
/// Large-tier SEA generations.
const LARGE_SEA_STEPS: u64 = 60;
/// Large-tier two-step heuristic budget.
const LARGE_TWO_STEP_HEURISTIC_STEPS: u64 = 2_000;
/// Large-tier two-step systematic (IBB) budget.
const LARGE_TWO_STEP_IBB_STEPS: u64 = 3_000;

/// Per-tier step budgets handed to [`run_once`].
#[derive(Debug, Clone, Copy)]
struct TierBudgets {
    local_search: u64,
    sea: u64,
    two_step_heuristic: u64,
    two_step_ibb: u64,
}

/// The pinned suite tiers behind `mwsj bench snapshot --tier`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BenchTier {
    /// The original toy-scale suite (n = 4, 200 objects/dataset) —
    /// `BENCH_baseline.json`.
    #[default]
    Base,
    /// Paper-scale workloads (N = 10⁴–10⁵ objects, n up to 10, all five
    /// query shapes) — `BENCH_large.json`. Adds an entry-layout ILS
    /// A/B record so node-access parity and the flat-leaf wall-time win
    /// are visible in the snapshot itself.
    Large,
}

impl BenchTier {
    /// All tiers, in definition order.
    pub const ALL: [BenchTier; 2] = [BenchTier::Base, BenchTier::Large];

    /// CLI name (`--tier base|large`).
    pub fn name(&self) -> &'static str {
        match self {
            BenchTier::Base => "base",
            BenchTier::Large => "large",
        }
    }

    /// Parses a CLI tier name.
    pub fn parse(s: &str) -> Option<BenchTier> {
        match s {
            "base" => Some(BenchTier::Base),
            "large" => Some(BenchTier::Large),
            _ => None,
        }
    }

    /// The tier's pinned workloads.
    pub fn suite(&self) -> Vec<SuiteCase> {
        match self {
            BenchTier::Base => pinned_suite(),
            BenchTier::Large => pinned_suite_large(),
        }
    }

    /// The algorithms the tier snapshots, in record order.
    pub fn algos(&self) -> Vec<SuiteAlgo> {
        match self {
            BenchTier::Base => SuiteAlgo::ALL.to_vec(),
            BenchTier::Large => vec![
                SuiteAlgo::Ils,
                SuiteAlgo::IlsEntryLayout,
                SuiteAlgo::IlsGrid,
                SuiteAlgo::Gils,
                SuiteAlgo::Sea,
                SuiteAlgo::TwoStep,
            ],
        }
    }

    fn budgets(&self) -> TierBudgets {
        match self {
            BenchTier::Base => TierBudgets {
                local_search: LOCAL_SEARCH_STEPS,
                sea: SEA_STEPS,
                two_step_heuristic: TWO_STEP_HEURISTIC_STEPS,
                two_step_ibb: TWO_STEP_IBB_STEPS,
            },
            BenchTier::Large => TierBudgets {
                local_search: LARGE_LOCAL_SEARCH_STEPS,
                sea: LARGE_SEA_STEPS,
                two_step_heuristic: LARGE_TWO_STEP_HEURISTIC_STEPS,
                two_step_ibb: LARGE_TWO_STEP_IBB_STEPS,
            },
        }
    }
}

/// One pinned suite workload.
#[derive(Debug, Clone)]
pub struct SuiteCase {
    /// Stable instance name used in snapshots and compare reports.
    pub name: &'static str,
    /// The seeded workload description.
    pub spec: WorkloadSpec,
}

/// The pinned suite: chain and clique shapes, each at the hard-region
/// density (one expected solution, with one planted so similarity 1 is
/// reachable and time-to-τ=1 is well defined) and at an easier density
/// (four expected solutions).
pub fn pinned_suite() -> Vec<SuiteCase> {
    let case = |name, shape, target_solutions, plant, seed| SuiteCase {
        name,
        spec: WorkloadSpec {
            shape,
            n_vars: 4,
            cardinality: 200,
            target_solutions,
            plant,
            distribution: Distribution::Uniform,
            seed,
        },
    };
    vec![
        case("chain-n4-hard", QueryShape::Chain, 1.0, true, 101),
        case("chain-n4-easy", QueryShape::Chain, 4.0, false, 102),
        case("clique-n4-hard", QueryShape::Clique, 1.0, true, 103),
        case("clique-n4-easy", QueryShape::Clique, 4.0, false, 104),
    ]
}

/// The large tier: paper-scale pinned workloads — N = 10⁴–10⁵ objects per
/// dataset, n up to 10, all five query shapes, every instance at the
/// hard-region density with one solution planted (τ = 1 reachable, so
/// time-to-τ stays well defined at scale).
pub fn pinned_suite_large() -> Vec<SuiteCase> {
    let case = |name, shape, n_vars, cardinality, seed| SuiteCase {
        name,
        spec: WorkloadSpec {
            shape,
            n_vars,
            cardinality,
            target_solutions: 1.0,
            plant: true,
            distribution: Distribution::Uniform,
            seed,
        },
    };
    let mut cases = vec![
        case("chain-n8-hard", QueryShape::Chain, 8, 10_000, 201),
        case("chain-n10-hard", QueryShape::Chain, 10, 10_000, 202),
        case("star-n8-hard", QueryShape::Star, 8, 10_000, 203),
        case("cycle-n8-hard", QueryShape::Cycle, 8, 10_000, 204),
        case("clique-n6-hard", QueryShape::Clique, 6, 10_000, 205),
        case("random-n10-hard", QueryShape::Random, 10, 10_000, 206),
        case("chain-n6-100k", QueryShape::Chain, 6, 100_000, 207),
    ];
    // Zipf-clustered skew case: a few dense hot-spots stress the uniform
    // grid's occupancy balance in the grid-vs-R*-tree A/B record.
    cases.push(SuiteCase {
        name: "chain-n6-zipf",
        spec: WorkloadSpec {
            shape: QueryShape::Chain,
            n_vars: 6,
            cardinality: 10_000,
            target_solutions: 1.0,
            plant: true,
            distribution: Distribution::ZipfClustered {
                clusters: 16,
                sigma: 0.02,
                exponent: 1.1,
            },
            seed: 208,
        },
    });
    cases
}

/// The algorithms the suite measures, in snapshot order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteAlgo {
    /// Indexed local search under the tier's local-search budget.
    Ils,
    /// ILS forced onto the reference entry leaf layout
    /// ([`LeafLayout::Entry`]) — the large tier's A/B record: its
    /// deterministic counters must equal the `ILS` record's exactly
    /// (node-access parity), while its wall time shows what the flat
    /// layout buys.
    IlsEntryLayout,
    /// ILS on the uniform-grid backend ([`BackendKind::Grid`]) — the
    /// large tier's backend A/B record: its solution quality
    /// (`best_violations`, `best_similarity`) must equal the `ILS`
    /// record's exactly (backend equivalence, gated in CI). Trajectory
    /// counters may differ: the backends break score ties differently,
    /// and `node_accesses` counts candidate cells, not R*-tree nodes.
    IlsGrid,
    /// Guided indexed local search under the tier's local-search budget.
    Gils,
    /// Spatial evolutionary algorithm under the tier's generation budget.
    Sea,
    /// ILS heuristic + systematic IBB (§6 two-step processing).
    TwoStep,
}

impl SuiteAlgo {
    /// The base tier's algorithms, in snapshot order.
    pub const ALL: [SuiteAlgo; 4] = [
        SuiteAlgo::Ils,
        SuiteAlgo::Gils,
        SuiteAlgo::Sea,
        SuiteAlgo::TwoStep,
    ];

    /// Display/snapshot name.
    pub fn name(&self) -> &'static str {
        match self {
            SuiteAlgo::Ils => "ILS",
            SuiteAlgo::IlsEntryLayout => "ILS-entry-layout",
            SuiteAlgo::IlsGrid => "ILS-grid",
            SuiteAlgo::Gils => "GILS",
            SuiteAlgo::Sea => "SEA",
            SuiteAlgo::TwoStep => "two-step",
        }
    }
}

/// The outcome of one suite run an [`AlgoRecord`] is distilled from.
struct SuiteRun {
    stats: RunStats,
    best_violations: usize,
    best_similarity: f64,
    trace: Vec<TracePoint>,
    phases: Vec<PhaseSnapshot>,
}

fn run_once(algo: SuiteAlgo, instance: &Instance, budgets: TierBudgets) -> SuiteRun {
    let mut rng = StdRng::seed_from_u64(RUN_SEED);
    let obs = ObsHandle::timer_only();
    match algo {
        SuiteAlgo::Ils
        | SuiteAlgo::IlsEntryLayout
        | SuiteAlgo::IlsGrid
        | SuiteAlgo::Gils
        | SuiteAlgo::Sea => {
            let (runner, steps) = match algo {
                SuiteAlgo::Ils | SuiteAlgo::IlsEntryLayout | SuiteAlgo::IlsGrid => {
                    (Algo::Ils, budgets.local_search)
                }
                SuiteAlgo::Gils => (Algo::Gils, budgets.local_search),
                _ => (Algo::Sea, budgets.sea),
            };
            // The A/B records run the same search over the reference
            // entry layout / the grid backend; a shallow clone retargets
            // the kernel (the Arc'd datasets are shared, not copied).
            let ab_instance;
            let instance = match algo {
                SuiteAlgo::IlsEntryLayout => {
                    ab_instance = instance.clone().with_leaf_layout(LeafLayout::Entry);
                    &ab_instance
                }
                SuiteAlgo::IlsGrid => {
                    ab_instance = instance.clone().with_backend(BackendKind::Grid);
                    &ab_instance
                }
                _ => instance,
            };
            let ctx = SearchContext::local(SearchBudget::iterations(steps)).with_obs(obs.clone());
            let outcome = runner.search(instance, &ctx, &mut rng);
            SuiteRun {
                stats: outcome.stats,
                best_violations: outcome.best_violations,
                best_similarity: outcome.best_similarity,
                trace: outcome.trace,
                phases: obs.timer.snapshot(),
            }
        }
        SuiteAlgo::TwoStep => {
            let pipeline = TwoStep::new(TwoStepConfig::Ils(
                IlsConfig::default(),
                SearchBudget::iterations(budgets.two_step_heuristic),
            ));
            let outcome = pipeline.run_with_obs(
                instance,
                &SearchBudget::iterations(budgets.two_step_ibb),
                &mut rng,
                &obs,
            );
            // Concatenate the phases' traces into one pipeline-level anytime
            // curve: systematic trace points are shifted by the heuristic's
            // consumed steps/time, and non-improving points (IBB starts from
            // the heuristic's incumbent) fold away in the curve.
            let mut trace = outcome.heuristic.trace.clone();
            if let Some(sys) = &outcome.systematic {
                let (dt, ds) = (
                    outcome.heuristic.stats.elapsed,
                    outcome.heuristic.stats.steps,
                );
                trace.extend(sys.trace.iter().map(|p| TracePoint {
                    elapsed: p.elapsed + dt,
                    step: p.step + ds,
                    similarity: p.similarity,
                }));
            }
            SuiteRun {
                stats: outcome.total_stats(),
                best_violations: outcome.best.best_violations,
                best_similarity: outcome.best.best_similarity,
                trace,
                phases: obs.timer.snapshot(),
            }
        }
    }
}

fn counters_of(run: &SuiteRun) -> Vec<(String, u64)> {
    vec![
        ("steps".into(), run.stats.steps),
        ("node_accesses".into(), run.stats.node_accesses),
        ("restarts".into(), run.stats.restarts),
        ("local_maxima".into(), run.stats.local_maxima),
        ("improvements".into(), run.stats.improvements),
        ("best_violations".into(), run.best_violations as u64),
    ]
}

/// Builds an [`AnytimeCurve`] from a run's convergence trace and totals.
pub fn curve_from_trace(trace: &[TracePoint], stats: &RunStats) -> AnytimeCurve {
    let mut curve = AnytimeCurve::new();
    for p in trace {
        curve.record(p.step, p.elapsed.as_secs_f64() * 1000.0, p.similarity);
    }
    curve.set_totals(
        stats.steps,
        stats.node_accesses,
        stats.elapsed.as_secs_f64() * 1000.0,
    );
    curve
}

fn measure(
    algo: SuiteAlgo,
    instance: &Instance,
    budgets: TierBudgets,
    reps: usize,
) -> Result<(AlgoRecord, CacheStats), String> {
    let runs: Vec<SuiteRun> = (0..reps.max(1))
        .map(|_| run_once(algo, instance, budgets))
        .collect();

    // Every repetition re-runs the same seeded search under a step budget:
    // any counter disagreement is a determinism bug, not noise. The
    // window-cache telemetry obeys the same contract.
    let expected = counters_of(&runs[0]);
    for (rep, run) in runs.iter().enumerate().skip(1) {
        let got = counters_of(run);
        if got != expected {
            return Err(format!(
                "{}: deterministic counters diverged between rep 0 ({expected:?}) and rep {rep} ({got:?})",
                algo.name()
            ));
        }
        if run.stats.cache != runs[0].stats.cache {
            return Err(format!(
                "{}: cache telemetry diverged between rep 0 and rep {rep}",
                algo.name()
            ));
        }
    }

    let wall_ms_reps: Vec<f64> = runs
        .iter()
        .map(|r| r.stats.elapsed.as_secs_f64() * 1000.0)
        .collect();
    // The curve and phase breakdown come from the median-wall repetition
    // (lower median for even rep counts) — the most representative timing.
    let mut order: Vec<usize> = (0..runs.len()).collect();
    order.sort_by(|&a, &b| {
        wall_ms_reps[a]
            .partial_cmp(&wall_ms_reps[b])
            .expect("finite wall times")
    });
    let median_rep = &runs[order[order.len() / 2]];
    let curve = curve_from_trace(&median_rep.trace, &median_rep.stats);

    let record = AlgoRecord::from_curve(
        algo.name(),
        expected,
        median_rep.best_similarity,
        &curve,
        wall_ms_reps,
        median_rep.phases.clone(),
    );
    Ok((record, runs[0].stats.cache.clone()))
}

/// Runs the base-tier pinned suite ([`BenchTier::Base`]) and assembles
/// the snapshot. See [`run_suite`].
pub fn run_pinned_suite(
    label: &str,
    reps: usize,
    progress: impl FnMut(&str, &str),
) -> Result<BenchSnapshot, String> {
    run_suite(BenchTier::Base, label, reps, progress)
}

/// Runs one tier's pinned suite and assembles the snapshot. `reps` is the
/// number of wall-clock repetitions per algorithm (clamped to ≥ 1).
/// `progress` is called once per (instance, algorithm) before it runs,
/// for CLI progress output.
pub fn run_suite(
    tier: BenchTier,
    label: &str,
    reps: usize,
    mut progress: impl FnMut(&str, &str),
) -> Result<BenchSnapshot, String> {
    let budgets = tier.budgets();
    let mut instances = Vec::new();
    let mut memory = Vec::new();
    let mut cache = Vec::new();
    let mut explain = Vec::new();
    for case in tier.suite() {
        let workload = case.spec.generate();
        let instance =
            Instance::new(workload.graph, workload.datasets).map_err(|e| format!("{e:?}"))?;
        // The memory table is a property of the built instance alone:
        // deterministic bytes per resident structure (length-based, so
        // identical on every machine and every run).
        let mut report = ResourceReport::new();
        instance.fill_resource_report(&mut report);
        memory.push(MemoryRecord {
            instance: case.name.to_string(),
            components: report.components().to_vec(),
            total_bytes: report.total_bytes(),
        });
        // The explain table is likewise a pure function of the pinned
        // instance: the pre-run estimate side only (selectivity models,
        // tree quality, predicted accesses), so `bench compare` can gate
        // it exactly across machines.
        explain.push(ExplainRecord {
            instance: case.name.to_string(),
            report: mwsj_core::build_explain_report(&instance),
        });
        let mut algos = Vec::new();
        for algo in tier.algos() {
            progress(case.name, algo.name());
            let (record, cache_stats) = measure(algo, &instance, budgets, reps)?;
            cache.push(CacheRecord {
                instance: case.name.to_string(),
                algo: algo.name().to_string(),
                hits: cache_stats.hits(),
                misses: cache_stats.misses(),
                invalidations_reassign: cache_stats.invalidations_reassign(),
                invalidations_penalty: cache_stats.invalidations_penalty(),
                bytes: cache_stats.bytes,
            });
            algos.push(record);
        }
        instances.push(InstanceRecord {
            name: case.name.to_string(),
            shape: case.spec.shape.name().to_string(),
            n_vars: case.spec.n_vars as u64,
            cardinality: case.spec.cardinality as u64,
            seed: case.spec.seed,
            algos,
        });
    }
    Ok(BenchSnapshot {
        label: label.to_string(),
        reps: reps.max(1) as u64,
        instances,
        memory,
        cache,
        explain,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_pinned() {
        let suite = pinned_suite();
        assert_eq!(suite.len(), 4);
        let names: Vec<&str> = suite.iter().map(|c| c.name).collect();
        assert_eq!(
            names,
            vec![
                "chain-n4-hard",
                "chain-n4-easy",
                "clique-n4-hard",
                "clique-n4-easy"
            ]
        );
        // Hard instances plant a solution so τ = 1 is reachable.
        assert!(suite
            .iter()
            .all(|c| c.spec.plant == c.name.ends_with("hard")));
        // Specs regenerate identical workloads (seeded).
        let a = suite[0].spec.generate();
        let b = suite[0].spec.generate();
        assert_eq!(a.datasets[0].rects(), b.datasets[0].rects());
    }

    #[test]
    fn every_tier_case_name_is_a_truthful_suite_key() {
        // Snapshot tooling groups and validates records through
        // `mwsj_obs::SuiteKey`; a case whose name contradicts its spec
        // would fail every future `bench compare`.
        for tier in BenchTier::ALL {
            for case in tier.suite() {
                let key = mwsj_obs::SuiteKey::parse(case.name)
                    .unwrap_or_else(|| panic!("{}: not a valid suite key", case.name));
                assert_eq!(key.n_vars as usize, case.spec.n_vars, "{}", case.name);
                assert_eq!(key.shape, case.spec.shape.name(), "{}", case.name);
            }
        }
    }

    #[test]
    fn curve_from_trace_uses_run_totals() {
        use std::time::Duration;
        let trace = vec![
            TracePoint {
                elapsed: Duration::ZERO,
                step: 0,
                similarity: 0.5,
            },
            TracePoint {
                elapsed: Duration::from_millis(5),
                step: 50,
                similarity: 1.0,
            },
        ];
        let stats = RunStats {
            elapsed: Duration::from_millis(10),
            steps: 100,
            node_accesses: 400,
            ..RunStats::default()
        };
        let curve = curve_from_trace(&trace, &stats);
        assert_eq!(curve.total_steps(), 100);
        assert_eq!(curve.total_node_accesses(), 400);
        assert!((curve.auc_steps() - 0.75).abs() < 1e-12);
    }

    /// One full (small-rep) suite run: deterministic counters repeat, the
    /// snapshot round-trips through its JSON schema, and the ILS records
    /// carry non-trivial curves.
    #[test]
    fn suite_runs_and_snapshot_round_trips() {
        let snap = run_pinned_suite("test", 2, |_, _| {}).expect("suite runs");
        assert_eq!(snap.instances.len(), 4);
        assert_eq!(snap.algo_records(), 16);
        for inst in &snap.instances {
            for algo in &inst.algos {
                assert!(algo.counter("steps").unwrap() > 0, "{}", algo.algo);
                assert!(!algo.curve.is_empty(), "{}/{}", inst.name, algo.algo);
                assert!(!algo.phases.is_empty(), "{}/{}", inst.name, algo.algo);
                assert_eq!(algo.wall_ms_reps.len(), 2);
            }
        }
        // Memory section: one deterministic table per instance, with the
        // per-variable index components present.
        assert_eq!(snap.memory.len(), 4);
        for mem in &snap.memory {
            assert_eq!(mem.components.len(), 12, "{}", mem.instance); // 3 per var × 4 vars
            assert!(mem.total_bytes > 0);
            assert_eq!(
                mem.total_bytes,
                mem.components.iter().map(|(_, b)| b).sum::<u64>()
            );
        }
        // Cache section: one record per (instance, algo); the local-search
        // algorithms must show real cache traffic.
        assert_eq!(snap.cache.len(), 16);
        for rec in snap.cache.iter().filter(|r| r.algo == "ILS") {
            assert!(rec.hits > 0, "{}/ILS no cache hits", rec.instance);
            assert!(rec.misses > 0, "{}/ILS no cache misses", rec.instance);
            assert!(rec.bytes > 0, "{}/ILS no cache bytes", rec.instance);
        }
        // Explain section: one estimate-only report per instance, with
        // every base-tier edge observed (N=200 is under the pair budget).
        assert_eq!(snap.explain.len(), 4);
        for rec in &snap.explain {
            assert!(!rec.report.has_observed(), "{}", rec.instance);
            assert!(rec.report.expected_solutions > 0.0, "{}", rec.instance);
            assert!(
                rec.report
                    .edges
                    .iter()
                    .all(|e| e.observed_selectivity.is_some()),
                "{}",
                rec.instance
            );
        }

        let text = snap.to_string_pretty();
        let parsed = BenchSnapshot::parse(&text).expect("snapshot validates");
        assert_eq!(parsed, snap);

        // Running again reproduces every deterministic field.
        let again = run_pinned_suite("test", 1, |_, _| {}).expect("suite runs");
        for (a, b) in snap.instances.iter().zip(&again.instances) {
            for (ra, rb) in a.algos.iter().zip(&b.algos) {
                assert_eq!(ra.counters, rb.counters, "{}/{}", a.name, ra.algo);
                assert_eq!(ra.best_similarity, rb.best_similarity);
                assert_eq!(ra.auc_steps, rb.auc_steps);
                assert_eq!(ra.steps_to, rb.steps_to);
            }
        }
        assert_eq!(snap.memory, again.memory);
        assert_eq!(snap.cache, again.cache);
        assert_eq!(snap.explain, again.explain);
    }
}
