//! Streaming metrics recorder for the experiment harness.
//!
//! Every experiment `main` records its individual algorithm runs to
//! `results/<experiment>.metrics.jsonl` in the same JSONL run-event schema
//! the CLI's `--metrics-out` produces (see `DESIGN.md` "Observability"),
//! so figure runs can be post-processed with `mwsj report` or any JSONL
//! tool. The library entry points (`run`/`run_shape`) used by tests take a
//! disabled recorder and write nothing.

use crate::Algo;
use mwsj_core::{Instance, JsonlSink, ObsHandle, RunOutcome, SearchBudget, SearchContext};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;

/// Records experiment runs as JSONL run events plus one aggregate
/// metrics/phases snapshot per experiment.
#[derive(Debug)]
pub struct Recorder {
    obs: ObsHandle,
    path: Option<PathBuf>,
}

impl Recorder {
    /// A recorder streaming to `results/<experiment>.metrics.jsonl`. Falls
    /// back to a disabled recorder (with a warning) when the file cannot
    /// be created — observability must never fail an experiment.
    pub fn create(experiment: &str) -> Recorder {
        let name = format!("{experiment}.metrics.jsonl");
        match crate::io::results_file(&name).and_then(|path| {
            let sink = JsonlSink::create(&path)?;
            Ok((path, sink))
        }) {
            Ok((path, sink)) => Recorder {
                obs: ObsHandle::enabled().with_sink(Arc::new(sink)),
                path: Some(path),
            },
            Err(e) => {
                eprintln!("warning: cannot record {name}: {e}");
                Recorder::disabled()
            }
        }
    }

    /// A recorder that collects and writes nothing (used by the library
    /// entry points exercised in tests).
    pub fn disabled() -> Recorder {
        Recorder {
            obs: ObsHandle::disabled(),
            path: None,
        }
    }

    /// The observability handle to thread into algorithm runs.
    pub fn obs(&self) -> &ObsHandle {
        &self.obs
    }

    /// Emits a `run_start` event for one upcoming algorithm run.
    pub fn start(&self, algo: &str, instance: &Instance, budget: &SearchBudget, seed: u64) {
        self.obs.emit(mwsj_core::RunEvent::RunStart {
            algo: algo.to_string(),
            n_vars: instance.n_vars() as u64,
            edges: instance.graph().edge_count() as u64,
            restarts: 1,
            threads: 1,
            seed,
            budget_steps: budget.max_steps,
            budget_secs: budget.time_limit.map(|d| d.as_secs_f64()),
        });
    }

    /// Emits the matching `run_end` event.
    pub fn end(&self, outcome: &RunOutcome) {
        self.obs.emit(mwsj_core::RunEvent::RunEnd {
            best_violations: outcome.best_violations as u64,
            best_similarity: outcome.best_similarity,
            steps: outcome.stats.steps,
            node_accesses: outcome.stats.node_accesses,
            local_maxima: outcome.stats.local_maxima,
            improvements: outcome.stats.improvements,
            restarts: outcome.stats.restarts,
            elapsed_secs: outcome.stats.elapsed.as_secs_f64(),
            proven_optimal: outcome.proven_optimal,
        });
    }

    /// Runs `algo` with run-start/end events and full instrumentation.
    pub fn run(
        &self,
        algo: Algo,
        instance: &Instance,
        budget: &SearchBudget,
        seed: u64,
    ) -> RunOutcome {
        self.start(algo.name(), instance, budget, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        // Nested: the recorder owns the `run_start`/`run_end` pair, so the
        // driver must not emit its own `run_end`.
        let ctx = SearchContext::local(*budget)
            .with_obs(self.obs.clone())
            .nested();
        let outcome = algo.search(instance, &ctx, &mut rng);
        self.end(&outcome);
        outcome
    }

    /// Freezes the experiment-wide metrics/phase aggregates into the file
    /// and returns its path (when recording was active).
    pub fn finish(self) -> Option<PathBuf> {
        self.obs.emit(mwsj_core::RunEvent::Metrics {
            snapshot: self.obs.metrics.snapshot(),
        });
        self.obs.emit(mwsj_core::RunEvent::Phases {
            phases: self.obs.timer.snapshot(),
        });
        self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.obs().is_enabled());
        assert!(rec.finish().is_none());
    }
}
