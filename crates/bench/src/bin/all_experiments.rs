//! Runs every experiment in sequence (Fig. 10a-c, Fig. 11, SEA tuning,
//! ablations). Usage: `all_experiments [--scale smoke|default|paper]`.
fn main() {
    let scale = mwsj_bench::Scale::from_args();
    println!("=== mwsj experiment suite (scale: {}) ===\n", scale.name());
    mwsj_bench::experiments::fig10a::main(scale);
    println!();
    mwsj_bench::experiments::fig10b::main(scale);
    println!();
    mwsj_bench::experiments::fig10c::main(scale);
    println!();
    mwsj_bench::experiments::fig11::main(scale);
    println!();
    mwsj_bench::experiments::sea_tuning::main(scale);
    println!();
    mwsj_bench::experiments::ablations::main(scale);
    println!("\n=== done ===");
}
