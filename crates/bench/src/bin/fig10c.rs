//! Regenerates the paper's fig10c experiment. Usage: `fig10c [--scale smoke|default|paper]`.
fn main() {
    mwsj_bench::experiments::fig10c::main(mwsj_bench::Scale::from_args());
}
