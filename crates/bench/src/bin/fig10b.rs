//! Regenerates the paper's fig10b experiment. Usage: `fig10b [--scale smoke|default|paper]`.
fn main() {
    mwsj_bench::experiments::fig10b::main(mwsj_bench::Scale::from_args());
}
