//! Regenerates the paper's sea_tuning experiment. Usage: `sea_tuning [--scale smoke|default|paper]`.
fn main() {
    mwsj_bench::experiments::sea_tuning::main(mwsj_bench::Scale::from_args());
}
