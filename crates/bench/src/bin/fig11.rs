//! Regenerates the paper's fig11 experiment. Usage: `fig11 [--scale smoke|default|paper]`.
fn main() {
    mwsj_bench::experiments::fig11::main(mwsj_bench::Scale::from_args());
}
