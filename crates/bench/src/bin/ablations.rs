//! Regenerates the paper's ablations experiment. Usage: `ablations [--scale smoke|default|paper]`.
fn main() {
    mwsj_bench::experiments::ablations::main(mwsj_bench::Scale::from_args());
}
